"""Shared fixtures for the benchmark harness.

Each paper artifact (Fig. 3, Tables I-III) has one benchmark module that
regenerates it and records the timing of the stage it exercises.  The
expensive flow runs are shared through the suite runner's cache; every
module also writes its regenerated rows to ``results/`` so the numbers in
EXPERIMENTS.md can be traced to a run.

Scale control: set ``REPRO_BENCH_SUITE=full`` to replay all 12 circuits at
full (reproduction) scale — several minutes; the default ``quick`` profile
runs a 4-circuit subset sized for CI.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import SuiteRunConfig, run_suite

_PROFILE = os.environ.get("REPRO_BENCH_SUITE", "quick")

#: Artifacts are separated by profile so a quick CI run never overwrites
#: the full-scale tables EXPERIMENTS.md cites.
RESULTS_DIR = (Path(__file__).resolve().parent.parent / "results"
               / ("full" if _PROFILE == "full" else "quick"))

#: Machine-readable fault-simulation perf trajectory (see EXPERIMENTS.md):
#: written by test_bench_detection.py (per-engine quick-profile totals plus
#: the s38417-scale ``large_circuit`` entry), consumed by the perf smoke
#: test in tests/test_perf_smoke.py and by ``repro bench``.
BENCH_DETECTION_FILE = (Path(__file__).resolve().parent.parent
                        / "BENCH_detection.json")

#: Machine-readable schedule-optimization perf trajectory: written by
#: test_bench_schedule.py (bitset pipeline vs the retained seed reference),
#: consumed by the perf smoke test and by ``repro bench``.
BENCH_SCHEDULE_FILE = (Path(__file__).resolve().parent.parent
                       / "BENCH_schedule.json")

#: Machine-readable ATPG perf trajectory: written by test_bench_atpg.py
#: (word-matrix grading engine vs the retained seed reference pipeline),
#: consumed by the perf smoke test and by ``repro bench --stage atpg``.
BENCH_ATPG_FILE = (Path(__file__).resolve().parent.parent
                   / "BENCH_atpg.json")

#: Machine-readable fleet Monte Carlo perf trajectory: written by
#: test_bench_fleet.py (vectorized block kernel vs the per-device
#: reference loop, plus the 10^5-device profile), consumed by the perf
#: smoke test and by ``repro bench --stage fleet``.
BENCH_FLEET_FILE = (Path(__file__).resolve().parent.parent
                    / "BENCH_fleet.json")

#: Machine-readable rescheduling perf trajectory: written by
#: test_bench_resched.py (incremental warm re-solve vs the cold full
#: recompute on the alert-burst replay), consumed by the perf smoke test
#: and by ``repro bench --stage resched``.
BENCH_RESCHED_FILE = (Path(__file__).resolve().parent.parent
                      / "BENCH_resched.json")

#: Machine-readable sharded-suite scaling trajectory: written by
#: test_bench_suite.py (workers-vs-wall-clock curve of the stage-unit
#: scheduler, the granularity ablation and the real-flow smoke matrix),
#: consumed by the perf smoke test and by ``repro bench --stage suite``.
BENCH_SUITE_FILE = (Path(__file__).resolve().parent.parent
                    / "BENCH_suite.json")

#: Machine-readable job-service replay baseline: written by
#: test_bench_service.py (cold JobSpec execution vs the all-stages-hit
#: resubmission replay through the facade), consumed by the perf smoke
#: test and by ``repro bench --stage service``.
BENCH_SERVICE_FILE = (Path(__file__).resolve().parent.parent
                      / "BENCH_service.json")


def _suite_config(**overrides) -> SuiteRunConfig:
    if _PROFILE == "full":
        return SuiteRunConfig(**overrides)
    return SuiteRunConfig.quick(**overrides)


@pytest.fixture(scope="session")
def suite_config() -> SuiteRunConfig:
    return _suite_config(with_schedules=True, with_coverage_schedules=True)


@pytest.fixture(scope="session")
def suite_results(suite_config):
    """Flow results for every suite circuit (cached, computed once)."""
    return run_suite(suite_config)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text)
