"""Ablation benchmarks for the design choices called out in DESIGN.md.

* ILP vs greedy vs branch-and-bound schedule quality (frequencies chosen),
* pulse-filter threshold sensitivity of the detection ranges,
* monitor coverage fraction (10/25/50 %) and delay-set granularity.

Each ablation writes its comparison table to ``results/``.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core import FlowConfig, HdfTestFlow
from repro.circuits.library import suite_circuit
from repro.experiments.reporting import format_table
from repro.faults.detection import compute_detection_data
from repro.scheduling.baselines import heuristic_schedule, proposed_schedule


def test_ablation_solver_quality(suite_results, results_dir, benchmark):
    """ILP vs greedy: selected frequency count and schedule size."""
    rows = []
    for name, res in suite_results.items():
        heur = res.schedules["heur"]
        prop = res.schedules["prop"]
        rows.append({
            "circuit": name,
            "freq_greedy": heur.num_frequencies,
            "freq_ilp": prop.num_frequencies,
            "entries_greedy": heur.num_entries,
            "entries_ilp": prop.num_entries,
        })
    text = format_table(rows, title="Ablation — greedy vs ILP set covering")
    write_artifact(results_dir, "ablation_solver.txt", text)
    print("\n" + text)
    for row in rows:
        assert row["freq_ilp"] <= row["freq_greedy"]

    res = next(iter(suite_results.values()))
    benchmark.pedantic(
        lambda: heuristic_schedule(res.data, res.classification, res.clock,
                                   res.configs),
        rounds=2, iterations=1)


def test_ablation_pulse_filter_threshold(results_dir, benchmark):
    """Detection-range sensitivity to the glitch-filter threshold."""
    circuit = suite_circuit("s9234", scale=0.5)
    cfg = FlowConfig(pattern_cap=10)
    base = HdfTestFlow(circuit, cfg).run(with_schedules=False)
    faults = base.data.faults
    patterns = base.test_set

    rows = []
    for threshold in (0.0, 2.0, 5.0, 10.0, 20.0):
        data = compute_detection_data(
            circuit, faults, patterns, horizon=base.clock.t_nom,
            monitored_gates=base.placement.monitored_gates,
            glitch_threshold=threshold)
        total = sum(data.union_all(fi).measure for fi in data.ranges)
        rows.append({
            "threshold_ps": threshold,
            "faults_with_ranges": len(data.ranges),
            "total_range_ps": round(total, 1),
        })
    text = format_table(rows, title="Ablation — pulse filter threshold")
    write_artifact(results_dir, "ablation_pulse_filter.txt", text)
    print("\n" + text)

    # Pessimistic filtering only removes detection opportunities.
    counts = [r["faults_with_ranges"] for r in rows]
    assert counts == sorted(counts, reverse=True)

    benchmark.pedantic(
        lambda: compute_detection_data(
            circuit, faults[:80], patterns, horizon=base.clock.t_nom,
            monitored_gates=base.placement.monitored_gates),
        rounds=2, iterations=1)


def test_ablation_monitor_fraction(results_dir, benchmark):
    """HDF gain at 10/25/50 % monitor coverage (paper fixes 25 %)."""
    rows = []
    for fraction in (0.10, 0.25, 0.50):
        circuit = suite_circuit("s13207", scale=0.5)
        cfg = FlowConfig(monitor_fraction=fraction, pattern_cap=12)
        res = HdfTestFlow(circuit, cfg).run(with_schedules=False)
        rows.append({
            "fraction": f"{fraction:.0%}",
            "monitors": res.placement.count,
            "conv": res.conv_hdf_detected,
            "prop": res.prop_hdf_detected,
            "gain_%": round(res.gain_percent, 1),
        })
    text = format_table(rows, title="Ablation — monitor coverage fraction")
    write_artifact(results_dir, "ablation_monitor_fraction.txt", text)
    print("\n" + text)

    gains = [r["gain_%"] for r in rows]
    assert gains == sorted(gains)  # more monitors, more recovered faults

    benchmark.pedantic(
        lambda: HdfTestFlow(
            suite_circuit("s13207", scale=0.4),
            FlowConfig(monitor_fraction=0.25, pattern_cap=8),
        ).run(with_schedules=False),
        rounds=1, iterations=1)


def test_ablation_delay_set_granularity(results_dir, benchmark):
    """Two vs four vs six delay elements per monitor."""
    variants = {
        "2 elements": (0.15, 1 / 3),
        "4 (paper)": (0.05, 0.10, 0.15, 1 / 3),
        "6 elements": (0.05, 0.10, 0.15, 0.20, 0.25, 1 / 3),
    }
    def run_variant(delays):
        circuit = suite_circuit("s13207", scale=0.5)
        cfg = FlowConfig(monitor_delay_fractions=delays, pattern_cap=12)
        return HdfTestFlow(circuit, cfg).run(with_schedules=False)

    rows = []
    for label, delays in variants.items():
        if label == "4 (paper)":
            # The paper's configuration is the timed reference point.
            res = benchmark.pedantic(run_variant, args=(delays,),
                                     rounds=1, iterations=1)
        else:
            res = run_variant(delays)
        rows.append({
            "delay_set": label,
            "prop": res.prop_hdf_detected,
            "monitor_at_speed": len(res.classification.monitor_at_speed),
            "targets": res.num_target_faults,
        })
    text = format_table(rows, title="Ablation — delay element granularity")
    write_artifact(results_dir, "ablation_delay_set.txt", text)
    print("\n" + text)
    assert rows[1]["prop"] >= rows[0]["prop"] - 2  # richer set never worse
