"""Benchmark + persistent perf baseline of the transition-fault ATPG.

Re-runs the complete ATPG pipeline (random phase, PODEM top-up, reverse
compaction) of every suite circuit with both grading engines — the
vectorized word-matrix ``"matrix"`` engine and the seed-equivalent big-int
``"reference"`` pipeline — checks they produce identical test sets and
fault ledgers, and persists the machine-readable timing trajectory to
``BENCH_atpg.json`` at the repository root (see EXPERIMENTS.md).  The perf
smoke test in ``tests/test_perf_smoke.py`` guards against regressions
relative to that committed baseline.
"""

from __future__ import annotations

import json
import time

from conftest import _PROFILE, BENCH_ATPG_FILE, write_artifact

from repro.core.engines import ENGINES
from repro.netlist.circuit import GateKind
from repro.utils.profiling import StageTimer

#: End-to-end ATPG wall clock of the seed pipeline (big-int grading, heap
#: PODEM, quadratic phase-2 re-grading), measured from a worktree at the
#: pre-rework commit with the same quick-profile workload and machine as
#: below.  Kept verbatim (and carried over from any existing baseline
#: file) so the before/after trajectory survives regeneration.
_SEED_BASELINE = {
    "commit": "5409244",
    "profile": "quick",
    "engine": "seed big-int pipeline (pre-matrix)",
    "atpg_seconds": {
        "s9234": 0.74,
        "s13207": 1.57,
        "s35932": 0.40,
        "p89k": 33.49,
    },
    "total_s": 36.20,
}

_ATPG_SEED = 7  # must match SuiteRunConfig.atpg_seed / FlowConfig.atpg_seed


def _run_engine(circuit, engine, timer=None):
    fn = ENGINES.resolve("atpg", engine).fn
    t0 = time.perf_counter()
    atpg = fn(circuit, seed=_ATPG_SEED, timer=timer)
    return atpg, time.perf_counter() - t0


def _assert_identical(name, mat, ref):
    """Identical ATPG outcome across engines (the hard requirement)."""
    assert [(p.launch, p.capture) for p in mat.test_set] == \
           [(p.launch, p.capture) for p in ref.test_set], name
    assert mat.detected == ref.detected, name
    assert mat.untestable == ref.untestable, name
    assert mat.aborted == ref.aborted, name


def test_atpg_engine_benchmark(benchmark, suite_results, results_dir):
    records: dict[str, dict] = {}

    def run_all():
        for name, res in suite_results.items():
            circuit = res.circuit
            timer = StageTimer()
            mat, mat_s = _run_engine(circuit, "matrix", timer=timer)
            ref, ref_s = _run_engine(circuit, "reference")
            _assert_identical(name, mat, ref)
            prev = records.get(name)
            if prev is not None and prev["total_s"] <= mat_s:
                # Keep the best round per circuit (standard noise damping).
                prev["reference_total_s"] = min(prev["reference_total_s"],
                                               round(ref_s, 4))
                continue
            records[name] = {
                "gates": len(circuit.gates),
                "ffs": sum(1 for g in circuit.gates
                           if g.kind == GateKind.DFF),
                "patterns": len(mat.test_set),
                "detected": len(mat.detected),
                "coverage": round(mat.coverage, 4),
                "stages": timer.as_dict(),
                "total_s": round(mat_s, 4),
                "reference_total_s": round(ref_s, 4),
            }
            if prev is not None:
                records[name]["reference_total_s"] = min(
                    prev["reference_total_s"],
                    records[name]["reference_total_s"])
        return records

    benchmark.pedantic(run_all, rounds=2, iterations=1)

    mat_total = sum(r["total_s"] for r in records.values())
    ref_total = sum(r["reference_total_s"] for r in records.values())
    # Both engines share the optimized PODEM, so end-to-end they are close
    # (the matrix win concentrates in grading + phase-2 structure); the
    # matrix path must never fall meaningfully behind the reference.
    assert mat_total <= ref_total * 1.25, (mat_total, ref_total)

    seed_baseline = _SEED_BASELINE
    if BENCH_ATPG_FILE.exists():
        previous = json.loads(BENCH_ATPG_FILE.read_text())
        seed_baseline = previous.get("seed_baseline", seed_baseline)

    # The hard acceptance gate: >=3x end-to-end vs the frozen seed pipeline
    # (same quick-profile workload, recorded pre-rework).
    if _PROFILE == seed_baseline.get("profile"):
        assert mat_total * 3.0 <= seed_baseline["total_s"], (
            mat_total, seed_baseline["total_s"])

    payload = {
        "profile": _PROFILE,
        "engine": "matrix",
        "circuits": records,
        "totals": {
            "matrix_s": round(mat_total, 4),
            "reference_s": round(ref_total, 4),
            "speedup_vs_reference": round(ref_total / mat_total, 2),
        },
        "seed_baseline": seed_baseline,
    }
    if (_PROFILE == seed_baseline.get("profile")
            and seed_baseline.get("total_s")):
        payload["totals"]["speedup_vs_seed"] = round(
            seed_baseline["total_s"] / mat_total, 2)
    BENCH_ATPG_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"{'circuit':>10} {'gates':>6} {'patterns':>8} {'cov':>7} "
             f"{'matrix [s]':>10} {'ref [s]':>8}"]
    for name, r in records.items():
        lines.append(f"{name:>10} {r['gates']:>6} {r['patterns']:>8} "
                     f"{r['coverage']:>7.4f} {r['total_s']:>10.3f} "
                     f"{r['reference_total_s']:>8.3f}")
    lines.append(f"{'total':>10} {'':>6} {'':>8} {'':>7} "
                 f"{mat_total:>10.3f} {ref_total:>8.3f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "bench_atpg.txt", text)
    print("\n" + text)
