"""Verification benchmark: PODEM vs D-algorithm testability cross-check.

Two independently implemented ATPG engines run over the output-pin
stuck-at corpus of several circuits.  The hard invariant: PODEM (the
engine the flow uses) never proves a D-alg-testable fault untestable.
The artifact records agreement statistics per circuit.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.atpg.dalg import cross_check_testability
from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.circuits.library import embedded_circuit
from repro.experiments.reporting import format_table
from repro.faults.models import StuckAtFault
from repro.faults.universe import fault_sites


def _corpus():
    yield embedded_circuit("c17")
    yield embedded_circuit("s27")
    for seed in (0, 3, 5):
        yield generate_circuit(CircuitProfile(
            name=f"cc{seed}", n_gates=40, n_ffs=8, n_inputs=6,
            n_outputs=3, depth=6, seed=seed, long_edge_prob=0.5))


def test_atpg_cross_check(benchmark, results_dir):
    def run():
        rows = []
        for circuit in _corpus():
            faults = [StuckAtFault(s, v) for s in fault_sites(circuit)
                      if s.is_output_pin for v in (0, 1)]
            counts = cross_check_testability(circuit, faults)
            counts["circuit"] = circuit.name
            rows.append(counts)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    cols = ["circuit", "agree", "podem_miss", "dalg_miss", "aborted"]
    text = format_table(rows, columns=cols,
                        title="ATPG cross-check — PODEM vs D-algorithm "
                              "(output-pin stuck-at corpus)")
    write_artifact(results_dir, "atpg_crosscheck.txt", text)
    print("\n" + text)

    for row in rows:
        assert row["podem_miss"] == 0, row
        assert row["agree"] > 0
