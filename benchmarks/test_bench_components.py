"""Micro-benchmarks of the core computational kernels.

Not tied to one paper artifact; these track the throughput of the stages
that dominate the flow's runtime so regressions are visible:

* timing-accurate waveform simulation (fault-free and faulty),
* bit-parallel logic simulation,
* PODEM test generation,
* the set-covering solvers (greedy / branch-and-bound / ILP).
"""

from __future__ import annotations

import random

from repro.atpg.podem import Podem
from repro.atpg.transition import generate_transition_tests
from repro.circuits.library import suite_circuit
from repro.faults.models import FaultSite, SmallDelayFault, StuckAtFault
from repro.faults.universe import fault_sites
from repro.scheduling.setcover import (
    CoverProblem,
    branch_and_bound_cover,
    greedy_cover,
    ilp_cover,
)
from repro.simulation.parallel_sim import BitParallelSimulator
from repro.simulation.wave_sim import WaveformSimulator


def _circuit():
    return suite_circuit("s9234", scale=0.8)


def _vectors(circuit, n, seed=0):
    rng = random.Random(seed)
    width = len(circuit.sources())
    return [tuple(rng.randint(0, 1) for _ in range(width)) for _ in range(n)]


def test_waveform_simulation(benchmark):
    circuit = _circuit()
    sim = WaveformSimulator(circuit)
    [v1], [v2] = _vectors(circuit, 1, 1), _vectors(circuit, 1, 2)
    result = benchmark(sim.simulate, v1, v2)
    assert len(result.waveforms) == len(circuit.gates)


def test_faulty_cone_resimulation(benchmark):
    circuit = _circuit()
    sim = WaveformSimulator(circuit)
    [v1], [v2] = _vectors(circuit, 1, 1), _vectors(circuit, 1, 2)
    base = sim.simulate(v1, v2)
    gate = circuit.combinational_gates()[len(circuit.gates) // 4]
    fault = SmallDelayFault(FaultSite(gate), True, 30.0)
    result = benchmark(sim.simulate_fault, base, fault)
    assert len(result.waveforms) == len(circuit.gates)


def test_bit_parallel_simulation_64_patterns(benchmark):
    circuit = _circuit()
    sim = BitParallelSimulator(circuit)
    words, width = sim.pack_vectors(_vectors(circuit, 64, 3))
    values = benchmark(sim.simulate, words, width)
    assert len(values) == len(circuit.gates)


def test_stuck_at_fault_grading(benchmark):
    circuit = _circuit()
    sim = BitParallelSimulator(circuit)
    words, width = sim.pack_vectors(_vectors(circuit, 64, 4))
    good = sim.simulate(words, width)
    faults = [StuckAtFault(s, 0) for s in fault_sites(circuit)[:64]]

    def grade():
        return sum(1 for f in faults
                   if sim.stuck_at_detect_mask(good, f, width))

    detected = benchmark(grade)
    assert detected > 0


def test_podem_generation(benchmark):
    circuit = _circuit()
    podem = Podem(circuit, seed=0)
    targets = [StuckAtFault(s, v)
               for s in fault_sites(circuit)[:12] for v in (0, 1)]

    def generate_all():
        return sum(1 for f in targets if podem.generate(f) is not None)

    found = benchmark(generate_all)
    assert found > 0


def test_transition_atpg_small(benchmark):
    circuit = suite_circuit("s9234", scale=0.4)
    result = benchmark.pedantic(
        lambda: generate_transition_tests(circuit, seed=1),
        rounds=2, iterations=1)
    assert result.coverage > 0.9


def _cover_instance(seed=0, n_elements=120, n_subsets=80):
    rng = random.Random(seed)
    subsets = [frozenset(rng.sample(range(n_elements),
                                    rng.randint(2, 14)))
               for _ in range(n_subsets)]
    subsets.append(frozenset(range(n_elements)) - subsets[0] or subsets[0])
    subsets.append(frozenset(range(n_elements)))
    return CoverProblem(subsets=subsets)


def test_setcover_greedy(benchmark):
    p = _cover_instance()
    chosen = benchmark(greedy_cover, p)
    assert p.covered_by(chosen) >= p.universe


def test_setcover_ilp(benchmark):
    p = _cover_instance()
    chosen = benchmark(ilp_cover, p)
    assert p.covered_by(chosen) >= p.universe


def test_setcover_branch_and_bound(benchmark):
    p = _cover_instance(n_elements=40, n_subsets=25)
    chosen = benchmark(branch_and_bound_cover, p)
    assert p.covered_by(chosen) >= p.universe
