"""Benchmark + persistent perf baseline of the fault-simulation engines.

Re-runs the detection-range stage of every suite circuit with all three
engines (the batched array-kernel ``"wordwave"`` engine, the event-driven
``"incremental"`` engine and the seed-equivalent ``"reference"`` full-cone
resweep), checks they produce bit-identical ``DetectionData``, and persists
the machine-readable timing trajectory to ``BENCH_detection.json`` at the
repository root (see EXPERIMENTS.md).  A second benchmark exercises an
s38417-scale synthetic circuit where only the batched engine remains
tractable.  The perf smoke test in ``tests/test_perf_smoke.py`` guards
against regressions relative to the committed baseline.
"""

from __future__ import annotations

import json
import random
import time

from conftest import _PROFILE, BENCH_DETECTION_FILE, write_artifact

from repro.core.config import FlowConfig
from repro.core.engines import ENGINES
from repro.netlist.circuit import GateKind
from repro.utils.profiling import StageTimer

#: Detection-stage wall clock of the pre-incremental seed engine, measured
#: from a worktree at the seed commit with the same quick-profile workload
#: and machine as below.  Kept verbatim (and carried over from any existing
#: baseline file) so the before/after trajectory survives regeneration.
_SEED_BASELINE = {
    "commit": "a2ad4de",
    "profile": "quick",
    "engine": "seed full-cone resweep (pre-incremental)",
    "detection_seconds": {
        "s9234": 0.181,
        "s13207": 0.307,
        "s35932": 0.141,
        "p89k": 1.595,
    },
    "total_s": 2.224,
}

#: Quick-profile total of the event-driven engine as committed by PR 1
#: (the before-side of this PR's speedup claim); carried over from any
#: existing baseline file like the seed numbers above.
_INCREMENTAL_BASELINE = {
    "commit": "cdedfc5",
    "profile": "quick",
    "engine": "incremental",
    "total_s": 0.5613,
}

#: s38417-scale synthetic workload (see EXPERIMENTS.md): ~26.5k gates with
#: a sampled fault universe large enough that per-fault event-driven costs
#: dominate; the reference engine is extrapolated from a thin slice.
_LARGE_SEED = 38417
_LARGE_FAULTS = 6000
_LARGE_PATTERNS = 24
_LARGE_REFERENCE_SLICE = 60


def _detection_workload(res):
    """Keyword arguments replaying the flow's detection stage exactly."""
    return dict(
        horizon=res.clock.t_nom,
        monitored_gates=res.placement.monitored_gates,
        inertial=FlowConfig().inertial_ps,
    )


def _run_engine(res, engine, timer=None):
    fn = ENGINES.resolve("simulation", engine).fn
    t0 = time.perf_counter()
    data = fn(res.circuit, res.data.faults, res.test_set,
              timer=timer, **_detection_workload(res))
    return data, time.perf_counter() - t0


def _assert_identical(name, got, ref):
    """Bit-identical DetectionData across engines (the hard requirement)."""
    assert got.faults_with_ranges() == ref.faults_with_ranges(), name
    for fi, per_pattern in ref.ranges.items():
        got_pp = got.ranges[fi]
        assert set(got_pp) == set(per_pattern), (name, fi)
        for pi, fpr in per_pattern.items():
            assert got_pp[pi].i_all == fpr.i_all, (name, fi, pi)
            assert got_pp[pi].i_mon == fpr.i_mon, (name, fi, pi)


def _carried_baselines():
    seed = _SEED_BASELINE
    incremental = _INCREMENTAL_BASELINE
    if BENCH_DETECTION_FILE.exists():
        previous = json.loads(BENCH_DETECTION_FILE.read_text())
        seed = previous.get("seed_baseline", seed)
        incremental = previous.get("incremental_baseline", incremental)
        # PR 1..5 payloads predate the incremental_baseline record: their
        # totals *are* the committed incremental trajectory — adopt them.
        if ("incremental_baseline" not in previous
                and previous.get("engine") == "incremental"
                and previous.get("profile") == _INCREMENTAL_BASELINE["profile"]):
            incremental = dict(_INCREMENTAL_BASELINE,
                               total_s=previous["totals"]["incremental_s"])
    return seed, incremental


def test_detection_engine_benchmark(benchmark, suite_results, results_dir):
    records: dict[str, dict] = {}

    def run_all():
        for name, res in suite_results.items():
            timer = StageTimer()
            ww_data, ww_s = _run_engine(res, "wordwave", timer=timer)
            inc_data, inc_s = _run_engine(res, "incremental")
            ref_data, ref_s = _run_engine(res, "reference")
            _assert_identical(name, ww_data, ref_data)
            _assert_identical(name, inc_data, ref_data)
            circuit = res.circuit
            prev = records.get(name)
            if prev is not None and prev["total_s"] <= ww_s:
                # Keep the best round per circuit (standard noise damping).
                prev["incremental_total_s"] = min(
                    prev["incremental_total_s"], round(inc_s, 4))
                prev["reference_total_s"] = min(prev["reference_total_s"],
                                                round(ref_s, 4))
                continue
            records[name] = {
                "gates": len(circuit.gates),
                "ffs": sum(1 for g in circuit.gates
                           if g.kind == GateKind.DFF),
                "faults": len(res.data.faults),
                "patterns": len(res.test_set),
                "stages": timer.as_dict(),
                "total_s": round(ww_s, 4),
                "incremental_total_s": round(inc_s, 4),
                "reference_total_s": round(ref_s, 4),
            }
            if prev is not None:
                records[name]["incremental_total_s"] = min(
                    prev["incremental_total_s"],
                    records[name]["incremental_total_s"])
                records[name]["reference_total_s"] = min(
                    prev["reference_total_s"],
                    records[name]["reference_total_s"])
        return records

    benchmark.pedantic(run_all, rounds=2, iterations=1)

    ww_total = sum(r["total_s"] for r in records.values())
    inc_total = sum(r["incremental_total_s"] for r in records.values())
    ref_total = sum(r["reference_total_s"] for r in records.values())
    # The batched engine must clearly beat both retained engines; the
    # stronger targets are tracked against the persisted baselines.
    assert ww_total < inc_total < ref_total, (ww_total, inc_total, ref_total)

    seed_baseline, incremental_baseline = _carried_baselines()

    payload = {
        "profile": _PROFILE,
        "engine": "wordwave",
        "circuits": records,
        "totals": {
            "wordwave_s": round(ww_total, 4),
            "incremental_s": round(inc_total, 4),
            "reference_s": round(ref_total, 4),
            "speedup_vs_incremental": round(inc_total / ww_total, 2),
            "speedup_vs_reference": round(ref_total / ww_total, 2),
        },
        "seed_baseline": seed_baseline,
        "incremental_baseline": incremental_baseline,
    }
    if (_PROFILE == incremental_baseline.get("profile")
            and incremental_baseline.get("total_s")):
        payload["totals"]["speedup_vs_committed_incremental"] = round(
            incremental_baseline["total_s"] / ww_total, 2)
    if (_PROFILE == seed_baseline.get("profile")
            and seed_baseline.get("total_s")):
        payload["totals"]["speedup_vs_seed"] = round(
            seed_baseline["total_s"] / ww_total, 2)
    BENCH_DETECTION_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"{'circuit':>10} {'gates':>6} {'faults':>7} {'patterns':>8} "
             f"{'wave [s]':>8} {'inc [s]':>8} {'ref [s]':>8}"]
    for name, r in records.items():
        lines.append(f"{name:>10} {r['gates']:>6} {r['faults']:>7} "
                     f"{r['patterns']:>8} {r['total_s']:>8.3f} "
                     f"{r['incremental_total_s']:>8.3f} "
                     f"{r['reference_total_s']:>8.3f}")
    lines.append(f"{'total':>10} {'':>6} {'':>7} {'':>8} "
                 f"{ww_total:>8.3f} {inc_total:>8.3f} {ref_total:>8.3f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "bench_detection.txt", text)
    print("\n" + text)


def _large_workload():
    """s38417-scale synthetic circuit plus a sampled detection workload."""
    from repro.atpg.patterns import random_test_set
    from repro.circuits.generators import CircuitProfile, generate_circuit
    from repro.faults.universe import small_delay_fault_universe
    from repro.monitors.insertion import MonitorConfigSet, insert_monitors
    from repro.timing.clock import ClockSpec
    from repro.timing.sta import run_sta

    cfg = FlowConfig()
    profile = CircuitProfile(name="synth38k", n_gates=22000, n_ffs=1500,
                             n_inputs=28, n_outputs=16, depth=24,
                             seed=_LARGE_SEED)
    circuit = generate_circuit(profile)
    sta = run_sta(circuit)
    clock = ClockSpec(sta.clock_period, cfg.fast_ratio)
    configs = MonitorConfigSet(tuple(
        f * clock.t_nom for f in sorted(cfg.monitor_delay_fractions)))
    placement = insert_monitors(circuit, sta, configs,
                                fraction=cfg.monitor_fraction)
    universe = small_delay_fault_universe(circuit)
    faults = random.Random(_LARGE_SEED).sample(universe, _LARGE_FAULTS)
    patterns = random_test_set(circuit, _LARGE_PATTERNS, seed=_LARGE_SEED)
    kwargs = dict(horizon=clock.t_nom,
                  monitored_gates=placement.monitored_gates,
                  inertial=cfg.inertial_ps)
    return circuit, faults, patterns, kwargs


def test_detection_large_circuit_benchmark(benchmark, results_dir):
    """The fleet-scale profile: tractable only for the batched engine.

    ``wordwave`` and ``incremental`` run the full sampled workload; the
    reference engine is measured on a thin fault slice (with a parity
    check against wordwave on that slice) and extrapolated linearly —
    running it in full would take minutes.
    """
    circuit, faults, patterns, kwargs = _large_workload()

    def _run(engine, fault_list):
        fn = ENGINES.resolve("simulation", engine).fn
        t0 = time.perf_counter()
        data = fn(circuit, fault_list, patterns, **kwargs)
        return data, time.perf_counter() - t0

    measured: dict[str, float] = {}

    def run_all():
        ww_data, ww_s = _run("wordwave", faults)
        inc_data, inc_s = _run("incremental", faults)
        _assert_identical("synth38k", ww_data, inc_data)
        measured["wordwave_s"] = min(ww_s, measured.get("wordwave_s", ww_s))
        measured["incremental_s"] = min(
            inc_s, measured.get("incremental_s", inc_s))
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Thin-slice reference run: parity at scale + extrapolated wall clock.
    ref_slice = faults[:_LARGE_REFERENCE_SLICE]
    ww_slice_data, _ = _run("wordwave", ref_slice)
    ref_data, ref_slice_s = _run("reference", ref_slice)
    _assert_identical("synth38k-slice", ww_slice_data, ref_data)
    ref_est = ref_slice_s * (len(faults) / len(ref_slice))

    ww_s = measured["wordwave_s"]
    inc_s = measured["incremental_s"]
    assert inc_s >= 10.0 * ww_s, (
        f"large-circuit profile no longer shows the batched engine >=10x "
        f"over incremental: wordwave {ww_s:.2f}s, incremental {inc_s:.2f}s")

    entry = {
        "name": "synth38k",
        "gates": len(circuit.gates),
        "ffs": sum(1 for g in circuit.gates if g.kind == GateKind.DFF),
        "faults": len(faults),
        "patterns": len(patterns),
        "seed": _LARGE_SEED,
        "wordwave_s": round(ww_s, 3),
        "incremental_s": round(inc_s, 3),
        "reference_est_s": round(ref_est, 1),
        "reference_slice_faults": len(ref_slice),
        "speedup_vs_incremental": round(inc_s / ww_s, 2),
    }
    if BENCH_DETECTION_FILE.exists():
        payload = json.loads(BENCH_DETECTION_FILE.read_text())
        payload["large_circuit"] = entry
        BENCH_DETECTION_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    text = "\n".join(f"{k:>22}: {v}" for k, v in entry.items())
    write_artifact(results_dir, "bench_detection_large.txt", text)
    print("\n" + text)
