"""Benchmark + persistent perf baseline of the fault-simulation engine.

Re-runs the detection-range stage of every suite circuit with both engines
(the event-driven ``"incremental"`` engine and the seed-equivalent
``"reference"`` full-cone resweep), checks they produce bit-identical
``DetectionData``, and persists the machine-readable timing trajectory to
``BENCH_detection.json`` at the repository root (see EXPERIMENTS.md).  The
perf smoke test in ``tests/test_perf_smoke.py`` guards against regressions
relative to that committed baseline.
"""

from __future__ import annotations

import json
import time

from conftest import _PROFILE, BENCH_DETECTION_FILE, write_artifact

from repro.core.config import FlowConfig
from repro.core.engines import ENGINES
from repro.netlist.circuit import GateKind
from repro.utils.profiling import StageTimer

#: Detection-stage wall clock of the pre-incremental seed engine, measured
#: from a worktree at the seed commit with the same quick-profile workload
#: and machine as below.  Kept verbatim (and carried over from any existing
#: baseline file) so the before/after trajectory survives regeneration.
_SEED_BASELINE = {
    "commit": "a2ad4de",
    "profile": "quick",
    "engine": "seed full-cone resweep (pre-incremental)",
    "detection_seconds": {
        "s9234": 0.181,
        "s13207": 0.307,
        "s35932": 0.141,
        "p89k": 1.595,
    },
    "total_s": 2.224,
}


def _detection_workload(res):
    """Keyword arguments replaying the flow's detection stage exactly."""
    return dict(
        horizon=res.clock.t_nom,
        monitored_gates=res.placement.monitored_gates,
        inertial=FlowConfig().inertial_ps,
    )


def _run_engine(res, engine, timer=None):
    fn = ENGINES.resolve("simulation", engine).fn
    t0 = time.perf_counter()
    data = fn(res.circuit, res.data.faults, res.test_set,
              timer=timer, **_detection_workload(res))
    return data, time.perf_counter() - t0


def _assert_identical(name, inc, ref):
    """Bit-identical DetectionData across engines (the hard requirement)."""
    assert inc.faults_with_ranges() == ref.faults_with_ranges(), name
    for fi, per_pattern in ref.ranges.items():
        inc_pp = inc.ranges[fi]
        assert set(inc_pp) == set(per_pattern), (name, fi)
        for pi, fpr in per_pattern.items():
            assert inc_pp[pi].i_all == fpr.i_all, (name, fi, pi)
            assert inc_pp[pi].i_mon == fpr.i_mon, (name, fi, pi)


def test_detection_engine_benchmark(benchmark, suite_results, results_dir):
    records: dict[str, dict] = {}

    def run_all():
        for name, res in suite_results.items():
            timer = StageTimer()
            inc_data, inc_s = _run_engine(res, "incremental", timer=timer)
            ref_data, ref_s = _run_engine(res, "reference")
            _assert_identical(name, inc_data, ref_data)
            circuit = res.circuit
            prev = records.get(name)
            if prev is not None and prev["total_s"] <= inc_s:
                # Keep the best round per circuit (standard noise damping).
                prev["reference_total_s"] = min(prev["reference_total_s"],
                                                round(ref_s, 4))
                continue
            records[name] = {
                "gates": len(circuit.gates),
                "ffs": sum(1 for g in circuit.gates
                           if g.kind == GateKind.DFF),
                "faults": len(res.data.faults),
                "patterns": len(res.test_set),
                "stages": timer.as_dict(),
                "total_s": round(inc_s, 4),
                "reference_total_s": round(ref_s, 4),
            }
            if prev is not None:
                records[name]["reference_total_s"] = min(
                    prev["reference_total_s"],
                    records[name]["reference_total_s"])
        return records

    benchmark.pedantic(run_all, rounds=2, iterations=1)

    inc_total = sum(r["total_s"] for r in records.values())
    ref_total = sum(r["reference_total_s"] for r in records.values())
    # The incremental engine must clearly beat the in-repo reference; the
    # stronger >=3x target is tracked against the persisted seed baseline.
    assert inc_total < ref_total, (inc_total, ref_total)

    seed_baseline = _SEED_BASELINE
    if BENCH_DETECTION_FILE.exists():
        previous = json.loads(BENCH_DETECTION_FILE.read_text())
        seed_baseline = previous.get("seed_baseline", seed_baseline)

    payload = {
        "profile": _PROFILE,
        "engine": "incremental",
        "circuits": records,
        "totals": {
            "incremental_s": round(inc_total, 4),
            "reference_s": round(ref_total, 4),
            "speedup_vs_reference": round(ref_total / inc_total, 2),
        },
        "seed_baseline": seed_baseline,
    }
    if (_PROFILE == seed_baseline.get("profile")
            and seed_baseline.get("total_s")):
        payload["totals"]["speedup_vs_seed"] = round(
            seed_baseline["total_s"] / inc_total, 2)
    BENCH_DETECTION_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"{'circuit':>10} {'gates':>6} {'faults':>7} {'patterns':>8} "
             f"{'inc [s]':>8} {'ref [s]':>8}"]
    for name, r in records.items():
        lines.append(f"{name:>10} {r['gates']:>6} {r['faults']:>7} "
                     f"{r['patterns']:>8} {r['total_s']:>8.3f} "
                     f"{r['reference_total_s']:>8.3f}")
    lines.append(f"{'total':>10} {'':>6} {'':>7} {'':>8} "
                 f"{inc_total:>8.3f} {ref_total:>8.3f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "bench_detection.txt", text)
    print("\n" + text)
