"""Extension benchmark: failing-signature diagnosis quality and speed.

Injects target HDFs, collects the FAST failing signature under the
optimized schedule and ranks candidates; reports the diagnostic resolution
(rank of the injected fault) and times the matching stage.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.diagnosis.ranking import diagnose, resolution
from repro.diagnosis.signature import collect_signature
from repro.experiments.reporting import format_table


def test_diagnosis_resolution(benchmark, suite_results, results_dir):
    res = next(iter(suite_results.values()))
    injected = sorted(res.classification.target)[:8]
    signatures = {
        fi: collect_signature(res, res.data.faults[fi])
        for fi in injected
    }

    def rank_all():
        return {
            fi: diagnose(res.data, res.configs, sig, max_results=10)
            for fi, sig in signatures.items()
        }

    ranked = benchmark(rank_all)

    rows = []
    located = 0
    for fi in injected:
        r = resolution(ranked[fi], fi)
        located += r is not None
        rows.append({
            "injected": res.data.faults[fi].describe(res.circuit),
            "failures": len(signatures[fi].failing),
            "rank": r if r is not None else "-",
            "top_score": round(ranked[fi][0].score, 2) if ranked[fi] else "-",
        })
    text = format_table(rows, title=f"Diagnosis resolution "
                                    f"({res.circuit.name}, proposed schedule)")
    write_artifact(results_dir, "diagnosis.txt", text)
    print("\n" + text)

    # Most injected faults are located; equivalence classes can hide some.
    assert located >= max(1, len(injected) // 2)
    first_ranks = [resolution(ranked[fi], fi) for fi in injected]
    good = [r for r in first_ranks if r is not None]
    assert min(good) <= 2
