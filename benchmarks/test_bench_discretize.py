"""Benchmark of the observation-time discretization (Fig. 5, Sec. IV-A).

Times the discretization over the real per-fault detection ranges of a
suite circuit, and regenerates the Fig. 5 worked example as an artifact.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.reporting import format_table
from repro.scheduling.discretize import discretize_observation_times
from repro.scheduling.schedule import target_ranges
from repro.utils.intervals import IntervalSet


def test_fig5_example_regenerate(benchmark, results_dir):
    ranges = {
        "phi1": IntervalSet.single(1.0, 4.0),
        "phi2": IntervalSet.single(3.0, 7.0),
        "phi3": IntervalSet.single(6.0, 9.0),
    }
    cands = benchmark(discretize_observation_times, ranges, 0.0, 10.0,
                      prune_dominated=False)
    rows = [
        {
            "segment": f"[{c.segment.lo:g}, {c.segment.hi:g}]",
            "midpoint": c.time,
            "faults": ", ".join(sorted(c.faults)),
            "count": c.fault_count,
        }
        for c in cands
    ]
    text = format_table(rows, title="Fig. 5 — observation time discretization")
    write_artifact(results_dir, "fig5.txt", text)
    print("\n" + text)

    # The representative intervals T0 and T1 of the paper's example.
    two_fault = [c for c in cands if c.fault_count == 2]
    assert len(two_fault) == 2
    assert two_fault[0].time == 3.5 and two_fault[1].time == 6.5


def test_discretization_stage(benchmark, suite_results):
    res = max(suite_results.values(),
              key=lambda r: len(r.classification.target))
    ranges = target_ranges(res.data, res.classification.target, res.clock,
                           res.configs)

    def stage():
        return discretize_observation_times(ranges, res.clock.t_min,
                                            res.clock.t_nom)

    cands = benchmark(stage)
    assert cands
    covered = set().union(*(c.faults for c in cands))
    assert covered == set(ranges)


def test_dominance_pruning_ablation(benchmark, suite_results, results_dir):
    """Ablation: candidate count with and without dominance pruning."""
    res = max(suite_results.values(),
              key=lambda r: len(r.classification.target))
    ranges = target_ranges(res.data, res.classification.target, res.clock,
                           res.configs)
    raw = discretize_observation_times(ranges, res.clock.t_min,
                                       res.clock.t_nom,
                                       prune_dominated=False)
    pruned = benchmark(discretize_observation_times, ranges,
                       res.clock.t_min, res.clock.t_nom)
    text = format_table([{
        "circuit": res.circuit.name,
        "segments_raw": len(raw),
        "segments_pruned": len(pruned),
        "reduction_%": round(100 * (1 - len(pruned) / max(1, len(raw))), 1),
    }], title="Ablation — dominance pruning of period candidates")
    write_artifact(results_dir, "ablation_discretize.txt", text)
    print("\n" + text)
    assert len(pruned) <= len(raw)
