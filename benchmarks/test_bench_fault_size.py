"""Ablation benchmark: fault-size (δ = nσ) sensitivity.

Regenerates the fault-population breakdown across fault sizes and asserts
the transition-region shape that justifies the paper's δ = 6σ choice.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.fault_size import fault_size_sweep
from repro.experiments.reporting import format_table


def test_fault_size_sweep(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: fault_size_sweep("s13207", n_sigmas=(2.0, 4.0, 6.0, 8.0, 12.0),
                                 scale=0.5, pattern_cap=14),
        rounds=1, iterations=1)

    rows = [p.row() for p in points]
    text = format_table(rows, title="Ablation — fault size δ = n·σ "
                                    "(σ = 20% nominal gate delay)")
    write_artifact(results_dir, "ablation_fault_size.txt", text)
    print("\n" + text)

    at_speed = [p.at_speed_total for p in points]
    assert at_speed == sorted(at_speed), "at-speed class must grow with δ"
    assert points[0].at_speed_total < points[-1].at_speed_total
    # The monitor gain is largest for the *smallest* faults: tiny marginal
    # delays are exactly the population only monitors can recover — the
    # paper's early-life failure story in one column.
    gains = [p.gain_percent for p in points]
    assert gains == sorted(gains, reverse=True)
