"""Benchmark + regeneration of Fig. 3 (HDF coverage vs maximum FAST
frequency, with and without programmable monitors).

Regenerates both coverage curves over f_max ∈ [f_nom, 3·f_nom] and asserts
the paper's shape: both curves rise with f_max, the monitor curve dominates
the conventional one, and the gap is visible well below f_max — the
figure's core message that monitors recover coverage *at lower test
frequencies*.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.fig3 import fig3_series
from repro.experiments.reporting import format_table


def _series_rows(name, series):
    return [
        {
            "circuit": name,
            "fmax/fnom": p.fmax_ratio,
            "conv_coverage_%": round(100 * p.conv_coverage, 1),
            "prop_coverage_%": round(100 * p.prop_coverage, 1),
        }
        for p in series
    ]


def test_fig3_regenerate(benchmark, suite_results, results_dir):
    all_series = benchmark(lambda: {name: fig3_series(res)
                                    for name, res in suite_results.items()})
    blocks = []
    for name, series in all_series.items():
        rows = _series_rows(name, series)
        blocks.append(format_table(
            rows, title=f"Fig. 3 — HDF coverage vs f_max ({name})"))

        ratios = [p.fmax_ratio for p in series]
        assert ratios == sorted(ratios)
        for a, b in zip(series, series[1:]):
            assert b.conv_coverage >= a.conv_coverage - 1e-12
            assert b.prop_coverage >= a.prop_coverage - 1e-12
        for p in series:
            assert p.prop_coverage >= p.conv_coverage - 1e-12
        # Monitors add coverage before the window is fully open.
        mid = [p for p in series if p.fmax_ratio <= 2.0]
        assert any(p.prop_coverage > p.conv_coverage for p in mid)

    # Companion view with the activated-fault denominator (the paper's
    # >99.9 %-coverage pattern sets activate nearly every fault, so this
    # is the curve comparable to the published 35 % / 65 % saturation).
    for name, res in suite_results.items():
        series = fig3_series(res, denominator="activated")
        blocks.append(format_table(
            _series_rows(name, series),
            title=f"Fig. 3 — activated-fault denominator ({name})"))

    text = "\n".join(blocks)
    write_artifact(results_dir, "fig3.txt", text)
    print("\n" + text)


def test_fig3_series_computation_stage(benchmark, suite_results):
    """Time the coverage sweep over the cached detection data."""
    res = next(iter(suite_results.values()))
    series = benchmark(fig3_series, res)
    assert series[-1].prop_coverage >= series[-1].conv_coverage
