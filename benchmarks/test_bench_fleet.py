"""Benchmark + persistent perf baseline of the fleet aging engines.

Times the quick-profile fleet Monte Carlo workload (the exact workload
``repro bench --stage fleet`` replays: an uncached ``sta -> aging``
study at :data:`repro.experiments.fleet.BENCH_FLEET_DEVICES` devices)
per suite circuit, pins the vectorized block kernel bit-identical to the
per-device reference loop on a seeded 64-device slice, and extrapolates
the reference engine's full-population cost from that slice.  A second
benchmark runs the headline 10^5-device profile, where the vectorized
engine must hold a >= 20x advantage over the (extrapolated) scalar loop.
Results persist to ``BENCH_fleet.json`` at the repository root; the perf
smoke test in ``tests/test_perf_smoke.py`` guards the committed numbers.
"""

from __future__ import annotations

import json
import time

import numpy as np
from conftest import _PROFILE, BENCH_FLEET_FILE, write_artifact

from repro.aging.fleet import (
    sample_population,
    simulate_fleet_reference,
    simulate_fleet_vectorized,
)
from repro.circuits.library import suite_circuit
from repro.experiments.fleet import (
    BENCH_FLEET_DEVICES,
    bench_fleet_seconds,
    bench_fleet_spec,
)
from repro.netlist.circuit import GateKind

#: Quick-profile circuits (a subset of the detection bench suite).
QUICK_CIRCUITS = ("s9234", "s13207", "s35932")

#: Reference-loop slice sizes: the scalar engine is timed on a thin
#: device slice and extrapolated linearly — devices are independent, so
#: per-device cost is constant and the extrapolation exact in expectation.
_QUICK_SLICE = 64
_LARGE_DEVICES = 100_000
_LARGE_SLICE = 256
_LARGE_CIRCUIT = "s9234"

#: Floor on the headline profile's vectorized-vs-scalar advantage.
_LARGE_MIN_SPEEDUP = 20.0


def _assert_identical(name, a, b):
    """Bit-identical fleet results across engines (the hard requirement)."""
    assert np.array_equal(a.slack, b.slack), name
    assert np.array_equal(a.first_alert, b.first_alert), name
    assert np.array_equal(a.failure, b.failure), name
    assert a.clock_period == b.clock_period, name


def test_fleet_engine_benchmark(benchmark, results_dir):
    spec = bench_fleet_spec()
    records: dict[str, dict] = {}

    def run_all():
        for name in QUICK_CIRCUITS:
            circuit = suite_circuit(name)
            vec_s = bench_fleet_seconds(circuit, repeats=1)
            # Golden 64-device slice: parity pin + scalar extrapolation.
            pop = sample_population(circuit, spec, _QUICK_SLICE)
            vec_slice = simulate_fleet_vectorized(circuit, spec, pop)
            t0 = time.perf_counter()
            ref_slice = simulate_fleet_reference(circuit, spec, pop)
            ref_slice_s = time.perf_counter() - t0
            _assert_identical(name, vec_slice, ref_slice)
            ref_est = ref_slice_s * (BENCH_FLEET_DEVICES / _QUICK_SLICE)
            prev = records.get(name)
            if prev is not None and prev["total_s"] <= vec_s:
                prev["reference_est_s"] = min(prev["reference_est_s"],
                                              round(ref_est, 3))
                continue
            records[name] = {
                "gates": len(circuit.gates),
                "ffs": sum(1 for g in circuit.gates
                           if g.kind == GateKind.DFF),
                "devices": BENCH_FLEET_DEVICES,
                "checkpoints": len(spec.checkpoints),
                "total_s": round(vec_s, 4),
                "reference_slice_devices": _QUICK_SLICE,
                "reference_est_s": round(ref_est, 3),
            }
            if prev is not None:
                records[name]["reference_est_s"] = min(
                    prev["reference_est_s"],
                    records[name]["reference_est_s"])
        return records

    benchmark.pedantic(run_all, rounds=2, iterations=1)

    vec_total = sum(r["total_s"] for r in records.values())
    ref_total = sum(r["reference_est_s"] for r in records.values())
    assert vec_total < ref_total, (vec_total, ref_total)

    payload = {
        "profile": _PROFILE,
        "engine": "vectorized",
        "devices": BENCH_FLEET_DEVICES,
        "scenario": spec.fingerprint(),
        "circuits": records,
        "totals": {
            "vectorized_s": round(vec_total, 4),
            "reference_est_s": round(ref_total, 3),
            "speedup_vs_reference": round(ref_total / vec_total, 2),
        },
    }
    if BENCH_FLEET_FILE.exists():
        previous = json.loads(BENCH_FLEET_FILE.read_text())
        if "large_fleet" in previous:
            payload["large_fleet"] = previous["large_fleet"]
    BENCH_FLEET_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"{'circuit':>10} {'gates':>6} {'devices':>8} "
             f"{'vec [s]':>8} {'ref est [s]':>11}"]
    for name, r in records.items():
        lines.append(f"{name:>10} {r['gates']:>6} {r['devices']:>8} "
                     f"{r['total_s']:>8.3f} {r['reference_est_s']:>11.3f}")
    lines.append(f"{'total':>10} {'':>6} {'':>8} "
                 f"{vec_total:>8.3f} {ref_total:>11.3f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "bench_fleet.txt", text)
    print("\n" + text)


def test_fleet_large_population_benchmark(benchmark, results_dir):
    """The headline 10^5-device profile (tractable only vectorized).

    The scalar loop would need tens of minutes at this scale; it is
    measured on a parity-checked thin slice and extrapolated linearly.
    """
    spec = bench_fleet_spec()
    circuit = suite_circuit(_LARGE_CIRCUIT)
    population = sample_population(circuit, spec, _LARGE_DEVICES)
    measured: dict[str, float] = {}

    def run_vectorized():
        t0 = time.perf_counter()
        simulate_fleet_vectorized(circuit, spec, population)
        vec_s = time.perf_counter() - t0
        measured["vectorized_s"] = min(vec_s,
                                       measured.get("vectorized_s", vec_s))
        return measured

    benchmark.pedantic(run_vectorized, rounds=1, iterations=1)

    slice_pop = sample_population(circuit, spec, _LARGE_SLICE)
    vec_slice = simulate_fleet_vectorized(circuit, spec, slice_pop)
    t0 = time.perf_counter()
    ref_slice = simulate_fleet_reference(circuit, spec, slice_pop)
    ref_slice_s = time.perf_counter() - t0
    _assert_identical(f"{_LARGE_CIRCUIT}-slice", vec_slice, ref_slice)
    ref_est = ref_slice_s * (_LARGE_DEVICES / _LARGE_SLICE)

    vec_s = measured["vectorized_s"]
    speedup = ref_est / vec_s
    assert speedup >= _LARGE_MIN_SPEEDUP, (
        f"10^5-device profile no longer shows the vectorized engine "
        f">={_LARGE_MIN_SPEEDUP:.0f}x over the scalar loop: vectorized "
        f"{vec_s:.2f}s, reference est {ref_est:.1f}s")

    entry = {
        "name": _LARGE_CIRCUIT,
        "gates": len(circuit.gates),
        "devices": _LARGE_DEVICES,
        "checkpoints": len(spec.checkpoints),
        "vectorized_s": round(vec_s, 3),
        "reference_est_s": round(ref_est, 1),
        "reference_slice_devices": _LARGE_SLICE,
        "speedup_vs_reference": round(speedup, 1),
    }
    if BENCH_FLEET_FILE.exists():
        payload = json.loads(BENCH_FLEET_FILE.read_text())
        payload["large_fleet"] = entry
        BENCH_FLEET_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    text = "\n".join(f"{k:>24}: {v}" for k, v in entry.items())
    write_artifact(results_dir, "bench_fleet_large.txt", text)
    print("\n" + text)
