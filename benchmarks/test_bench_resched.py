"""Benchmark + persistent perf baseline of the rescheduling engine.

Replays the committed alert-burst workload (single-gate alerts on a
dense lifetime checkpoint grid, restricted to fault-carrying gates) on
every suite circuit with both ``resched`` engines — the warm-started
incremental re-solve racing the cold full recompute — asserts the two
stay cost-equal at every alert, and persists the machine-readable
latency/speedup trajectory to ``BENCH_resched.json`` at the repository
root (see EXPERIMENTS.md).  The perf smoke test in
``tests/test_perf_smoke.py`` guards the committed numbers: quick-profile
single-alert re-solves must stay under 100 ms median and the burst
replay at least 5x faster than the cold pipeline.
"""

from __future__ import annotations

import json

from conftest import _PROFILE, BENCH_RESCHED_FILE, write_artifact

from repro.experiments.resched import (
    ALERT_CHECKPOINTS,
    ALERT_THRESHOLD_PS,
    DEFAULT_SPEC,
    aggregate_totals,
    replay_record,
    replay_result,
)

#: The interactive-re-solve targets the quick-profile baseline must hold.
MAX_MEDIAN_MS = 100.0
MIN_SPEEDUP = 5.0


def test_resched_replay_benchmark(benchmark, suite_results, results_dir):
    best: dict[str, object] = {}

    def run_all():
        for name, res in suite_results.items():
            replay = replay_result(res)
            assert replay.cost_equal, (
                f"incremental schedule diverged from cold on {name}")
            prev = best.get(name)
            if prev is None:
                best[name] = replay
                continue
            # Best-of-rounds noise damping, per side: keep the faster
            # incremental round and the faster cold round independently
            # (the conservative pairing — it can only shrink the ratio).
            winner = replay if replay.total_s < prev.total_s else prev
            other = prev if winner is replay else replay
            if other.cold_total_s < winner.cold_total_s:
                winner.cold_s = other.cold_s
            winner.cost_equal = prev.cost_equal and replay.cost_equal
            best[name] = winner
        return best

    benchmark.pedantic(run_all, rounds=2, iterations=1)

    records = {name: replay_record(best[name], suite_results[name])
               for name in best}
    totals = aggregate_totals(best.values())
    assert totals["cost_equal"] is True

    payload = {
        "profile": _PROFILE,
        "engine": "incremental",
        "workload": {
            "checkpoints": len(ALERT_CHECKPOINTS),
            "max_gates": 1,
            "threshold_ps": ALERT_THRESHOLD_PS,
            "gate_seed": DEFAULT_SPEC.gate_seed,
            "seed": DEFAULT_SPEC.seed,
        },
        "circuits": records,
        "totals": totals,
    }
    BENCH_RESCHED_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    if _PROFILE == "quick":
        # The headline interactive-rescheduling claims, asserted on the
        # profile the committed baseline and the perf guard replay.
        assert totals["median_ms"] < MAX_MEDIAN_MS, totals
        assert totals["speedup"] >= MIN_SPEEDUP, totals

    lines = [f"{'circuit':>10} {'alerts':>6} {'med [ms]':>9} "
             f"{'max [ms]':>9} {'inc [s]':>8} {'cold [s]':>9} {'x':>6}"]
    for name, r in records.items():
        lines.append(f"{name:>10} {r['alerts']:>6} {r['median_ms']:>9.2f} "
                     f"{r['max_ms']:>9.2f} {r['total_s']:>8.3f} "
                     f"{r['cold_total_s']:>9.3f} {r['speedup']:>6.2f}")
    lines.append(f"{'total':>10} {totals['alerts']:>6} "
                 f"{totals['median_ms']:>9.2f} {totals['max_ms']:>9.2f} "
                 f"{totals['incremental_s']:>8.3f} "
                 f"{totals['cold_s']:>9.3f} {totals['speedup']:>6.2f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "bench_resched.txt", text)
    print("\n" + text)
