"""Ablation benchmark: netlist structure vs. monitor gain (resynthesis).

Functionally identical variants of one suite circuit (original /
2-input-decomposed / fanout-buffered) replayed through the flow; the
Table-I columns differ only because the path-delay population differs.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.reporting import format_table
from repro.experiments.resynthesis import resynthesis_comparison


def test_resynthesis_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: resynthesis_comparison("s13207", scale=0.5, pattern_cap=14),
        rounds=1, iterations=1)

    cols = ["variant", "gates", "depth", "clk_ps", "conv", "prop",
            "gain_percent", "targets"]
    text = format_table(rows, columns=cols,
                        title="Ablation — resynthesis variants of one "
                              "function")
    write_artifact(results_dir, "ablation_resynthesis.txt", text)
    print("\n" + text)

    original, decomposed, buffered = rows
    assert decomposed["depth"] >= original["depth"]
    for r in rows:
        assert r["prop"] >= r["conv"]
