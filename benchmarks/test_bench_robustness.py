"""Extension benchmark: schedule robustness under process variation.

Quantifies the paper's midpoint rationale (Sec. IV-A): nominal-corner
schedules are replayed on perturbed corners; midpoint schedules must
degrade gracefully and never lag the edge-point policy.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.reporting import format_table
from repro.experiments.robustness import mean_coverage, robustness_study


def test_robustness_regenerate(benchmark, suite_results, results_dir):
    res = next(iter(suite_results.values()))

    points = benchmark.pedantic(
        lambda: robustness_study(res, corner_seeds=[1, 2, 3],
                                 sigma_fraction=0.08, max_targets=40),
        rounds=1, iterations=1)

    rows = [
        {
            "corner_seed": p.corner_seed,
            "policy": p.policy,
            "detected": p.detected,
            "targets": p.targets,
            "coverage_%": round(100 * p.coverage, 1),
        }
        for p in points
    ]
    mid = mean_coverage(points, "mid")
    lo = mean_coverage(points, "lo")
    rows.append({"corner_seed": "mean", "policy": "mid",
                 "detected": "", "targets": "",
                 "coverage_%": round(100 * mid, 1)})
    rows.append({"corner_seed": "mean", "policy": "lo",
                 "detected": "", "targets": "",
                 "coverage_%": round(100 * lo, 1)})
    text = format_table(rows, title="Robustness — nominal schedule replayed "
                                    "on process corners (σ = 8 %)")
    write_artifact(results_dir, "robustness.txt", text)
    print("\n" + text)

    assert mid >= lo - 0.10       # midpoints never clearly worse
    assert mid > 0.6              # graceful degradation, not collapse
