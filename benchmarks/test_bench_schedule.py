"""Benchmark + persistent perf baseline of the schedule optimizer.

Re-runs the schedule-optimization stage (conv / heur / prop plus two
relaxed-coverage schedules) of every suite circuit with both pipelines —
the bitset pipeline (vectorized discretization, set-cover presolve,
memoized candidates) and the retained seed reference
(:mod:`repro.scheduling.reference`) — checks they select identical period
sets, fault assignments and schedule cardinalities, and persists the
machine-readable timing trajectory to ``BENCH_schedule.json`` at the
repository root (see EXPERIMENTS.md).  The perf smoke test in
``tests/test_perf_smoke.py`` guards against regressions relative to that
committed baseline.
"""

from __future__ import annotations

import json
import math
import time

from conftest import _PROFILE, BENCH_SCHEDULE_FILE, write_artifact

from repro.core.engines import ENGINES
from repro.scheduling.baselines import conventional_targets
from repro.scheduling.reference import optimize_schedule_reference
from repro.utils.profiling import StageTimer

#: Schedule-stage wall clock of the seed (frozenset) scheduler, measured
#: from the retained reference pipeline with the same quick-profile
#: workload and machine as below at the PR-1 commit.  Kept verbatim (and
#: carried over from any existing baseline file) so the before/after
#: trajectory survives regeneration.
_SEED_BASELINE = {
    "commit": "2cbbb7d",
    "profile": "quick",
    "pipeline": "seed frozenset scheduler (pre-bitset)",
    "schedule_seconds": {
        "s9234": 0.145,
        "s13207": 0.503,
        "s35932": 0.365,
        "p89k": 0.556,
    },
    "total_s": 1.569,
}

#: Relaxed-coverage targets included in the benchmark workload (kept small
#: so the quick profile stays CI-sized).
_COVERAGES = (0.95, 0.90)


def _workload(res):
    """The schedule calls one flow run performs, as an explicit list."""
    cls_ = res.classification
    jobs = [
        ("conv", conventional_targets(cls_), None, "ilp", 1.0),
        ("heur", cls_.target, res.configs, "greedy", 1.0),
        ("prop", cls_.target, res.configs, "ilp", 1.0),
    ]
    for cov in _COVERAGES:
        jobs.append((f"cov{cov:.2f}", cls_.target, res.configs, "ilp", cov))
    return jobs


def _clear_schedule_caches(data):
    """Drop the memoized ranges/candidates so every round measures a cold
    bitset pipeline (the reference never populates these)."""
    data._sched_cache.clear()
    data._det_range.clear()


def _run_bitset(res, timer=None):
    fn = ENGINES.resolve("schedule", "bitset").fn
    _clear_schedule_caches(res.data)
    out = {}
    t0 = time.perf_counter()
    for label, targets, configs, solver, cov in _workload(res):
        out[label] = fn(res.data, targets, res.clock, configs, solver=solver,
                        coverage=cov, timer=timer)
    return out, time.perf_counter() - t0


def _run_reference(res):
    out = {}
    t0 = time.perf_counter()
    for label, targets, configs, solver, cov in _workload(res):
        out[label] = optimize_schedule_reference(
            res.data, targets, res.clock, configs, solver=solver,
            coverage=cov)
    return out, time.perf_counter() - t0


def _assert_equivalent(name, new, ref):
    """Solution-quality invariants across pipelines.

    The greedy pipeline is deterministic, so its schedules must be
    identical.  The exact ILP can return any minimum-cardinality cover —
    presolve changes which optimum HiGHS lands on — so for ILP schedules
    the invariants are: identical candidate sets, identical step-1
    cardinality (both solvers are exact), identical covered fault sets at
    full coverage, and equally-sized covered sets under relaxed coverage.
    Exact period/entry equality on tie-free small circuits is pinned by
    tests/test_schedule_golden.py.
    """
    for label, r in ref.items():
        n = new[label]
        assert n.num_candidates == r.num_candidates, (name, label)
        assert n.num_frequencies == r.num_frequencies, (name, label)
        if label == "heur":
            assert n.periods == r.periods, (name, label)
            assert n.entries == r.entries, (name, label)
            assert n.per_period_faults == r.per_period_faults, (name, label)
        elif label in ("conv", "prop"):
            assert n.covered == r.covered, (name, label)
        else:
            # Relaxed coverage: any minimum-frequency selection reaching
            # the required count is optimal; the attained coverage beyond
            # the requirement may legitimately differ between optima.
            # prop (full coverage, same targets/configs) covers the whole
            # schedulable universe, so it yields the reference count.
            cov = float(label.removeprefix("cov"))
            required = math.ceil(cov * len(ref["prop"].covered) - 1e-9)
            assert len(n.covered) >= required, (name, label)
            assert len(r.covered) >= required, (name, label)


def test_schedule_pipeline_benchmark(benchmark, suite_results, results_dir):
    records: dict[str, dict] = {}

    def run_all():
        for name, res in suite_results.items():
            timer = StageTimer()
            new_scheds, new_s = _run_bitset(res, timer=timer)
            ref_scheds, ref_s = _run_reference(res)
            _assert_equivalent(name, new_scheds, ref_scheds)
            prev = records.get(name)
            if prev is not None and prev["total_s"] <= new_s:
                # Keep the best round per circuit (standard noise damping).
                prev["reference_total_s"] = min(prev["reference_total_s"],
                                                round(ref_s, 4))
                continue
            records[name] = {
                "gates": len(res.circuit.gates),
                "faults": len(res.data.faults),
                "targets": len(res.classification.target),
                "candidates": new_scheds["prop"].num_candidates,
                "schedules": len(_workload(res)),
                "stages": timer.as_dict(),
                "total_s": round(new_s, 4),
                "reference_total_s": round(ref_s, 4),
            }
            if prev is not None:
                records[name]["reference_total_s"] = min(
                    prev["reference_total_s"],
                    records[name]["reference_total_s"])
        return records

    benchmark.pedantic(run_all, rounds=2, iterations=1)

    new_total = sum(r["total_s"] for r in records.values())
    ref_total = sum(r["reference_total_s"] for r in records.values())
    # The bitset pipeline must clearly beat the in-repo reference; the
    # stronger >=3x target is tracked against the persisted seed baseline.
    assert new_total < ref_total, (new_total, ref_total)

    seed_baseline = _SEED_BASELINE
    if BENCH_SCHEDULE_FILE.exists():
        previous = json.loads(BENCH_SCHEDULE_FILE.read_text())
        seed_baseline = previous.get("seed_baseline", seed_baseline)

    payload = {
        "profile": _PROFILE,
        "pipeline": "bitset",
        "circuits": records,
        "totals": {
            "bitset_s": round(new_total, 4),
            "reference_s": round(ref_total, 4),
            "speedup_vs_reference": round(ref_total / new_total, 2),
        },
        "seed_baseline": seed_baseline,
    }
    if (_PROFILE == seed_baseline.get("profile")
            and seed_baseline.get("total_s")):
        payload["totals"]["speedup_vs_seed"] = round(
            seed_baseline["total_s"] / new_total, 2)
    BENCH_SCHEDULE_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"{'circuit':>10} {'faults':>7} {'cands':>6} "
             f"{'new [s]':>8} {'ref [s]':>8}"]
    for name, r in records.items():
        lines.append(f"{name:>10} {r['faults']:>7} {r['candidates']:>6} "
                     f"{r['total_s']:>8.3f} {r['reference_total_s']:>8.3f}")
    lines.append(f"{'total':>10} {'':>7} {'':>6} "
                 f"{new_total:>8.3f} {ref_total:>8.3f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "bench_schedule.txt", text)
    print("\n" + text)
