"""Benchmark + persistent perf baseline of the job-service replay path.

Two numbers back ``BENCH_service.json``:

* **Cold execution** — the committed flow job document run through the
  unified facade (:func:`repro.service.orchestrator.run_job`) against a
  fresh stage store: every pipeline stage computes and is persisted.
* **Replay latency** — the same document resubmitted ``REPEATS`` times
  against the now-warm store: every stage hits, so the wall clock is
  pure orchestration + store traffic.  This is the path a repeat
  ``repro submit`` (or a second service client asking for an identical
  job) pays, and the issue's acceptance bound pins its median under
  ``MAX_HIT_MEDIAN_MS``.

The replayed results are asserted bit-identical to the cold run — the
speedup is a cache property, not an approximation.  Results persist to
``BENCH_service.json`` at the repository root; the perf smoke test in
``tests/test_perf_smoke.py`` guards the committed numbers and
``repro bench --stage service`` re-measures them.
"""

from __future__ import annotations

import json
import tempfile
import time
from statistics import median

from conftest import _PROFILE, BENCH_SERVICE_FILE, write_artifact

from repro.core.spec import job_from_dict
from repro.experiments.artifact_cache import StageCache
from repro.service.orchestrator import run_job

#: The committed workload: the full flow (schedules included) on the
#: embedded s27 circuit — small enough for CI, deep enough to exercise
#: every pipeline stage and both result tables.
JOB_DOCUMENT = {"kind": "flow", "circuit": "s27", "with_schedules": True}

#: Warm-store resubmissions measured for the latency distribution.
REPEATS = 15

#: The issue's acceptance bound on the replay path.
MAX_HIT_MEDIAN_MS = 50.0


def test_service_replay_benchmark(benchmark, results_dir):
    job = job_from_dict(JOB_DOCUMENT)
    measured: dict = {}

    def run_workload():
        with tempfile.TemporaryDirectory() as td:
            store = StageCache(td)
            t0 = time.perf_counter()
            cold = run_job(job, store=store)
            cold_s = time.perf_counter() - t0
            assert cold.cache == "miss"
            latencies = []
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                replay = run_job(job, store=store)
                latencies.append(1000.0 * (time.perf_counter() - t0))
                assert replay.cache == "hit"
                assert replay.payload["table1"] == cold.payload["table1"]
                assert replay.payload["table2"] == cold.payload["table2"]
        if cold_s < measured.get("cold_s", float("inf")):
            measured["cold_s"] = cold_s
            measured["latencies"] = latencies
        return measured

    benchmark.pedantic(run_workload, rounds=1, iterations=1)

    latencies = sorted(measured["latencies"])
    hit_median_ms = median(latencies)
    assert hit_median_ms < MAX_HIT_MEDIAN_MS, (
        f"warm-store replay no longer interactive: median "
        f"{hit_median_ms:.2f} ms >= {MAX_HIT_MEDIAN_MS} ms "
        f"({latencies})")

    payload = {
        "profile": _PROFILE,
        "job": JOB_DOCUMENT,
        "fingerprint": job.fingerprint(),
        "repeats": REPEATS,
        "cold_s": round(measured["cold_s"], 4),
        "hit_median_ms": round(hit_median_ms, 3),
        "hit_max_ms": round(latencies[-1], 3),
        "speedup_vs_cold": round(
            1000.0 * measured["cold_s"] / hit_median_ms, 1),
    }
    BENCH_SERVICE_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    text = "\n".join(f"{k:>16}: {v}" for k, v in payload.items()
                     if k != "job")
    write_artifact(results_dir, "bench_service.txt", text)
    print("\n" + text)
