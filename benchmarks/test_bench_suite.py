"""Benchmark + persistent perf baseline of the sharded suite runner.

Three measurements back ``BENCH_suite.json``:

* **Scaling curve** — the stage-unit scheduler drains a 120-circuit
  synthetic matrix (720 work units) at workers ∈ {1, 2, 4, 8}.  The
  units carry *modeled* durations (``timed_plan``: each unit sleeps for
  its cost) so the curve measures the scheduler itself — claim traffic,
  readiness probes, DAG packing — independent of the recording host's
  core count; CI machines with 1-2 cores would otherwise make any
  CPU-bound multi-worker number meaningless.  ``host_cpus`` is recorded
  alongside so readers can judge the real-flow numbers in context.
* **Granularity ablation** — the same heterogeneous matrix (40 small
  circuits plus one straggler *dispatched last*, mimicking the legacy
  whole-circuit ``pool.imap`` order) drained at circuit granularity vs
  stage granularity with LPT priority.  Stage units + LPT start the
  straggler first and overlap it with the small circuits, shrinking the
  tail.
* **Real-flow smoke** — a 12-circuit synthetic matrix executed as real
  flows, serial in-process vs sharded at 1 and 2 workers on fresh
  stores, with sharded results pinned equal to serial.

Results persist to ``BENCH_suite.json`` at the repository root; the perf
smoke test in ``tests/test_perf_smoke.py`` guards the committed numbers
and ``repro bench --stage suite`` re-measures the smoke matrix.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid

from conftest import _PROFILE, BENCH_SUITE_FILE, write_artifact

from repro.circuits.library import suite_entry
from repro.experiments.artifact_cache import StageCache
from repro.experiments.runner import SuiteRunConfig, suite_flow
from repro.experiments.shard import (
    STAGE_COST_WEIGHTS,
    TimedStage,
    run_plan,
    run_suite_sharded,
    suite_timed_specs,
    timed_plan,
)

#: Worker counts of the committed scaling curve.
SCALING_WORKERS = (1, 2, 4, 8)

#: Synthetic matrix size behind the timed scaling curve (x6 stages each).
MATRIX_CIRCUITS = 120

#: Serial wall-clock the timed matrix is normalized to (seconds).  Large
#: enough that per-unit scheduler overhead (claim + stat traffic) stays
#: a small fraction of a unit's cost; small enough for CI.
TARGET_SERIAL_S = 12.0

#: Real-flow smoke matrix: 12 synthetic circuits at half scale.
SMOKE_CIRCUITS = 12
SMOKE_SCALE = 0.5

#: Committed-curve floor asserted here and in the perf smoke test.
MIN_SPEEDUP_8W = 3.0
#: Ablation floor: stage granularity + LPT must beat circuit units in
#: legacy dispatch order by at least this factor on the straggler tail.
MIN_TAIL_SPEEDUP = 1.2


def _merge_baseline(section: str, payload: dict) -> dict:
    """Read-modify-write one section of ``BENCH_suite.json``."""
    doc: dict = {"profile": _PROFILE,
                 "host_cpus": os.cpu_count() or 1}
    if BENCH_SUITE_FILE.exists():
        doc.update(json.loads(BENCH_SUITE_FILE.read_text()))
    doc["profile"] = _PROFILE
    doc["host_cpus"] = os.cpu_count() or 1
    doc[section] = payload
    BENCH_SUITE_FILE.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def _drain_timed(specs, workers: int, **plan_kw) -> float:
    """Wall clock of one cold timed drain on a throwaway store."""
    plan = timed_plan(specs, nonce=uuid.uuid4().hex, **plan_kw)
    with tempfile.TemporaryDirectory() as td:
        t0 = time.perf_counter()
        run_plan(plan, workers=workers, store=StageCache(td))
        return time.perf_counter() - t0


def test_suite_scaling_benchmark(benchmark, results_dir):
    specs = suite_timed_specs(MATRIX_CIRCUITS, serial_s=TARGET_SERIAL_S)
    walls: dict[str, float] = {}

    def run_curve():
        for w in SCALING_WORKERS:
            wall = _drain_timed(specs, w)
            key = str(w)
            walls[key] = min(wall, walls.get(key, wall))
        return walls

    benchmark.pedantic(run_curve, rounds=1, iterations=1)

    speedups = {w: round(walls["1"] / walls[w], 2) for w in walls}
    assert speedups[str(SCALING_WORKERS[-1])] >= MIN_SPEEDUP_8W, (
        f"stage-unit scheduler no longer scales: "
        f"{SCALING_WORKERS[-1]} workers only "
        f"{speedups[str(SCALING_WORKERS[-1])]}x over serial ({walls})")

    payload = {
        "payload": "timed",
        "matrix": {"circuits": MATRIX_CIRCUITS,
                   "units": len(specs),
                   "serial_target_s": TARGET_SERIAL_S},
        "workers": {w: round(s, 3) for w, s in walls.items()},
        "speedups": speedups,
    }
    _merge_baseline("scaling", payload)

    lines = [f"{'workers':>8} {'wall [s]':>9} {'speedup':>8}"]
    for w in SCALING_WORKERS:
        lines.append(f"{w:>8} {walls[str(w)]:>9.3f} "
                     f"{speedups[str(w)]:>8.2f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "bench_suite.txt", text)
    print("\n" + text)


def test_suite_granularity_ablation(benchmark, results_dir):
    """Stage units + LPT vs whole-circuit units in legacy dispatch order.

    40 small circuits plus one straggler appended *last* — the shape
    that makes ``pool.imap`` over circuits pay the full straggler cost
    as tail latency after the pool has drained.
    """
    small = [TimedStage(f"c{i:02d}", stage, 4.0 / (40 * 6))
             for i in range(40)
             for stage in STAGE_COST_WEIGHTS]
    straggler = [TimedStage("straggler", stage, 0.8 * w)
                 for stage, w in STAGE_COST_WEIGHTS.items()]
    specs = small + straggler
    workers = SCALING_WORKERS[-1]
    walls: dict[str, float] = {}

    def run_ablation():
        circ = _drain_timed(specs, workers,
                            granularity="circuit", order="given")
        stage = _drain_timed(specs, workers)
        walls["circuit_granularity_s"] = min(
            circ, walls.get("circuit_granularity_s", circ))
        walls["stage_granularity_s"] = min(
            stage, walls.get("stage_granularity_s", stage))
        return walls

    benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    tail_speedup = (walls["circuit_granularity_s"]
                    / walls["stage_granularity_s"])
    assert tail_speedup >= MIN_TAIL_SPEEDUP, (
        f"stage granularity + LPT no longer beats whole-circuit "
        f"dispatch on the straggler tail: {walls}")

    payload = {
        "payload": "timed",
        "workers": workers,
        "matrix": {"circuits": 41, "straggler_s": 0.8,
                   "small_total_s": 4.0},
        "circuit_granularity_s": round(walls["circuit_granularity_s"], 3),
        "stage_granularity_s": round(walls["stage_granularity_s"], 3),
        "tail_speedup": round(tail_speedup, 2),
    }
    _merge_baseline("ablation", payload)
    text = "\n".join(f"{k:>24}: {v}" for k, v in payload.items()
                     if not isinstance(v, dict))
    write_artifact(results_dir, "bench_suite_ablation.txt", text)
    print("\n" + text)


def _result_signature(res) -> tuple:
    cls_ = res.classification
    return (
        len(res.test_set),
        res.clock.t_nom,
        cls_.num_faults,
        tuple(sorted(cls_.target)),
        tuple(sorted(cls_.at_speed)),
        tuple(sorted(cls_.monitor_at_speed)),
        tuple(sorted(cls_.timing_redundant)),
        tuple(sorted(res.schedules)),
    )


def test_suite_real_smoke(benchmark, results_dir):
    """Real flows: serial in-process vs sharded on fresh stores."""
    cfg = SuiteRunConfig.synth(SMOKE_CIRCUITS, scale=SMOKE_SCALE)
    caps = {name: suite_entry(name).pattern_budget(scale=cfg.scale)
            for name in cfg.names}
    measured: dict = {}

    def run_smoke():
        t0 = time.perf_counter()
        serial = {name: suite_flow(name, cfg, caps[name], 1).run(
                      with_schedules=cfg.with_schedules, cache=None)
                  for name in cfg.names}
        serial_s = time.perf_counter() - t0
        sharded: dict[str, float] = {}
        parity = True
        for w in (1, 2):
            with tempfile.TemporaryDirectory() as td:
                report = run_suite_sharded(cfg, workers=w,
                                           store=StageCache(td))
            sharded[str(w)] = report.wall_s
            parity = parity and all(
                _result_signature(report.results[name])
                == _result_signature(serial[name])
                for name in cfg.names)
        measured.update({"serial_inprocess_s": serial_s,
                         "workers": sharded, "parity": parity})
        return measured

    benchmark.pedantic(run_smoke, rounds=1, iterations=1)

    assert measured["parity"], \
        "sharded smoke results diverged from the serial in-process flows"

    payload = {
        "payload": "real",
        "circuits": SMOKE_CIRCUITS,
        "scale": SMOKE_SCALE,
        "names": list(cfg.names),
        "serial_inprocess_s": round(measured["serial_inprocess_s"], 3),
        "workers": {w: round(s, 3)
                    for w, s in measured["workers"].items()},
        "parity": measured["parity"],
    }
    _merge_baseline("smoke", payload)
    text = "\n".join(f"{k:>20}: {v}" for k, v in payload.items()
                     if k != "names")
    write_artifact(results_dir, "bench_suite_smoke.txt", text)
    print("\n" + text)
