"""Benchmark + regeneration of Table I (HDF coverage with monitors).

The expensive stage behind Table I is the timing-accurate fault simulation
and classification; the benchmark re-runs exactly that stage (detection +
classification) on one suite circuit with the cached ATPG patterns, then
the regeneration check rebuilds every row and asserts the paper's shape:
monitor reuse never loses coverage and gains substantially on
short-path-rich circuits.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.reporting import compare_table1, format_table
from repro.faults.classify import classify_faults
from repro.faults.detection import compute_detection_data


def test_table1_regenerate(benchmark, suite_results, results_dir):
    rows = benchmark(lambda: [res.table1_row()
                              for res in suite_results.values()])
    text = format_table(rows, title="Table I — circuit statistics and "
                                    "targeted hidden delay faults")
    cmp_text = format_table(compare_table1(rows),
                            title="Table I — paper vs measured gain")
    write_artifact(results_dir, "table1.txt", text + "\n" + cmp_text)
    print("\n" + text)
    print(cmp_text)

    for row in rows:
        assert row["prop"] >= row["conv"], row["circuit"]
        assert row["gain_percent"] >= 0.0
        assert row["targets"] > 0
    # At least one circuit must show a pronounced monitor gain, as in the
    # paper (up to +190.8 %).
    assert max(row["gain_percent"] for row in rows) > 10.0


def test_table1_fault_simulation_stage(benchmark, suite_results):
    """Time the detection-range simulation for one circuit."""
    res = next(iter(suite_results.values()))
    faults = res.data.faults[: min(len(res.data.faults), 150)]
    patterns = res.test_set.subset(range(min(8, len(res.test_set))))

    def stage():
        data = compute_detection_data(
            res.circuit, faults, patterns, horizon=res.clock.t_nom,
            monitored_gates=res.placement.monitored_gates)
        return classify_faults(data, res.clock, res.configs)

    cls = benchmark.pedantic(stage, rounds=2, iterations=1)
    assert cls.prop_detected
