"""Benchmark + regeneration of Table II (frequency and test-time reduction).

The stage behind Table II is the two-step schedule optimization; the
benchmark times the full ILP pipeline (discretization + both covering
steps) against the cached detection data, and the regeneration check
asserts the paper's shape: ILP ≤ heuristic on frequency counts and 50-99 %
test-time reduction.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.reporting import compare_table2, format_table
from repro.scheduling.baselines import proposed_schedule


def test_table2_regenerate(benchmark, suite_results, results_dir):
    rows = benchmark(lambda: [res.table2_row()
                              for res in suite_results.values()])
    text = format_table(rows, title="Table II — selected test frequencies "
                                    "and test time in comparison")
    cmp_text = format_table(compare_table2(rows),
                            title="Table II — paper vs measured shape")
    write_artifact(results_dir, "table2.txt", text + "\n" + cmp_text)
    print("\n" + text)
    print(cmp_text)

    for row in rows:
        assert row["freq_prop"] <= row["freq_heur"], row["circuit"]
        assert row["pc_opti"] < row["pc_orig"]
        assert row["pc_reduction_percent"] > 50.0


def test_table2_ilp_scheduling_stage(benchmark, suite_results):
    """Time the two-step ILP schedule optimization for one circuit."""
    res = max(suite_results.values(),
              key=lambda r: len(r.classification.target))

    def stage():
        return proposed_schedule(res.data, res.classification, res.clock,
                                 res.configs)

    sched = benchmark.pedantic(stage, rounds=3, iterations=1)
    assert sched.covered == sched.targets
