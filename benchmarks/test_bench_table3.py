"""Benchmark + regeneration of Table III (relaxed coverage targets).

Regenerates, per circuit and coverage target cov ∈ {99, 98, 95, 90} %, the
required frequency count |F_cov|, the naïve pattern-config volume |PC_cov|,
the optimized schedule |S_cov| and the reduction Δ% — and asserts the
paper's monotonicity: lower targets need fewer frequencies and smaller
schedules.  The benchmark times the partial-coverage ILP, which carries
the extra indicator variables of Sec. IV-C's relaxation.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.reporting import format_table
from repro.scheduling.baselines import proposed_schedule


def test_table3_regenerate(benchmark, suite_results, results_dir):
    rows = benchmark(lambda: [res.table3_row()
                              for res in suite_results.values()])
    text = format_table(rows, title="Table III — test time reduction at "
                                    "relaxed HDF coverage targets")
    write_artifact(results_dir, "table3.txt", text)
    print("\n" + text)

    for row in rows:
        assert row["F_90"] <= row["F_95"] <= row["F_98"] <= row["F_99"]
        # Schedule size is only *approximately* monotone in the coverage
        # target: squeezing the same faults into fewer frequencies can cost
        # a couple of extra pattern-config entries.  The trend must hold.
        assert row["S_90"] <= row["S_99"] + 2
        for tag in ("99", "98", "95", "90"):
            assert row[f"S_{tag}"] <= row[f"PC_{tag}"]

    # Paper shape: at cov = 99 % the frequency count drops clearly below
    # the full-coverage requirement for most circuits.
    fulls = [res.schedules["prop"].num_frequencies
             for res in suite_results.values()]
    relaxed = [row["F_99"] for row in rows]
    assert sum(r <= f for r, f in zip(relaxed, fulls)) == len(rows)


def test_table3_partial_cover_ilp_stage(benchmark, suite_results):
    """Time the partial-coverage ILP (cov = 95 %) for one circuit."""
    res = max(suite_results.values(),
              key=lambda r: len(r.classification.target))

    def stage():
        return proposed_schedule(res.data, res.classification, res.clock,
                                 res.configs, coverage=0.95)

    sched = benchmark.pedantic(stage, rounds=3, iterations=1)
    assert sched.coverage >= 0.95 - 1e-9
