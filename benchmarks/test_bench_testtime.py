"""Benchmark: hardware test-time accounting (scan cycles + PLL re-locks).

Converts the abstract schedule sizes of Table II into scan cycles using
the scan-chain model, making the paper's "test time reduction" claim
concrete in tester units: the naïve schedule applies every pattern under
every configuration at every selected frequency; the optimized schedule
applies only the covering set.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.reporting import format_table
from repro.netlist.scan import naive_test_cycles, plan_scan_chains, schedule_test_cycles


def test_testtime_accounting(benchmark, suite_results, results_dir):
    def account():
        rows = []
        for name, res in suite_results.items():
            prop = res.schedules["prop"]
            plan = plan_scan_chains(res.circuit, n_chains=4)
            n_p = len(res.test_set)
            n_c = len(res.configs)
            naive = naive_test_cycles(prop, plan, n_p, n_c)
            opt = schedule_test_cycles(prop, plan)
            relock = naive_test_cycles(prop, plan, 0, 0)  # relock term only
            pattern_saved = 100 * (1 - (opt - relock) / (naive - relock))
            rows.append({
                "circuit": name,
                "chains": plan.n_chains,
                "cycles_per_pattern": plan.cycles_per_pattern,
                "naive_cycles": int(naive),
                "optimized_cycles": int(opt),
                "saved_total_%": round(100 * (1 - opt / naive), 1),
                "saved_patterns_%": round(pattern_saved, 1),
            })
        return rows

    rows = benchmark(account)
    text = format_table(rows, title="Test time in scan cycles "
                                    "(4 chains, PLL re-lock = 2000 cycles)")
    write_artifact(results_dir, "testtime.txt", text)
    print("\n" + text)

    # Both schedules pay the same per-frequency re-lock tax; the covering
    # optimization attacks the pattern-application term (Table II's Δ%PC).
    for row in rows:
        assert row["optimized_cycles"] < row["naive_cycles"]
        assert row["saved_patterns_%"] > 50.0
