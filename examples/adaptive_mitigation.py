#!/usr/bin/env python3
"""Closed-loop aging mitigation: alerts drive frequency/voltage scaling.

The paper motivates programmable monitors with exactly this loop
(Sec. II-B): the wide delay element raises the first alert, the system
scales frequency/voltage to slow degradation, and the monitor switches to
a smaller element to keep tracking the shrinking margin.  This example
runs the same device with and without the controller and reports the
achieved lifetime extension.

Run:  python examples/adaptive_mitigation.py
"""

from repro.aging import (
    AdaptiveLifetimeSimulator,
    AgingScenario,
    LifetimeSimulator,
    MitigationPolicy,
)
from repro.circuits import embedded_circuit
from repro.monitors import MonitorConfigSet, insert_monitors
from repro.timing import ClockSpec, run_sta

TIMES = [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128]


def main() -> None:
    circuit = embedded_circuit("s27")
    sta = run_sta(circuit)
    clock = ClockSpec(1.15 * sta.critical_path)
    configs = MonitorConfigSet.paper_default(clock.t_nom)
    placement = insert_monitors(circuit, sta, configs, fraction=1.0)
    scenario = AgingScenario(seed=2)

    print(f"Device {circuit.name}: nominal period {clock.t_nom:.1f} ps, "
          f"{placement.count} monitors")

    passive = LifetimeSimulator(circuit, clock, placement,
                                scenario=scenario, workload_patterns=12,
                                seed=3).run(TIMES)
    print(f"\nWithout mitigation: failure at t = {passive.failure_time}")

    policy = MitigationPolicy(clock_stretch=1.08, stress_derate=0.5,
                              max_actions=3)
    adaptive = AdaptiveLifetimeSimulator(
        circuit, clock, placement, scenario=scenario, policy=policy,
        workload_patterns=12, seed=3).run(TIMES)

    print(f"With mitigation (stretch {policy.clock_stretch}x, "
          f"derate {policy.stress_derate}, "
          f"max {policy.max_actions} actions):")
    print(f"{'t':>7} {'period':>9} {'cpl':>9} {'slack':>8} "
          f"{'cfg':>4} {'alert':>6} {'actions':>8}")
    for p in adaptive.points:
        print(f"{p.t:7.2f} {p.period:9.1f} {p.critical_path:9.1f} "
              f"{p.slack:8.1f} {p.config:>4} {str(p.alert):>6} "
              f"{p.actions_taken:>8}{'   ** FAILED **' if p.failed else ''}")
    print(f"\nAdaptive failure time: {adaptive.failure_time} "
          f"(passive: {passive.failure_time})")
    if passive.failure_time and adaptive.failure_time:
        print(f"Lifetime extension: "
              f"{adaptive.failure_time / passive.failure_time:.1f}x")
    elif passive.failure_time and adaptive.failure_time is None:
        print("Device survived the whole simulated horizon with mitigation.")


if __name__ == "__main__":
    main()
