#!/usr/bin/env python3
"""Wear-out and early-life failure prediction with programmable monitors.

Simulates two devices through their lifetime (Fig. 2 b/c of the paper):

* a *healthy* device that degrades through BTI/HCI/EM wear-out,
* a *marginal* device with latent 6σ defects that magnify early.

Programmable delay monitors watch both; the guard-band staircase (wide
delay element first, narrower ones as margin shrinks) feeds the failure
predictor, which estimates time-to-failure ahead of the actual violation.

Run:  python examples/aging_prediction.py
"""

from repro.aging import (
    AgingScenario,
    FailurePredictor,
    LifetimeSimulator,
    inject_marginal_defects,
)
from repro.circuits import embedded_circuit
from repro.monitors import MonitorConfigSet, insert_monitors
from repro.timing import ClockSpec, run_sta


def simulate_device(label, circuit, clock, placement, *, scenario=None,
                    marginal=None):
    print(f"\n=== {label} ===")
    sim = LifetimeSimulator(circuit, clock, placement, scenario=scenario,
                            marginal=marginal, workload_patterns=8, seed=1)
    times = [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64]
    result = sim.run(times)

    print(f"{'t':>6} {'cpl [ps]':>10} {'slack [ps]':>10}  alerts (config: guard band)")
    for p in result.points:
        alerting = [f"d{ci}={result.config_delays[ci]:.0f}ps"
                    for ci, hit in p.alerts.items() if hit]
        flag = "  ** FAILED **" if p.failed else ""
        print(f"{p.t:6.2f} {p.critical_path:10.1f} {p.slack:10.1f}  "
              f"{', '.join(alerting) or '-'}{flag}")

    report = FailurePredictor().predict(result)
    print("prediction:", report.summary())
    if report.lead_time is not None and report.lead_time > 0:
        print(f"--> monitors warned {report.lead_time:.2f} lifetime units "
              f"before the actual failure")
    return result


def main() -> None:
    circuit = embedded_circuit("s27")
    sta = run_sta(circuit)
    # In-field operation: a production clock leaves real headroom (here
    # 15 %) on top of the critical path — the budget aging consumes.
    clock = ClockSpec(1.15 * sta.critical_path)
    configs = MonitorConfigSet.paper_default(clock.t_nom)
    placement = insert_monitors(circuit, sta, configs, fraction=1.0)
    print(f"Circuit {circuit.name}: clock {clock.t_nom:.1f} ps, "
          f"{placement.count} monitors, guard bands "
          f"{[round(d, 1) for d in configs]} ps")

    simulate_device("healthy device (wear-out only)", circuit, clock,
                    placement, scenario=AgingScenario(seed=2))

    marginal = inject_marginal_defects(circuit, count=2, seed=5)
    weak_names = [circuit.gates[g].name for g in marginal.weak_gates]
    print(f"\nInjecting marginal defects at gates {weak_names} "
          f"(δ0 = 6σ each)")
    simulate_device("marginal device (early-life failure)", circuit, clock,
                    placement, scenario=AgingScenario(seed=2),
                    marginal=marginal)


if __name__ == "__main__":
    main()
