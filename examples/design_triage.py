#!/usr/bin/env python3
"""Design triage: will monitor reuse pay off on a given netlist?

Before committing silicon area to programmable monitors, a DfT engineer
wants to know whether the design's path population even has the
short-path-endpoint structure the method exploits.  This example computes
the predictive statistics (endpoint arrival histogram, short-path
fraction below ``t_min``), shows the extreme paths, then validates the
prediction by running the full flow.

Run:  python examples/design_triage.py [circuit] [circuit...]
"""

import sys

from repro import FlowConfig, HdfTestFlow
from repro.circuits import suite_circuit
from repro.timing import (
    ClockSpec,
    endpoint_arrival_histogram,
    k_longest_paths,
    k_shortest_paths,
    run_sta,
    short_path_fraction,
)


def triage(name: str) -> None:
    circuit = suite_circuit(name, scale=0.6)
    sta = run_sta(circuit)
    clock = ClockSpec(sta.clock_period)
    print(f"\n=== {name}: {circuit.num_gates} gates, "
          f"{circuit.num_ffs} FFs, clk {clock.t_nom:.0f} ps ===")

    # ------------------------------------------------------------------
    # Predictive statistics.
    # ------------------------------------------------------------------
    frac = short_path_fraction(circuit, sta, clock.t_min)
    print(f"Short-path PPO fraction (< t_min = {clock.t_min:.0f} ps): "
          f"{frac:.1%}")
    print("Endpoint arrival histogram (PPOs):")
    for lo, hi, count in endpoint_arrival_histogram(circuit, sta, bins=6):
        bar = "#" * count
        marker = " < t_min" if hi <= clock.t_min + 1e-9 else ""
        print(f"  [{lo:6.0f}, {hi:6.0f}) {count:3d} {bar}{marker}")

    deepest = max((op.gate for op in circuit.observation_points()
                   if op.is_pseudo),
                  key=lambda g: sta.arrival_max[g])
    print("Longest path into the deepest (monitored) endpoint:")
    print("  " + k_longest_paths(circuit, deepest, 1)[0].describe(circuit))
    print("Shortest path into the same endpoint:")
    print("  " + k_shortest_paths(circuit, deepest, 1)[0].describe(circuit))

    verdict = ("monitors should recover substantial coverage"
               if frac > 0.15 else
               "expect only a small monitor gain")
    print(f"Triage verdict: {verdict}")

    # ------------------------------------------------------------------
    # Validation: run the actual flow.
    # ------------------------------------------------------------------
    result = HdfTestFlow(circuit, FlowConfig(pattern_cap=16)).run(
        with_schedules=False)
    print(f"Measured: conv={result.conv_hdf_detected} "
          f"prop={result.prop_hdf_detected} "
          f"gain={result.gain_percent:+.1f}%")


def main() -> None:
    names = sys.argv[1:] or ["s35932", "s13207"]
    for name in names:
        triage(name)


if __name__ == "__main__":
    main()
