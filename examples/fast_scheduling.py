#!/usr/bin/env python3
"""FAST schedule optimization on a synthetic industrial-style circuit.

Reproduces the Table II / Table III experiments on one circuit: compares
conventional FAST, the greedy heuristic of [17] and the proposed two-step
ILP, then sweeps relaxed coverage targets and reports the test-time
reduction — including the scan-cycle accounting with PLL re-lock costs.

Run:  python examples/fast_scheduling.py [circuit-name] [scale]
"""

import sys

from repro import FlowConfig, HdfTestFlow
from repro.circuits import paper_suite, suite_circuit
from repro.experiments.reporting import format_table
from repro.netlist.scan import naive_test_cycles, plan_scan_chains, schedule_test_cycles
from repro.scheduling.baselines import proposed_schedule


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s13207"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.8
    entry = paper_suite([name])[0]

    circuit = suite_circuit(name, scale=scale)
    print(f"Circuit {name} @ scale {scale}: {circuit.num_gates} gates, "
          f"{circuit.num_ffs} FFs")
    config = FlowConfig(pattern_cap=entry.pattern_budget(scale=scale))
    result = HdfTestFlow(circuit, config).run(
        with_schedules=True,
        progress=lambda m: print(f"  [flow] {m}"))

    print()
    print(format_table([result.table1_row()], title="HDF coverage (Table I)"))
    print(format_table([result.table2_row()],
                       title="Schedule optimization (Table II)"))

    # ------------------------------------------------------------------
    # Relaxed coverage sweep (Table III).
    # ------------------------------------------------------------------
    rows = []
    n_p, n_c = len(result.test_set), len(result.configs)
    for cov in (1.0, 0.99, 0.98, 0.95, 0.90):
        sched = proposed_schedule(result.data, result.classification,
                                  result.clock, result.configs, coverage=cov)
        rows.append({
            "coverage": f"{cov:.0%}",
            "frequencies": sched.num_frequencies,
            "naive_PC": sched.naive_size(n_p, n_c),
            "schedule": sched.num_entries,
            "reduction_%": round(sched.reduction_percent(n_p, n_c), 1),
        })
    print(format_table(rows, title="Coverage sweep (Table III)"))

    # ------------------------------------------------------------------
    # Hardware-meaningful unit: scan cycles.
    # ------------------------------------------------------------------
    plan = plan_scan_chains(circuit, n_chains=4)
    prop = result.schedules["prop"]
    opt_cycles = schedule_test_cycles(prop, plan)
    naive_cycles = naive_test_cycles(prop, plan, n_p, n_c)
    print(f"Scan accounting ({plan.n_chains} chains, "
          f"{plan.cycles_per_pattern} cycles/pattern):")
    print(f"  naïve     : {naive_cycles:12.0f} cycles")
    print(f"  optimized : {opt_cycles:12.0f} cycles "
          f"({(1 - opt_cycles / naive_cycles):.1%} saved)")


if __name__ == "__main__":
    main()
