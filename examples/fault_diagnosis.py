#!/usr/bin/env python3
"""Fault diagnosis from FAST failing signatures.

Injects hidden delay faults into a device, applies the optimized FAST
schedule, records which (frequency, pattern, configuration) applications
fail, and ranks candidate defects by signature consistency — the
failing-frequency-signature analysis the paper cites as [11], built on the
detection ranges the flow already computed.

Run:  python examples/fault_diagnosis.py
"""

from repro import FlowConfig, HdfTestFlow
from repro.circuits import CircuitProfile, generate_circuit
from repro.diagnosis import collect_signature, diagnose
from repro.diagnosis.ranking import resolution


def main() -> None:
    profile = CircuitProfile(name="diagdemo", n_gates=80, n_ffs=16,
                             n_inputs=10, n_outputs=6, depth=8, seed=9,
                             endpoint_side_gates=1)
    circuit = generate_circuit(profile)
    result = HdfTestFlow(circuit, FlowConfig(atpg_seed=4)).run(
        with_schedules=True)
    prop = result.schedules["prop"]
    print(f"Circuit {circuit.name}: {circuit.num_gates} gates, "
          f"{len(result.classification.target)} target HDFs, schedule has "
          f"{prop.num_frequencies} frequencies / {prop.num_entries} entries")

    ranks = []
    for fi in sorted(result.classification.target)[:6]:
        fault = result.data.faults[fi]
        signature = collect_signature(result, fault)
        ranked = diagnose(result.data, result.configs, signature,
                          max_results=5)
        rank = resolution(ranked, fi)
        ranks.append(rank)
        print(f"\nInjected: {fault.describe(circuit)} "
              f"({len(signature.failing)}/{len(signature)} applications fail)")
        for i, cand in enumerate(ranked, start=1):
            marker = "  <-- injected" if cand.fault_index == fi else ""
            print(f"  #{i} {cand.fault.describe(circuit):24s} "
                  f"score={cand.score:6.2f} explained={cand.explained} "
                  f"missed={cand.missed} false={cand.false_alarms}{marker}")

    located = [r for r in ranks if r is not None]
    print(f"\nDiagnosed {len(located)}/{len(ranks)} injected faults; "
          f"best rank {min(located) if located else '-'} "
          f"(ties with equivalent faults are expected).")


if __name__ == "__main__":
    main()
