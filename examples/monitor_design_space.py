#!/usr/bin/env python3
"""Design-space study: monitor coverage fraction and delay-element set.

Sweeps the two monitor design knobs the paper fixes (25 % coverage, four
delay elements) and shows how they trade HDF coverage against hardware
cost — the kind of exploration a DfT engineer would run before committing
to a monitor insertion plan.

Run:  python examples/monitor_design_space.py
"""

from repro import FlowConfig, HdfTestFlow
from repro.circuits import suite_circuit
from repro.experiments.reporting import format_table


def run_point(circuit_name: str, fraction: float,
              delay_fractions: tuple[float, ...]):
    circuit = suite_circuit(circuit_name, scale=0.6)
    config = FlowConfig(monitor_fraction=fraction,
                        monitor_delay_fractions=delay_fractions,
                        pattern_cap=20)
    result = HdfTestFlow(circuit, config).run(with_schedules=False)
    return result


def main() -> None:
    name = "s13207"
    print(f"Monitor design-space study on {name} (scaled)\n")

    # ------------------------------------------------------------------
    # Sweep 1: coverage fraction at the paper's four delay elements.
    # ------------------------------------------------------------------
    from repro.monitors.cost import placement_cost

    rows = []
    for fraction in (0.10, 0.25, 0.50, 1.00):
        res = run_point(name, fraction, (0.05, 0.10, 0.15, 1 / 3))
        cost = placement_cost(res.placement)
        rows.append({
            "monitor_fraction": f"{fraction:.0%}",
            "monitors": res.placement.count,
            "conv_detected": res.conv_hdf_detected,
            "prop_detected": res.prop_hdf_detected,
            "gain_%": round(res.gain_percent, 1),
            "area_overhead_%": round(cost.overhead_percent, 1),
        })
    print(format_table(rows, title="Sweep 1: monitored fraction of PPOs"))
    print("More monitors watch more short paths -> higher HDF gain, paid\n"
          "in gate-equivalents (shadow FF + MUX + delay lines + XOR).\n")

    # ------------------------------------------------------------------
    # Sweep 2: delay-element granularity at 25 % coverage.
    # ------------------------------------------------------------------
    variants = {
        "single d=t/3": (1 / 3,),
        "two elements": (0.15, 1 / 3),
        "paper (four)": (0.05, 0.10, 0.15, 1 / 3),
        "six elements": (0.05, 0.10, 0.15, 0.20, 0.25, 1 / 3),
    }
    rows = []
    for label, delays in variants.items():
        res = run_point(name, 0.25, delays)
        rows.append({
            "config_set": label,
            "configs": len(res.configs),
            "prop_detected": res.prop_hdf_detected,
            "monitor_at_speed": len(res.classification.monitor_at_speed),
            "targets": res.num_target_faults,
        })
    print(format_table(rows, title="Sweep 2: delay-element set @ 25% coverage"))
    print("Finer delay sets detect more faults at nominal speed\n"
          "(monitor-at-speed), shrinking the FAST-only target set.")


if __name__ == "__main__":
    main()
