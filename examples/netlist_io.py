#!/usr/bin/env python3
"""Netlist interchange: .bench / structural Verilog / SDF round trips.

Shows the supported on-disk formats: generate a synthetic scan circuit,
export it as ISCAS'89 .bench, structural Verilog and SDF timing, read all
three back, and prove functional + timing equivalence by simulation.

Run:  python examples/netlist_io.py [output-dir]
"""

import random
import sys
import tempfile
from pathlib import Path

from repro.circuits import CircuitProfile, generate_circuit
from repro.netlist.bench import load_bench, save_bench
from repro.netlist.sdf import load_sdf, save_sdf
from repro.netlist.validate import validate_circuit
from repro.netlist.verilog import load_verilog, save_verilog
from repro.simulation.parallel_sim import BitParallelSimulator


def output_signature(circuit, vectors):
    """Name-keyed output values per vector (order independent)."""
    sim = BitParallelSimulator(circuit)
    src_names = [circuit.gates[i].name for i in circuit.sources()]
    order = sorted(range(len(src_names)), key=lambda i: src_names[i])
    remapped = [tuple(v[i] for i in order) for v in vectors]
    # Re-pack in the circuit's own source order.
    own = [tuple(remapped[k][sorted(src_names).index(n)]
                 for n in src_names) for k in range(len(vectors))]
    words, width = sim.pack_vectors(own)
    values = sim.simulate(words, width)
    return {
        circuit.gates[g].name: [values[g] >> p & 1 for p in range(width)]
        for g in circuit.outputs
    }


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro_netlist_"))
    out_dir.mkdir(parents=True, exist_ok=True)

    profile = CircuitProfile(name="demo", n_gates=60, n_ffs=10, n_inputs=8,
                             n_outputs=4, depth=7, seed=11)
    circuit = generate_circuit(profile)
    report = validate_circuit(circuit)
    print(f"Generated {circuit.name}: {circuit.stats()} "
          f"(valid: {report.ok}, warnings: {len(report.warnings)})")

    bench_path = out_dir / "demo.bench"
    verilog_path = out_dir / "demo.v"
    sdf_path = out_dir / "demo.sdf"
    save_bench(circuit, bench_path)
    save_verilog(circuit, verilog_path)
    save_sdf(circuit, sdf_path)
    print(f"Wrote {bench_path}, {verilog_path}, {sdf_path}")

    from_bench = load_bench(bench_path)
    from_verilog = load_verilog(verilog_path)
    applied = load_sdf(from_bench, sdf_path)
    print(f"Re-read netlists; SDF annotated {applied} instances")

    rng = random.Random(3)
    width = len(circuit.sources())
    vectors = [tuple(rng.randint(0, 1) for _ in range(width))
               for _ in range(64)]
    sig0 = output_signature(circuit, vectors)
    sig_bench = output_signature(from_bench, vectors)
    sig_verilog = output_signature(from_verilog, vectors)
    assert sig0 == sig_bench, "bench round trip changed the function!"
    assert sig0 == sig_verilog, "verilog round trip changed the function!"
    print("Functional equivalence verified on 64 random vectors "
          f"across {len(sig0)} outputs.")

    # Timing equivalence after SDF annotation.
    for g in circuit.gates:
        if g.pin_delays:
            g2 = from_bench.gate_by_name(g.name)
            for (r0, f0), (r1, f1) in zip(g.pin_delays, g2.pin_delays):
                assert abs(r0 - r1) < 1e-3 and abs(f0 - f1) < 1e-3
    print("Timing equivalence verified (SDF round trip).")


if __name__ == "__main__":
    main()
