#!/usr/bin/env python3
"""Quickstart: run the full HDF test flow on a small circuit.

Walks the complete pipeline of the paper (Fig. 4) on the embedded ISCAS'89
s27 benchmark: timing analysis, monitor insertion, fault-universe
generation, ATPG, timing-accurate fault simulation, classification and the
two-step ILP schedule optimization — then prints the paper-style summary.

Run:  python examples/quickstart.py
"""

from repro import FlowConfig, HdfTestFlow
from repro.circuits import embedded_circuit
from repro.experiments.reporting import format_table


def main() -> None:
    circuit = embedded_circuit("s27")
    print(f"Circuit: {circuit.name}  "
          f"(gates={circuit.num_gates}, FFs={circuit.num_ffs})")

    config = FlowConfig()  # paper defaults: f_max = 3 f_nom, 25 % monitors
    flow = HdfTestFlow(circuit, config)
    result = flow.run(with_schedules=True, with_coverage_schedules=True,
                      progress=lambda msg: print(f"  [flow] {msg}"))

    print()
    print(f"Nominal clock      : {result.clock.t_nom:8.1f} ps "
          f"(critical path {result.sta.critical_path:.1f} ps + 5% margin)")
    print(f"FAST window        : [{result.clock.t_min:.1f}, "
          f"{result.clock.t_nom:.1f}] ps")
    print(f"Monitors inserted  : {result.placement.count} "
          f"(delays {[round(d, 1) for d in result.configs]} ps)")
    print(f"Fault universe     : {result.universe_size} small delay faults "
          f"(δ = 6σ)")
    if result.atpg is not None:
        print(f"ATPG               : {len(result.test_set)} pattern pairs, "
              f"{result.atpg.coverage:.1%} transition coverage")

    print()
    print(format_table([result.table1_row()], title="Table I style summary"))
    print(format_table([result.table2_row()], title="Table II style summary"))

    prop = result.schedules["prop"]
    print("Proposed schedule:")
    for period in prop.periods:
        entries = prop.entries_at(period)
        freq_ratio = result.clock.t_nom / period
        print(f"  period {period:7.1f} ps ({freq_ratio:.2f} x f_nom): "
              f"{len(entries)} pattern-config applications")
    print(f"\nTotal: {prop.num_frequencies} frequencies, "
          f"{prop.num_entries} applications "
          f"(naive: {prop.naive_size(len(result.test_set), len(result.configs))})")


if __name__ == "__main__":
    main()
