#!/usr/bin/env python3
"""Why timing-aware patterns are not enough — the paper's opening claim.

The introduction argues that hidden delay faults escape at-speed testing
"even with timing-aware test patterns".  This example makes that claim
concrete:

1. generate *timing-aware* patterns (KLPG-style: the K longest paths into
   every endpoint, explicitly sensitized),
2. fault-simulate the 6σ small-delay-fault universe against them at
   nominal speed — most faults survive (their slack dwarfs δ),
3. open the FAST window (f_max = 3 f_nom) — coverage rises but a hidden
   population below t_min remains,
4. add the programmable monitors — the shifted shadow registers recover a
   chunk of exactly that population.

Run:  python examples/timing_aware_atpg.py
"""

from repro.atpg.path_atpg import generate_path_tests
from repro.circuits import suite_circuit
from repro.faults.classify import classify_faults
from repro.faults.detection import compute_detection_data
from repro.faults.universe import small_delay_fault_universe
from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta


def main() -> None:
    circuit = suite_circuit("s13207", scale=0.5)
    sta = run_sta(circuit)
    clock = ClockSpec(sta.clock_period)
    configs = MonitorConfigSet.paper_default(clock.t_nom)
    placement = insert_monitors(circuit, sta, configs)
    print(f"Circuit {circuit.name}: {circuit.num_gates} gates, "
          f"clk {clock.t_nom:.0f} ps, window "
          f"[{clock.t_min:.0f}, {clock.t_nom:.0f}] ps, "
          f"{placement.count} monitors")

    # ------------------------------------------------------------------
    # 1. Timing-aware pattern generation (K longest paths per endpoint).
    # ------------------------------------------------------------------
    path_result = generate_path_tests(circuit, k_per_endpoint=2, seed=3)
    patterns = path_result.test_set(circuit).filled(seed=3)
    print(f"\nTiming-aware ATPG: {len(patterns)} pattern pairs sensitizing "
          f"the longest paths ({path_result.verified_fraction:.0%} verified "
          f"by simulation, {path_result.unsensitizable} false paths)")

    # ------------------------------------------------------------------
    # 2-4. One fault simulation, three evaluation views.
    # ------------------------------------------------------------------
    faults = small_delay_fault_universe(circuit)
    data = compute_detection_data(
        circuit, faults, patterns, horizon=clock.t_nom,
        monitored_gates=placement.monitored_gates)
    cls = classify_faults(data, clock, configs)

    n = len(faults)
    at_speed = len(cls.at_speed)
    conv = len(cls.conv_detected - cls.at_speed)
    prop = len(cls.prop_detected - cls.at_speed)
    print(f"\nSmall-delay-fault universe (δ = 6σ): {n} faults")
    print(f"  detected at nominal speed (at-speed test) : {at_speed:5d} "
          f"({at_speed / n:.1%})")
    print(f"  + FAST window down to t_nom/3 (conv.)     : "
          f"{at_speed + conv:5d} ({(at_speed + conv) / n:.1%})")
    print(f"  + programmable delay monitors (prop.)     : "
          f"{at_speed + prop:5d} ({(at_speed + prop) / n:.1%})")
    recovered = prop - conv
    print(f"\nMonitors recover {recovered} faults the timing-aware patterns "
          f"could not expose even at f_max = 3 f_nom")
    hidden = n - at_speed - prop - len(cls.not_activated)
    print(f"({len(cls.not_activated)} faults not activated by this pattern "
          f"set; {hidden} remain timing-redundant)")

    assert prop >= conv, "monitors must never lose coverage"


if __name__ == "__main__":
    main()
