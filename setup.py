"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs are unavailable; ``pip install -e . --no-use-pep517
--no-build-isolation`` falls back to this file.
"""

from setuptools import setup

setup()
