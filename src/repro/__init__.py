"""repro — Programmable Delay Monitors for Wear-Out and Early-Life Failure
Prediction (DATE 2020 reproduction).

A complete open-source implementation of the paper's flow: gate-level
netlists with 45 nm-class timing, timing-accurate small-delay-fault waveform
simulation, programmable delay monitor modeling and placement, transition
fault ATPG, ILP-based FAST test-schedule optimization, and the aging /
early-life-failure prediction workflow — plus drivers that regenerate every
table and figure of the paper's evaluation.

Quick start::

    from repro import HdfTestFlow, FlowConfig
    from repro.circuits import embedded_circuit

    result = HdfTestFlow(embedded_circuit("s27"), FlowConfig()).run()
    print(result.table1_row())
"""

from repro.core import FlowConfig, FlowResult, HdfTestFlow
from repro.netlist import Circuit, GateKind
from repro.timing import ClockSpec

__version__ = "1.0.0"

__all__ = [
    "FlowConfig",
    "FlowResult",
    "HdfTestFlow",
    "Circuit",
    "GateKind",
    "ClockSpec",
    "__version__",
]
