"""Wear-out and early-life failure modeling.

The motivation of the paper (Sec. I/II-B): device delays degrade over the
lifetime through BTI/HCI/EM, while *marginal* young devices fail early with
rapidly magnifying small delays.  This package provides the analytic
degradation models, the lifetime simulation driving the programmable
monitors, and the failure predictor that turns monitor alerts into
remaining-margin estimates.
"""

from repro.aging.api import (
    DegradationModel,
    ScalarModelAdapter,
    as_degradation_model,
    combined_delay_factors,
)
from repro.aging.core import active_models, aged_circuit, sample_workload
from repro.aging.degradation import (
    AgingScenario,
    BtiModel,
    EmModel,
    HciModel,
    aged_copy,
)
from repro.aging.fleet import (
    FleetPopulation,
    FleetResult,
    sample_population,
    simulate_fleet,
    simulate_fleet_reference,
    simulate_fleet_vectorized,
)
from repro.aging.hazard import WeibullHazard, WeibullMixture
from repro.aging.lifetime import LifetimeResult, LifetimeSimulator
from repro.aging.marginal import MarginalDeviceModel, inject_marginal_defects
from repro.aging.mitigation import (
    AdaptiveLifetimeResult,
    AdaptiveLifetimeSimulator,
    MitigationPolicy,
)
from repro.aging.prediction import (
    FailurePredictor,
    FleetPredictions,
    PredictionReport,
    predict_fleet,
)
from repro.aging.scenario import ScenarioSpec, VariationSpec

__all__ = [
    "DegradationModel",
    "ScalarModelAdapter",
    "as_degradation_model",
    "combined_delay_factors",
    "active_models",
    "aged_circuit",
    "aged_copy",
    "sample_workload",
    "AgingScenario",
    "BtiModel",
    "HciModel",
    "EmModel",
    "LifetimeResult",
    "LifetimeSimulator",
    "MarginalDeviceModel",
    "inject_marginal_defects",
    "AdaptiveLifetimeResult",
    "AdaptiveLifetimeSimulator",
    "MitigationPolicy",
    "FailurePredictor",
    "PredictionReport",
    "FleetPopulation",
    "FleetResult",
    "FleetPredictions",
    "ScenarioSpec",
    "VariationSpec",
    "WeibullHazard",
    "WeibullMixture",
    "sample_population",
    "simulate_fleet",
    "simulate_fleet_reference",
    "simulate_fleet_vectorized",
    "predict_fleet",
]
