"""Wear-out and early-life failure modeling.

The motivation of the paper (Sec. I/II-B): device delays degrade over the
lifetime through BTI/HCI/EM, while *marginal* young devices fail early with
rapidly magnifying small delays.  This package provides the analytic
degradation models, the lifetime simulation driving the programmable
monitors, and the failure predictor that turns monitor alerts into
remaining-margin estimates.
"""

from repro.aging.degradation import AgingScenario, BtiModel, EmModel, HciModel
from repro.aging.lifetime import LifetimeResult, LifetimeSimulator
from repro.aging.marginal import MarginalDeviceModel, inject_marginal_defects
from repro.aging.mitigation import (
    AdaptiveLifetimeResult,
    AdaptiveLifetimeSimulator,
    MitigationPolicy,
)
from repro.aging.prediction import FailurePredictor, PredictionReport

__all__ = [
    "AgingScenario",
    "BtiModel",
    "HciModel",
    "EmModel",
    "LifetimeResult",
    "LifetimeSimulator",
    "MarginalDeviceModel",
    "inject_marginal_defects",
    "AdaptiveLifetimeResult",
    "AdaptiveLifetimeSimulator",
    "MitigationPolicy",
    "FailurePredictor",
    "PredictionReport",
]
