"""The unified degradation-model API.

Before this module each aging model exposed an ad-hoc scalar surface —
``BtiModel.delta_fraction(t, stress)``, ``AgingScenario.delay_factor(gate,
t)``, ``MarginalDeviceModel.extra_delay(gate, t)`` — and every consumer
(lifetime simulator, mitigation loop, ``aged_copy``) hand-rolled its own
dict-merging glue.  The fleet-scale Monte Carlo engine needs one vectorized
contract instead:

:class:`DegradationModel`
    Anything with ``delay_factors(circuit, t, *, rng=None) -> ndarray``
    returning one multiplicative delay factor per gate (length
    ``len(circuit.gates)``, ``1.0`` for sequential gates and gates the
    model does not touch).  :class:`~repro.aging.degradation.AgingScenario`
    and :class:`~repro.aging.marginal.MarginalDeviceModel` implement it
    natively; legacy scalar objects are wrapped by
    :func:`as_degradation_model` — the same pattern as the
    ``engine="reference"`` twins elsewhere in the codebase.

Model composition is element-wise multiplication
(:func:`combined_delay_factors`), matching the historical semantics of the
lifetime simulators (wear-out factors times marginal-defect factors).
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.netlist.circuit import Circuit


@runtime_checkable
class DegradationModel(Protocol):
    """Vectorized degradation contract shared by every aging model."""

    def delay_factors(self, circuit: Circuit, t: float, *,
                      rng: np.random.Generator | None = None) -> np.ndarray:
        """Per-gate multiplicative delay factors at lifetime ``t``.

        Shape ``(len(circuit.gates),)``; entries are ``>= 1.0`` for
        monotone wear-out models and exactly ``1.0`` for gates the model
        leaves alone.  ``rng`` feeds stochastic models (noise injection);
        deterministic models ignore it.
        """
        ...  # pragma: no cover


class ScalarModelAdapter:
    """Generic adapter lifting a per-gate scalar model into the protocol.

    Wraps any object exposing ``delay_factor(gate, t) -> float`` (the
    pre-redesign surface) and evaluates it gate by gate — the slow but
    always-correct reference twin of a natively vectorized model.
    """

    def __init__(self, model: object) -> None:
        if not hasattr(model, "delay_factor"):
            raise TypeError(
                f"{type(model).__name__} has no delay_factor(gate, t) "
                f"method to adapt")
        self._model = model

    def delay_factors(self, circuit: Circuit, t: float, *,
                      rng: np.random.Generator | None = None) -> np.ndarray:
        factors = np.ones(len(circuit.gates))
        for gate in circuit.combinational_gates():
            factors[gate] = self._model.delay_factor(gate, t)
        return factors

    def __repr__(self) -> str:  # pragma: no cover
        return f"ScalarModelAdapter({self._model!r})"


def as_degradation_model(model: object) -> DegradationModel:
    """Coerce ``model`` to the :class:`DegradationModel` protocol.

    Objects already implementing the vectorized contract pass through;
    scalar models with a ``delay_factor(gate, t)`` method get a
    :class:`ScalarModelAdapter`.
    """
    if isinstance(model, DegradationModel):
        return model
    return ScalarModelAdapter(model)


def combined_delay_factors(models: Iterable[DegradationModel],
                           circuit: Circuit, t: float, *,
                           rng: np.random.Generator | None = None,
                           ) -> np.ndarray:
    """Element-wise product of every model's factors (the composition law)."""
    factors = np.ones(len(circuit.gates))
    for model in models:
        factors = factors * model.delay_factors(circuit, t, rng=rng)
    return factors
