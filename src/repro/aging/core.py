"""Shared aging-evaluation core.

:class:`~repro.aging.lifetime.LifetimeSimulator` and
:class:`~repro.aging.mitigation.AdaptiveLifetimeSimulator` used to hand-roll
identical ``_workload()`` and ``_aged_circuit()`` helpers; this module is
the single seam both (and the fleet engine's reference path) now share, so
the aging-evaluation semantics cannot drift between consumers:

* :func:`sample_workload` — the deterministic functional launch/capture
  vector sample every lifetime evaluation applies;
* :func:`aged_circuit` — a deep-copied circuit whose delays carry the
  element-wise product of every :class:`~repro.aging.api.DegradationModel`
  factor array at one lifetime point.
"""

from __future__ import annotations

import copy
import random
from typing import Iterable, Sequence

from repro.aging.api import as_degradation_model, combined_delay_factors
from repro.netlist.circuit import Circuit

#: One (launch, capture) functional vector pair.
WorkloadPattern = tuple[tuple[int, ...], tuple[int, ...]]


def sample_workload(circuit: Circuit, patterns: int,
                    seed: int = 0) -> list[WorkloadPattern]:
    """Deterministic sample of functional launch/capture vectors."""
    rng = random.Random(seed)
    width = len(circuit.sources())
    return [
        (tuple(rng.randint(0, 1) for _ in range(width)),
         tuple(rng.randint(0, 1) for _ in range(width)))
        for _ in range(patterns)
    ]


def aged_circuit(circuit: Circuit, models: Iterable[object], t: float,
                 *, name_suffix: str | None = None) -> Circuit:
    """Deep-copied circuit degraded to lifetime point ``t``.

    ``models`` may mix vectorized :class:`~repro.aging.api.DegradationModel`
    implementations with legacy scalar objects (coerced via
    :func:`~repro.aging.api.as_degradation_model`); their factor arrays
    compose multiplicatively.  The original circuit is never mutated.
    """
    coerced = [as_degradation_model(m) for m in models if m is not None]
    aged = copy.deepcopy(circuit)
    if name_suffix is not None:
        aged.name = f"{circuit.name}{name_suffix}"
    aged.scale_gate_delays(combined_delay_factors(coerced, aged, t))
    return aged


def active_models(*models: object) -> Sequence[object]:
    """The non-``None`` models, validated to be at least one."""
    present = tuple(m for m in models if m is not None)
    if not present:
        raise ValueError("need an aging scenario, a marginal model or both")
    return present
