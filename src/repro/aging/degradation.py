"""Analytic delay-degradation models.

Compact models in the style of [1] (Li/Qin/Bernstein, TDMR 2008):

* **BTI** (bias temperature instability) — threshold-voltage shift with a
  power-law time dependence, ``Δd/d = A · (s·t)^n`` with exponent
  ``n ≈ 0.16``; ``s`` is the per-gate stress duty factor.
* **HCI** (hot-carrier injection) — switching-activity driven power law with
  exponent ``n ≈ 0.45``.
* **EM** (electromigration) — interconnect resistance growth; modeled as a
  load-delay increase that accelerates after an onset time.

An :class:`AgingScenario` combines the mechanisms with deterministic per-gate
stress/activity factors and produces the multiplicative delay factor for any
gate at any lifetime point — which :meth:`Circuit.scale_gate_delays` applies.

Times are in arbitrary *lifetime units* (years in the examples); the models
are monotone and dimensionless, which is all the prediction flow requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit, GateKind


@dataclass(frozen=True)
class BtiModel:
    """Power-law BTI degradation: ``Δd/d = amplitude · (stress · t)^exponent``."""

    amplitude: float = 0.04
    exponent: float = 0.16

    def delta_fraction(self, t: float, stress: float = 1.0) -> float:
        if t <= 0.0 or stress <= 0.0:
            return 0.0
        return self.amplitude * (stress * t) ** self.exponent


@dataclass(frozen=True)
class HciModel:
    """Power-law HCI degradation driven by switching activity."""

    amplitude: float = 0.02
    exponent: float = 0.45

    def delta_fraction(self, t: float, activity: float = 0.5) -> float:
        if t <= 0.0 or activity <= 0.0:
            return 0.0
        return self.amplitude * (activity * t) ** self.exponent


@dataclass(frozen=True)
class EmModel:
    """Electromigration: negligible before ``onset``, linear growth after."""

    rate: float = 0.01
    onset: float = 5.0

    def delta_fraction(self, t: float, current_factor: float = 1.0) -> float:
        if t <= self.onset or current_factor <= 0.0:
            return 0.0
        return self.rate * current_factor * (t - self.onset)


@dataclass
class AgingScenario:
    """Per-gate combination of the degradation mechanisms.

    Stress, activity and current factors are drawn deterministically per gate
    from ``seed`` so two scenarios with the same seed degrade identically.
    """

    bti: BtiModel = field(default_factory=BtiModel)
    hci: HciModel = field(default_factory=HciModel)
    em: EmModel = field(default_factory=EmModel)
    seed: int = 0
    stress_spread: float = 0.5
    _factors: dict[int, tuple[float, float, float]] = field(
        default_factory=dict, repr=False)

    def _gate_factors(self, gate: int) -> tuple[float, float, float]:
        if gate not in self._factors:
            rng = random.Random((self.seed << 20) ^ gate)
            spread = self.stress_spread

            def draw() -> float:
                return max(0.05, 1.0 + spread * (rng.random() * 2.0 - 1.0))

            self._factors[gate] = (draw(), draw(), draw())
        return self._factors[gate]

    def delay_factor(self, gate: int, t: float) -> float:
        """Multiplicative delay factor of ``gate`` at lifetime ``t`` (>= 1)."""
        stress, activity, current = self._gate_factors(gate)
        return (1.0
                + self.bti.delta_fraction(t, stress)
                + self.hci.delta_fraction(t, activity)
                + self.em.delta_fraction(t, current))

    def delay_factors(self, circuit: Circuit, t: float) -> dict[int, float]:
        """Factors for every combinational gate of a circuit at time ``t``."""
        return {
            g.index: self.delay_factor(g.index, t)
            for g in circuit.gates
            if GateKind.is_combinational(g.kind)
        }


def aged_copy(circuit: Circuit, scenario: AgingScenario, t: float,
              *, name_suffix: str | None = None) -> Circuit:
    """Deep-copied circuit with delays degraded to lifetime point ``t``.

    The original circuit is left untouched; the copy shares no mutable
    timing state.
    """
    import copy

    aged = copy.deepcopy(circuit)
    if name_suffix is not None:
        aged.name = f"{circuit.name}{name_suffix}"
    aged.scale_gate_delays(scenario.delay_factors(aged, t))
    return aged
