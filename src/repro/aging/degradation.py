"""Analytic delay-degradation models.

Compact models in the style of [1] (Li/Qin/Bernstein, TDMR 2008):

* **BTI** (bias temperature instability) — threshold-voltage shift with a
  power-law time dependence, ``Δd/d = A · (s·t)^n`` with exponent
  ``n ≈ 0.16``; ``s`` is the per-gate stress duty factor.
* **HCI** (hot-carrier injection) — switching-activity driven power law with
  exponent ``n ≈ 0.45``.
* **EM** (electromigration) — interconnect resistance growth; modeled as a
  load-delay increase that accelerates after an onset time.

An :class:`AgingScenario` combines the mechanisms with deterministic per-gate
stress/activity factors and implements the vectorized
:class:`~repro.aging.api.DegradationModel` contract: ``delay_factors``
returns one multiplicative factor per gate as an ndarray, which
:meth:`Circuit.scale_gate_delays` applies directly.  The scalar
``delay_factor(gate, t)`` surface survives both as the reference twin the
vectorized path is pinned against and as the subclass seam (workload-driven
scenarios override the per-gate draws).

Times are in arbitrary *lifetime units* (years in the examples); the models
are monotone and dimensionless, which is all the prediction flow requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.netlist.circuit import Circuit, GateKind


@dataclass(frozen=True)
class BtiModel:
    """Power-law BTI degradation: ``Δd/d = amplitude · (stress · t)^exponent``."""

    amplitude: float = 0.04
    exponent: float = 0.16

    def delta_fraction(self, t: float, stress: float = 1.0) -> float:
        if t <= 0.0 or stress <= 0.0:
            return 0.0
        return self.amplitude * (stress * t) ** self.exponent

    def delta_fractions(self, t: float, stress: np.ndarray) -> np.ndarray:
        """Vectorized twin of :meth:`delta_fraction` over a stress array."""
        if t <= 0.0:
            return np.zeros_like(stress)
        return np.where(stress > 0.0,
                        self.amplitude * np.power(stress * t, self.exponent),
                        0.0)


@dataclass(frozen=True)
class HciModel:
    """Power-law HCI degradation driven by switching activity."""

    amplitude: float = 0.02
    exponent: float = 0.45

    def delta_fraction(self, t: float, activity: float = 0.5) -> float:
        if t <= 0.0 or activity <= 0.0:
            return 0.0
        return self.amplitude * (activity * t) ** self.exponent

    def delta_fractions(self, t: float, activity: np.ndarray) -> np.ndarray:
        if t <= 0.0:
            return np.zeros_like(activity)
        return np.where(activity > 0.0,
                        self.amplitude * np.power(activity * t, self.exponent),
                        0.0)


@dataclass(frozen=True)
class EmModel:
    """Electromigration: negligible before ``onset``, linear growth after."""

    rate: float = 0.01
    onset: float = 5.0

    def delta_fraction(self, t: float, current_factor: float = 1.0) -> float:
        if t <= self.onset or current_factor <= 0.0:
            return 0.0
        return self.rate * current_factor * (t - self.onset)

    def delta_fractions(self, t: float, current: np.ndarray) -> np.ndarray:
        if t <= self.onset:
            return np.zeros_like(current)
        return np.where(current > 0.0,
                        self.rate * current * (t - self.onset),
                        0.0)


@dataclass
class AgingScenario:
    """Per-gate combination of the degradation mechanisms.

    Stress, activity and current factors are drawn deterministically per gate
    from ``seed`` so two scenarios with the same seed degrade identically.
    """

    bti: BtiModel = field(default_factory=BtiModel)
    hci: HciModel = field(default_factory=HciModel)
    em: EmModel = field(default_factory=EmModel)
    seed: int = 0
    stress_spread: float = 0.5
    _factors: dict[int, tuple[float, float, float]] = field(
        default_factory=dict, repr=False)

    def _gate_factors(self, gate: int) -> tuple[float, float, float]:
        if gate not in self._factors:
            rng = random.Random((self.seed << 20) ^ gate)
            spread = self.stress_spread

            def draw() -> float:
                return max(0.05, 1.0 + spread * (rng.random() * 2.0 - 1.0))

            self._factors[gate] = (draw(), draw(), draw())
        return self._factors[gate]

    def gate_factor_arrays(self, circuit: Circuit,
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-gate ``(stress, activity, current)`` arrays for a circuit.

        Entries of sequential/source gates are zero, so every degradation
        law yields a delta of exactly ``0.0`` (factor ``1.0``) there.  The
        draws route through :meth:`_gate_factors` — the seam subclasses
        (e.g. workload-driven scenarios) override.
        """
        n = len(circuit.gates)
        stress = np.zeros(n)
        activity = np.zeros(n)
        current = np.zeros(n)
        for gate in circuit.combinational_gates():
            stress[gate], activity[gate], current[gate] = \
                self._gate_factors(gate)
        return stress, activity, current

    def delay_factor(self, gate: int, t: float) -> float:
        """Multiplicative delay factor of ``gate`` at lifetime ``t`` (>= 1)."""
        stress, activity, current = self._gate_factors(gate)
        return (1.0
                + self.bti.delta_fraction(t, stress)
                + self.hci.delta_fraction(t, activity)
                + self.em.delta_fraction(t, current))

    def delay_factors(self, circuit: Circuit, t: float, *,
                      rng: np.random.Generator | None = None) -> np.ndarray:
        """Vectorized per-gate factors (the DegradationModel contract).

        Bit-identical to evaluating :meth:`delay_factor` gate by gate: the
        per-gate draws are shared and both paths reduce to the same IEEE
        double operations in the same order.
        """
        stress, activity, current = self.gate_factor_arrays(circuit)
        return (1.0
                + self.bti.delta_fractions(t, stress)
                + self.hci.delta_fractions(t, activity)
                + self.em.delta_fractions(t, current))


def aged_copy(circuit: Circuit, model, t: float,
              *, name_suffix: str | None = None) -> Circuit:
    """Deep-copied circuit with delays degraded to lifetime point ``t``.

    ``model`` is anything satisfying (or adaptable to) the
    :class:`~repro.aging.api.DegradationModel` protocol.  The original
    circuit is left untouched; the copy shares no mutable timing state.
    """
    from repro.aging.core import aged_circuit

    return aged_circuit(circuit, (model,), t, name_suffix=name_suffix)
