"""Fleet-scale Monte Carlo aging engine.

Single-device lifetime simulation (:mod:`repro.aging.lifetime`) answers
*"when does this device fail and how early does the monitor warn?"*.  The
paper's reliability claims, however, are population statements: across a
shipped fleet, how are detection latency, prediction lead time and
mispredict rate distributed?  This module answers that by Monte Carlo over
device populations:

* :func:`sample_population` draws per-device variation once — lognormal
  process spread on the BTI/HCI/EM susceptibility, a lifetime from a
  Weibull infant-mortality + wear-out hazard mixture
  (:class:`~repro.aging.hazard.WeibullMixture`), a per-device aging
  time-scale coupling the lifetime draw to the degradation laws, and weak
  (marginal-defect) gates for the infant-mortality devices.
* Two engines evaluate every device at every lifetime checkpoint against
  an STA-level surrogate of the monitor bank:

  - ``reference`` — a per-device Python loop, the semantics pin;
  - ``vectorized`` — NumPy kernels over ``(gates, devices)`` delay-factor
    blocks, bit-identical to the reference loop by construction (both
    consume the same population draws and perform the same IEEE-754
    operations in the same order).

The surrogate models each monitor as watching the maximum arrival time of
its observation point: configuration ``c`` (delay element ``d_c``) alerts
at a checkpoint when the monitored margin ``T - max_arrival`` has fallen
below ``d_c``, and the device fails when the critical path exceeds the
clock period — the same margin-staircase abstraction
:class:`~repro.aging.prediction.FailurePredictor` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aging.degradation import AgingScenario
from repro.aging.marginal import MarginalDeviceModel
from repro.aging.scenario import ScenarioSpec
from repro.monitors.insertion import (
    DEFAULT_COVERAGE_FRACTION,
    insert_monitors,
)
from repro.monitors.monitor import MonitorConfigSet
from repro.netlist.circuit import Circuit, GateKind
from repro.timing.sta import run_sta
from repro.timing.variation import fault_size_for_gate

#: Devices evaluated per vectorized block (bounds peak memory to
#: ``gates * block`` doubles per delay-factor matrix).
DEFAULT_BLOCK = 16384

#: Weak-gate growth law constants (mirror :class:`MarginalDeviceModel`).
_MARGINAL_DEFAULTS = MarginalDeviceModel(weak_gates={})


@dataclass
class FleetPopulation:
    """Per-device Monte Carlo draws, shared by both engines.

    Sampling once and handing the same arrays to either engine is what
    makes the reference/vectorized parity exact: only the evaluation
    differs, never the randomness.
    """

    spec: ScenarioSpec
    devices: int
    #: Lognormal process-variation multipliers, one per mechanism: (D,).
    amp_bti: np.ndarray
    amp_hci: np.ndarray
    amp_em: np.ndarray
    #: Weibull-mixture lifetime draw and originating component: (D,).
    lifetime: np.ndarray
    component: np.ndarray
    #: Per-device aging time-scale tau (lifetime coupling): (D,).
    tau: np.ndarray
    #: Marginal-defect slots (infant devices only): (D, K).
    weak_gate: np.ndarray
    weak_delta0: np.ndarray
    weak_base: np.ndarray

    @property
    def is_infant(self) -> np.ndarray:
        """Devices drawn from the infant-mortality mixture component."""
        return self.component == 0

    @property
    def infant_count(self) -> int:
        return int(np.count_nonzero(self.is_infant))


def sample_population(circuit: Circuit, spec: ScenarioSpec,
                      devices: int) -> FleetPopulation:
    """Draw the fleet's per-device variation from ``spec.seed``.

    Draw order is fixed (amplitudes, lifetimes, weak gates) so a given
    ``(spec, devices)`` always produces the same population regardless of
    which engine later evaluates it.
    """
    if devices < 1:
        raise ValueError("population needs at least one device")
    rng = np.random.default_rng(spec.seed)
    var = spec.variation
    amp_bti = np.exp(rng.standard_normal(devices) * var.bti_sigma)
    amp_hci = np.exp(rng.standard_normal(devices) * var.hci_sigma)
    amp_em = np.exp(rng.standard_normal(devices) * var.em_sigma)

    lifetime, component = spec.hazard.sample(rng, devices)
    # Couple the lifetime draw to the degradation laws: devices fated to
    # fail early age proportionally faster (t_eff = t * tau).
    with np.errstate(divide="ignore"):
        tau = np.clip(spec.hazard.wearout.scale / lifetime,
                      spec.tau_min, spec.tau_max)

    comb = np.asarray(circuit.combinational_gates(), dtype=np.int64)
    k = min(spec.infant_weak_gates, len(comb))
    pick = rng.integers(0, len(comb), size=(devices, k)) if k else \
        np.zeros((devices, 0), dtype=np.int64)
    weak_gate = comb[pick] if k else pick
    if k:
        sizes = np.array([fault_size_for_gate(circuit, int(g))
                          for g in comb])
        bases = np.array([circuit.gates[int(g)].max_delay() for g in comb])
        infant = (component == 0)[:, None]
        weak_delta0 = np.where(infant, sizes[pick], 0.0)
        weak_base = np.maximum(bases[pick], 1e-12)
    else:
        weak_delta0 = np.zeros((devices, 0))
        weak_base = np.ones((devices, 0))
    return FleetPopulation(
        spec=spec, devices=devices,
        amp_bti=amp_bti, amp_hci=amp_hci, amp_em=amp_em,
        lifetime=lifetime, component=component, tau=tau,
        weak_gate=weak_gate, weak_delta0=weak_delta0, weak_base=weak_base,
    )


@dataclass
class FleetResult:
    """Checkpointed fleet evaluation: the raw material for batch prediction.

    Index matrices hold *checkpoint indices* (-1 = never): ``first_alert``
    is ``(configs, devices)``, ``failure`` is ``(devices,)``; ``slack`` is
    the full ``(devices, checkpoints)`` margin trace.
    """

    spec: ScenarioSpec
    engine: str
    clock_period: float
    config_delays: tuple[float, ...]
    times: np.ndarray
    slack: np.ndarray
    first_alert: np.ndarray
    failure: np.ndarray
    population: FleetPopulation = field(repr=False)

    @property
    def devices(self) -> int:
        return self.population.devices

    def failure_times(self) -> np.ndarray:
        """Per-device failure time (NaN when the device never fails)."""
        return np.where(self.failure >= 0,
                        self.times[np.maximum(self.failure, 0)], np.nan)

    def first_alert_times(self) -> np.ndarray:
        """(configs, devices) first-alert times (NaN when never alerted)."""
        return np.where(self.first_alert >= 0,
                        self.times[np.maximum(self.first_alert, 0)], np.nan)

    def first_warning_times(self) -> np.ndarray:
        """Earliest alert of any configuration, per device (NaN = none)."""
        alerts = self.first_alert_times()
        if alerts.shape[0] == 0:
            return np.full(self.devices, np.nan)
        with np.errstate(invalid="ignore"):
            return np.nanmin(alerts, axis=0)


# ----------------------------------------------------------------------
# Shared precomputation
# ----------------------------------------------------------------------
@dataclass
class _FleetSetup:
    """Everything both engines need beyond the population draws."""

    topo: list[tuple[int, list[tuple[int, float]]]]
    n_gates: int
    stress: np.ndarray
    activity: np.ndarray
    current: np.ndarray
    observed: list[int]
    monitored: list[int]
    clock_period: float
    config_delays: tuple[float, ...]


def fleet_setup(circuit: Circuit, spec: ScenarioSpec, *,
                clock_period: float,
                config_delays: tuple[float, ...],
                monitored_gates) -> _FleetSetup:
    """Build the engine-shared setup from precomputed timing artifacts.

    The pipeline's :class:`~repro.core.stages.AgingStage` calls this with
    the cached STA/placement artifact so the fleet sweep amortizes the
    timing work across engines, device counts and scenario variants.
    """
    scenario: AgingScenario = spec.aging_scenario()
    stress, activity, current = scenario.gate_factor_arrays(circuit)
    topo = []
    for idx in circuit.topo_order:
        g = circuit.gates[idx]
        if not GateKind.is_combinational(g.kind):
            continue
        pins = [(src, max(rise, fall))
                for (rise, fall), src in zip(g.pin_delays, g.fanin)]
        topo.append((idx, pins))
    observed = sorted({op.gate for op in circuit.observation_points()})
    return _FleetSetup(
        topo=topo, n_gates=len(circuit.gates),
        stress=stress, activity=activity, current=current,
        observed=observed, monitored=sorted(monitored_gates),
        clock_period=clock_period, config_delays=tuple(config_delays),
    )


def _prepare(circuit: Circuit, spec: ScenarioSpec, *,
             monitor_fraction: float,
             clock_period: float | None) -> _FleetSetup:
    sta = run_sta(circuit)
    period = clock_period if clock_period is not None else \
        spec.clock_margin * sta.critical_path
    configs = MonitorConfigSet.paper_default(period)
    placement = insert_monitors(circuit, sta, configs,
                                fraction=monitor_fraction)
    return fleet_setup(circuit, spec, clock_period=period,
                       config_delays=tuple(configs),
                       monitored_gates=placement.monitored_gates)


# ----------------------------------------------------------------------
# Multi-process sharding (shared by both engines)
# ----------------------------------------------------------------------
def _population_slice(pop: FleetPopulation, lo: int,
                      hi: int) -> FleetPopulation:
    return FleetPopulation(
        spec=pop.spec, devices=hi - lo,
        amp_bti=pop.amp_bti[lo:hi], amp_hci=pop.amp_hci[lo:hi],
        amp_em=pop.amp_em[lo:hi], lifetime=pop.lifetime[lo:hi],
        component=pop.component[lo:hi], tau=pop.tau[lo:hi],
        weak_gate=pop.weak_gate[lo:hi], weak_delta0=pop.weak_delta0[lo:hi],
        weak_base=pop.weak_base[lo:hi],
    )


def _shard_worker(payload):
    engine, circuit, spec, shard, setup, kwargs = payload
    return FLEET_ENGINES[engine](circuit, spec, shard, setup=setup,
                                 jobs=1, **kwargs)


def _sharded_run(engine: str, circuit: Circuit, spec: ScenarioSpec,
                 population: FleetPopulation, jobs: int, *,
                 monitor_fraction: float, clock_period: float | None,
                 setup: "_FleetSetup | None",
                 **kwargs) -> "FleetResult | None":
    """Fan a population out over worker processes; ``None`` = run inline.

    Shards are contiguous device ranges and every per-device computation is
    independent, so a sharded run is bit-identical to ``jobs=1``.
    """
    if jobs <= 1 or population.devices < 2:
        return None
    from concurrent.futures import ProcessPoolExecutor

    s = setup or _prepare(circuit, spec, monitor_fraction=monitor_fraction,
                          clock_period=clock_period)
    n = min(jobs, population.devices)
    bounds = np.linspace(0, population.devices, n + 1).astype(int)
    payloads = [(engine, circuit, spec,
                 _population_slice(population, int(lo), int(hi)), s, kwargs)
                for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
    with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
        parts = list(pool.map(_shard_worker, payloads))
    first = parts[0]
    return FleetResult(
        spec=spec, engine=engine, clock_period=first.clock_period,
        config_delays=first.config_delays, times=first.times,
        slack=np.concatenate([p.slack for p in parts], axis=0),
        first_alert=np.concatenate([p.first_alert for p in parts], axis=1),
        failure=np.concatenate([p.failure for p in parts]),
        population=population,
    )


# ----------------------------------------------------------------------
# Reference engine: per-device Python loop (the semantics pin)
# ----------------------------------------------------------------------
def simulate_fleet_reference(circuit: Circuit, spec: ScenarioSpec,
                             population: FleetPopulation, *,
                             monitor_fraction: float = DEFAULT_COVERAGE_FRACTION,
                             clock_period: float | None = None,
                             jobs: int = 1,
                             setup: _FleetSetup | None = None) -> FleetResult:
    """Scalar per-device evaluation loop.

    Deliberately written with plain Python floats in the *same* operation
    order as the vectorized kernels; the golden parity test pins the two
    bit-identical.
    """
    sharded = _sharded_run("reference", circuit, spec, population, jobs,
                           monitor_fraction=monitor_fraction,
                           clock_period=clock_period, setup=setup)
    if sharded is not None:
        return sharded
    s = setup or _prepare(circuit, spec, monitor_fraction=monitor_fraction,
                          clock_period=clock_period)
    d = population.devices
    times = np.asarray(spec.checkpoints)
    n_cfg = len(s.config_delays)
    slack = np.zeros((d, len(times)))
    first_alert = np.full((n_cfg, d), -1, dtype=np.int32)
    failure = np.full(d, -1, dtype=np.int32)

    growth = _MARGINAL_DEFAULTS.growth
    accel = _MARGINAL_DEFAULTS.accel
    b_amp, b_exp = spec.bti.amplitude, spec.bti.exponent
    h_amp, h_exp = spec.hci.amplitude, spec.hci.exponent
    e_rate, e_onset = spec.em.rate, spec.em.onset
    period = s.clock_period
    k = population.weak_gate.shape[1]

    for dev in range(d):
        tau = float(population.tau[dev])
        a_b = b_amp * float(population.amp_bti[dev])
        a_h = h_amp * float(population.amp_hci[dev])
        a_e = e_rate * float(population.amp_em[dev])
        weak = [(int(population.weak_gate[dev, j]),
                 float(population.weak_delta0[dev, j]),
                 float(population.weak_base[dev, j]))
                for j in range(k)]
        for ti, t in enumerate(spec.checkpoints):
            t_eff = t * tau
            fac = [1.0] * s.n_gates
            # np.power (not **): the ufunc inner loop is what the
            # vectorized engine runs, and it differs from libm pow by an
            # ulp for some inputs — parity requires the same loop.
            for g, _pins in s.topo:
                bti = a_b * np.power(s.stress[g] * t_eff, b_exp)
                hci = a_h * np.power(s.activity[g] * t_eff, h_exp)
                em = ((a_e * s.current[g]) * (t_eff - e_onset)
                      if t_eff > e_onset else 0.0)
                fac[g] = ((1.0 + bti) + hci) + em
            growth_term = 1.0 + growth * np.power(t_eff, accel)
            for g, delta0, base in weak:
                fac[g] = fac[g] * (1.0 + (delta0 * growth_term) / base)
            arr = [0.0] * s.n_gates
            for g, pins in s.topo:
                f = fac[g]
                acc = arr[pins[0][0]] + pins[0][1] * f
                for src, dmax in pins[1:]:
                    cand = arr[src] + dmax * f
                    if cand > acc:
                        acc = cand
                arr[g] = acc
            cp = 0.0
            for g in s.observed:
                if arr[g] > cp:
                    cp = arr[g]
            mon = 0.0
            for g in s.monitored:
                if arr[g] > mon:
                    mon = arr[g]
            sl = period - cp
            slack[dev, ti] = sl
            if sl < 0.0 and failure[dev] < 0:
                failure[dev] = ti
            margin = period - mon
            for ci in range(n_cfg):
                if first_alert[ci, dev] < 0 and margin < s.config_delays[ci]:
                    first_alert[ci, dev] = ti
    return FleetResult(
        spec=spec, engine="reference", clock_period=period,
        config_delays=s.config_delays, times=times, slack=slack,
        first_alert=first_alert, failure=failure, population=population,
    )


# ----------------------------------------------------------------------
# Vectorized engine: (gates, devices) block kernels
# ----------------------------------------------------------------------
def simulate_fleet_vectorized(circuit: Circuit, spec: ScenarioSpec,
                              population: FleetPopulation, *,
                              monitor_fraction: float = DEFAULT_COVERAGE_FRACTION,
                              clock_period: float | None = None,
                              block: int = DEFAULT_BLOCK,
                              jobs: int = 1,
                              setup: _FleetSetup | None = None) -> FleetResult:
    """NumPy block evaluation of the whole fleet.

    Devices are processed in blocks of ``block`` to bound peak memory; per
    checkpoint one ``(gates, block)`` delay-factor matrix and one arrival
    matrix are materialised and reduced in a levelized sweep.
    """
    if block < 1:
        raise ValueError("block size must be positive")
    sharded = _sharded_run("vectorized", circuit, spec, population, jobs,
                           monitor_fraction=monitor_fraction,
                           clock_period=clock_period, block=block,
                           setup=setup)
    if sharded is not None:
        return sharded
    s = setup or _prepare(circuit, spec, monitor_fraction=monitor_fraction,
                          clock_period=clock_period)
    d = population.devices
    times = np.asarray(spec.checkpoints)
    n_cfg = len(s.config_delays)
    slack = np.zeros((d, len(times)))
    first_alert = np.full((n_cfg, d), -1, dtype=np.int32)
    failure = np.full(d, -1, dtype=np.int32)

    growth = _MARGINAL_DEFAULTS.growth
    accel = _MARGINAL_DEFAULTS.accel
    b_amp, b_exp = spec.bti.amplitude, spec.bti.exponent
    h_amp, h_exp = spec.hci.amplitude, spec.hci.exponent
    e_rate, e_onset = spec.em.rate, spec.em.onset
    period = s.clock_period
    comb_idx = np.array([g for g, _ in s.topo], dtype=np.int64)
    stress_c = s.stress[comb_idx][:, None]
    activity_c = s.activity[comb_idx][:, None]
    current_c = s.current[comb_idx][:, None]
    row_lut = np.full(s.n_gates, -1, dtype=np.int64)
    row_lut[comb_idx] = np.arange(len(comb_idx))
    k = population.weak_gate.shape[1]

    for lo in range(0, d, block):
        hi = min(lo + block, d)
        nb = hi - lo
        tau = population.tau[lo:hi]
        a_b = b_amp * population.amp_bti[lo:hi]
        a_h = h_amp * population.amp_hci[lo:hi]
        a_e = e_rate * population.amp_em[lo:hi]
        weak_rows = row_lut[population.weak_gate[lo:hi]] if k else None
        weak_delta0 = population.weak_delta0[lo:hi]
        weak_base = population.weak_base[lo:hi]
        dev_cols = np.arange(nb)
        arr = np.zeros((s.n_gates, nb))
        for ti, t in enumerate(spec.checkpoints):
            t_eff = t * tau  # (B,)
            bti = a_b * np.power(stress_c * t_eff, b_exp)
            hci = a_h * np.power(activity_c * t_eff, h_exp)
            em = np.where(t_eff > e_onset,
                          (a_e * current_c) * (t_eff - e_onset), 0.0)
            fac = ((1.0 + bti) + hci) + em  # (comb, B)
            if k:
                growth_term = 1.0 + growth * np.power(t_eff, accel)
                mult = 1.0 + (weak_delta0 * growth_term[:, None]) / weak_base
                for j in range(k):
                    np.multiply.at(fac, (weak_rows[:, j], dev_cols),
                                   mult[:, j])
            arr[:] = 0.0
            for r, (g, pins) in enumerate(s.topo):
                f = fac[r]
                acc = arr[pins[0][0]] + pins[0][1] * f
                for src, dmax in pins[1:]:
                    np.maximum(acc, arr[src] + dmax * f, out=acc)
                arr[g] = acc
            cp = (np.max(arr[s.observed], axis=0) if s.observed
                  else np.zeros(nb))
            cp = np.maximum(cp, 0.0)
            mon = (np.max(arr[s.monitored], axis=0) if s.monitored
                   else np.zeros(nb))
            mon = np.maximum(mon, 0.0)
            sl = period - cp
            slack[lo:hi, ti] = sl
            newly_failed = (failure[lo:hi] < 0) & (sl < 0.0)
            failure[lo:hi][newly_failed] = ti
            margin = period - mon
            for ci in range(n_cfg):
                newly = ((first_alert[ci, lo:hi] < 0)
                         & (margin < s.config_delays[ci]))
                first_alert[ci, lo:hi][newly] = ti
    return FleetResult(
        spec=spec, engine="vectorized", clock_period=period,
        config_delays=s.config_delays, times=times, slack=slack,
        first_alert=first_alert, failure=failure, population=population,
    )


#: Engine-name dispatch used by the registry adapter and the CLI.
FLEET_ENGINES = {
    "reference": simulate_fleet_reference,
    "vectorized": simulate_fleet_vectorized,
}


def simulate_fleet(circuit: Circuit, spec: ScenarioSpec, devices: int, *,
                   engine: str = "vectorized",
                   monitor_fraction: float = DEFAULT_COVERAGE_FRACTION,
                   clock_period: float | None = None,
                   population: FleetPopulation | None = None,
                   **kwargs) -> FleetResult:
    """Sample a population (unless given) and run the selected engine."""
    if engine not in FLEET_ENGINES:
        known = ", ".join(sorted(FLEET_ENGINES))
        raise ValueError(f"unknown fleet engine {engine!r} "
                         f"(registered: {known})")
    pop = population or sample_population(circuit, spec, devices)
    if pop.devices != devices:
        raise ValueError("population size does not match requested devices")
    return FLEET_ENGINES[engine](
        circuit, spec, pop, monitor_fraction=monitor_fraction,
        clock_period=clock_period, **kwargs)
