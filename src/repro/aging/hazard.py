"""Weibull hazard models for fleet lifetime sampling.

Device reliability follows the classic bathtub curve: an *infant mortality*
population with a decreasing hazard rate (Weibull shape < 1 — latent
defects magnify and kill marginal devices early, Sec. I of the paper and
[2]) superposed on a *wear-out* population with an increasing hazard rate
(shape > 1 — BTI/HCI/EM degradation).  :class:`WeibullMixture` models the
superposition; sampling it assigns every simulated device both a lifetime
draw and the component (infant vs wear-out) that produced it, which the
fleet engine maps onto its degradation parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WeibullHazard:
    """Two-parameter Weibull distribution ``F(t) = 1 - exp(-(t/scale)^shape)``.

    ``shape < 1`` gives a decreasing hazard rate (infant mortality),
    ``shape > 1`` an increasing one (wear-out), ``shape == 1`` is the
    memoryless exponential.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0:
            raise ValueError("Weibull shape must be positive")
        if self.scale <= 0.0:
            raise ValueError("Weibull scale must be positive")

    def cdf(self, t: float | np.ndarray) -> float | np.ndarray:
        """Failure probability by time ``t``."""
        t = np.asarray(t, dtype=float)
        out = -np.expm1(-np.power(np.maximum(t, 0.0) / self.scale,
                                  self.shape))
        return float(out) if out.ndim == 0 else out

    def quantile(self, u: float | np.ndarray) -> float | np.ndarray:
        """Inverse CDF: the lifetime whose failure probability is ``u``."""
        u = np.asarray(u, dtype=float)
        out = self.scale * np.power(-np.log1p(-u), 1.0 / self.shape)
        return float(out) if out.ndim == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` inverse-CDF lifetime draws."""
        return self.quantile(rng.random(size))

    def hazard_rate(self, t: float) -> float:
        """Instantaneous hazard ``h(t) = (shape/scale) * (t/scale)^(shape-1)``."""
        if t <= 0.0:
            return math.inf if self.shape < 1.0 else (
                0.0 if self.shape > 1.0 else 1.0 / self.scale)
        return (self.shape / self.scale) * (t / self.scale) ** (self.shape - 1.0)


@dataclass(frozen=True)
class WeibullMixture:
    """Weighted superposition of Weibull components (the bathtub curve).

    ``components[i]`` occurs with probability ``weights[i]``; by convention
    component 0 is the infant-mortality mode (shape < 1) and the last
    component is wear-out (shape > 1), but any mixture is accepted.
    """

    components: tuple[WeibullHazard, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("one weight per mixture component required")
        if not self.components:
            raise ValueError("mixture needs at least one component")
        if any(w < 0.0 for w in self.weights):
            raise ValueError("mixture weights must be non-negative")
        total = sum(self.weights)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"mixture weights must sum to 1 (got {total})")

    @classmethod
    def bathtub(cls, *, infant_weight: float = 0.08,
                infant: WeibullHazard | None = None,
                wearout: WeibullHazard | None = None) -> "WeibullMixture":
        """The default early-life + wear-out superposition."""
        infant = infant or WeibullHazard(shape=0.55, scale=6.0)
        wearout = wearout or WeibullHazard(shape=4.0, scale=12.0)
        return cls(components=(infant, wearout),
                   weights=(infant_weight, 1.0 - infant_weight))

    @property
    def infant(self) -> WeibullHazard:
        return self.components[0]

    @property
    def wearout(self) -> WeibullHazard:
        return self.components[-1]

    def cdf(self, t: float | np.ndarray) -> float | np.ndarray:
        """Mixture failure probability ``F(t) = sum_i w_i F_i(t)``."""
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t, dtype=float)
        for w, comp in zip(self.weights, self.components):
            out = out + w * comp.cdf(t)
        return float(out) if out.ndim == 0 else out

    def sample(self, rng: np.random.Generator,
               size: int) -> tuple[np.ndarray, np.ndarray]:
        """``(lifetimes, component_index)`` for ``size`` devices.

        Component choice and the per-device inverse-CDF uniform are drawn in
        a fixed order so the sample is fully determined by the generator
        state — the property the fleet-engine parity pinning relies on.
        """
        comp = rng.choice(len(self.components), size=size,
                          p=np.asarray(self.weights))
        u = rng.random(size)
        times = np.empty(size, dtype=float)
        for i, c in enumerate(self.components):
            mask = comp == i
            if np.any(mask):
                times[mask] = c.quantile(u[mask])
        return times, comp
