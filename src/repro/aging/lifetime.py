"""Lifetime simulation driving the programmable monitors.

Walks a device through its lifetime: at every time point the gate delays are
degraded (wear-out scenario and/or marginal-device model), a sample workload
is simulated with full timing accuracy, and every monitor configuration is
evaluated at the nominal capture time.  The result records, per
configuration, when its guard band was first violated — the raw material for
failure prediction (Fig. 2 b/c of the paper: wide guard band first, narrower
bands as degradation progresses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aging.core import active_models, aged_circuit, sample_workload
from repro.aging.degradation import AgingScenario
from repro.aging.marginal import MarginalDeviceModel
from repro.monitors.insertion import MonitorPlacement
from repro.netlist.circuit import Circuit
from repro.simulation.wave_sim import WaveformSimulator
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta


@dataclass
class LifetimePoint:
    """Device state at one lifetime instant."""

    t: float
    critical_path: float
    slack: float
    #: config index -> monitor alert observed under the sample workload.
    alerts: dict[int, bool]
    #: config index -> names of alerting monitors.
    alerting_monitors: dict[int, list[str]] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Setup failure at nominal speed (critical path exceeds the clock)."""
        return self.slack < 0.0


@dataclass
class LifetimeResult:
    """Chronological lifetime trace."""

    clock: ClockSpec
    config_delays: tuple[float, ...]
    points: list[LifetimePoint] = field(default_factory=list)

    def first_alert_time(self, config: int) -> float | None:
        """Earliest lifetime instant at which the config raised an alert."""
        for p in self.points:
            if p.alerts.get(config):
                return p.t
        return None

    @property
    def failure_time(self) -> float | None:
        for p in self.points:
            if p.failed:
                return p.t
        return None

    def margin_series(self) -> list[tuple[float, float]]:
        """(t, slack) pairs — the degradation curve."""
        return [(p.t, p.slack) for p in self.points]


class LifetimeSimulator:
    """Simulates one device instance through its lifetime."""

    def __init__(
        self,
        circuit: Circuit,
        clock: ClockSpec,
        placement: MonitorPlacement,
        *,
        scenario: AgingScenario | None = None,
        marginal: MarginalDeviceModel | None = None,
        workload_patterns: int = 8,
        seed: int = 0,
    ) -> None:
        self.models = active_models(scenario, marginal)
        self.circuit = circuit
        self.clock = clock
        self.placement = placement
        self.scenario = scenario
        self.marginal = marginal
        self.workload_patterns = workload_patterns
        self.seed = seed

    def _workload(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Deterministic sample of functional launch/capture vectors."""
        return sample_workload(self.circuit, self.workload_patterns,
                               self.seed)

    def _aged_circuit(self, t: float) -> Circuit:
        return aged_circuit(self.circuit, self.models, t)

    def run(self, times: list[float]) -> LifetimeResult:
        """Evaluate the device at each (ascending) lifetime point."""
        if sorted(times) != list(times):
            raise ValueError("lifetime points must be ascending")
        configs = self.placement.configs
        result = LifetimeResult(clock=self.clock,
                                config_delays=tuple(configs))
        workload = self._workload()
        t_capture = self.clock.t_nom
        for t in times:
            aged = self._aged_circuit(t)
            sta = run_sta(aged, clock_period=self.clock.t_nom)
            sim = WaveformSimulator(aged)
            alerts = {ci: False for ci in range(len(configs))}
            alerting: dict[int, list[str]] = {ci: [] for ci in alerts}
            for launch, capture in workload:
                res = sim.simulate(launch, capture)
                for mon in self.placement.bank:
                    wave = res.waveforms[mon.gate]
                    for ci in range(len(configs)):
                        if alerts[ci] and mon.name in alerting[ci]:
                            continue
                        saved = mon.selected
                        mon.select(ci)
                        hit = mon.alert(wave, t_capture)
                        mon.select(saved)
                        if hit:
                            alerts[ci] = True
                            if mon.name not in alerting[ci]:
                                alerting[ci].append(mon.name)
            result.points.append(LifetimePoint(
                t=t,
                critical_path=sta.critical_path,
                slack=self.clock.t_nom - sta.critical_path,
                alerts=alerts,
                alerting_monitors=alerting,
            ))
        return result
