"""Marginal (early-life failure) device modeling.

Early-life failures [2] stem from latent defects — e.g. weak gate oxide —
that pass manufacturing test but magnify quickly in the field.  The model
here marks a small set of *weak gates* carrying an initial hidden extra
delay (≈ the 6σ small-delay-fault population) that grows much faster than
normal wear-out:

``Δd_weak(t) = delta0 · (1 + growth · t^accel)``

so a device that was marginally passing at ``t = 0`` violates timing within
a fraction of the nominal lifetime — exactly the failures FAST screening and
in-field monitors are meant to catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.netlist.circuit import Circuit, GateKind
from repro.timing.variation import fault_size_for_gate


@dataclass
class MarginalDeviceModel:
    """Early-life degradation of a fixed set of weak gates."""

    weak_gates: dict[int, float]  # gate index -> initial extra delay (ps)
    growth: float = 0.8
    accel: float = 1.3

    def extra_delay(self, gate: int, t: float) -> float:
        """Absolute extra delay (ps) of a weak gate at lifetime ``t``."""
        delta0 = self.weak_gates.get(gate)
        if delta0 is None:
            return 0.0
        if t <= 0.0:
            return delta0
        return delta0 * (1.0 + self.growth * t ** self.accel)

    def delay_factors(self, circuit: Circuit, t: float, *,
                      rng: np.random.Generator | None = None) -> np.ndarray:
        """Multiplicative factors equivalent to the extra delays at ``t``.

        The :class:`~repro.aging.api.DegradationModel` contract: one factor
        per gate, ``1.0`` everywhere except the weak gates.
        """
        out = np.ones(len(circuit.gates))
        for gate, _delta0 in self.weak_gates.items():
            g = circuit.gates[gate]
            base = g.max_delay()
            if base <= 0.0:
                continue
            out[gate] = 1.0 + self.extra_delay(gate, t) / base
        return out


def inject_marginal_defects(circuit: Circuit, *, count: int, seed: int = 0,
                            sigma_fraction: float = 0.2,
                            n_sigma: float = 6.0) -> MarginalDeviceModel:
    """Pick ``count`` random weak gates with 6σ-sized initial hidden delays.

    The initial deltas match the paper's small-delay-fault sizing, i.e. each
    weak gate is precisely one of the hidden delay faults the FAST flow
    targets at time zero.
    """
    rng = random.Random(seed)
    candidates = [g.index for g in circuit.gates
                  if GateKind.is_combinational(g.kind)]
    if count > len(candidates):
        raise ValueError(
            f"cannot mark {count} weak gates in a {len(candidates)}-gate circuit")
    chosen = rng.sample(candidates, count)
    weak = {
        gate: fault_size_for_gate(circuit, gate,
                                  sigma_fraction=sigma_fraction,
                                  n_sigma=n_sigma)
        for gate in chosen
    }
    return MarginalDeviceModel(weak_gates=weak)
