"""Closed-loop aging mitigation driven by monitor alerts.

The paper's motivation for *programmable* monitors (Sec. II-B): after the
first alert, countermeasures — frequency or voltage scaling — reduce
further degradation; the monitor then switches to a smaller delay element
to track the remaining margin.  This module implements that control loop
on top of the lifetime simulator:

* :class:`MitigationPolicy` — what to do on an alert: stretch the clock by
  a factor and/or derate the stress (modeling a supply-voltage reduction,
  which slows BTI/HCI), then step the shared monitor configuration down.
* :class:`AdaptiveLifetimeSimulator` — runs the device through its
  lifetime applying the policy, recording the clock trajectory and the
  achieved lifetime extension versus the unmitigated device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aging.core import active_models, aged_circuit, sample_workload
from repro.aging.degradation import AgingScenario
from repro.aging.marginal import MarginalDeviceModel
from repro.monitors.insertion import MonitorPlacement
from repro.netlist.circuit import Circuit
from repro.simulation.wave_sim import WaveformSimulator
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta


@dataclass(frozen=True)
class MitigationPolicy:
    """Reaction to a guard-band violation.

    ``clock_stretch`` multiplies the operating period on each alert (1.05 =
    5 % frequency down-scaling); ``stress_derate`` multiplies the effective
    lifetime-stress clock (supply scaling slows BTI/HCI, modeled as time
    dilation of the degradation laws); ``max_actions`` bounds the number of
    interventions (a system cannot slow down forever).
    """

    clock_stretch: float = 1.05
    stress_derate: float = 0.7
    max_actions: int = 3

    def __post_init__(self) -> None:
        if self.clock_stretch < 1.0:
            raise ValueError("clock_stretch must be >= 1")
        if not 0.0 < self.stress_derate <= 1.0:
            raise ValueError("stress_derate must lie in (0, 1]")


@dataclass
class AdaptiveLifetimePoint:
    """One lifetime instant under the adaptive controller."""

    t: float
    period: float
    critical_path: float
    alert: bool
    actions_taken: int
    config: int

    @property
    def slack(self) -> float:
        return self.period - self.critical_path

    @property
    def failed(self) -> bool:
        return self.slack < 0.0


@dataclass
class AdaptiveLifetimeResult:
    points: list[AdaptiveLifetimePoint] = field(default_factory=list)

    @property
    def failure_time(self) -> float | None:
        for p in self.points:
            if p.failed:
                return p.t
        return None

    @property
    def total_actions(self) -> int:
        return self.points[-1].actions_taken if self.points else 0

    def clock_trajectory(self) -> list[tuple[float, float]]:
        return [(p.t, p.period) for p in self.points]


class AdaptiveLifetimeSimulator:
    """Lifetime simulation with alert-triggered mitigation.

    On every evaluation instant the monitors are checked under the current
    configuration at the *current* (possibly stretched) clock; an alert
    triggers the policy: stretch the clock, derate the stress clock, and
    select the next-smaller delay element (Fig. 2c) so the narrower guard
    band keeps watching the shrunken margin.
    """

    def __init__(self, circuit: Circuit, clock: ClockSpec,
                 placement: MonitorPlacement, *,
                 scenario: AgingScenario,
                 marginal: MarginalDeviceModel | None = None,
                 policy: MitigationPolicy | None = None,
                 workload_patterns: int = 8, seed: int = 0) -> None:
        self.models = active_models(scenario, marginal)
        self.circuit = circuit
        self.clock = clock
        self.placement = placement
        self.scenario = scenario
        self.marginal = marginal
        self.policy = policy or MitigationPolicy()
        self.workload_patterns = workload_patterns
        self.seed = seed

    def _workload(self):
        return sample_workload(self.circuit, self.workload_patterns,
                               self.seed)

    def _aged(self, effective_t: float) -> Circuit:
        return aged_circuit(self.circuit, self.models, effective_t)

    def run(self, times: list[float]) -> AdaptiveLifetimeResult:
        if sorted(times) != list(times):
            raise ValueError("lifetime points must be ascending")
        configs = self.placement.configs
        workload = self._workload()
        result = AdaptiveLifetimeResult()

        period = self.clock.t_nom
        config = len(configs) - 1  # start with the widest guard band
        actions = 0
        stress_clock = 0.0
        prev_t = 0.0
        derate = 1.0

        for t in times:
            # Stress time advances slower once derated.
            stress_clock += (t - prev_t) * derate
            prev_t = t
            aged = self._aged(stress_clock)
            sta = run_sta(aged, clock_period=period)
            sim = WaveformSimulator(aged)
            alert = False
            for launch, capture in workload:
                res = sim.simulate(launch, capture)
                for mon in self.placement.bank:
                    saved = mon.selected
                    mon.select(config)
                    # The controller uses the strict guard-band check (any
                    # toggle inside the window): a safety mechanism must not
                    # rely on the XOR comparator's parity blind spot.
                    hit = mon.window_violation(res.waveforms[mon.gate],
                                               period)
                    mon.select(saved)
                    if hit:
                        alert = True
                        break
                if alert:
                    break
            result.points.append(AdaptiveLifetimePoint(
                t=t, period=period, critical_path=sta.critical_path,
                alert=alert, actions_taken=actions, config=config))
            if alert and actions < self.policy.max_actions:
                actions += 1
                period *= self.policy.clock_stretch
                derate *= self.policy.stress_derate
                if config > 0:
                    config -= 1
        return result
