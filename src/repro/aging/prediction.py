"""Failure prediction from programmable-monitor alerts.

The monitor's delay element ``d`` defines a guard band: an alert under
configuration ``d`` means the observed timing margin has shrunk below ``d``.
A *programmable* monitor therefore yields a staircase of margin upper bounds
over the lifetime — when the margin crosses the largest delay the device is
flagged for countermeasures (frequency/voltage scaling), and each
smaller-delay alert tightens the remaining-life estimate (Sec. II-B).

:class:`FailurePredictor` turns a :class:`LifetimeResult` into a
:class:`PredictionReport`: margin-crossing events, a least-squares
extrapolation of the margin trajectory, the predicted failure time and the
achieved warning lead time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aging.lifetime import LifetimeResult


@dataclass(frozen=True)
class MarginCrossing:
    """First alert of one configuration: margin fell below ``guard_band``."""

    config: int
    guard_band: float
    time: float


@dataclass
class PredictionReport:
    """Outcome of monitor-based failure prediction for one device."""

    crossings: list[MarginCrossing]
    predicted_failure_time: float | None
    actual_failure_time: float | None
    first_warning_time: float | None

    @property
    def lead_time(self) -> float | None:
        """Warning margin: actual failure minus first alert (None if either
        is unknown)."""
        if self.first_warning_time is None or self.actual_failure_time is None:
            return None
        return self.actual_failure_time - self.first_warning_time

    @property
    def prediction_error(self) -> float | None:
        if (self.predicted_failure_time is None
                or self.actual_failure_time is None):
            return None
        return self.predicted_failure_time - self.actual_failure_time

    def summary(self) -> dict[str, object]:
        return {
            "crossings": [(c.config, round(c.guard_band, 2), c.time)
                          for c in self.crossings],
            "first_warning": self.first_warning_time,
            "predicted_failure": self.predicted_failure_time,
            "actual_failure": self.actual_failure_time,
            "lead_time": self.lead_time,
        }


@dataclass
class FailurePredictor:
    """Extrapolates the margin staircase to a failure-time estimate.

    ``min_points`` crossings are required before extrapolating; with fewer,
    the predictor falls back to the simulated slack series when
    ``use_slack_fallback`` is set (models an ideal margin sensor).
    """

    min_points: int = 2
    use_slack_fallback: bool = True

    def crossings_of(self, result: LifetimeResult) -> list[MarginCrossing]:
        out: list[MarginCrossing] = []
        for ci, d in enumerate(result.config_delays):
            t = result.first_alert_time(ci)
            if t is not None:
                out.append(MarginCrossing(config=ci, guard_band=d, time=t))
        out.sort(key=lambda c: c.time)
        return out

    def predict(self, result: LifetimeResult) -> PredictionReport:
        crossings = self.crossings_of(result)
        first_warning = crossings[0].time if crossings else None
        predicted = self._extrapolate(crossings)
        if predicted is None and self.use_slack_fallback:
            predicted = self._extrapolate_slack(result)
        return PredictionReport(
            crossings=crossings,
            predicted_failure_time=predicted,
            actual_failure_time=result.failure_time,
            first_warning_time=first_warning,
        )

    # ------------------------------------------------------------------
    # Extrapolation helpers
    # ------------------------------------------------------------------
    def _extrapolate(self, crossings: list[MarginCrossing]) -> float | None:
        """Least-squares linear fit of margin(t); root is the failure time.

        A crossing (d, t) bounds the margin at time t from above by d; using
        the guard bands as margin samples gives a conservative (early)
        estimate, which is the right bias for a safety mechanism.
        """
        pts = [(c.time, c.guard_band) for c in crossings]
        if len(pts) < self.min_points:
            return None
        slope, intercept = _least_squares(pts)
        if slope >= 0.0:
            return None  # margin not shrinking: no finite prediction
        return -intercept / slope

    def _extrapolate_slack(self, result: LifetimeResult) -> float | None:
        pts = [(t, s) for t, s in result.margin_series() if s > 0.0]
        if len(pts) < 2:
            return None
        slope, intercept = _least_squares(pts)
        if slope >= 0.0:
            return None
        return -intercept / slope


def _least_squares(points: list[tuple[float, float]]) -> tuple[float, float]:
    """Plain least-squares line fit returning ``(slope, intercept)``."""
    n = len(points)
    sx = sum(p[0] for p in points)
    sy = sum(p[1] for p in points)
    sxx = sum(p[0] * p[0] for p in points)
    sxy = sum(p[0] * p[1] for p in points)
    denom = n * sxx - sx * sx
    if abs(denom) < 1e-12:
        return 0.0, sy / n
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    return slope, intercept
