"""Failure prediction from programmable-monitor alerts.

The monitor's delay element ``d`` defines a guard band: an alert under
configuration ``d`` means the observed timing margin has shrunk below ``d``.
A *programmable* monitor therefore yields a staircase of margin upper bounds
over the lifetime — when the margin crosses the largest delay the device is
flagged for countermeasures (frequency/voltage scaling), and each
smaller-delay alert tightens the remaining-life estimate (Sec. II-B).

:class:`FailurePredictor` turns a :class:`LifetimeResult` into a
:class:`PredictionReport`: margin-crossing events, a least-squares
extrapolation of the margin trajectory, the predicted failure time and the
achieved warning lead time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aging.lifetime import LifetimeResult


@dataclass(frozen=True)
class MarginCrossing:
    """First alert of one configuration: margin fell below ``guard_band``."""

    config: int
    guard_band: float
    time: float


@dataclass
class PredictionReport:
    """Outcome of monitor-based failure prediction for one device."""

    crossings: list[MarginCrossing]
    predicted_failure_time: float | None
    actual_failure_time: float | None
    first_warning_time: float | None

    @property
    def lead_time(self) -> float | None:
        """Warning margin: actual failure minus first alert (None if either
        is unknown)."""
        if self.first_warning_time is None or self.actual_failure_time is None:
            return None
        return self.actual_failure_time - self.first_warning_time

    @property
    def prediction_error(self) -> float | None:
        if (self.predicted_failure_time is None
                or self.actual_failure_time is None):
            return None
        return self.predicted_failure_time - self.actual_failure_time

    def summary(self) -> dict[str, object]:
        return {
            "crossings": [(c.config, round(c.guard_band, 2), c.time)
                          for c in self.crossings],
            "first_warning": self.first_warning_time,
            "predicted_failure": self.predicted_failure_time,
            "actual_failure": self.actual_failure_time,
            "lead_time": self.lead_time,
        }


@dataclass
class FailurePredictor:
    """Extrapolates the margin staircase to a failure-time estimate.

    ``min_points`` crossings are required before extrapolating; with fewer,
    the predictor falls back to the simulated slack series when
    ``use_slack_fallback`` is set (models an ideal margin sensor).
    """

    min_points: int = 2
    use_slack_fallback: bool = True

    def crossings_of(self, result: LifetimeResult) -> list[MarginCrossing]:
        out: list[MarginCrossing] = []
        for ci, d in enumerate(result.config_delays):
            t = result.first_alert_time(ci)
            if t is not None:
                out.append(MarginCrossing(config=ci, guard_band=d, time=t))
        out.sort(key=lambda c: c.time)
        return out

    def predict(self, result: LifetimeResult) -> PredictionReport:
        crossings = self.crossings_of(result)
        first_warning = crossings[0].time if crossings else None
        predicted = self._extrapolate(crossings)
        if predicted is None and self.use_slack_fallback:
            predicted = self._extrapolate_slack(result)
        return PredictionReport(
            crossings=crossings,
            predicted_failure_time=predicted,
            actual_failure_time=result.failure_time,
            first_warning_time=first_warning,
        )

    # ------------------------------------------------------------------
    # Extrapolation helpers
    # ------------------------------------------------------------------
    def _extrapolate(self, crossings: list[MarginCrossing]) -> float | None:
        """Least-squares linear fit of margin(t); root is the failure time.

        A crossing (d, t) bounds the margin at time t from above by d; using
        the guard bands as margin samples gives a conservative (early)
        estimate, which is the right bias for a safety mechanism.
        """
        pts = [(c.time, c.guard_band) for c in crossings]
        if len(pts) < self.min_points:
            return None
        slope, intercept = _least_squares(pts)
        if slope >= 0.0:
            return None  # margin not shrinking: no finite prediction
        return -intercept / slope

    def _extrapolate_slack(self, result: LifetimeResult) -> float | None:
        pts = [(t, s) for t, s in result.margin_series() if s > 0.0]
        if len(pts) < 2:
            return None
        slope, intercept = _least_squares(pts)
        if slope >= 0.0:
            return None
        return -intercept / slope


@dataclass
class FleetPredictions:
    """Batch failure prediction over a fleet (arrays indexed by device).

    All time arrays hold NaN where the quantity is undefined (no alert, no
    failure, no finite prediction).
    """

    devices: int
    first_warning: np.ndarray
    predicted_failure: np.ndarray
    actual_failure: np.ndarray

    @property
    def lead_time(self) -> np.ndarray:
        """Warning margin per device (NaN unless both times exist)."""
        return self.actual_failure - self.first_warning

    @property
    def prediction_error(self) -> np.ndarray:
        return self.predicted_failure - self.actual_failure

    def metrics(self, *, rel_tol: float = 0.5) -> dict[str, float]:
        """Fleet-level outcome counters and rates.

        A failing device is *detected* when its first warning strictly
        precedes the failure; a prediction is *bad* when it is missing or
        off by more than ``rel_tol`` relative to the actual failure time.
        ``mispredict_rate`` = (missed + badly-predicted) / failed.
        """
        failed = ~np.isnan(self.actual_failure)
        warned = ~np.isnan(self.first_warning)
        detected = failed & warned & (self.first_warning
                                      < self.actual_failure)
        missed = failed & ~detected
        false_alarm = warned & ~failed
        with np.errstate(invalid="ignore", divide="ignore"):
            rel_err = np.abs(self.prediction_error) / self.actual_failure
        bad_prediction = failed & detected & (
            np.isnan(self.predicted_failure) | (rel_err > rel_tol))
        n_failed = int(np.count_nonzero(failed))
        lead = self.lead_time[detected]
        return {
            "devices": self.devices,
            "failed": n_failed,
            "warned": int(np.count_nonzero(warned)),
            "detected": int(np.count_nonzero(detected)),
            "missed": int(np.count_nonzero(missed)),
            "false_alarms": int(np.count_nonzero(false_alarm)),
            "bad_predictions": int(np.count_nonzero(bad_prediction)),
            "detection_rate": (int(np.count_nonzero(detected)) / n_failed
                               if n_failed else 1.0),
            "mispredict_rate": (
                (int(np.count_nonzero(missed))
                 + int(np.count_nonzero(bad_prediction))) / n_failed
                if n_failed else 0.0),
            "mean_lead_time": float(np.mean(lead)) if lead.size else None,
            "median_lead_time": (float(np.median(lead))
                                 if lead.size else None),
        }


def predict_fleet(result, predictor: FailurePredictor | None = None,
                  ) -> FleetPredictions:
    """Vectorized :class:`FailurePredictor` over a fleet result.

    ``result`` is a :class:`repro.aging.fleet.FleetResult`.  The guard-band
    staircase fit runs as config-axis array sums (config order, fixed),
    with the slack-series fallback where too few crossings exist — the
    same two-stage scheme as the scalar :meth:`FailurePredictor.predict`.
    """
    predictor = predictor or FailurePredictor()
    alert_t = result.first_alert_times()          # (C, D)
    delays = np.asarray(result.config_delays)[:, None]
    mask = ~np.isnan(alert_t)
    t = np.where(mask, alert_t, 0.0)
    y = np.where(mask, np.broadcast_to(delays, alert_t.shape), 0.0)
    predicted = _masked_lsq_root(t, y, mask, axis=0,
                                 min_points=predictor.min_points)
    if predictor.use_slack_fallback:
        slack = result.slack                      # (D, T)
        smask = slack > 0.0
        st = np.where(smask, result.times[None, :], 0.0)
        sy = np.where(smask, slack, 0.0)
        fallback = _masked_lsq_root(st, sy, smask, axis=1, min_points=2)
        predicted = np.where(np.isnan(predicted), fallback, predicted)
    first_warning = result.first_warning_times()
    return FleetPredictions(
        devices=result.devices,
        first_warning=first_warning,
        predicted_failure=predicted,
        actual_failure=result.failure_times(),
    )


def _masked_lsq_root(t: np.ndarray, y: np.ndarray, mask: np.ndarray,
                     *, axis: int, min_points: int) -> np.ndarray:
    """Per-device root of a masked least-squares line fit (NaN when none).

    Mirrors :func:`_least_squares` + the ``slope < 0`` guard: devices with
    fewer than ``min_points`` samples, a degenerate denominator or a
    non-shrinking margin get NaN.
    """
    n = mask.sum(axis=axis).astype(float)
    sx = t.sum(axis=axis)
    sy = y.sum(axis=axis)
    sxx = (t * t).sum(axis=axis)
    sxy = (t * y).sum(axis=axis)
    denom = n * sxx - sx * sx
    with np.errstate(invalid="ignore", divide="ignore"):
        slope = np.where(np.abs(denom) < 1e-12, 0.0,
                         (n * sxy - sx * sy) / denom)
        intercept = np.where(n > 0, (sy - slope * sx) / n, np.nan)
        root = np.where(slope < 0.0, -intercept / slope, np.nan)
    return np.where(n >= min_points, root, np.nan)


def _least_squares(points: list[tuple[float, float]]) -> tuple[float, float]:
    """Plain least-squares line fit returning ``(slope, intercept)``."""
    n = len(points)
    sx = sum(p[0] for p in points)
    sy = sum(p[1] for p in points)
    sxx = sum(p[0] * p[0] for p in points)
    sxy = sum(p[0] * p[1] for p in points)
    denom = n * sxx - sx * sx
    if abs(denom) < 1e-12:
        return 0.0, sy / n
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    return slope, intercept
