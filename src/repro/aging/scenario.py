"""Declarative aging-scenario files.

``repro aging --scenario s.json`` and ``repro fleet --scenario s.json`` both
consume one dataclass-backed schema describing *everything random or
physical* about a lifetime study: the degradation-law parameters, the
per-gate stress spread, the per-device process variation, the Weibull
hazard mixture behind the population lifetimes, the lifetime checkpoints
and every seed.  Serialising the spec (rather than passing a dozen CLI
flags) makes fleet runs reproducible and gives the stage cache a stable
fingerprint to key artifacts on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.aging.degradation import AgingScenario, BtiModel, EmModel, HciModel
from repro.aging.hazard import WeibullHazard, WeibullMixture

#: Default lifetime checkpoints (geometric sweep, lifetime units).
DEFAULT_CHECKPOINTS = tuple(0.25 * 2 ** (k / 2.0) for k in range(14))


@dataclass(frozen=True)
class VariationSpec:
    """Per-device process spread of the degradation-law amplitudes.

    Each device draws one lognormal multiplier per mechanism
    (``exp(N(0, sigma))``), modeling die-to-die process variation of the
    BTI/HCI/EM susceptibility.
    """

    bti_sigma: float = 0.15
    hci_sigma: float = 0.20
    em_sigma: float = 0.25

    def __post_init__(self) -> None:
        for name in ("bti_sigma", "hci_sigma", "em_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete description of a (fleet) lifetime study.

    ``seed`` drives the population draws (process variation, lifetimes,
    weak-gate selection); ``gate_seed`` drives the deterministic per-gate
    stress/activity/current factors of the underlying
    :class:`~repro.aging.degradation.AgingScenario`.
    """

    bti: BtiModel = field(default_factory=BtiModel)
    hci: HciModel = field(default_factory=HciModel)
    em: EmModel = field(default_factory=EmModel)
    stress_spread: float = 0.5
    variation: VariationSpec = field(default_factory=VariationSpec)
    hazard: WeibullMixture = field(default_factory=WeibullMixture.bathtub)
    checkpoints: tuple[float, ...] = DEFAULT_CHECKPOINTS
    #: Weak (marginal-defect) gates injected into infant-mortality devices.
    infant_weak_gates: int = 2
    #: Clamp of the per-device aging time-scale tau = wearout_scale / L.
    tau_min: float = 0.25
    tau_max: float = 8.0
    #: Operating clock period as a multiple of the t=0 critical path (the
    #: design's timing margin the degradation has to eat through).
    clock_margin: float = 1.15
    gate_seed: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.checkpoints:
            raise ValueError("scenario needs at least one checkpoint")
        if list(self.checkpoints) != sorted(self.checkpoints):
            raise ValueError("checkpoints must be ascending")
        if self.checkpoints[0] <= 0.0:
            raise ValueError("checkpoints must be positive")
        if self.infant_weak_gates < 0:
            raise ValueError("infant_weak_gates must be non-negative")
        if not 0.0 < self.tau_min <= self.tau_max:
            raise ValueError("need 0 < tau_min <= tau_max")
        if self.clock_margin < 1.0:
            raise ValueError("clock_margin must be >= 1")

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def aging_scenario(self) -> AgingScenario:
        """The per-gate degradation scenario this spec describes."""
        return AgingScenario(bti=self.bti, hci=self.hci, em=self.em,
                             seed=self.gate_seed,
                             stress_spread=self.stress_spread)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["checkpoints"] = list(self.checkpoints)
        d["hazard"] = {
            "components": [asdict(c) for c in self.hazard.components],
            "weights": list(self.hazard.weights),
        }
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields: {', '.join(sorted(unknown))}")
        kwargs: dict = dict(data)
        for name, model_cls in (("bti", BtiModel), ("hci", HciModel),
                                ("em", EmModel)):
            if name in kwargs and isinstance(kwargs[name], dict):
                kwargs[name] = model_cls(**kwargs[name])
        if "variation" in kwargs and isinstance(kwargs["variation"], dict):
            kwargs["variation"] = VariationSpec(**kwargs["variation"])
        if "hazard" in kwargs and isinstance(kwargs["hazard"], dict):
            h = kwargs["hazard"]
            kwargs["hazard"] = WeibullMixture(
                components=tuple(WeibullHazard(**c)
                                 for c in h["components"]),
                weights=tuple(h["weights"]),
            )
        if "checkpoints" in kwargs:
            kwargs["checkpoints"] = tuple(kwargs["checkpoints"])
        return cls(**kwargs)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2,
                                         sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def fingerprint(self) -> str:
        """Stable content hash — the stage-cache key component."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
