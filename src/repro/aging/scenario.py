"""Declarative aging-scenario files (re-export shim).

The scenario schema lives in :mod:`repro.core.spec` since the request
surfaces were unified into one typed JobSpec layer; this module keeps the
historical import path working.  ``repro aging --scenario s.json`` and
``repro fleet --scenario s.json`` consume the same dataclass-backed
schema describing *everything random or physical* about a lifetime
study — see :class:`repro.core.spec.ScenarioSpec`.
"""

from __future__ import annotations

from repro.core.spec import (
    DEFAULT_CHECKPOINTS,
    ScenarioSpec,
    VariationSpec,
)

__all__ = ["DEFAULT_CHECKPOINTS", "ScenarioSpec", "VariationSpec"]
