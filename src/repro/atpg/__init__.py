"""Transition-fault ATPG: pattern-pair containers, PODEM test generation,
bit-parallel fault simulation with fault dropping, and static compaction.

Stands in for the commercial ATPG tool used in the paper's evaluation; the
scheduling flow only consumes the resulting compacted pattern-pair set.
"""

from repro.atpg.patterns import PatternPair, TestSet
from repro.atpg.path_atpg import generate_path_tests
from repro.atpg.transition import generate_transition_tests

__all__ = ["PatternPair", "TestSet", "generate_path_tests",
           "generate_transition_tests"]
