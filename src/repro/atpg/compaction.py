"""Static test-set compaction.

Two standard techniques:

* :func:`reverse_order_drop` — reverse-order fault dropping: walk the pattern
  list backwards keeping a pattern only when it detects a fault no
  later-kept pattern detects.  Later (deterministically-targeted) patterns
  tend to detect many random-phase faults, making early patterns redundant.
* :func:`merge_compatible` — greedy X-merging of pattern pairs whose care
  bits do not conflict.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.atpg.patterns import PatternPair, TestSet
from repro.utils.bitset import masks_to_matrix, num_words


def reverse_order_drop(num_patterns: int,
                       fault_masks: Iterable[int]) -> list[int]:
    """Select a detecting subset of pattern indices.

    ``fault_masks`` holds one bitmask per fault: bit ``p`` set iff pattern
    ``p`` detects the fault.  Patterns are considered from last to first; a
    pattern is kept iff some fault is detected by it and by no already-kept
    pattern.  Returns kept indices in ascending order.

    Implementation: the fault masks are packed into a ``(faults, words)``
    bit matrix and transposed into one *fault-index row per pattern*, so
    the reverse scan tracks the set of already-covered **faults** as a
    packed word row — the seed's per-pattern rescan of the whole mask list
    becomes one ``row & ~covered`` word test.
    """
    if num_patterns <= 0:
        return []
    full = (1 << num_patterns) - 1
    masks = [t for m in fault_masks if (t := m & full)]
    if not masks:
        return []
    fault_mat = masks_to_matrix(masks, num_patterns)
    # (faults, patterns) bit plane → transpose → (patterns, fault-words).
    plane = np.unpackbits(fault_mat.view(np.uint8), axis=1,
                          bitorder="little")[:, :num_patterns]
    packed = np.packbits(np.ascontiguousarray(plane.T), axis=1,
                         bitorder="little")
    wf = num_words(len(masks))
    pad = wf * 8 - packed.shape[1]
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    pattern_rows = packed.view(np.uint64)
    covered = np.zeros(wf, dtype=np.uint64)
    kept: list[int] = []
    for p in range(num_patterns - 1, -1, -1):
        row = pattern_rows[p]
        if np.any(row & ~covered):
            kept.append(p)
            covered |= row
    kept.reverse()
    return kept


def merge_compatible(test_set: TestSet) -> TestSet:
    """Greedy pairwise X-merging of compatible pattern pairs.

    Patterns with don't-cares produced by deterministic ATPG are merged when
    their care bits agree; first-fit order keeps the procedure O(n²) worst
    case but near-linear in practice.
    """
    merged: list[PatternPair] = []
    for pattern in test_set:
        for i, existing in enumerate(merged):
            combined = existing.merged_with(pattern)
            if combined is not None:
                merged[i] = combined
                break
        else:
            merged.append(pattern)
    return TestSet(test_set.circuit, merged)
