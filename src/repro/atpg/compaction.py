"""Static test-set compaction.

Two standard techniques:

* :func:`reverse_order_drop` — reverse-order fault dropping: walk the pattern
  list backwards keeping a pattern only when it detects a fault no
  later-kept pattern detects.  Later (deterministically-targeted) patterns
  tend to detect many random-phase faults, making early patterns redundant.
* :func:`merge_compatible` — greedy X-merging of pattern pairs whose care
  bits do not conflict.
"""

from __future__ import annotations

from typing import Iterable

from repro.atpg.patterns import PatternPair, TestSet


def reverse_order_drop(num_patterns: int,
                       fault_masks: Iterable[int]) -> list[int]:
    """Select a detecting subset of pattern indices.

    ``fault_masks`` holds one bitmask per fault: bit ``p`` set iff pattern
    ``p`` detects the fault.  Patterns are considered from last to first; a
    pattern is kept iff some fault is detected by it and by no already-kept
    pattern.  Returns kept indices in ascending order.
    """
    masks = [m for m in fault_masks if m]
    kept_union = 0
    kept: list[int] = []
    for p in range(num_patterns - 1, -1, -1):
        bit = 1 << p
        useful = False
        for m in masks:
            if m & bit and not m & kept_union:
                useful = True
                break
        if useful:
            kept.append(p)
            kept_union |= bit
    kept.reverse()
    return kept


def merge_compatible(test_set: TestSet) -> TestSet:
    """Greedy pairwise X-merging of compatible pattern pairs.

    Patterns with don't-cares produced by deterministic ATPG are merged when
    their care bits agree; first-fit order keeps the procedure O(n²) worst
    case but near-linear in practice.
    """
    merged: list[PatternPair] = []
    for pattern in test_set:
        for i, existing in enumerate(merged):
            combined = existing.merged_with(pattern)
            if combined is not None:
                merged[i] = combined
                break
        else:
            merged.append(pattern)
    return TestSet(test_set.circuit, merged)
