"""The D-algorithm (Roth 1966) — independent stuck-at test generation.

A second, structurally different ATPG engine used to cross-check PODEM:
where PODEM decides only on primary inputs, the D-algorithm assigns
*internal* lines, advancing a D-frontier toward the outputs and discharging
a J-frontier of yet-unjustified internal assignments.  Agreement of the two
engines on testability verdicts (and simulation-verified tests from both)
is the correctness evidence for the ATPG layer.

Values are composite pairs ``(good, faulty)`` with components in
``{0, 1, X}`` — the five-valued D-calculus (``D = (1,0)``, ``D' = (0,1)``)
plus partially-specified states.

Scope: single stuck-at faults at gate *output* pins (the cross-check
corpus).  Input-pin faults are covered by PODEM; supporting them here would
add per-branch value tracking without strengthening the cross-check.

Completeness: the engine is *sound* (every returned test is real — the
suite verifies each one by independent simulation) but knowingly
incomplete: the simplified J-frontier justifies good-machine values only,
so a handful of testable faults with reconvergent side conditions inside
the fault cone are reported untestable.  The flow itself always uses
PODEM; the D-algorithm exists as the independent cross-check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.faults.models import StuckAtFault
from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.logic import X, controlling_value, eval_ternary


@dataclass
class DalgStats:
    decisions: int = 0
    backtracks: int = 0
    aborted: bool = False


class DAlgorithm:
    """D-algorithm engine bound to one finalized circuit."""

    def __init__(self, circuit: Circuit, *, max_backtracks: int = 2000,
                 seed: int = 0) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before ATPG")
        self.circuit = circuit
        self.max_backtracks = max_backtracks
        self._rng = random.Random(seed)
        self._order = [i for i in circuit.topo_order
                       if GateKind.is_combinational(circuit.gates[i].kind)]
        self._obs = sorted({op.gate for op in circuit.observation_points()})
        self._sources = set(circuit.sources())
        self.stats = DalgStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, fault: StuckAtFault) -> dict[int, int] | None:
        """Source assignment detecting the (output-pin) stuck-at fault."""
        if not fault.site.is_output_pin:
            raise ValueError("the D-algorithm engine handles output-pin "
                             "faults; use PODEM for input-pin sites")
        self.stats = DalgStats()
        site = fault.site.gate
        activation = 1 - fault.value
        # Lines outside the fault's fanout cone always carry equal
        # good/faulty values — a powerful implication the engine exploits.
        self._cone = self.circuit.fanout_cone(site) | {site}
        # Composite line values; the site line carries D / D'.
        values: dict[int, tuple[int, int]] = {
            site: (activation, fault.value)}
        try:
            solution = self._search(values, fault)
        except _Abort:
            self.stats.aborted = True
            return None
        if solution is None:
            return None
        return {s: solution[s][0] for s in self._sources
                if s in solution and solution[s][0] != X}

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _search(self, values: dict[int, tuple[int, int]],
                fault: StuckAtFault) -> dict[int, tuple[int, int]] | None:
        values = self._imply(values, fault)
        if values is None:
            self._note_backtrack()
            return None
        if not self._error_at_output(values):
            frontier = self._d_frontier(values)
            if not frontier:
                self._note_backtrack()
                return None
            for gate in frontier:
                g = self.circuit.gates[gate]
                ctrl = controlling_value(g.kind)
                nc = 1 - ctrl if ctrl is not None else None
                trial = dict(values)
                ok = True
                for src in g.fanin:
                    vg, vf = trial.get(src, (X, X))
                    if vg != X and vf != X and vg != vf:
                        continue  # the D-carrying input drives propagation
                    if vg == X and vf == X:
                        if nc is None:
                            # XOR-family: any specified side value works.
                            side = self._rng.randint(0, 1)
                        else:
                            side = nc
                        trial[src] = ((side, side) if src not in self._cone
                                      else (side, X))
                    elif nc is not None and (vg == ctrl or vf == ctrl):
                        ok = False
                        break
                if not ok or trial == values:
                    continue  # blocked or no progress through this gate
                self.stats.decisions += 1
                result = self._search(trial, fault)
                if result is not None:
                    return result
            self._note_backtrack()
            return None
        # Error visible: discharge the J-frontier.
        j_gate = self._pick_j_frontier(values, fault)
        if j_gate is None:
            return values  # fully justified test cube
        g = self.circuit.gates[j_gate]
        target = values[j_gate]
        for combo in self._justifying_combos(g, target, values):
            trial = dict(values)
            trial.update(combo)
            self.stats.decisions += 1
            result = self._search(trial, fault)
            if result is not None:
                return result
        self._note_backtrack()
        return None

    def _note_backtrack(self) -> None:
        self.stats.backtracks += 1
        if self.stats.backtracks > self.max_backtracks:
            raise _Abort

    # ------------------------------------------------------------------
    # Implication and frontiers
    # ------------------------------------------------------------------
    def _imply(self, values: dict[int, tuple[int, int]],
               fault: StuckAtFault) -> dict[int, tuple[int, int]] | None:
        """Forward implication; None on contradiction."""
        out = dict(values)
        site = fault.site.gate
        for idx in self._order:
            g = self.circuit.gates[idx]
            in_g = [out.get(s, (X, X))[0] for s in g.fanin]
            in_f = [out.get(s, (X, X))[1] for s in g.fanin]
            vg = eval_ternary(g.kind, in_g)
            vf = eval_ternary(g.kind, in_f)
            if idx not in self._cone:
                vf = vg  # untouched by the fault: both machines agree
            if idx == site:
                # The faulty component of the site line is stuck.
                vf = fault.value
                if vg != X and vg != 1 - fault.value:
                    return None  # activation impossible under this cube
            have = out.get(idx)
            if have is None:
                if vg != X or vf != X:
                    out[idx] = (vg, vf)
                continue
            hg, hf = have
            # Merge: implied values must not contradict assigned ones.
            if vg != X and hg != X and vg != hg:
                return None
            if vf != X and hf != X and vf != hf:
                return None
            out[idx] = (vg if vg != X else hg, vf if vf != X else hf)
        return out

    def _error_at_output(self, values: dict[int, tuple[int, int]]) -> bool:
        return any(
            values.get(o, (X, X))[0] != X
            and values.get(o, (X, X))[1] != X
            and values[o][0] != values[o][1]
            for o in self._obs)

    def _d_frontier(self, values: dict[int, tuple[int, int]]) -> list[int]:
        out = []
        for idx in self._order:
            vg, vf = values.get(idx, (X, X))
            if vg != X and vf != X:
                continue
            g = self.circuit.gates[idx]
            for s in g.fanin:
                sg, sf = values.get(s, (X, X))
                if sg != X and sf != X and sg != sf:
                    out.append(idx)
                    break
        return out

    def _pick_j_frontier(self, values: dict[int, tuple[int, int]],
                         fault: StuckAtFault) -> int | None:
        """An assigned internal line whose inputs do not yet imply it."""
        site = fault.site.gate
        for idx in self._order:
            assigned = values.get(idx)
            if assigned is None:
                continue
            g = self.circuit.gates[idx]
            if not GateKind.is_combinational(g.kind):
                continue
            in_g = [values.get(s, (X, X))[0] for s in g.fanin]
            vg = eval_ternary(g.kind, in_g)
            want = assigned[0]
            if want != X and vg == X:
                return idx
            if idx == site and want != X and vg == X:
                return idx
        return None

    def _justifying_combos(self, g, target: tuple[int, int],
                           values: dict[int, tuple[int, int]]):
        """Input assignments making the gate's *good* output = target."""
        want = target[0]
        if want == X:
            return
        free = [s for s in g.fanin
                if values.get(s, (X, X))[0] == X]
        fixed = {s: values.get(s, (X, X))[0] for s in g.fanin if
                 values.get(s, (X, X))[0] != X}
        if not free:
            return
        seen: set[tuple[tuple[int, int], ...]] = set()
        for combo in product((0, 1), repeat=len(free)):
            in_vals = [fixed.get(s, None) for s in g.fanin]
            it = iter(combo)
            full = [v if v is not None else next(it) for v in in_vals]
            if eval_ternary(g.kind, full) != want:
                continue
            # Minimize: only keep assignments for pins that matter (all,
            # here) — dedupe identical dicts.
            assignment = tuple(
                (s, c) for s, c in zip(free, combo))
            if assignment in seen:
                continue
            seen.add(assignment)
            yield {s: ((c, c) if s not in self._cone else (c, X))
                   for s, c in assignment}


class _Abort(Exception):
    pass


def cross_check_testability(circuit: Circuit, faults, *,
                            seed: int = 0) -> dict[str, int]:
    """Compare PODEM and D-algorithm verdicts on output-pin stuck-at faults.

    Counter semantics (aborted runs excluded — a backtrack budget is not a
    verdict):

    * ``agree``      — identical verdicts,
    * ``podem_miss`` — the D-algorithm found a (simulation-verifiable) test
      for a fault PODEM proved untestable.  PODEM is the complete engine;
      any nonzero value here is a PODEM bug.
    * ``dalg_miss``  — PODEM found a test the D-algorithm missed.  The
      D-algorithm's simplified J-frontier justifies good-machine values
      only, so it is knowingly incomplete on reconvergent side conditions
      inside the fault cone; a small count here is expected and harmless
      (it never affects the flow, which uses PODEM).
    """
    from repro.atpg.podem import Podem

    podem = Podem(circuit, seed=seed)
    dalg = DAlgorithm(circuit, seed=seed)
    agree = podem_miss = dalg_miss = aborted = 0
    for fault in faults:
        if not fault.site.is_output_pin:
            continue
        p = podem.generate(fault)
        p_aborted = podem.stats.aborted
        d = dalg.generate(fault)
        d_aborted = dalg.stats.aborted
        if p_aborted or d_aborted:
            aborted += 1
            continue
        if (p is None) == (d is None):
            agree += 1
        elif d is not None:
            podem_miss += 1
        else:
            dalg_miss += 1
    return {"agree": agree, "podem_miss": podem_miss,
            "dalg_miss": dalg_miss, "aborted": aborted}
