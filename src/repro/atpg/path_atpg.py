"""Path-oriented (timing-aware) transition test generation.

The paper's introduction notes that hidden delay faults escape at-speed
test "even with timing-aware test patterns" — patterns that launch
transitions down the *longest* paths (KLPG-style).  This module implements
that baseline so the claim can be exercised: for each endpoint, the K
longest structural paths are sensitized explicitly.

Sensitization (non-robust):

* the capture vector ``v2`` holds every off-path input of every on-path
  gate at its non-controlling value (XOR-family gates accept any specified
  side value) and sets the path source to its final value,
* the launch vector ``v1`` flips the source, launching a transition that
  traverses the whole path.

Both vectors come from the multi-objective PODEM justification
(:meth:`repro.atpg.podem.Podem.justify_all`).  Each generated pair is
verified by timing simulation: the endpoint must toggle at (approximately)
the path's structural length, proving the intended path — not some short
parallel route — determined the captured edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.atpg.patterns import PatternPair, TestSet
from repro.atpg.podem import Podem
from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.logic import X, controlling_value
from repro.simulation.wave_sim import WaveformSimulator
from repro.timing.paths import TimingPath, k_longest_paths


@dataclass
class PathTest:
    """One sensitized path with its pattern pair and verification result."""

    path: TimingPath
    pattern: PatternPair
    observed_arrival: float | None

    @property
    def verified(self) -> bool:
        """The endpoint edge landed within 15 % of the structural length."""
        if self.observed_arrival is None:
            return False
        return abs(self.observed_arrival - self.path.length) \
            <= 0.15 * self.path.length + 1e-9


@dataclass
class PathAtpgResult:
    tests: list[PathTest] = field(default_factory=list)
    unsensitizable: int = 0

    def test_set(self, circuit: Circuit) -> TestSet:
        return TestSet(circuit, (t.pattern for t in self.tests))

    @property
    def verified_fraction(self) -> float:
        if not self.tests:
            return 0.0
        return sum(t.verified for t in self.tests) / len(self.tests)


def _path_objectives(circuit: Circuit, path: TimingPath,
                     rising_at_source: bool) -> list[tuple[int, int]] | None:
    """(gate, value) objectives making ``v2`` sensitize the path.

    Walks the path tracking the transition polarity; off-path inputs of
    AND/NAND/OR/NOR stages must hold the non-controlling value; NOT/BUF
    have no side inputs; XOR-family stages pass any side value (polarity
    flips when the side value is 1, which the caller does not need to
    know — only the *endpoint* polarity changes).
    """
    objectives: list[tuple[int, int]] = []
    value = 1 if rising_at_source else 0
    objectives.append((path.gates[0], value))
    for prev, cur in zip(path.gates, path.gates[1:]):
        g = circuit.gates[cur]
        ctrl = controlling_value(g.kind)
        for pin, src in enumerate(g.fanin):
            if src == prev:
                continue
            if ctrl is not None:
                objectives.append((src, 1 - ctrl))
            # XOR/XNOR side inputs: no constraint needed (any value
            # propagates); leave them free for the justifier.
        if g.kind in (GateKind.NOT, GateKind.NAND, GateKind.NOR,
                      GateKind.XNOR):
            value = 1 - value
        # (for XOR the polarity depends on the side value; untracked, as
        # only existence of the endpoint transition matters)
    return objectives


def sensitize_path(circuit: Circuit, path: TimingPath, *,
                   podem: Podem | None = None,
                   rng: random.Random | None = None,
                   rising_at_source: bool = True) -> PatternPair | None:
    """Build a launch/capture pair driving a transition down ``path``."""
    podem = podem or Podem(circuit)
    rng = rng or random.Random(0)
    source = path.gates[0]
    if not GateKind.is_source(circuit.gates[source].kind):
        raise ValueError("path must start at a combinational source")

    objectives = _path_objectives(circuit, path, rising_at_source)
    if objectives is None:
        return None
    capture_assign = podem.justify_all(objectives)
    if capture_assign is None:
        return None
    final = capture_assign.get(source, 1 if rising_at_source else 0)
    sources = circuit.sources()
    capture = tuple(capture_assign.get(s, X) for s in sources)
    # Launch vector: keep the sensitizing side conditions (they are also
    # the v1 values of a hazard-reduced test), flip only the source.
    launch = tuple((1 - final) if s == source else capture_assign.get(s, X)
                   for s in sources)
    return PatternPair(launch, capture).filled(rng)


def generate_path_tests(circuit: Circuit, *, k_per_endpoint: int = 2,
                        endpoints: list[int] | None = None,
                        seed: int = 0,
                        verify: bool = True) -> PathAtpgResult:
    """Sensitize the K longest paths into each (or given) endpoint."""
    rng = random.Random(seed)
    podem = Podem(circuit, seed=seed)
    sim = WaveformSimulator(circuit) if verify else None
    targets = (endpoints if endpoints is not None
               else sorted({op.gate for op in circuit.observation_points()}))

    result = PathAtpgResult()
    for endpoint in targets:
        for path in k_longest_paths(circuit, endpoint, k_per_endpoint):
            pattern = sensitize_path(circuit, path, podem=podem, rng=rng,
                                     rising_at_source=bool(rng.getrandbits(1)))
            if pattern is None:
                pattern = sensitize_path(circuit, path, podem=podem, rng=rng,
                                         rising_at_source=False)
            if pattern is None:
                result.unsensitizable += 1
                continue
            observed = None
            if sim is not None:
                res = sim.simulate(pattern.launch, pattern.capture)
                wave = res.waveforms[endpoint]
                if wave.events:
                    observed = wave.last_event_time
            result.tests.append(PathTest(path=path, pattern=pattern,
                                         observed_arrival=observed))
    return result
