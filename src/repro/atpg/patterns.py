"""Test pattern containers.

A transition/delay test is a *pattern pair* ``(v1, v2)``: the launch vector
``v1`` initialises the circuit, the capture vector ``v2`` launches the
transitions at ``t = 0`` whose responses are sampled at the FAST observation
time.  Vectors assign one value per combinational source (primary inputs and
scan flip-flops, in :meth:`Circuit.sources` order); the value ``X = 2``
denotes a don't-care that is filled deterministically before simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.netlist.circuit import Circuit
from repro.simulation.logic import X


@dataclass(frozen=True)
class PatternPair:
    """One launch/capture vector pair over the circuit sources."""

    launch: tuple[int, ...]
    capture: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.launch) != len(self.capture):
            raise ValueError("launch and capture vectors differ in length")
        for vec in (self.launch, self.capture):
            if any(v not in (0, 1, X) for v in vec):
                raise ValueError("pattern values must be 0, 1 or X")

    @property
    def width(self) -> int:
        return len(self.launch)

    @property
    def has_dont_cares(self) -> bool:
        return X in self.launch or X in self.capture

    def filled(self, rng: random.Random) -> "PatternPair":
        """Replace don't-cares with reproducible random values."""
        if not self.has_dont_cares:
            return self
        launch = tuple(rng.randint(0, 1) if v == X else v for v in self.launch)
        capture = tuple(rng.randint(0, 1) if v == X else v for v in self.capture)
        return PatternPair(launch, capture)

    def merged_with(self, other: "PatternPair") -> "PatternPair | None":
        """Bitwise-compatible merge, or None on conflict (static compaction)."""
        if self.width != other.width:
            return None
        launch: list[int] = []
        capture: list[int] = []
        for vec, a_vec, b_vec in ((launch, self.launch, other.launch),
                                  (capture, self.capture, other.capture)):
            for a, b in zip(a_vec, b_vec):
                if a == X:
                    vec.append(b)
                elif b == X or a == b:
                    vec.append(a)
                else:
                    return None
        return PatternPair(tuple(launch), tuple(capture))


class TestSet:
    """An ordered collection of pattern pairs for one circuit."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, circuit: Circuit,
                 patterns: Iterable[PatternPair] = ()) -> None:
        self.circuit = circuit
        self._width = len(circuit.sources())
        self.patterns: list[PatternPair] = []
        for p in patterns:
            self.append(p)

    @property
    def width(self) -> int:
        return self._width

    def append(self, pattern: PatternPair) -> None:
        if pattern.width != self._width:
            raise ValueError(
                f"pattern width {pattern.width} != {self._width} sources")
        self.patterns.append(pattern)

    def extend(self, patterns: Iterable[PatternPair]) -> None:
        for p in patterns:
            self.append(p)

    def filled(self, *, seed: int = 0) -> "TestSet":
        """Fill all don't-cares deterministically.

        Returns ``self`` when every pattern is already fully specified —
        the common case for random-phase batches and re-grading of
        deterministic patterns, where a fresh copy (and the RNG setup)
        would be pure overhead.
        """
        if not any(p.has_dont_cares for p in self.patterns):
            return self
        rng = random.Random(seed)
        return TestSet(self.circuit, (p.filled(rng) for p in self.patterns))

    def subset(self, indices: Sequence[int]) -> "TestSet":
        return TestSet(self.circuit, (self.patterns[i] for i in indices))

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[PatternPair]:
        return iter(self.patterns)

    def __getitem__(self, idx: int) -> PatternPair:
        return self.patterns[idx]


def random_test_set(circuit: Circuit, count: int, *, seed: int = 0) -> TestSet:
    """Fully-specified random pattern pairs (baseline / fallback generator)."""
    rng = random.Random(seed)
    width = len(circuit.sources())
    ts = TestSet(circuit)
    for _ in range(count):
        launch = tuple(rng.randint(0, 1) for _ in range(width))
        capture = tuple(rng.randint(0, 1) for _ in range(width))
        ts.append(PatternPair(launch, capture))
    return ts
