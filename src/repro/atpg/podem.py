"""PODEM test generation for stuck-at faults on the combinational core.

Classic PODEM (Goel 1981): decisions are made only on primary inputs (here:
all combinational sources, i.e. PIs and scan flip-flops — the enhanced-scan
model standard in delay testing), implications are computed by forward
three-valued simulation of the good and the faulty machine, and conflicts are
resolved by chronological backtracking.

Besides full test generation (:meth:`Podem.generate`), a justification-only
mode (:meth:`Podem.justify`) finds an input assignment that sets an internal
signal to a required value — used for the *launch* vector of a transition
test, which only needs to establish the initial value at the fault site.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.models import StuckAtFault
from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.logic import X, controlling_value, eval_ternary

#: Gate kinds whose output inverts the justified input objective.
_INVERTING = {GateKind.NAND, GateKind.NOR, GateKind.NOT, GateKind.XNOR}


@dataclass
class PodemStats:
    """Bookkeeping for one generation attempt."""

    decisions: int = 0
    backtracks: int = 0
    aborted: bool = False


class Untestable(Exception):
    """The fault is proven untestable (decision space exhausted)."""


class Aborted(Exception):
    """The backtrack limit was exceeded before a verdict."""


class Podem:
    """PODEM engine bound to one finalized circuit."""

    def __init__(self, circuit: Circuit, *, max_backtracks: int = 512,
                 seed: int = 0) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before ATPG")
        self.circuit = circuit
        self.max_backtracks = max_backtracks
        self._rng = random.Random(seed)
        self._order = [i for i in circuit.topo_order
                       if GateKind.is_combinational(circuit.gates[i].kind)]
        self._sources = circuit.sources()
        self._source_set = set(self._sources)
        self._obs_gates = sorted({op.gate
                                  for op in circuit.observation_points()})
        self._obs_set = set(self._obs_gates)
        self.stats = PodemStats()
        # Incremental implication state: persistent good-machine values,
        # flattened per-gate (kind, fanin, combinational fanout) tables, a
        # scratch scheduled-bitmap, and memoized per-site cone plans /
        # in-cone observation gates for the fault-effect passes.
        self._good = self._fresh_values()
        self._plans: dict[int, list[tuple[int, str, tuple[int, ...]]]] = {}
        self._obs_cone: dict[int, list[int]] = {}
        self._touched = bytearray(len(circuit.gates))
        gates = circuit.gates
        self._gk = [g.kind for g in gates]
        self._gf = [g.fanin for g in gates]
        self._gfo = [
            sorted({v for v, _pin in circuit.fanouts(i)
                    if GateKind.is_combinational(gates[v].kind)})
            for i in range(len(gates))
        ]
        # Levelized event queues: level = 1 + max fanin level, so scanning
        # buckets in ascending level order is a valid topological schedule
        # with plain list appends instead of heap operations.
        self._lvl = [circuit.level(i) for i in range(len(gates))]
        self._buckets: list[list[int]] = [
            [] for _ in range(circuit.depth + 1)]
        # Ternary truth tables up to arity 4, indexed radix-3
        # (((a*3 + b)*3 + c)*3 + d); shared per (kind, arity).  Wider gates
        # fall back to `eval_ternary`.
        table_memo: dict[tuple[str, int], tuple[int, ...]] = {}
        self._tab: list[tuple[int, ...] | None] = []
        for g in gates:
            arity = len(g.fanin)
            if not GateKind.is_combinational(g.kind) or arity > 4:
                self._tab.append(None)
                continue
            key = (g.kind, arity)
            tab = table_memo.get(key)
            if tab is None:
                values = [[]]
                for _ in range(arity):
                    values = [v + [x] for v in values for x in (0, 1, X)]
                tab = tuple(eval_ternary(g.kind, v) for v in values)
                table_memo[key] = tab
            self._tab.append(tab)

    def _fresh_values(self) -> list[int]:
        values = [X] * len(self.circuit.gates)
        for g in self.circuit.gates:
            if g.kind == GateKind.CONST0:
                values[g.index] = 0
            elif g.kind == GateKind.CONST1:
                values[g.index] = 1
        return values

    def _plan_of(self, site: int) -> list[tuple[int, str, tuple[int, ...]]]:
        """Topo-ordered ``(gate, kind, fanin)`` rows of ``site``'s cone."""
        plan = self._plans.get(site)
        if plan is None:
            gates = self.circuit.gates
            plan = [(i, gates[i].kind, gates[i].fanin)
                    for i in self.circuit.cone_schedule(site)]
            self._plans[site] = plan
        return plan

    def _set_source(self, src: int, value: int) -> list[tuple[int, int]]:
        """Assign (or clear, with X) a source and re-imply its cone.

        Event-driven selective trace: gates are scheduled through the
        fanout adjacency and popped in topological order (heap on topo
        position), so only the region whose values actually change is
        visited — not the whole fanout cone of the source.

        Returns the undo log — ``(gate, previous value)`` for every gate
        that changed — so chronological backtracking can restore the exact
        prior state without re-evaluating anything (see :meth:`_undo`).
        """
        good = self._good
        if good[src] == value:
            return []
        log = [(src, good[src])]
        good[src] = value
        gk, gf, gfo, tab, lvl = (self._gk, self._gf, self._gfo, self._tab,
                                 self._lvl)
        sched = self._touched
        buckets = self._buckets
        dirty: list[int] = []
        hi = 0
        for v in gfo[src]:
            sched[v] = 1
            dirty.append(v)
            level = lvl[v]
            buckets[level].append(v)
            if level > hi:
                hi = level
        lv = 0
        while lv <= hi:
            bucket = buckets[lv]
            if bucket:
                for idx in bucket:
                    f = gf[idx]
                    t = tab[idx]
                    if t is None:
                        new = eval_ternary(gk[idx], [good[s] for s in f])
                    else:
                        n = len(f)
                        if n == 2:
                            new = t[good[f[0]] * 3 + good[f[1]]]
                        elif n == 1:
                            new = t[good[f[0]]]
                        elif n == 3:
                            new = t[(good[f[0]] * 3 + good[f[1]]) * 3
                                    + good[f[2]]]
                        else:
                            new = t[((good[f[0]] * 3 + good[f[1]]) * 3
                                     + good[f[2]]) * 3 + good[f[3]]]
                    old = good[idx]
                    if new != old:
                        log.append((idx, old))
                        good[idx] = new
                        for v in gfo[idx]:
                            if not sched[v]:
                                sched[v] = 1
                                dirty.append(v)
                                level = lvl[v]
                                buckets[level].append(v)
                                if level > hi:
                                    hi = level
                bucket.clear()
            lv += 1
        for i in dirty:
            sched[i] = 0
        return log

    def _undo(self, log: list[tuple[int, int]]) -> None:
        """Restore the good-machine values recorded by :meth:`_set_source`."""
        good = self._good
        for idx, old in log:
            good[idx] = old

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, fault: StuckAtFault) -> dict[int, int] | None:
        """Find a source assignment detecting ``fault``.

        Returns a partial assignment ``{source gate index: 0/1}`` (unassigned
        sources are don't-cares), or None when untestable or aborted; check
        :attr:`stats` ``.aborted`` to distinguish the two.
        """
        self.stats = PodemStats()
        self._reset()
        assignment: dict[int, int] = {}
        # (source, value, flipped, undo log)
        stack: list[tuple[int, int, bool, list[tuple[int, int]]]] = []
        try:
            while True:
                good = self._good
                faulty = self._faulty(fault)
                if self._detected(good, faulty, fault.site.gate):
                    return dict(assignment)
                objective = self._objective(good, faulty, fault)
                if objective is None:
                    self._backtrack(assignment, stack)
                    continue
                decision = self._backtrace(objective, good)
                if decision is None:
                    self._backtrack(assignment, stack)
                    continue
                src, val = decision
                assignment[src] = val
                stack.append((src, val, False, self._set_source(src, val)))
                self.stats.decisions += 1
        except Untestable:
            return None
        except Aborted:
            self.stats.aborted = True
            return None
        finally:
            self._unwind(stack)

    def justify_all(self, objectives: list[tuple[int, int]]
                    ) -> dict[int, int] | None:
        """Source assignment satisfying *all* ``(gate, value)`` objectives.

        Generalized justification used by path-oriented test generation: the
        decision loop keeps working on the first unsatisfied objective and
        backtracks whenever any objective becomes violated.  Returns None on
        conflict (the objectives are mutually unsatisfiable) or abort.
        """
        self.stats = PodemStats()
        # Source objectives are assignments, not search work.
        assignment: dict[int, int] = {}
        pending: list[tuple[int, int]] = []
        for gate, value in objectives:
            if gate in self._source_set:
                if assignment.get(gate, value) != value:
                    return None
                assignment[gate] = value
            else:
                pending.append((gate, value))
        self._reset()
        base_logs = [self._set_source(src, val)
                     for src, val in assignment.items()]
        stack: list[tuple[int, int, bool, list[tuple[int, int]]]] = []
        try:
            while True:
                good = self._good
                violated = any(good[g] == 1 - v for g, v in pending)
                if violated:
                    self._backtrack(assignment, stack)
                    continue
                open_objs = [(g, v) for g, v in pending if good[g] == X]
                if not open_objs:
                    return dict(assignment)
                decision = self._backtrace(open_objs[0], good)
                if decision is None:
                    self._backtrack(assignment, stack)
                    continue
                src, val = decision
                assignment[src] = val
                stack.append((src, val, False, self._set_source(src, val)))
                self.stats.decisions += 1
        except Untestable:
            return None
        except Aborted:
            self.stats.aborted = True
            return None
        finally:
            self._unwind(stack)
            for log in reversed(base_logs):
                self._undo(log)

    def justify(self, gate: int, value: int) -> dict[int, int] | None:
        """Find a source assignment making ``gate``'s output equal ``value``.

        Pure good-machine justification (no fault, no propagation); used to
        build launch vectors.  Returns None when impossible or aborted.
        """
        self.stats = PodemStats()
        if gate in self._source_set:
            return {gate: value}
        self._reset()
        assignment: dict[int, int] = {}
        stack: list[tuple[int, int, bool, list[tuple[int, int]]]] = []
        try:
            while True:
                good = self._good
                if good[gate] == value:
                    return dict(assignment)
                if good[gate] == 1 - value:
                    self._backtrack(assignment, stack)
                    continue
                decision = self._backtrace((gate, value), good)
                if decision is None:
                    self._backtrack(assignment, stack)
                    continue
                src, val = decision
                assignment[src] = val
                stack.append((src, val, False, self._set_source(src, val)))
                self.stats.decisions += 1
        except Untestable:
            return None
        except Aborted:
            self.stats.aborted = True
            return None
        finally:
            self._unwind(stack)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        """Clear all source assignments (start of a generation attempt)."""
        for src in self._sources:
            if self._good[src] != X and GateKind.is_source(
                    self.circuit.gates[src].kind):
                g = self.circuit.gates[src]
                if g.kind in (GateKind.CONST0, GateKind.CONST1):
                    continue
                self._set_source(src, X)

    def _faulty(self, fault: StuckAtFault) -> list[int]:
        """Faulty-machine values derived from the current good values."""
        circuit = self.circuit
        good = self._good
        faulty = list(good)
        site = fault.site
        g = circuit.gates[site.gate]
        if site.is_output_pin:
            faulty[site.gate] = fault.value
        else:
            ins = [faulty[s] for s in g.fanin]
            ins[site.pin] = fault.value
            faulty[site.gate] = eval_ternary(g.kind, ins)
        if faulty[site.gate] == good[site.gate]:
            return faulty
        # Same event-driven trace as `_set_source`: only gates downstream
        # of an actual value change can differ from the good machine.
        gk, gf, gfo, tab, lvl = (self._gk, self._gf, self._gfo, self._tab,
                                 self._lvl)
        sched = self._touched
        buckets = self._buckets
        dirty: list[int] = []
        hi = 0
        for v in gfo[site.gate]:
            sched[v] = 1
            dirty.append(v)
            level = lvl[v]
            buckets[level].append(v)
            if level > hi:
                hi = level
        lv = 0
        while lv <= hi:
            bucket = buckets[lv]
            if bucket:
                for idx in bucket:
                    f = gf[idx]
                    t = tab[idx]
                    if t is None:
                        new = eval_ternary(gk[idx], [faulty[s] for s in f])
                    else:
                        n = len(f)
                        if n == 2:
                            new = t[faulty[f[0]] * 3 + faulty[f[1]]]
                        elif n == 1:
                            new = t[faulty[f[0]]]
                        elif n == 3:
                            new = t[(faulty[f[0]] * 3 + faulty[f[1]]) * 3
                                    + faulty[f[2]]]
                        else:
                            new = t[((faulty[f[0]] * 3 + faulty[f[1]]) * 3
                                     + faulty[f[2]]) * 3 + faulty[f[3]]]
                    if new != faulty[idx]:
                        faulty[idx] = new
                        for v in gfo[idx]:
                            if not sched[v]:
                                sched[v] = 1
                                dirty.append(v)
                                level = lvl[v]
                                buckets[level].append(v)
                                if level > hi:
                                    hi = level
                bucket.clear()
            lv += 1
        for i in dirty:
            sched[i] = 0
        return faulty

    # ------------------------------------------------------------------
    # PODEM machinery
    # ------------------------------------------------------------------
    def _obs_in_cone(self, site_gate: int) -> list[int]:
        """Observation gates that can ever see ``site_gate``'s fault effect
        (the site itself plus its fanout cone, restricted to observation
        points) — everywhere else ``good == faulty`` by construction."""
        cached = self._obs_cone.get(site_gate)
        if cached is None:
            obs = self._obs_set
            cached = [i for i in (site_gate,
                                  *self.circuit.cone_schedule(site_gate))
                      if i in obs]
            self._obs_cone[site_gate] = cached
        return cached

    def _detected(self, good: list[int], faulty: list[int],
                  site_gate: int) -> bool:
        return any(good[o] != X and faulty[o] != X and good[o] != faulty[o]
                   for o in self._obs_in_cone(site_gate))

    def _site_pin_value(self, good: list[int], fault: StuckAtFault) -> int:
        """Good-machine value at the faulted pin."""
        return good[fault.site.signal_gate(self.circuit)]

    def _objective(self, good: list[int], faulty: list[int],
                   fault: StuckAtFault) -> tuple[int, int] | None:
        """Next (gate, value) objective, or None to trigger backtracking."""
        site_val = self._site_pin_value(good, fault)
        activation = 1 - fault.value
        if site_val == fault.value:
            return None  # activation conflict
        if site_val == X:
            return (fault.site.signal_gate(self.circuit), activation)
        # The fault effect first materializes at the site gate itself; as
        # long as its good/faulty outputs are not both specified, no D-value
        # exists on any net and the frontier below cannot see the fault.
        # Objective: sensitise the site gate by fixing an X side-input.
        site_gate = fault.site.gate
        if good[site_gate] == X or faulty[site_gate] == X:
            g = self.circuit.gates[site_gate]
            ctrl = controlling_value(g.kind)
            noncontrolling = 1 - ctrl if ctrl is not None else 1
            for pin, src in enumerate(g.fanin):
                if good[src] == X:
                    return (src, noncontrolling)
            return None
        if good[site_gate] == faulty[site_gate]:
            return None  # effect masked at the site gate itself
        frontier = self._d_frontier(good, faulty, site_gate)
        if not frontier:
            return None
        if not self._x_path_exists(frontier, good, faulty):
            return None
        # Prefer frontier gates closest to an observation point, but keep
        # trying the others: a frontier gate may have no free side input
        # (its faulty output is X through a partially-specified D chain)
        # while another is still sensitizable.
        for gate_idx in sorted(frontier,
                               key=lambda i: -self.circuit.level(i)):
            g = self.circuit.gates[gate_idx]
            ctrl = controlling_value(g.kind)
            noncontrolling = 1 - ctrl if ctrl is not None else 1
            for pin, src in enumerate(g.fanin):
                if good[src] == X:
                    return (src, noncontrolling)
        return None

    def _d_frontier(self, good: list[int], faulty: list[int],
                    site_gate: int) -> list[int]:
        """Gates whose inputs carry a fault effect but whose output is X.

        D-values only exist on the site gate and inside its fanout cone, so
        the scan walks the memoized (topo-ordered) cone plan instead of the
        whole circuit — same members, same order as the full-circuit sweep.
        """
        out: list[int] = []
        for idx, _kind, fanin in self._plan_of(site_gate):
            if good[idx] != X and faulty[idx] != X:
                continue
            for s in fanin:
                if good[s] != X and faulty[s] != X and good[s] != faulty[s]:
                    out.append(idx)
                    break
        return out

    def _x_path_exists(self, frontier: list[int], good: list[int],
                       faulty: list[int]) -> bool:
        """Check some frontier gate reaches an observation point through
        X-valued gates (necessary condition for future propagation)."""
        seen: set[int] = set()
        stack = list(frontier)
        while stack:
            u = stack.pop()
            if u in self._obs_set:
                return True
            for v, _pin in self.circuit.fanouts(u):
                if v in seen:
                    continue
                vg = self.circuit.gates[v]
                if not GateKind.is_combinational(vg.kind):
                    continue
                if good[v] == X or faulty[v] == X:
                    seen.add(v)
                    stack.append(v)
        return False

    def _backtrace(self, objective: tuple[int, int],
                   good: list[int]) -> tuple[int, int] | None:
        """Map an internal objective to an unassigned source decision.

        Returns None when no unassigned source can influence the objective —
        the *current decision cube* is a dead end, which must trigger
        chronological backtracking (not an untestability verdict: other
        cubes may still succeed).
        """
        gate, value = objective
        guard = 0
        while gate not in self._source_set:
            guard += 1
            if guard > len(self.circuit.gates) + 1:
                return None  # defensive: should not happen on a DAG
            g = self.circuit.gates[gate]
            if g.kind in _INVERTING:
                value = 1 - value
            x_pins = [s for s in g.fanin if good[s] == X]
            if not x_pins:
                # The objective is already implied; restart from any X source
                # in the fanin cone to make progress.
                cone = self.circuit.fanin_cone(gate)
                free = [s for s in cone
                        if s in self._source_set and good[s] == X]
                if not free:
                    return None
                return (min(free), value)
            gate = min(x_pins, key=lambda s: self.circuit.level(s))
        return (gate, value)

    def _backtrack(self, assignment: dict[int, int],
                   stack: list[tuple[int, int, bool, list[tuple[int, int]]]]
                   ) -> None:
        """Flip the most recent unflipped decision; raise when exhausted.

        Each popped decision is rolled back by replaying its undo log —
        direct value restoration, no cone re-evaluation.
        """
        self.stats.backtracks += 1
        if self.stats.backtracks > self.max_backtracks:
            raise Aborted
        while stack:
            src, val, flipped, log = stack.pop()
            del assignment[src]
            self._undo(log)
            if not flipped:
                assignment[src] = 1 - val
                stack.append((src, 1 - val, True,
                              self._set_source(src, 1 - val)))
                return
        raise Untestable

    def _unwind(self, stack: list[tuple[int, int, bool,
                                        list[tuple[int, int]]]]) -> None:
        """Roll back every decision still applied (end of an attempt), so
        the persistent good machine returns to the all-X idle state."""
        while stack:
            _src, _val, _flipped, log = stack.pop()
            self._undo(log)
