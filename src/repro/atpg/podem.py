"""PODEM test generation for stuck-at faults on the combinational core.

Classic PODEM (Goel 1981): decisions are made only on primary inputs (here:
all combinational sources, i.e. PIs and scan flip-flops — the enhanced-scan
model standard in delay testing), implications are computed by forward
three-valued simulation of the good and the faulty machine, and conflicts are
resolved by chronological backtracking.

Besides full test generation (:meth:`Podem.generate`), a justification-only
mode (:meth:`Podem.justify`) finds an input assignment that sets an internal
signal to a required value — used for the *launch* vector of a transition
test, which only needs to establish the initial value at the fault site.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.models import StuckAtFault
from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.logic import X, controlling_value, eval_ternary

#: Gate kinds whose output inverts the justified input objective.
_INVERTING = {GateKind.NAND, GateKind.NOR, GateKind.NOT, GateKind.XNOR}


@dataclass
class PodemStats:
    """Bookkeeping for one generation attempt."""

    decisions: int = 0
    backtracks: int = 0
    aborted: bool = False


class Untestable(Exception):
    """The fault is proven untestable (decision space exhausted)."""


class Aborted(Exception):
    """The backtrack limit was exceeded before a verdict."""


class Podem:
    """PODEM engine bound to one finalized circuit."""

    def __init__(self, circuit: Circuit, *, max_backtracks: int = 512,
                 seed: int = 0) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before ATPG")
        self.circuit = circuit
        self.max_backtracks = max_backtracks
        self._rng = random.Random(seed)
        self._order = [i for i in circuit.topo_order
                       if GateKind.is_combinational(circuit.gates[i].kind)]
        self._sources = circuit.sources()
        self._source_set = set(self._sources)
        self._obs_gates = sorted({op.gate
                                  for op in circuit.observation_points()})
        self._obs_set = set(self._obs_gates)
        self.stats = PodemStats()
        # Incremental implication state: persistent good-machine values and
        # per-source fanout cones in evaluation order.
        self._good = self._fresh_values()
        self._cone_order: dict[int, list[int]] = {}

    def _fresh_values(self) -> list[int]:
        values = [X] * len(self.circuit.gates)
        for g in self.circuit.gates:
            if g.kind == GateKind.CONST0:
                values[g.index] = 0
            elif g.kind == GateKind.CONST1:
                values[g.index] = 1
        return values

    def _cone_of(self, src: int) -> list[int]:
        if src not in self._cone_order:
            cone = self.circuit.fanout_cone(src)
            self._cone_order[src] = [i for i in self._order if i in cone]
        return self._cone_order[src]

    def _set_source(self, src: int, value: int) -> None:
        """Assign (or clear, with X) a source and re-imply its cone."""
        good = self._good
        good[src] = value
        gates = self.circuit.gates
        for idx in self._cone_of(src):
            g = gates[idx]
            fanin = g.fanin
            good[idx] = eval_ternary(g.kind, [good[s] for s in fanin])

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, fault: StuckAtFault) -> dict[int, int] | None:
        """Find a source assignment detecting ``fault``.

        Returns a partial assignment ``{source gate index: 0/1}`` (unassigned
        sources are don't-cares), or None when untestable or aborted; check
        :attr:`stats` ``.aborted`` to distinguish the two.
        """
        self.stats = PodemStats()
        self._reset()
        assignment: dict[int, int] = {}
        stack: list[tuple[int, int, bool]] = []  # (source, value, flipped)
        try:
            while True:
                good = self._good
                faulty = self._faulty(fault)
                if self._detected(good, faulty):
                    return dict(assignment)
                objective = self._objective(good, faulty, fault)
                if objective is None:
                    self._backtrack(assignment, stack)
                    continue
                decision = self._backtrace(objective, good)
                if decision is None:
                    self._backtrack(assignment, stack)
                    continue
                src, val = decision
                assignment[src] = val
                self._set_source(src, val)
                stack.append((src, val, False))
                self.stats.decisions += 1
        except Untestable:
            return None
        except Aborted:
            self.stats.aborted = True
            return None

    def justify_all(self, objectives: list[tuple[int, int]]
                    ) -> dict[int, int] | None:
        """Source assignment satisfying *all* ``(gate, value)`` objectives.

        Generalized justification used by path-oriented test generation: the
        decision loop keeps working on the first unsatisfied objective and
        backtracks whenever any objective becomes violated.  Returns None on
        conflict (the objectives are mutually unsatisfiable) or abort.
        """
        self.stats = PodemStats()
        # Source objectives are assignments, not search work.
        assignment: dict[int, int] = {}
        pending: list[tuple[int, int]] = []
        for gate, value in objectives:
            if gate in self._source_set:
                if assignment.get(gate, value) != value:
                    return None
                assignment[gate] = value
            else:
                pending.append((gate, value))
        self._reset()
        for src, val in assignment.items():
            self._set_source(src, val)
        stack: list[tuple[int, int, bool]] = []
        try:
            while True:
                good = self._good
                violated = any(good[g] == 1 - v for g, v in pending)
                if violated:
                    self._backtrack(assignment, stack)
                    continue
                open_objs = [(g, v) for g, v in pending if good[g] == X]
                if not open_objs:
                    return dict(assignment)
                decision = self._backtrace(open_objs[0], good)
                if decision is None:
                    self._backtrack(assignment, stack)
                    continue
                src, val = decision
                assignment[src] = val
                self._set_source(src, val)
                stack.append((src, val, False))
                self.stats.decisions += 1
        except Untestable:
            return None
        except Aborted:
            self.stats.aborted = True
            return None

    def justify(self, gate: int, value: int) -> dict[int, int] | None:
        """Find a source assignment making ``gate``'s output equal ``value``.

        Pure good-machine justification (no fault, no propagation); used to
        build launch vectors.  Returns None when impossible or aborted.
        """
        self.stats = PodemStats()
        if gate in self._source_set:
            return {gate: value}
        self._reset()
        assignment: dict[int, int] = {}
        stack: list[tuple[int, int, bool]] = []
        try:
            while True:
                good = self._good
                if good[gate] == value:
                    return dict(assignment)
                if good[gate] == 1 - value:
                    self._backtrack(assignment, stack)
                    continue
                decision = self._backtrace((gate, value), good)
                if decision is None:
                    self._backtrack(assignment, stack)
                    continue
                src, val = decision
                assignment[src] = val
                self._set_source(src, val)
                stack.append((src, val, False))
                self.stats.decisions += 1
        except Untestable:
            return None
        except Aborted:
            self.stats.aborted = True
            return None

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        """Clear all source assignments (start of a generation attempt)."""
        for src in self._sources:
            if self._good[src] != X and GateKind.is_source(
                    self.circuit.gates[src].kind):
                g = self.circuit.gates[src]
                if g.kind in (GateKind.CONST0, GateKind.CONST1):
                    continue
                self._set_source(src, X)

    def _faulty(self, fault: StuckAtFault) -> list[int]:
        """Faulty-machine values derived from the current good values."""
        circuit = self.circuit
        good = self._good
        faulty = list(good)
        site = fault.site
        g = circuit.gates[site.gate]
        if site.is_output_pin:
            faulty[site.gate] = fault.value
        else:
            ins = [faulty[s] for s in g.fanin]
            ins[site.pin] = fault.value
            faulty[site.gate] = eval_ternary(g.kind, ins)
        if faulty[site.gate] == good[site.gate]:
            return faulty
        for idx in self._cone_of(site.gate):
            cg = circuit.gates[idx]
            faulty[idx] = eval_ternary(
                cg.kind, [faulty[s] for s in cg.fanin])
        return faulty

    # ------------------------------------------------------------------
    # PODEM machinery
    # ------------------------------------------------------------------
    def _detected(self, good: list[int], faulty: list[int]) -> bool:
        return any(good[o] != X and faulty[o] != X and good[o] != faulty[o]
                   for o in self._obs_gates)

    def _site_pin_value(self, good: list[int], fault: StuckAtFault) -> int:
        """Good-machine value at the faulted pin."""
        return good[fault.site.signal_gate(self.circuit)]

    def _objective(self, good: list[int], faulty: list[int],
                   fault: StuckAtFault) -> tuple[int, int] | None:
        """Next (gate, value) objective, or None to trigger backtracking."""
        site_val = self._site_pin_value(good, fault)
        activation = 1 - fault.value
        if site_val == fault.value:
            return None  # activation conflict
        if site_val == X:
            return (fault.site.signal_gate(self.circuit), activation)
        # The fault effect first materializes at the site gate itself; as
        # long as its good/faulty outputs are not both specified, no D-value
        # exists on any net and the frontier below cannot see the fault.
        # Objective: sensitise the site gate by fixing an X side-input.
        site_gate = fault.site.gate
        if good[site_gate] == X or faulty[site_gate] == X:
            g = self.circuit.gates[site_gate]
            ctrl = controlling_value(g.kind)
            noncontrolling = 1 - ctrl if ctrl is not None else 1
            for pin, src in enumerate(g.fanin):
                if good[src] == X:
                    return (src, noncontrolling)
            return None
        if good[site_gate] == faulty[site_gate]:
            return None  # effect masked at the site gate itself
        frontier = self._d_frontier(good, faulty)
        if not frontier:
            return None
        if not self._x_path_exists(frontier, good, faulty):
            return None
        # Prefer frontier gates closest to an observation point, but keep
        # trying the others: a frontier gate may have no free side input
        # (its faulty output is X through a partially-specified D chain)
        # while another is still sensitizable.
        for gate_idx in sorted(frontier,
                               key=lambda i: -self.circuit.level(i)):
            g = self.circuit.gates[gate_idx]
            ctrl = controlling_value(g.kind)
            noncontrolling = 1 - ctrl if ctrl is not None else 1
            for pin, src in enumerate(g.fanin):
                if good[src] == X:
                    return (src, noncontrolling)
        return None

    def _d_frontier(self, good: list[int], faulty: list[int]) -> list[int]:
        """Gates whose inputs carry a fault effect but whose output is X."""
        out: list[int] = []
        for idx in self._order:
            if good[idx] != X and faulty[idx] != X:
                continue
            g = self.circuit.gates[idx]
            for s in g.fanin:
                if good[s] != X and faulty[s] != X and good[s] != faulty[s]:
                    out.append(idx)
                    break
        return out

    def _x_path_exists(self, frontier: list[int], good: list[int],
                       faulty: list[int]) -> bool:
        """Check some frontier gate reaches an observation point through
        X-valued gates (necessary condition for future propagation)."""
        seen: set[int] = set()
        stack = list(frontier)
        while stack:
            u = stack.pop()
            if u in self._obs_set:
                return True
            for v, _pin in self.circuit.fanouts(u):
                if v in seen:
                    continue
                vg = self.circuit.gates[v]
                if not GateKind.is_combinational(vg.kind):
                    continue
                if good[v] == X or faulty[v] == X:
                    seen.add(v)
                    stack.append(v)
        return False

    def _backtrace(self, objective: tuple[int, int],
                   good: list[int]) -> tuple[int, int] | None:
        """Map an internal objective to an unassigned source decision.

        Returns None when no unassigned source can influence the objective —
        the *current decision cube* is a dead end, which must trigger
        chronological backtracking (not an untestability verdict: other
        cubes may still succeed).
        """
        gate, value = objective
        guard = 0
        while gate not in self._source_set:
            guard += 1
            if guard > len(self.circuit.gates) + 1:
                return None  # defensive: should not happen on a DAG
            g = self.circuit.gates[gate]
            if g.kind in _INVERTING:
                value = 1 - value
            x_pins = [s for s in g.fanin if good[s] == X]
            if not x_pins:
                # The objective is already implied; restart from any X source
                # in the fanin cone to make progress.
                cone = self.circuit.fanin_cone(gate)
                free = [s for s in cone
                        if s in self._source_set and good[s] == X]
                if not free:
                    return None
                return (min(free), value)
            gate = min(x_pins, key=lambda s: self.circuit.level(s))
        return (gate, value)

    def _backtrack(self, assignment: dict[int, int],
                   stack: list[tuple[int, int, bool]]) -> None:
        """Flip the most recent unflipped decision; raise when exhausted."""
        self.stats.backtracks += 1
        if self.stats.backtracks > self.max_backtracks:
            raise Aborted
        while stack:
            src, val, flipped = stack.pop()
            del assignment[src]
            if not flipped:
                assignment[src] = 1 - val
                self._set_source(src, 1 - val)
                stack.append((src, 1 - val, True))
                return
            self._set_source(src, X)
        raise Untestable
