"""Transition-fault test generation (launch/capture pattern pairs).

Stand-in for the commercial ATPG used in the paper's evaluation (Sec. V,
"compacted transition delay fault test sets with an average test coverage of
over 99.9 %").  Three phases:

1. **Random phase** — batches of random pattern pairs graded by bit-parallel
   fault simulation with fault dropping; only patterns detecting new faults
   are kept.
2. **Deterministic phase** — for each remaining fault, PODEM generates the
   capture vector (the transition fault's stuck-at image) and a
   justification pass produces the launch vector establishing the initial
   value at the site.
3. **Compaction** — reverse-order fault dropping removes patterns made
   redundant by later ones (see :mod:`repro.atpg.compaction`).

Detection criterion (gross-delay / enhanced-scan model): pattern pair
``(v1, v2)`` detects transition fault φ iff ``v1`` sets the site to the
initial value and ``v2`` detects the corresponding stuck-at fault.

Engines: fault grading runs on the word-matrix engine of
:class:`BitParallelSimulator` by default (``engine="matrix"``: vectorized
levelized evaluation, activation pre-screening, cone-sharing fault
batches, and a deterministic phase that packs each new pattern exactly
once and drops faults incrementally).  The seed pipeline is retained
verbatim as ``engine="reference"`` — both produce bit-identical per-fault
detect masks and identical compacted test sets (guarded by
``tests/test_transition_golden.py``), and the reference is the before-side
of the persistent ``BENCH_atpg.json`` baseline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.atpg.compaction import reverse_order_drop
from repro.atpg.patterns import PatternPair, TestSet
from repro.atpg.podem import Podem
from repro.faults.models import TransitionFault
from repro.faults.universe import fault_sites
from repro.netlist.circuit import Circuit
from repro.simulation.logic import X
from repro.simulation.parallel_sim import (
    BitParallelSimulator,
    mask_row,
    row_to_mask,
)
from repro.utils.profiling import StageTimer

#: Recognized values of the ``engine`` parameter.
ENGINES = ("matrix", "reference")


@dataclass
class AtpgResult:
    """Outcome of transition-fault test generation."""

    test_set: TestSet
    faults: list[TransitionFault]
    detected: set[TransitionFault] = field(default_factory=set)
    untestable: set[TransitionFault] = field(default_factory=set)
    aborted: set[TransitionFault] = field(default_factory=set)

    @property
    def coverage(self) -> float:
        """Detected / (total - untestable), in [0, 1]."""
        testable = len(self.faults) - len(self.untestable)
        if testable <= 0:
            return 1.0
        return len(self.detected) / testable

    def summary(self) -> dict[str, float]:
        return {
            "patterns": len(self.test_set),
            "faults": len(self.faults),
            "detected": len(self.detected),
            "untestable": len(self.untestable),
            "aborted": len(self.aborted),
            "coverage": round(self.coverage, 4),
        }


def transition_fault_list(circuit: Circuit) -> list[TransitionFault]:
    """Both-polarity transition faults at every gate pin."""
    out: list[TransitionFault] = []
    for site in fault_sites(circuit):
        out.append(TransitionFault(site, slow_to_rise=True))
        out.append(TransitionFault(site, slow_to_rise=False))
    return out


def _transition_masks(circuit: Circuit, sim: BitParallelSimulator,
                      good_launch: np.ndarray, good_capture: np.ndarray,
                      faults: Sequence[TransitionFault],
                      width: int) -> dict[TransitionFault, int]:
    """Matrix-engine grading against prepacked fault-free matrices.

    Activation words are read directly from the launch matrix (one gather
    for all faults); only activated faults enter the batched stuck-at
    propagation.
    """
    n = len(faults)
    if n == 0:
        return {}
    mrow = mask_row(width)
    sig = np.fromiter((f.site.signal_gate(circuit) for f in faults),
                      dtype=np.intp, count=n)
    act = good_launch[sig].copy()
    falling = np.fromiter((f.launch_value == 1 for f in faults),
                          dtype=bool, count=n)
    act[~falling] ^= mrow  # slow-to-rise activates where v1 is 0
    to_grade = np.flatnonzero(act.any(axis=1))
    det = np.zeros_like(act)
    if to_grade.size:
        det[to_grade] = sim.stuck_at_detect_words(
            good_capture, [faults[i].as_stuck_at() for i in to_grade], width)
    act &= det
    return {f: row_to_mask(act[i]) for i, f in enumerate(faults)}


def _detect_masks_matrix(circuit: Circuit, sim: BitParallelSimulator,
                         test_set: TestSet, faults: Sequence[TransitionFault],
                         *, seed: int) -> dict[TransitionFault, int]:
    filled = test_set.filled(seed=seed)
    if not len(filled):
        return {f: 0 for f in faults}
    launch_m, width = sim.pack_vectors_words([p.launch for p in filled])
    capture_m, _ = sim.pack_vectors_words([p.capture for p in filled])
    good_launch = sim.simulate_words(launch_m, width)
    good_capture = sim.simulate_words(capture_m, width)
    return _transition_masks(circuit, sim, good_launch, good_capture,
                             faults, width)


def _detect_masks_reference(circuit: Circuit, sim: BitParallelSimulator,
                            test_set: TestSet,
                            faults: Sequence[TransitionFault],
                            *, seed: int) -> dict[TransitionFault, int]:
    """The seed grading path: big-int words, one cone walk per fault."""
    filled = test_set.filled(seed=seed)
    launch_vecs = [p.launch for p in filled]
    capture_vecs = [p.capture for p in filled]
    if not launch_vecs:
        return {f: 0 for f in faults}
    launch_words, width = sim.pack_vectors(launch_vecs)
    capture_words, _ = sim.pack_vectors(capture_vecs)
    good_launch = sim.simulate(launch_words, width)
    good_capture = sim.simulate(capture_words, width)
    mask = (1 << width) - 1

    out: dict[TransitionFault, int] = {}
    for f in faults:
        sig = f.site.signal_gate(circuit)
        launch_word = good_launch[sig]
        act = (mask ^ launch_word) if f.launch_value == 0 else launch_word
        if act == 0:
            out[f] = 0
            continue
        det = sim.stuck_at_detect_mask(good_capture, f.as_stuck_at(), width)
        out[f] = act & det
    return out


def detect_masks(circuit: Circuit, sim: BitParallelSimulator,
                 test_set: TestSet, faults: list[TransitionFault],
                 *, seed: int = 0,
                 engine: str = "matrix") -> dict[TransitionFault, int]:
    """Per-fault bitmask of detecting patterns (bit p ↔ pattern p).

    Both engines return bit-identical masks; ``"matrix"`` grades all faults
    through the vectorized word-matrix kernels, ``"reference"`` keeps the
    seed per-fault big-int walk.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "reference":
        return _detect_masks_reference(circuit, sim, test_set, faults,
                                       seed=seed)
    return _detect_masks_matrix(circuit, sim, test_set, faults, seed=seed)


def _grade_pair(circuit: Circuit, sim: BitParallelSimulator,
                pair: PatternPair, faults: Sequence[TransitionFault]
                ) -> dict[TransitionFault, int]:
    """Grade one fully-specified pattern pair (deterministic phase).

    Packs the pair directly — no single-pattern :class:`TestSet`, no
    redundant re-fill, no re-sorted fault list — and reuses the batched
    matrix grading.
    """
    launch_m, width = sim.pack_vectors_words([pair.launch])
    capture_m, _ = sim.pack_vectors_words([pair.capture])
    good_launch = sim.simulate_words(launch_m, width)
    good_capture = sim.simulate_words(capture_m, width)
    return _transition_masks(circuit, sim, good_launch, good_capture,
                             faults, width)


def generate_transition_tests(
    circuit: Circuit,
    *,
    seed: int = 0,
    faults: list[TransitionFault] | None = None,
    random_batch: int = 32,
    max_random_batches: int = 20,
    stale_batches: int = 3,
    max_backtracks: int = 512,
    compact: bool = True,
    engine: str = "matrix",
    timer: StageTimer | None = None,
) -> AtpgResult:
    """Generate a compacted transition-fault pattern-pair set.

    ``engine`` selects the fault-grading kernels (``"matrix"`` — vectorized
    word-matrix engine with an incremental deterministic phase — or
    ``"reference"`` — the retained seed pipeline); results are identical.
    ``timer`` collects the per-stage wall-clock split (``random`` /
    ``podem`` / ``grade`` / ``compact``).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    rng = random.Random(seed)
    fault_list = faults if faults is not None else transition_fault_list(circuit)
    sim = BitParallelSimulator(circuit)
    width = len(circuit.sources())

    test_set = TestSet(circuit)
    undetected: set[TransitionFault] = set(fault_list)
    detected: set[TransitionFault] = set()

    # ------------------------------------------------------------------
    # Phase 1: random patterns with fault dropping
    # ------------------------------------------------------------------
    t0 = time.perf_counter() if timer is not None else 0.0
    stale = 0
    for _ in range(max_random_batches):
        if not undetected or stale >= stale_batches:
            break
        batch = TestSet(circuit, (
            PatternPair(
                tuple(rng.randint(0, 1) for _ in range(width)),
                tuple(rng.randint(0, 1) for _ in range(width)))
            for _ in range(random_batch)))
        masks = detect_masks(circuit, sim, batch, sorted(undetected),
                             seed=seed, engine=engine)
        useful_bits = 0
        newly: set[TransitionFault] = set()
        for f, m in masks.items():
            if m:
                newly.add(f)
                useful_bits |= m & (-m)  # keep the first detecting pattern
        if not newly:
            stale += 1
            continue
        stale = 0
        for p in range(len(batch)):
            if useful_bits >> p & 1:
                test_set.append(batch[p])
        detected |= newly
        undetected -= newly
    if timer is not None:
        timer.add("random", time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # Phase 2: deterministic PODEM for remaining faults
    # ------------------------------------------------------------------
    result = AtpgResult(test_set=test_set, faults=list(fault_list),
                        detected=detected)
    podem = Podem(circuit, max_backtracks=max_backtracks, seed=seed)
    sources = circuit.sources()
    if engine == "reference":
        _phase2_reference(circuit, sim, podem, sources, rng, undetected,
                          result, seed=seed)
    else:
        _phase2_incremental(circuit, sim, podem, sources, rng, undetected,
                            result, timer=timer)

    # ------------------------------------------------------------------
    # Phase 3: static compaction (reverse-order fault dropping)
    # ------------------------------------------------------------------
    test_set = result.test_set
    if compact and len(test_set) > 1:
        t0 = time.perf_counter() if timer is not None else 0.0
        masks = detect_masks(circuit, sim, test_set,
                             sorted(result.detected), seed=seed,
                             engine=engine)
        kept = reverse_order_drop(len(test_set), masks.values())
        result.test_set = test_set.subset(kept)
        if timer is not None:
            timer.add("compact", time.perf_counter() - t0)

    return result


def _phase2_incremental(circuit: Circuit, sim: BitParallelSimulator,
                        podem: Podem, sources: list[int],
                        rng: random.Random,
                        undetected: set[TransitionFault],
                        result: AtpgResult, *,
                        timer: StageTimer | None) -> None:
    """Deterministic phase on the matrix engine.

    The fault list is sorted once; each new pattern is packed exactly once
    and graded against the still-undetected faults through the activation
    pre-screen and cone-sharing batches.  Drops are applied incrementally
    to the ``alive`` list instead of re-sorting ``remaining`` per pattern
    — the seed's O(|F|²·log|F|) resort/regrade loop becomes O(|F|·|P_det|)
    list filtering plus the (pre-screened) grading itself.
    """
    test_set = result.test_set
    worklist = sorted(undetected)
    remaining = set(undetected)
    alive = list(worklist)  # invariant: worklist order, alive == remaining
    for f in worklist:
        if f not in remaining:
            continue  # dropped by an earlier deterministic pattern
        t0 = time.perf_counter() if timer is not None else 0.0
        capture_assign = podem.generate(f.as_stuck_at())
        if capture_assign is None:
            (result.aborted if podem.stats.aborted
             else result.untestable).add(f)
            remaining.discard(f)
            alive.remove(f)
            if timer is not None:
                timer.add("podem", time.perf_counter() - t0)
            continue
        launch_assign = podem.justify(f.site.signal_gate(circuit),
                                      f.launch_value)
        if launch_assign is None:
            (result.aborted if podem.stats.aborted
             else result.untestable).add(f)
            remaining.discard(f)
            alive.remove(f)
            if timer is not None:
                timer.add("podem", time.perf_counter() - t0)
            continue
        launch = tuple(launch_assign.get(s, X) for s in sources)
        capture = tuple(capture_assign.get(s, X) for s in sources)
        pair = PatternPair(launch, capture).filled(rng)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("podem", t1 - t0)
        # Fault dropping: grade the new pattern against *all* remaining
        # faults so later PODEM calls are skipped for collaterally
        # detected ones.
        masks = _grade_pair(circuit, sim, pair, alive)
        if timer is not None:
            timer.add("grade", time.perf_counter() - t1)
        if masks[f]:
            test_set.append(pair)
            dropped = {g for g, m in masks.items() if m}
            result.detected |= dropped
            remaining -= dropped
            alive = [g for g in alive if g not in dropped]
        else:
            # Random fill spoiled the sensitization; treat as aborted.
            result.aborted.add(f)
            remaining.discard(f)
            alive.remove(f)


def _phase2_reference(circuit: Circuit, sim: BitParallelSimulator,
                      podem: Podem, sources: list[int], rng: random.Random,
                      undetected: set[TransitionFault],
                      result: AtpgResult, *, seed: int) -> None:
    """The seed deterministic phase, retained verbatim: every pattern
    re-sorts and re-grades ``remaining`` through the big-int engine."""
    test_set = result.test_set
    worklist = sorted(undetected)
    remaining = set(undetected)
    for f in worklist:
        if f not in remaining:
            continue  # dropped by an earlier deterministic pattern
        capture_assign = podem.generate(f.as_stuck_at())
        if capture_assign is None:
            (result.aborted if podem.stats.aborted
             else result.untestable).add(f)
            remaining.discard(f)
            continue
        launch_assign = podem.justify(f.site.signal_gate(circuit),
                                      f.launch_value)
        if launch_assign is None:
            (result.aborted if podem.stats.aborted
             else result.untestable).add(f)
            remaining.discard(f)
            continue
        launch = tuple(launch_assign.get(s, X) for s in sources)
        capture = tuple(capture_assign.get(s, X) for s in sources)
        pair = PatternPair(launch, capture).filled(rng)
        masks = detect_masks(circuit, sim, TestSet(circuit, [pair]),
                             sorted(remaining), seed=seed,
                             engine="reference")
        if masks[f]:
            test_set.append(pair)
            dropped = {g for g, m in masks.items() if m}
            result.detected |= dropped
            remaining -= dropped
        else:
            # Random fill spoiled the sensitization; treat as aborted.
            result.aborted.add(f)
            remaining.discard(f)
