"""Transition-fault test generation (launch/capture pattern pairs).

Stand-in for the commercial ATPG used in the paper's evaluation (Sec. V,
"compacted transition delay fault test sets with an average test coverage of
over 99.9 %").  Three phases:

1. **Random phase** — batches of random pattern pairs graded by bit-parallel
   fault simulation with fault dropping; only patterns detecting new faults
   are kept.
2. **Deterministic phase** — for each remaining fault, PODEM generates the
   capture vector (the transition fault's stuck-at image) and a
   justification pass produces the launch vector establishing the initial
   value at the site.
3. **Compaction** — reverse-order fault dropping removes patterns made
   redundant by later ones (see :mod:`repro.atpg.compaction`).

Detection criterion (gross-delay / enhanced-scan model): pattern pair
``(v1, v2)`` detects transition fault φ iff ``v1`` sets the site to the
initial value and ``v2`` detects the corresponding stuck-at fault.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.atpg.compaction import reverse_order_drop
from repro.atpg.patterns import PatternPair, TestSet
from repro.atpg.podem import Podem
from repro.faults.models import TransitionFault
from repro.faults.universe import fault_sites
from repro.netlist.circuit import Circuit
from repro.simulation.logic import X
from repro.simulation.parallel_sim import BitParallelSimulator


@dataclass
class AtpgResult:
    """Outcome of transition-fault test generation."""

    test_set: TestSet
    faults: list[TransitionFault]
    detected: set[TransitionFault] = field(default_factory=set)
    untestable: set[TransitionFault] = field(default_factory=set)
    aborted: set[TransitionFault] = field(default_factory=set)

    @property
    def coverage(self) -> float:
        """Detected / (total - untestable), in [0, 1]."""
        testable = len(self.faults) - len(self.untestable)
        if testable <= 0:
            return 1.0
        return len(self.detected) / testable

    def summary(self) -> dict[str, float]:
        return {
            "patterns": len(self.test_set),
            "faults": len(self.faults),
            "detected": len(self.detected),
            "untestable": len(self.untestable),
            "aborted": len(self.aborted),
            "coverage": round(self.coverage, 4),
        }


def transition_fault_list(circuit: Circuit) -> list[TransitionFault]:
    """Both-polarity transition faults at every gate pin."""
    out: list[TransitionFault] = []
    for site in fault_sites(circuit):
        out.append(TransitionFault(site, slow_to_rise=True))
        out.append(TransitionFault(site, slow_to_rise=False))
    return out


def detect_masks(circuit: Circuit, sim: BitParallelSimulator,
                 test_set: TestSet, faults: list[TransitionFault],
                 *, seed: int = 0) -> dict[TransitionFault, int]:
    """Per-fault bitmask of detecting patterns (bit p ↔ pattern p)."""
    filled = test_set.filled(seed=seed)
    launch_vecs = [p.launch for p in filled]
    capture_vecs = [p.capture for p in filled]
    if not launch_vecs:
        return {f: 0 for f in faults}
    launch_words, width = sim.pack_vectors(launch_vecs)
    capture_words, _ = sim.pack_vectors(capture_vecs)
    good_launch = sim.simulate(launch_words, width)
    good_capture = sim.simulate(capture_words, width)
    mask = (1 << width) - 1

    out: dict[TransitionFault, int] = {}
    for f in faults:
        sig = f.site.signal_gate(circuit)
        launch_word = good_launch[sig]
        act = (mask ^ launch_word) if f.launch_value == 0 else launch_word
        if act == 0:
            out[f] = 0
            continue
        det = sim.stuck_at_detect_mask(good_capture, f.as_stuck_at(), width)
        out[f] = act & det
    return out


def generate_transition_tests(
    circuit: Circuit,
    *,
    seed: int = 0,
    faults: list[TransitionFault] | None = None,
    random_batch: int = 32,
    max_random_batches: int = 20,
    stale_batches: int = 3,
    max_backtracks: int = 512,
    compact: bool = True,
) -> AtpgResult:
    """Generate a compacted transition-fault pattern-pair set."""
    rng = random.Random(seed)
    fault_list = faults if faults is not None else transition_fault_list(circuit)
    sim = BitParallelSimulator(circuit)
    width = len(circuit.sources())

    test_set = TestSet(circuit)
    undetected: set[TransitionFault] = set(fault_list)
    detected: set[TransitionFault] = set()

    # ------------------------------------------------------------------
    # Phase 1: random patterns with fault dropping
    # ------------------------------------------------------------------
    stale = 0
    for _ in range(max_random_batches):
        if not undetected or stale >= stale_batches:
            break
        batch = TestSet(circuit, (
            PatternPair(
                tuple(rng.randint(0, 1) for _ in range(width)),
                tuple(rng.randint(0, 1) for _ in range(width)))
            for _ in range(random_batch)))
        masks = detect_masks(circuit, sim, batch, sorted(undetected), seed=seed)
        useful_bits = 0
        newly: set[TransitionFault] = set()
        for f, m in masks.items():
            if m:
                newly.add(f)
                useful_bits |= m & (-m)  # keep the first detecting pattern
        if not newly:
            stale += 1
            continue
        stale = 0
        for p in range(len(batch)):
            if useful_bits >> p & 1:
                test_set.append(batch[p])
        detected |= newly
        undetected -= newly

    # ------------------------------------------------------------------
    # Phase 2: deterministic PODEM for remaining faults
    # ------------------------------------------------------------------
    result = AtpgResult(test_set=test_set, faults=list(fault_list),
                        detected=detected)
    podem = Podem(circuit, max_backtracks=max_backtracks, seed=seed)
    sources = circuit.sources()
    worklist = sorted(undetected)
    remaining = set(undetected)
    for f in worklist:
        if f not in remaining:
            continue  # dropped by an earlier deterministic pattern
        capture_assign = podem.generate(f.as_stuck_at())
        if capture_assign is None:
            (result.aborted if podem.stats.aborted
             else result.untestable).add(f)
            remaining.discard(f)
            continue
        launch_assign = podem.justify(f.site.signal_gate(circuit),
                                      f.launch_value)
        if launch_assign is None:
            (result.aborted if podem.stats.aborted
             else result.untestable).add(f)
            remaining.discard(f)
            continue
        launch = tuple(launch_assign.get(s, X) for s in sources)
        capture = tuple(capture_assign.get(s, X) for s in sources)
        pair = PatternPair(launch, capture).filled(rng)
        # Fault dropping: grade the new pattern against *all* remaining
        # faults so later PODEM calls are skipped for collaterally
        # detected ones.
        masks = detect_masks(circuit, sim, TestSet(circuit, [pair]),
                             sorted(remaining), seed=seed)
        if masks[f]:
            test_set.append(pair)
            dropped = {g for g, m in masks.items() if m}
            result.detected |= dropped
            remaining -= dropped
        else:
            # Random fill spoiled the sensitization; treat as aborted.
            result.aborted.add(f)
            remaining.discard(f)

    # ------------------------------------------------------------------
    # Phase 3: static compaction (reverse-order fault dropping)
    # ------------------------------------------------------------------
    if compact and len(test_set) > 1:
        masks = detect_masks(circuit, sim, test_set,
                             sorted(result.detected), seed=seed)
        kept = reverse_order_drop(len(test_set), masks.values())
        result.test_set = test_set.subset(kept)

    return result
