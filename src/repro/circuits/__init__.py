"""Benchmark circuits: embedded ISCAS examples and deterministic synthetic
scan-circuit generation that mimics the structural statistics of the paper's
evaluation suite (s9234 … p141k) at a configurable scale."""

from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.circuits.library import (
    PAPER_SUITE,
    SuiteEntry,
    embedded_circuit,
    paper_suite,
    scaled_profile,
    suite_circuit,
)

__all__ = [
    "CircuitProfile",
    "generate_circuit",
    "PAPER_SUITE",
    "SuiteEntry",
    "embedded_circuit",
    "paper_suite",
    "scaled_profile",
    "suite_circuit",
]
