"""Deterministic synthetic scan-circuit generation.

The paper evaluates on ISCAS'89 and industrial netlists synthesized with a
45 nm library.  Those netlists are not redistributable, so experiments here
run on *synthetic* circuits with controlled structural statistics: gate
count, flip-flop count, logic depth profile, gate-kind mix, fanout skew and
reconvergence.  What the method is sensitive to is the resulting *path
length distribution* at the observation points — short paths produce hidden
delay faults, long paths produce at-speed-detectable ones — and the
generator exposes exactly those knobs.

Generation is fully deterministic in ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Circuit, GateKind

#: Default gate-kind mix, loosely matching area-optimized synthesis output
#: (NAND/NOR-rich with some wide gates and a little XOR).
DEFAULT_KIND_WEIGHTS: dict[str, float] = {
    GateKind.NAND: 0.30,
    GateKind.NOR: 0.18,
    GateKind.AND: 0.14,
    GateKind.OR: 0.12,
    GateKind.NOT: 0.14,
    GateKind.XOR: 0.06,
    GateKind.XNOR: 0.03,
    GateKind.BUF: 0.03,
}


@dataclass(frozen=True)
class CircuitProfile:
    """Structural recipe for one synthetic circuit."""

    name: str
    n_gates: int
    n_ffs: int
    n_inputs: int = 16
    n_outputs: int = 8
    depth: int = 12
    seed: int = 1
    #: Probability that a fanin edge reaches back beyond the previous level
    #: (controls reconvergence and short-path abundance).
    long_edge_prob: float = 0.35
    #: Fraction of flip-flops fed from shallow logic (short-path PPOs — the
    #: population whose faults conventional FAST cannot reach).
    short_path_ppo_fraction: float = 0.45
    #: Number of *exclusive* shallow side gates merged into each flip-flop's
    #: endpoint driver (near-endpoint enables/muxes in real designs).  Fault
    #: effects inside these side trees reach only their own flip-flop over a
    #: very short path — the population programmable monitors recover.
    endpoint_side_gates: int = 1
    kind_weights: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KIND_WEIGHTS))

    def __post_init__(self) -> None:
        if self.n_gates < self.depth:
            raise ValueError("need at least one gate per level")
        if self.n_inputs < 2:
            raise ValueError("need at least two primary inputs")
        if not 0.0 <= self.short_path_ppo_fraction <= 1.0:
            raise ValueError("short_path_ppo_fraction must lie in [0, 1]")


def generate_circuit(profile: CircuitProfile, *,
                     library: CellLibrary | None = None) -> Circuit:
    """Build and finalize a synthetic circuit from a profile."""
    rng = random.Random(profile.seed)
    circuit = Circuit(profile.name)

    pis = [circuit.add_input(f"pi{i}") for i in range(profile.n_inputs)]
    ffs = [circuit.add_dff(f"ff{i}", None) for i in range(profile.n_ffs)]
    sources = pis + ffs

    # ------------------------------------------------------------------
    # Distribute gates over levels: bulge in the middle, thin at the ends.
    # ------------------------------------------------------------------
    weights = [1.0 + 2.0 * min(lv, profile.depth - 1 - lv)
               for lv in range(profile.depth)]
    total_w = sum(weights)
    per_level = [max(1, int(round(profile.n_gates * w / total_w)))
                 for w in weights]
    while sum(per_level) > profile.n_gates:
        per_level[per_level.index(max(per_level))] -= 1
    while sum(per_level) < profile.n_gates:
        per_level[per_level.index(min(per_level))] += 1

    kinds = list(profile.kind_weights)
    kind_w = [profile.kind_weights[k] for k in kinds]

    levels: list[list[int]] = [list(sources)]
    unused: set[int] = set(sources)
    gid = 0
    for lv in range(profile.depth):
        this_level: list[int] = []
        prev = levels[-1]
        earlier = [g for lvl in levels[:-1] for g in lvl]
        for _ in range(per_level[lv]):
            kind = rng.choices(kinds, weights=kind_w, k=1)[0]
            arity = 1 if kind in (GateKind.NOT, GateKind.BUF) else (
                2 if kind in (GateKind.XOR, GateKind.XNOR)
                else rng.choices([2, 3, 4], weights=[0.70, 0.22, 0.08], k=1)[0])
            fanin: list[int] = []
            # First pin: keep the level structure (and consume unused nets).
            pool = [g for g in prev if g in unused] or prev
            fanin.append(rng.choice(pool))
            while len(fanin) < arity:
                if earlier and rng.random() < profile.long_edge_prob:
                    cand = rng.choice(earlier)
                else:
                    cand = rng.choice(prev)
                if cand not in fanin:
                    fanin.append(cand)
                elif arity > len(prev) + len(earlier):
                    break  # tiny circuits: accept fewer pins
            if len(fanin) == 1 and kind not in (GateKind.NOT, GateKind.BUF):
                kind = GateKind.BUF
            idx = circuit.add_gate(f"g{gid}", kind, fanin)
            gid += 1
            unused -= set(fanin)
            unused.add(idx)
            this_level.append(idx)
        levels.append(this_level)

    all_gates = [g for lvl in levels[1:] for g in lvl]

    # ------------------------------------------------------------------
    # Flip-flop data inputs: every flip-flop gets an *exclusive* endpoint
    # driver merging a main signal (deep for long-path FFs, shallow for
    # short-path FFs) with shallow side logic.  Faults in the side logic
    # propagate to exactly one flip-flop over a very short path — in real
    # designs these are the enables/selects feeding the capture mux.
    # ------------------------------------------------------------------
    by_depth = sorted(all_gates, key=lambda g: circuit.gates[g].index)
    deep_pool = [g for lvl in levels[max(1, profile.depth // 2):]
                 for g in lvl]
    shallow_pool = [g for lvl in levels[1:max(2, profile.depth // 3)]
                    for g in lvl] or by_depth
    n_shallow = int(round(profile.short_path_ppo_fraction * profile.n_ffs))
    two_in_kinds = [GateKind.NAND, GateKind.NOR, GateKind.AND, GateKind.OR]

    def build_side_tree(ff_idx: int) -> list[int]:
        """Exclusive shallow gates combining primary inputs.

        At most three side signals are returned so the endpoint gate stays
        within the library's 4-input cells; larger budgets fold pairs of
        side gates into a second tree level.
        """
        nonlocal gid
        side: list[int] = []
        for s in range(profile.endpoint_side_gates):
            a, b = rng.sample(pis, 2) if len(pis) >= 2 else (pis[0], pis[0])
            fanin = [a, b] if a != b else [a]
            kind = (rng.choice(two_in_kinds) if len(fanin) == 2
                    else GateKind.NOT)
            side.append(circuit.add_gate(f"side{ff_idx}_{s}", kind, fanin))
            gid += 1
        fold = 0
        while len(side) > 3:
            a, b = side.pop(0), side.pop(0)
            side.append(circuit.add_gate(
                f"sidef{ff_idx}_{fold}", rng.choice(two_in_kinds), [a, b]))
            fold += 1
            gid += 1
        return side

    for i, ff in enumerate(ffs):
        pool = shallow_pool if i < n_shallow else (deep_pool or by_depth)
        preferred = [g for g in pool if g in unused]
        main = rng.choice(preferred or pool)
        unused.discard(main)
        side = build_side_tree(i)
        if side:
            kind = rng.choice(two_in_kinds)
            endpoint = circuit.add_gate(f"ep{i}", kind, [main, *side])
            gid += 1
        else:
            endpoint = main
        circuit.connect_dff(circuit.gates[ff].name, endpoint)

    # ------------------------------------------------------------------
    # Primary outputs: deepest remaining unused nets first, then random.
    # ------------------------------------------------------------------
    po_pool = sorted(unused & set(all_gates)) or all_gates
    rng.shuffle(po_pool)
    for g in po_pool[:profile.n_outputs]:
        circuit.mark_output(g)
    n_missing = profile.n_outputs - len(po_pool)
    if n_missing > 0:
        extra = [g for g in all_gates if g not in circuit.outputs]
        rng.shuffle(extra)
        for g in extra[:n_missing]:
            circuit.mark_output(g)

    return circuit.finalize(library=library)
