"""Benchmark library: embedded ISCAS netlists and the scaled paper suite.

The paper's 12-circuit evaluation suite (ISCAS'89 s-circuits plus industrial
p-circuits, Table I) is replayed here with deterministic synthetic circuits
whose *relative* structural statistics track the originals:

* gate/FF/PI counts are scaled down so pure-Python timing-accurate fault
  simulation stays tractable,
* the short-path PPO fraction is tuned per circuit to reflect the paper's
  observed coverage gain: circuits where monitors helped most (p89k,
  s15850, …) get many short-path flip-flops, circuits with tiny gains
  (s35932, p78k) get few,
* pattern budgets scale with the paper's |P| column.

Two real ISCAS netlists (s27, c17) are embedded verbatim for parser and
regression tests.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.netlist.bench import parse_bench
from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Circuit

S27_BENCH = """
# s27 — ISCAS'89
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

C17_BENCH = """
# c17 — ISCAS'85
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
"""

_EMBEDDED = {"s27": S27_BENCH, "c17": C17_BENCH}


def embedded_circuit(name: str, *, library: CellLibrary | None = None) -> Circuit:
    """Load one of the embedded real netlists (``s27``, ``c17``)."""
    try:
        text = _EMBEDDED[name]
    except KeyError:
        raise KeyError(f"unknown embedded circuit {name!r}; "
                       f"have {sorted(_EMBEDDED)}") from None
    return parse_bench(text, name=name, library=library)


@dataclass(frozen=True)
class SuiteEntry:
    """One circuit of the evaluation suite with its scaled parameters."""

    name: str
    paper_gates: int
    paper_ffs: int
    paper_patterns: int
    paper_monitors: int
    gates: int
    ffs: int
    inputs: int
    outputs: int
    depth: int
    patterns: int
    short_path_ppo_fraction: float
    long_edge_prob: float
    endpoint_side_gates: int
    seed: int

    def profile(self, *, scale: float = 1.0) -> CircuitProfile:
        """Circuit profile, optionally rescaled (``scale`` multiplies sizes)."""
        return CircuitProfile(
            name=self.name,
            n_gates=max(24, int(round(self.gates * scale))),
            n_ffs=max(4, int(round(self.ffs * scale))),
            n_inputs=max(4, int(round(self.inputs * min(1.0, scale * 2)))),
            n_outputs=max(2, int(round(self.outputs * min(1.0, scale * 2)))),
            depth=max(4, int(round(self.depth * min(1.0, 0.5 + scale / 2)))),
            seed=self.seed,
            long_edge_prob=self.long_edge_prob,
            short_path_ppo_fraction=self.short_path_ppo_fraction,
            endpoint_side_gates=self.endpoint_side_gates,
        )

    def pattern_budget(self, *, scale: float = 1.0) -> int:
        return max(8, int(round(self.patterns * scale)))


#: Scaled stand-ins for the paper's Table I suite.  ``short_path_ppo_fraction``
#: encodes the paper's observed monitor gain (Δ% column) structurally.
PAPER_SUITE: tuple[SuiteEntry, ...] = (
    SuiteEntry("s9234", 1766, 228, 155, 63, 130, 24, 12, 8, 10, 24, 0.18, 0.35, 1, 11),
    SuiteEntry("s13207", 2867, 669, 195, 198, 150, 40, 14, 8, 10, 28, 0.50, 0.40, 4, 12),
    SuiteEntry("s15850", 3324, 597, 134, 169, 160, 36, 14, 8, 11, 22, 0.55, 0.40, 5, 13),
    SuiteEntry("s35932", 11168, 1728, 39, 513, 220, 52, 16, 10, 8, 16, 0.08, 0.20, 0, 14),
    SuiteEntry("s38417", 9796, 1636, 128, 435, 230, 48, 16, 10, 11, 22, 0.25, 0.35, 2, 15),
    SuiteEntry("s38584", 12213, 1450, 160, 426, 240, 44, 16, 10, 11, 24, 0.35, 0.35, 3, 16),
    SuiteEntry("p35k", 23294, 2173, 1518, 558, 280, 56, 18, 10, 12, 48, 0.40, 0.40, 3, 17),
    SuiteEntry("p45k", 25406, 2331, 2719, 638, 300, 60, 18, 10, 12, 56, 0.40, 0.40, 3, 18),
    SuiteEntry("p78k", 70495, 2977, 70, 872, 340, 64, 20, 12, 9, 16, 0.06, 0.20, 0, 19),
    SuiteEntry("p89k", 58726, 4301, 993, 1140, 320, 70, 20, 12, 13, 36, 0.60, 0.45, 6, 20),
    SuiteEntry("p100k", 60767, 5735, 2631, 1458, 360, 80, 20, 12, 12, 52, 0.45, 0.40, 4, 21),
    SuiteEntry("p141k", 107655, 10501, 824, 2626, 400, 96, 22, 12, 12, 32, 0.35, 0.38, 3, 22),
)

_BY_NAME = {e.name: e for e in PAPER_SUITE}


def paper_suite(names: list[str] | None = None) -> list[SuiteEntry]:
    """The full suite, or the named subset in suite order."""
    if names is None:
        return list(PAPER_SUITE)
    unknown = [n for n in names if n not in _BY_NAME]
    if unknown:
        raise KeyError(f"unknown suite circuits: {unknown}")
    return [e for e in PAPER_SUITE if e.name in set(names)]


#: A fast four-circuit subset used by tests and the quick benchmark profile.
QUICK_SUITE_NAMES = ["s9234", "s13207", "s35932", "p89k"]


# ----------------------------------------------------------------------
# Parameterized synthetic matrix (the sharded-suite workload)
# ----------------------------------------------------------------------
#: Size tiers of the synthetic matrix, drawn with the given weights:
#: (tier, weight, gates range, ffs range, patterns range, depth range).
#: Mostly small circuits with a medium band and a few large stragglers —
#: the heterogeneous shape that exposes tail latency in suite scheduling.
SYNTHETIC_TIERS: tuple[tuple[str, int, tuple[int, int], tuple[int, int],
                             tuple[int, int], tuple[int, int]], ...] = (
    ("small", 6, (48, 88), (8, 14), (8, 12), (6, 9)),
    ("medium", 3, (96, 168), (14, 26), (10, 16), (8, 12)),
    ("large", 1, (220, 360), (32, 56), (16, 24), (10, 14)),
)

_SYNTH_NAME = re.compile(r"syn(\d{1,6})")


def synthetic_entry(index: int) -> SuiteEntry:
    """Deterministic synthetic suite circuit ``syn<index>``.

    Every structural parameter derives from ``index`` alone, so a worker
    process can reconstruct the exact circuit from its *name* — no suite
    object needs to be shipped across process (or host) boundaries.
    """
    if index < 0:
        raise ValueError("synthetic suite index must be >= 0")
    rng = random.Random(0x5EED0 + index)
    tiers = [t for t in SYNTHETIC_TIERS for _ in range(t[1])]
    _tier, _w, gates_r, ffs_r, pats_r, depth_r = rng.choice(tiers)
    gates = rng.randint(*gates_r)
    ffs = rng.randint(*ffs_r)
    patterns = rng.randint(*pats_r)
    depth = rng.randint(*depth_r)
    return SuiteEntry(
        name=f"syn{index:04d}",
        paper_gates=gates, paper_ffs=ffs, paper_patterns=patterns,
        paper_monitors=max(1, ffs // 4),
        gates=gates, ffs=ffs,
        inputs=max(6, gates // 10), outputs=max(4, ffs // 3),
        depth=depth, patterns=patterns,
        short_path_ppo_fraction=round(rng.uniform(0.10, 0.60), 3),
        long_edge_prob=round(rng.uniform(0.20, 0.45), 3),
        endpoint_side_gates=rng.randint(0, 4),
        seed=1000 + index,
    )


def synthetic_suite(count: int, *, start: int = 0) -> list[SuiteEntry]:
    """``count`` deterministic synthetic circuits (``syn0000``, ...).

    Scales the evaluation matrix to hundreds of circuits for the sharded
    suite runner; entries are self-describing by name (see
    :func:`synthetic_entry`).
    """
    return [synthetic_entry(i) for i in range(start, start + count)]


def suite_entry(name: str) -> SuiteEntry:
    """Resolve a suite circuit name: paper suite or synthetic ``syn####``."""
    entry = _BY_NAME.get(name)
    if entry is not None:
        return entry
    m = _SYNTH_NAME.fullmatch(name)
    if m is not None:
        return synthetic_entry(int(m.group(1)))
    known = sorted(_BY_NAME)
    raise KeyError(f"unknown suite circuit {name!r} "
                   f"(paper suite: {known}; synthetic: 'syn<index>')")


def scaled_profile(name: str, *, scale: float = 1.0) -> CircuitProfile:
    """Profile of a suite circuit at the given scale."""
    return suite_entry(name).profile(scale=scale)


def suite_circuit(name: str, *, scale: float = 1.0,
                  library: CellLibrary | None = None) -> Circuit:
    """Generate a suite circuit at the given scale."""
    return generate_circuit(scaled_profile(name, scale=scale), library=library)
