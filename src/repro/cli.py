"""Command-line interface.

Subcommands:

* ``flow``    — run the complete HDF test flow on a ``.bench`` / ``.v``
  netlist (or a named built-in circuit) and print the paper-style summary.
* ``tables``  — regenerate Table I/II/III over the (scaled) paper suite.
* ``fig3``    — print the HDF-coverage-vs-f_max sweep for one circuit.
* ``aging``   — lifetime simulation with monitor alerts and failure
  prediction for a circuit (optionally driven by a ``--scenario`` JSON
  spec).
* ``fleet``   — fleet-scale Monte Carlo aging study over a device
  population (same scenario schema, ``--devices``/``--jobs``).
* ``suite``   — sharded suite runner: decompose a suite into stage work
  units over the shared stage store and drain them with ``--workers N``
  cooperating processes (resumable; see ``docs/ALGORITHMS.md`` §15).
* ``resched`` — replay an in-field monitor alert stream (JSON file or a
  ``ScenarioSpec``-driven synthetic generator) through the adaptive
  rescheduling engine and print per-alert re-solve latencies.
* ``serve``   — start the HDF-flow service: a stdlib HTTP/JSON API over
  the async job orchestrator (submit/status/stream/result/cancel),
  deduping identical jobs against the shared stage store.
* ``submit``  — send a declarative job document (``{"kind": "flow",
  ...}``, see :mod:`repro.core.spec`) to a running service.
* ``generate``— emit a synthetic benchmark circuit as ``.bench``.
* ``bench``   — re-measure the perf-baseline workloads and print current
  vs committed (``BENCH_detection.json`` / ``BENCH_schedule.json`` /
  ``BENCH_atpg.json`` / ``BENCH_resched.json`` / ``BENCH_suite.json`` /
  ``BENCH_service.json``) deltas.

The ``flow``/``tables``/``fleet``/``resched``/``suite`` verbs all build
a typed :mod:`repro.core.spec` job and execute it through
:func:`repro.service.orchestrator.run_job` — the same code path the
service runs, so CLI results and service results are interchangeable.

Examples::

    python -m repro flow s27
    python -m repro flow my_design.bench --monitor-fraction 0.5
    python -m repro tables --suite s9234 s13207 --scale 0.6 --jobs 4
    python -m repro fig3 s13207
    python -m repro aging s27 --marginal 2
    python -m repro suite --profile synth --count 40 --workers 4
    python -m repro resched s9234 --alerts alerts.json --engine incremental
    python -m repro serve --port 8732
    python -m repro submit job.json --wait
    python -m repro generate demo.bench --gates 200 --ffs 32
    python -m repro bench --stage atpg
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.core import FlowConfig, HdfTestFlow
from repro.netlist.bench import save_bench
from repro.netlist.circuit import Circuit


def _load_circuit(spec: str) -> Circuit:
    """Resolve a circuit argument: file path, embedded or suite name."""
    from repro.core.spec import SpecError
    from repro.service.orchestrator import resolve_circuit

    try:
        return resolve_circuit(spec)
    except SpecError as exc:
        raise SystemExit(f"error: {exc}")


def _flow_config(args: argparse.Namespace) -> FlowConfig:
    return FlowConfig(
        fast_ratio=args.fast_ratio,
        monitor_fraction=args.monitor_fraction,
        pattern_cap=args.pattern_cap,
        atpg_seed=args.seed,
    )


def _run_job(job, **options):
    """Execute one job through the service facade, SystemExit on spec
    errors (the CLI's error convention)."""
    from repro.core.spec import SpecError
    from repro.service.orchestrator import run_job

    try:
        return run_job(job, **options)
    except SpecError as exc:
        raise SystemExit(f"error: {exc}")


def _recompute_from(args: argparse.Namespace) -> tuple[str, ...]:
    """Validated ``--recompute-from`` stage names (downstream is implied)."""
    from repro.core import DEFAULT_PIPELINE

    names = tuple(getattr(args, "recompute_from", None) or ())
    if names:
        try:
            DEFAULT_PIPELINE.descendants(names)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    return names


def _stage_cache(args: argparse.Namespace):
    from repro.experiments.artifact_cache import StageCache, cache_enabled

    if getattr(args, "no_cache", False) or not cache_enabled():
        return None
    return StageCache()


def _print_stage_meta(meta: dict) -> None:
    for name, info in meta.get("stages", {}).items():
        print(f"  [stage] {name:<10s} {info['seconds']:8.3f} s  "
              f"{info['cache']}", file=sys.stderr)


def _verbose_progress(event: dict) -> None:
    """Facade progress events → the CLI's stderr log lines."""
    if event.get("event") == "log":
        print(f"  [flow] {event['message']}", file=sys.stderr)


def cmd_flow(args: argparse.Namespace) -> int:
    from repro.core.spec import FlowJob
    from repro.experiments.reporting import format_table

    job = FlowJob(circuit=args.circuit,
                  fast_ratio=args.fast_ratio,
                  monitor_fraction=args.monitor_fraction,
                  pattern_cap=args.pattern_cap,
                  atpg_seed=args.seed,
                  with_schedules=True)
    outcome = _run_job(job,
                       store=_stage_cache(args),
                       recompute_from=_recompute_from(args),
                       progress=_verbose_progress if args.verbose else None)
    result = outcome.value
    if args.verbose:
        _print_stage_meta(result.meta)
    print(format_table([result.table1_row()], title="HDF coverage"))
    print(format_table([result.table2_row()], title="Schedule optimization"))
    prop = result.schedules["prop"]
    if args.show_schedule:
        for e in prop.entries:
            cfg = "FF-only" if e.config < 0 else f"d={result.configs[e.config]:.1f}ps"
            print(f"  t={e.period:9.2f} ps  pattern #{e.pattern:<4d}  {cfg}")
    if args.export:
        from repro.scheduling.export import save_schedule, write_tester_program

        out = Path(args.export)
        save_schedule(prop, out)
        program = write_tester_program(prop, result.configs,
                                       circuit_name=result.circuit.name,
                                       t_nom=result.clock.t_nom)
        out.with_suffix(".fast").write_text(program)
        print(f"exported schedule to {out} and {out.with_suffix('.fast')}")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.circuits.library import paper_suite
    from repro.core.spec import SuiteJob
    from repro.experiments.reporting import format_table
    from repro.experiments.table1 import table1_rows
    from repro.experiments.table2 import table2_rows
    from repro.experiments.table3 import table3_rows

    names = tuple(args.suite) if args.suite else tuple(
        e.name for e in paper_suite())
    job = SuiteJob(names=names, scale=args.scale, with_schedules=True,
                   with_coverage_schedules=args.table3,
                   workers=max(1, args.jobs) if args.jobs is not None
                   else None)
    # The facade run warms the in-process suite cache (honoring any
    # forced recompute); the table drivers below reuse those results.
    _run_job(job, recompute_from=_recompute_from(args))
    cfg = job.run_config()
    print(format_table(table1_rows(cfg), title="Table I"))
    print(format_table(table2_rows(cfg), title="Table II"))
    if args.table3:
        print(format_table(table3_rows(cfg), title="Table III"))
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.fig3 import fig3_series
    from repro.experiments.reporting import format_table

    circuit = _load_circuit(args.circuit)
    result = HdfTestFlow(circuit, _flow_config(args)).run(
        with_schedules=False, cache=_stage_cache(args))
    rows = [
        {"fmax/fnom": p.fmax_ratio,
         "conv_%": round(100 * p.conv_coverage, 1),
         "prop_%": round(100 * p.prop_coverage, 1)}
        for p in fig3_series(result)
    ]
    print(format_table(rows, title=f"Fig. 3 — {circuit.name}"))
    return 0


def cmd_aging(args: argparse.Namespace) -> int:
    from repro.aging import (
        AgingScenario,
        FailurePredictor,
        LifetimeSimulator,
        inject_marginal_defects,
    )
    from repro.monitors import MonitorConfigSet, insert_monitors
    from repro.timing import ClockSpec, run_sta

    circuit = _load_circuit(args.circuit)
    spec = None
    if args.scenario:
        from repro.aging.scenario import ScenarioSpec

        spec = ScenarioSpec.load(args.scenario)
    sta = run_sta(circuit)
    margin = spec.clock_margin if spec is not None else args.margin
    clock = ClockSpec(margin * sta.critical_path)
    configs = MonitorConfigSet.paper_default(clock.t_nom)
    placement = insert_monitors(circuit, sta, configs,
                                fraction=args.monitor_fraction)
    marginal = (inject_marginal_defects(circuit, count=args.marginal,
                                        seed=args.seed)
                if args.marginal else None)
    scenario = (spec.aging_scenario() if spec is not None
                else AgingScenario(seed=args.seed))
    sim = LifetimeSimulator(circuit, clock, placement,
                            scenario=scenario,
                            marginal=marginal, seed=args.seed)
    times = (list(spec.checkpoints) if spec is not None
             else [0.25 * 2 ** k for k in range(args.steps)])
    result = sim.run(times)
    for p in result.points:
        alerting = [f"d{ci}" for ci, hit in p.alerts.items() if hit]
        print(f"t={p.t:8.2f}  cpl={p.critical_path:9.1f} ps  "
              f"slack={p.slack:8.1f} ps  alerts={','.join(alerting) or '-'}"
              f"{'  FAILED' if p.failed else ''}")
    print("prediction:", FailurePredictor().predict(result).summary())
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.core.spec import FleetJob, ScenarioSpec
    from repro.experiments.reporting import format_table
    from repro.service.orchestrator import ENV_STORE

    spec = (ScenarioSpec.load(args.scenario) if args.scenario
            else ScenarioSpec())
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    job = FleetJob(circuit=args.circuit, scenario=spec,
                   devices=args.devices, engine=args.engine,
                   jobs=args.jobs)
    outcome = _run_job(job, store=None if args.no_cache else ENV_STORE)
    study = outcome.value
    summary = study.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    m = summary["metrics"]
    print(f"fleet: {study.circuit}  devices={study.devices}  "
          f"engine={study.engine}  scenario={spec.fingerprint()}")
    print(f"failed={m['failed']}  detected={m['detected']}  "
          f"missed={m['missed']}  false_alarms={m['false_alarms']}  "
          f"infant={summary['distributions']['infant_devices']}")
    print(f"detection_rate={m['detection_rate']:.3f}  "
          f"mispredict_rate={m['mispredict_rate']:.3f}  "
          f"mean_lead_time={m['mean_lead_time']:.3f}")
    rows = [
        {"quantity": name, "count": stats["count"],
         "mean": round(stats["mean"], 3), "p5": round(stats["p5"], 3),
         "p50": round(stats["p50"], 3), "p95": round(stats["p95"], 3)}
        for name, stats in summary["distributions"].items()
        if isinstance(stats, dict)
    ]
    print(format_table(rows, title="Fleet distributions (lifetime units)"))
    secs = summary["stage_seconds"]
    if secs:
        print("stages:", "  ".join(f"{k}={v:.3f}s"
                                   for k, v in secs.items()))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.core.spec import SuiteJob
    from repro.experiments.reporting import format_table

    job = SuiteJob.from_profile(
        args.profile, count=args.count,
        scale=args.scale,
        with_schedules=True if args.schedules else None,
        workers=args.workers, sharded=True)
    try:
        report = _run_job(job, claim_ttl=args.claim_ttl,
                          shard_progress=args.progress).value
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    stats = report.stats
    print(f"suite: {len(job.names)} circuits  profile={args.profile}  "
          f"workers={report.workers}  wall={report.wall_s:.3f}s")
    print(f"units: computed={stats.computed}  cached={stats.hits}  "
          f"reclaimed={stats.reclaimed}  "
          f"worker_failures={stats.worker_failures}  "
          f"idle_wait={stats.wait_s:.3f}s")
    if stats.stage_seconds:
        print("stages:", "  ".join(
            f"{k}={v:.3f}s" for k, v in sorted(stats.stage_seconds.items())))
    if len(job.names) <= 16:
        rows = [
            {"circuit": name,
             "faults": res.classification.num_faults,
             "target": len(res.classification.target),
             "gain_%": round(res.classification.coverage_gain_percent, 2)}
            for name, res in report.results.items()
        ]
        print(format_table(rows, title="Suite results"))
    else:
        total = sum(len(r.classification.target)
                    for r in report.results.values())
        print(f"aggregate: {total} target faults across "
              f"{len(report.results)} circuits")
    return 0


def cmd_resched(args: argparse.Namespace) -> int:
    import json

    from repro.core.spec import ReschedJob, ScenarioSpec, SpecError

    try:
        job = ReschedJob(
            circuit=args.circuit,
            fast_ratio=args.fast_ratio,
            monitor_fraction=args.monitor_fraction,
            pattern_cap=args.pattern_cap,
            atpg_seed=args.seed,
            engine=args.engine,
            alerts=(ReschedJob.alerts_from_deltas(
                _load_alert_stream(args.alerts)) if args.alerts else ()),
            scenario=(ScenarioSpec.load(args.scenario)
                      if args.scenario else None),
            max_gates=args.max_gates)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    outcome = _run_job(job, store=_stage_cache(args),
                       recompute_from=_recompute_from(args))
    initial = outcome.payload["initial"]
    events = outcome.payload["events"]
    summary = outcome.payload["summary"]
    print(f"resched: {initial['circuit']}  "
          f"engine={initial['engine']}  "
          f"alerts={initial['alerts']}  "
          f"targets={initial['targets']}  "
          f"initial: freqs={initial['frequencies']} "
          f"entries={initial['entries']} covered={initial['covered']}")
    if not args.json:
        for e in events:
            print(f"  #{e['alert']:<3d} "
                  f"gates={','.join(map(str, e['gates'])) or '-':<12s} "
                  f"{e['ms']:8.2f} ms  {e['path']:<18s} "
                  f"freqs={e['frequencies']:<3d} "
                  f"entries={e['entries']:<4d} "
                  f"covered={e['covered']}")
        print(f"summary: median={summary['median_ms']:.2f} ms  "
              f"max={summary['max_ms']:.2f} ms  "
              f"total={summary['total_s']:.3f} s")
    else:
        print(json.dumps({"summary": summary, "events": events}, indent=2))
    return 0


def _load_alert_stream(path: str):
    from repro.scheduling.resched import load_alert_stream

    return load_alert_stream(path)


def cmd_generate(args: argparse.Namespace) -> int:
    profile = CircuitProfile(
        name=Path(args.output).stem, n_gates=args.gates, n_ffs=args.ffs,
        n_inputs=args.inputs, n_outputs=args.outputs, depth=args.depth,
        seed=args.seed)
    circuit = generate_circuit(profile)
    save_bench(circuit, args.output)
    print(f"wrote {args.output}: {circuit.stats()}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.orchestrator import ENV_STORE
    from repro.service.server import serve

    try:
        service = serve(host=args.host, port=args.port,
                        store=None if args.no_cache else ENV_STORE,
                        workers=args.workers)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"repro service listening on {service.url}  "
          f"(workers={args.workers}, "
          f"cache={'off' if args.no_cache else 'on'})")
    print("POST /jobs — submit; GET /jobs/<id> /result /stream; "
          "Ctrl-C to stop", file=sys.stderr)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json
    import time
    from urllib import error, request

    try:
        document = json.loads(Path(args.job).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read job document {args.job}: {exc}",
              file=sys.stderr)
        return 1
    base = args.url.rstrip("/")
    try:
        req = request.Request(
            f"{base}/jobs", data=json.dumps(document).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        with request.urlopen(req) as resp:
            submitted = json.loads(resp.read())
    except error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        print(f"error: service rejected the job ({exc.code}): {detail}",
              file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach the service at {base}: {exc}",
              file=sys.stderr)
        return 1
    job_id = submitted["id"]
    dedup = (f"  deduped onto {submitted['dedup_of']}"
             if submitted.get("deduped") else "")
    print(f"submitted {job_id}  kind={submitted['kind']}  "
          f"fingerprint={submitted['fingerprint']}{dedup}")
    if args.stream:
        try:
            with request.urlopen(f"{base}/jobs/{job_id}/stream") as resp:
                for raw in resp:
                    line = raw.strip()
                    if line:
                        print(line.decode())
        except BrokenPipeError:
            # Downstream consumer (e.g. ``submit --stream | head``) closed
            # stdout; the job keeps running server-side.
            return 0
    if args.wait or args.stream:
        while True:
            with request.urlopen(f"{base}/jobs/{job_id}") as resp:
                status = json.loads(resp.read())
            if status["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.2)
        if status["state"] != "done":
            print(f"error: job {job_id} {status['state']}: "
                  f"{status.get('error')}", file=sys.stderr)
            return 1
        with request.urlopen(f"{base}/jobs/{job_id}/result") as resp:
            result = json.loads(resp.read())
        print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _bench_detection_engines(res) -> dict[str, float]:
    """Best-of-two wall clock of every registered simulation engine."""
    import time

    from repro.faults.detection import compute_detection_data

    out: dict[str, float] = {}
    for engine in ("reference", "incremental", "wordwave"):
        best = float("inf")
        for _ in range(2):   # warm-up + measured (plan/cone caches fill once)
            t0 = time.perf_counter()
            compute_detection_data(
                res.circuit, res.data.faults, res.test_set,
                horizon=res.clock.t_nom,
                monitored_gates=res.placement.monitored_gates,
                inertial=FlowConfig().inertial_ps,
                engine=engine)
            best = min(best, time.perf_counter() - t0)
        out[engine] = best
    return out


def _bench_detection_current(res) -> float:
    return _bench_detection_engines(res)["wordwave"]


def _bench_schedule_current(res) -> float:
    import time

    from repro.scheduling.baselines import conventional_targets
    from repro.scheduling.schedule import optimize_schedule

    cls_ = res.classification
    jobs = [(conventional_targets(cls_), None, "ilp", 1.0),
            (cls_.target, res.configs, "greedy", 1.0),
            (cls_.target, res.configs, "ilp", 1.0),
            (cls_.target, res.configs, "ilp", 0.95),
            (cls_.target, res.configs, "ilp", 0.90)]
    best = float("inf")
    for _ in range(2):
        res.data._sched_cache.clear()
        res.data._det_range.clear()
        t0 = time.perf_counter()
        for targets, configs, solver, cov in jobs:
            optimize_schedule(res.data, targets, res.clock, configs,
                              solver=solver, coverage=cov)
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_atpg_current(res) -> float:
    import time

    from repro.atpg.transition import generate_transition_tests

    best = float("inf")
    for _ in range(2):       # warm-up + measured (cone caches fill once)
        t0 = time.perf_counter()
        generate_transition_tests(res.circuit, seed=FlowConfig().atpg_seed,
                                  engine="matrix")
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_resched_current(res) -> float:
    """Incremental alert-burst replay seconds (the committed workload)."""
    from repro.experiments.resched import replay_result

    replay = replay_result(res)
    if not replay.cost_equal:
        print(f"warning: incremental schedules diverged from cold on "
              f"{res.circuit.name}", file=sys.stderr)
    return replay.total_s


def _bench_fleet_current(name: str) -> float:
    """Re-time the committed fleet workload for one circuit name.

    Unlike the other bench stages this does not need flow results — the
    fleet workload is the ``sta -> aging`` pipeline itself, uncached.
    """
    from repro.experiments.fleet import bench_fleet_seconds

    return bench_fleet_seconds(_load_circuit(name))


def _bench_suite_rows(baseline: dict) -> list[dict]:
    """Re-measure the committed sharded-suite smoke matrix (real flows).

    Each worker count replays the committed synthetic smoke suite on a
    fresh throwaway stage store, so the measurement is always a cold
    sharded run — comparable to the committed numbers.
    """
    import tempfile

    from repro.experiments.artifact_cache import StageCache
    from repro.experiments.runner import SuiteRunConfig
    from repro.experiments.shard import run_suite_sharded

    smoke = baseline.get("smoke")
    if not smoke:
        print("warning: BENCH_suite.json has no 'smoke' section; "
              "re-run benchmarks/test_bench_suite.py", file=sys.stderr)
        return []
    cfg = SuiteRunConfig(names=tuple(smoke["names"]),
                         scale=smoke.get("scale", 1.0),
                         with_schedules=False)
    rows = []
    for w_str, committed in sorted(smoke["workers"].items(),
                                   key=lambda kv: int(kv[0])):
        with tempfile.TemporaryDirectory() as td:
            report = run_suite_sharded(cfg, workers=int(w_str),
                                       store=StageCache(td))
        rows.append({
            "stage": "suite", "circuit": f"smoke w={w_str}",
            "committed_s": f"{committed:.3f}",
            "current_s": f"{report.wall_s:.3f}",
            "delta_percent": round(
                100.0 * (report.wall_s - committed) / committed, 1),
        })
    return rows


def _bench_service_rows(baseline: dict) -> list[dict]:
    """Re-measure the committed service workload (cold + cached replay).

    Runs the committed job document cold on a throwaway stage store,
    then re-submits it: every stage hits, so the replay latency is the
    interactive dedupe path measured by
    ``benchmarks/test_bench_service.py``.
    """
    import tempfile
    import time

    from repro.core.spec import job_from_dict
    from repro.experiments.artifact_cache import StageCache
    from repro.service.orchestrator import run_job

    document = baseline.get("job")
    if not document:
        print("warning: BENCH_service.json has no 'job' section; "
              "re-run benchmarks/test_bench_service.py", file=sys.stderr)
        return []
    job = job_from_dict(document)
    repeats = max(1, int(baseline.get("repeats", 5)))
    with tempfile.TemporaryDirectory() as td:
        store = StageCache(td)
        t0 = time.perf_counter()
        run_job(job, store=store)
        cold_s = time.perf_counter() - t0
        lat = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            outcome = run_job(job, store=store)
            lat.append(time.perf_counter() - t0)
            if outcome.cache != "hit":
                print(f"warning: service replay was {outcome.cache!r}, "
                      f"not a stage-store hit", file=sys.stderr)
        lat.sort()
    hit_s = lat[len(lat) // 2]
    committed_hit_s = baseline["hit_median_ms"] / 1000.0
    return [
        {"stage": "service", "circuit": f"{job.kind}:cold",
         "committed_s": f"{baseline['cold_s']:.4f}",
         "current_s": f"{cold_s:.4f}",
         "delta_percent": round(
             100.0 * (cold_s - baseline["cold_s"])
             / baseline["cold_s"], 1)},
        {"stage": "service", "circuit": f"{job.kind}:hit",
         "committed_s": f"{committed_hit_s:.4f}",
         "current_s": f"{hit_s:.4f}",
         "delta_percent": round(
             100.0 * (hit_s - committed_hit_s) / committed_hit_s, 1)},
    ]


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.reporting import format_table
    from repro.experiments.runner import SuiteRunConfig, run_suite

    root = args.root or Path(__file__).resolve().parents[2]
    stages = {
        "detection": (root / "BENCH_detection.json", _bench_detection_current),
        "schedule": (root / "BENCH_schedule.json", _bench_schedule_current),
        "atpg": (root / "BENCH_atpg.json", _bench_atpg_current),
        "fleet": (root / "BENCH_fleet.json", _bench_fleet_current),
        "resched": (root / "BENCH_resched.json", _bench_resched_current),
        "suite": (root / "BENCH_suite.json", None),
        "service": (root / "BENCH_service.json", None),
    }
    # The detection workload is the engine registry's "simulation" stage;
    # accept either spelling.
    stage_arg = "detection" if args.stage == "simulation" else args.stage
    if stage_arg != "all":
        if stage_arg not in stages:
            known = ", ".join(stages)
            print(f"error: unknown bench stage {args.stage!r} "
                  f"(registered stages: {known})", file=sys.stderr)
            return 2
        stages = {stage_arg: stages[stage_arg]}

    rows = []
    engine_rows = []
    cache_rows: dict[str, dict] = {}
    memo_sources: dict[str, object] = {}
    seen_results: set[int] = set()

    def _tally(results) -> None:
        # Per-pipeline-stage wall clock and cache hit/miss counters,
        # aggregated across the suite replays backing the measurements.
        for name, res in results.items():
            memo_sources.setdefault(name, res)
            if id(res) in seen_results:
                continue
            seen_results.add(id(res))
            meta = getattr(res, "meta", None) or {}
            for sname, info in meta.get("stages", {}).items():
                row = cache_rows.setdefault(sname, {
                    "stage": sname, "hits": 0, "misses": 0, "seconds": 0.0})
                row["seconds"] += info.get("seconds", 0.0)
                if info.get("cache") == "hit":
                    row["hits"] += 1
                elif info.get("cache") == "miss":
                    row["misses"] += 1
    for stage, (path, measure) in stages.items():
        if not path.exists():
            print(f"warning: no committed {path.name}; "
                  f"run the benchmarks first", file=sys.stderr)
            continue
        baseline = json.loads(path.read_text())
        if baseline.get("profile") != "quick":
            print(f"warning: {path.name} was recorded with profile "
                  f"{baseline.get('profile')!r}, not 'quick'; deltas are "
                  f"not comparable", file=sys.stderr)
        if stage in ("suite", "service"):
            # These baselines have their own schemas (workers-keyed
            # smoke matrix / committed job document) — re-measure them
            # instead of the per-circuit loop below.
            rows.extend(_bench_suite_rows(baseline) if stage == "suite"
                        else _bench_service_rows(baseline))
            continue
        names = tuple(baseline["circuits"])
        if stage != "fleet":
            # The fleet workload is a standalone pipeline; every other
            # stage re-measures against the suite's cached flow results.
            results = run_suite(SuiteRunConfig.quick(names=names,
                                                     with_schedules=False))
            _tally(results)
        committed_total = current_total = 0.0
        for name in names:
            committed = baseline["circuits"][name]["total_s"]
            if stage == "fleet":
                current = measure(name)
            elif stage == "detection":
                engines = _bench_detection_engines(results[name])
                current = engines["wordwave"]
                engine_rows.append({
                    "circuit": name,
                    "reference_s": f"{engines['reference']:.3f}",
                    "incremental_s": f"{engines['incremental']:.3f}",
                    "wordwave_s": f"{engines['wordwave']:.3f}",
                    "speedup_vs_ref": round(
                        engines["reference"] / engines["wordwave"], 2),
                    "speedup_vs_inc": round(
                        engines["incremental"] / engines["wordwave"], 2),
                })
            else:
                current = measure(results[name])
            committed_total += committed
            current_total += current
            rows.append({
                "stage": stage, "circuit": name,
                "committed_s": f"{committed:.3f}",
                "current_s": f"{current:.3f}",
                "delta_percent": round(
                    100.0 * (current - committed) / committed, 1),
            })
        rows.append({
            "stage": stage, "circuit": "total",
            "committed_s": f"{committed_total:.3f}",
            "current_s": f"{current_total:.3f}",
            "delta_percent": round(
                100.0 * (current_total - committed_total) / committed_total,
                1),
        })
    if not rows:
        return 1
    print(format_table(rows, title="Perf baselines: current vs committed"))
    if engine_rows:
        print(format_table(
            engine_rows,
            title="Simulation engines: reference vs incremental vs wordwave"))
    if cache_rows:
        stage_rows = [{"stage": r["stage"], "hits": r["hits"],
                       "misses": r["misses"],
                       "seconds": f"{r['seconds']:.3f}"}
                      for r in cache_rows.values()]
        print(format_table(stage_rows,
                           title="Stage cache (suite replay)"))
    if memo_sources:
        # Read after the measurements: the schedule/resched workloads are
        # what exercise the DetectionData schedule-candidate memo.
        memo_rows = []
        for name, res in sorted(memo_sources.items()):
            data = getattr(res, "data", None)
            if data is None:        # stubbed results in unit tests
                continue
            memo_rows.append({"circuit": name, **data._sched_cache.stats()})
        if memo_rows:
            totals = {"circuit": "total"}
            for key in ("hits", "misses", "evictions", "size"):
                totals[key] = sum(r[key] for r in memo_rows)
            totals["maxsize"] = memo_rows[0]["maxsize"]
            memo_rows.append(totals)
            print(format_table(
                memo_rows,
                title="Schedule memo (DetectionData._sched_cache)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Programmable delay monitors for wear-out and "
                    "early-life failure prediction (DATE 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_flow_args(p):
        p.add_argument("circuit", help=".bench/.v file, embedded (s27, c17) "
                                       "or suite circuit name")
        p.add_argument("--fast-ratio", type=float, default=3.0)
        p.add_argument("--monitor-fraction", type=float, default=0.25)
        p.add_argument("--pattern-cap", type=int, default=None)
        p.add_argument("--seed", type=int, default=7)

    def add_cache_args(p):
        p.add_argument("--recompute-from", nargs="+", metavar="STAGE",
                       default=None,
                       help="force these pipeline stages (and everything "
                            "downstream) to recompute even when cached")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk stage cache for this run")

    p_flow = sub.add_parser("flow", help="run the full HDF test flow")
    add_flow_args(p_flow)
    add_cache_args(p_flow)
    p_flow.add_argument("--show-schedule", action="store_true")
    p_flow.add_argument("--export", metavar="FILE.json", default=None,
                        help="write the schedule as JSON plus a .fast "
                             "tester program")
    p_flow.add_argument("--verbose", action="store_true")
    p_flow.set_defaults(func=cmd_flow)

    p_tables = sub.add_parser("tables", help="regenerate Tables I-III")
    p_tables.add_argument("--suite", nargs="*", default=None,
                          help="subset of suite circuit names")
    p_tables.add_argument("--scale", type=float, default=1.0)
    p_tables.add_argument("--table3", action="store_true",
                          help="also compute the coverage-target sweep")
    p_tables.add_argument("--jobs", type=int, default=None,
                          help="worker processes across suite circuits "
                               "(default: REPRO_JOBS or 1)")
    p_tables.add_argument("--recompute-from", nargs="+", metavar="STAGE",
                          default=None,
                          help="force these pipeline stages (and everything "
                               "downstream) to recompute even when cached")
    p_tables.set_defaults(func=cmd_tables)

    p_fig3 = sub.add_parser("fig3", help="coverage vs f_max sweep")
    add_flow_args(p_fig3)
    p_fig3.set_defaults(func=cmd_fig3)

    p_aging = sub.add_parser("aging", help="lifetime simulation + prediction")
    p_aging.add_argument("circuit")
    p_aging.add_argument("--scenario", metavar="FILE.json", default=None,
                         help="ScenarioSpec JSON file; overrides --margin "
                              "and --steps (degradation laws, clock margin "
                              "and checkpoints come from the spec)")
    p_aging.add_argument("--monitor-fraction", type=float, default=1.0)
    p_aging.add_argument("--marginal", type=int, default=0,
                         help="number of weak gates to inject")
    p_aging.add_argument("--margin", type=float, default=1.15,
                         help="clock margin over the critical path")
    p_aging.add_argument("--steps", type=int, default=9)
    p_aging.add_argument("--seed", type=int, default=1)
    p_aging.set_defaults(func=cmd_aging)

    p_fleet = sub.add_parser(
        "fleet", help="fleet-scale Monte Carlo aging study")
    p_fleet.add_argument("circuit")
    p_fleet.add_argument("--scenario", metavar="FILE.json", default=None,
                         help="ScenarioSpec JSON file (same schema as "
                              "'repro aging --scenario'; defaults used "
                              "when omitted)")
    p_fleet.add_argument("--devices", type=int, default=1024,
                         help="population size (default 1024)")
    p_fleet.add_argument("--jobs", type=int, default=1,
                         help="worker processes sharding the population "
                              "(results are bit-identical to --jobs 1)")
    p_fleet.add_argument("--engine", default=None,
                         choices=("reference", "vectorized"),
                         help="fleet engine (default: registry default)")
    p_fleet.add_argument("--seed", type=int, default=None,
                         help="override the scenario's population seed")
    p_fleet.add_argument("--json", action="store_true",
                         help="print the full study summary as JSON")
    p_fleet.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk stage cache for this run")
    p_fleet.set_defaults(func=cmd_fleet)

    p_suite = sub.add_parser(
        "suite", help="sharded suite runner over the shared stage store")
    p_suite.add_argument("--workers", type=int, default=1,
                         help="cooperating worker processes claiming stage "
                              "work units (default 1 = in-process)")
    p_suite.add_argument("--profile", default="quick",
                         choices=("quick", "paper", "synth"),
                         help="suite to run: quick (4 circuits), paper "
                              "(12 circuits), synth (--count synthetic "
                              "circuits)")
    p_suite.add_argument("--count", type=int, default=40,
                         help="synthetic matrix size for --profile synth "
                              "(default 40)")
    p_suite.add_argument("--scale", type=float, default=None,
                         help="override the profile's circuit scale")
    p_suite.add_argument("--schedules", action="store_true",
                         help="also optimize test schedules (synth profile "
                              "skips them by default)")
    p_suite.add_argument("--claim-ttl", type=float, default=None,
                         help="stale-claim reclamation TTL in seconds "
                              "(default: REPRO_CLAIM_TTL or 30)")
    p_suite.add_argument("--progress", action="store_true",
                         help="print per-circuit stage progress")
    p_suite.set_defaults(func=cmd_suite)

    p_resched = sub.add_parser(
        "resched", help="replay an in-field alert stream against the "
                        "adaptive rescheduling engine")
    add_flow_args(p_resched)
    add_cache_args(p_resched)
    p_resched.add_argument("--alerts", metavar="FILE.json", default=None,
                           help="JSON alert stream (list of events: "
                                "{'gate': G, 'shift_ps': S}, bursts as "
                                "lists, or {'shifts': {G: S}}); default: "
                                "a scenario-driven synthetic stream")
    p_resched.add_argument("--scenario", metavar="FILE.json", default=None,
                           help="ScenarioSpec JSON driving the synthetic "
                                "alert generator (ignored with --alerts)")
    p_resched.add_argument("--engine", default=None,
                           help="resched engine: incremental (default) or "
                                "cold (full re-solve baseline)")
    p_resched.add_argument("--max-gates", type=int, default=1,
                           help="alert granularity: gates per synthetic "
                                "alert event (default 1)")
    p_resched.add_argument("--json", action="store_true",
                           help="print per-alert events and the summary "
                                "as JSON")
    p_resched.set_defaults(func=cmd_resched)

    p_serve = sub.add_parser(
        "serve", help="start the HDF-flow service (HTTP/JSON job API "
                      "over the async orchestrator)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8732)
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent job executor threads (default 2)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="run without the shared stage store (every "
                              "job recomputes; in-flight dedupe still "
                              "applies)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="send a job document to a running service")
    p_submit.add_argument("job", metavar="JOB.json",
                          help="job document file: {'kind': 'flow'|"
                               "'suite'|'fleet'|'resched', ...} (see "
                               "repro.core.spec)")
    p_submit.add_argument("--url", default="http://127.0.0.1:8732",
                          help="service base URL (default "
                               "http://127.0.0.1:8732)")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job finishes and print "
                               "the result payload")
    p_submit.add_argument("--stream", action="store_true",
                          help="stream progress events as they happen "
                               "(implies --wait)")
    p_submit.set_defaults(func=cmd_submit)

    p_gen = sub.add_parser("generate", help="emit a synthetic .bench circuit")
    p_gen.add_argument("output")
    p_gen.add_argument("--gates", type=int, default=120)
    p_gen.add_argument("--ffs", type=int, default=24)
    p_gen.add_argument("--inputs", type=int, default=12)
    p_gen.add_argument("--outputs", type=int, default=8)
    p_gen.add_argument("--depth", type=int, default=10)
    p_gen.add_argument("--seed", type=int, default=1)
    p_gen.set_defaults(func=cmd_generate)

    p_bench = sub.add_parser(
        "bench", help="re-measure perf baselines and print deltas")
    p_bench.add_argument("--stage", default="all",
                         help="bench workload to re-measure: all, detection "
                              "(alias: simulation, adds the per-engine "
                              "delta table), schedule, atpg, fleet, "
                              "resched, suite or service (unknown names "
                              "are rejected with the registered list)")
    p_bench.add_argument("--root", type=Path, default=None,
                         help="directory holding the BENCH_*.json baselines "
                              "(default: the repo root)")
    p_bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
