"""The paper's primary contribution, end to end.

:class:`repro.core.flow.HdfTestFlow` implements the complete test flow of
Fig. 4: topological analysis, timing-accurate fault simulation, detection
range analysis with programmable monitors, target fault identification and
ILP-based test schedule optimization.
"""

from repro.core.config import FlowConfig
from repro.core.flow import HdfTestFlow
from repro.core.results import FlowResult

__all__ = ["FlowConfig", "HdfTestFlow", "FlowResult"]
