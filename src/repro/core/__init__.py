"""The paper's primary contribution, end to end.

:class:`repro.core.flow.HdfTestFlow` implements the complete test flow of
Fig. 4 as a staged pipeline (:mod:`repro.core.pipeline` /
:mod:`repro.core.stages`): topological analysis, timing-accurate fault
simulation, detection range analysis with programmable monitors, target
fault identification and ILP-based test schedule optimization, with
per-stage engine selection through :mod:`repro.core.engines` and
per-stage artifact caching / resumable runs.
"""

from repro.core.config import FlowConfig
from repro.core.engines import ENGINES, Engine, EngineRegistry
from repro.core.flow import HdfTestFlow
from repro.core.pipeline import DEFAULT_PIPELINE, Pipeline
from repro.core.results import FlowResult
from repro.core.stages import DEFAULT_STAGES, Stage, StageContext

__all__ = [
    "DEFAULT_PIPELINE", "DEFAULT_STAGES", "ENGINES", "Engine",
    "EngineRegistry", "FlowConfig", "FlowResult", "HdfTestFlow",
    "Pipeline", "Stage", "StageContext",
]
