"""Configuration of the HDF test flow."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engines import ENGINES
from repro.monitors.insertion import DEFAULT_COVERAGE_FRACTION
from repro.monitors.monitor import PAPER_DELAY_FRACTIONS
from repro.scheduling.setcover import DEFAULT_TIME_LIMIT_S
from repro.simulation.wave_sim import DEFAULT_INERTIAL_PS
from repro.timing.clock import DEFAULT_FAST_RATIO
from repro.timing.variation import N_SIGMA, SIGMA_FRACTION


@dataclass
class FlowConfig:
    """All knobs of :class:`repro.core.flow.HdfTestFlow`.

    Defaults reproduce the paper's evaluation setup (Sec. V): ``f_max = 3
    f_nom``, monitors on 25 % of the pseudo-primary outputs with delay
    elements {0.05, 0.1, 0.15, 1/3}·clk, fault size δ = 6σ with σ = 20 % of
    the nominal gate delay.

    Engine selection is per pipeline stage through ``engines`` — a tuple of
    ``(stage, engine)`` pairs validated against
    :data:`repro.core.engines.ENGINES` and normalized in
    ``__post_init__`` to one entry per engine-bearing stage.
    """

    #: Maximum FAST frequency as a multiple of f_nom.
    fast_ratio: float = DEFAULT_FAST_RATIO
    #: Fraction of pseudo-primary outputs carrying a monitor.
    monitor_fraction: float = DEFAULT_COVERAGE_FRACTION
    #: Monitor delay elements as fractions of the nominal clock period.
    monitor_delay_fractions: tuple[float, ...] = PAPER_DELAY_FRACTIONS
    #: Process-variation σ as a fraction of the nominal gate delay.
    sigma_fraction: float = SIGMA_FRACTION
    #: Fault size in σ units (δ = n_sigma · σ).
    n_sigma: float = N_SIGMA
    #: Inertial pulse-filter threshold in ps (simulation + glitch filtering).
    inertial_ps: float = DEFAULT_INERTIAL_PS
    #: Run the topological pre-analysis (Fig. 4 step 1) before simulation.
    structural_prefilter: bool = True
    #: ATPG seed and an optional hard cap on the pattern-pair count.
    atpg_seed: int = 7
    pattern_cap: int | None = None
    #: ILP wall-clock limit per covering instance, seconds.
    ilp_time_limit: float = DEFAULT_TIME_LIMIT_S
    #: Worker processes for the fault simulation (1 = in-process).
    simulation_jobs: int = 1
    #: Worker processes for the per-period step-2 cover solves
    #: (1 = in-process; results are identical either way).
    schedule_jobs: int = 1
    #: Per-stage engine selection, e.g. ``(("atpg", "reference"),)``.
    #: Unlisted stages use their registry default; normalized to one sorted
    #: ``(stage, engine)`` pair per engine-bearing stage.
    engines: tuple[tuple[str, str], ...] = ()
    #: Coverage targets for Table III style relaxed schedules.
    coverage_targets: tuple[float, ...] = field(default=(0.99, 0.98, 0.95, 0.90))

    def __post_init__(self) -> None:
        if self.fast_ratio < 1.0:
            raise ValueError("fast_ratio must be >= 1")
        if not 0.0 <= self.monitor_fraction <= 1.0:
            raise ValueError("monitor_fraction must lie in [0, 1]")
        if self.pattern_cap is not None and self.pattern_cap < 1:
            raise ValueError("pattern_cap must be positive when given")
        if self.simulation_jobs < 1:
            raise ValueError("simulation_jobs must be >= 1")
        if self.schedule_jobs < 1:
            raise ValueError("schedule_jobs must be >= 1")
        if any(not 0.0 < c <= 1.0 for c in self.coverage_targets):
            raise ValueError("coverage targets must lie in (0, 1]")

        selected = {}
        for stage, name in self.engines:
            if stage in selected and selected[stage] != name:
                raise ValueError(f"conflicting engines for stage {stage!r}")
            selected[stage] = name
        resolved = {stage: ENGINES.resolve(stage, name).name
                    for stage, name in selected.items()}
        for stage in ENGINES.stages():
            resolved.setdefault(stage, ENGINES.default(stage))
        self.engines = tuple(sorted(resolved.items()))

    def engine_for(self, stage: str) -> str:
        """Selected engine name for ``stage`` (registry default if unset)."""
        for name, engine in self.engines:
            if name == stage:
                return engine
        return ENGINES.default(stage)
