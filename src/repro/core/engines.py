"""Engine registry: one place for every ``engine="..."`` switch.

Earlier PRs each grew their own engine toggle — one for the word-matrix
vs seed big-int ATPG grading, one for the event-driven vs
full-cone-resweep fault simulation, and the retained seed scheduling
pipeline in :mod:`repro.scheduling.reference`.  This module unifies
them: an :class:`EngineRegistry` maps ``(stage, engine-name)`` to an
adapter callable, each stage declares exactly one default, and
:class:`repro.core.config.FlowConfig` selects engines per stage through
its ``engines`` field — a tuple of ``(stage, engine)`` pairs.

The registry is also the single source of truth for *validation*: unknown
stage or engine names raise immediately with the registered alternatives
listed, both from ``FlowConfig`` and from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Engine:
    """One registered engine implementation for a pipeline stage."""

    stage: str
    name: str
    #: Adapter invoked by the owning stage; signature is stage-specific.
    fn: Callable[..., Any]
    #: One-line description shown in CLI/docs listings.
    doc: str = ""


@dataclass
class EngineRegistry:
    """Registered engines per stage, with one default engine per stage."""

    _engines: dict[str, dict[str, Engine]] = field(default_factory=dict)
    _defaults: dict[str, str] = field(default_factory=dict)

    def register(self, stage: str, name: str, fn: Callable[..., Any],
                 *, default: bool = False, doc: str = "") -> Engine:
        """Register ``fn`` as engine ``name`` of ``stage``."""
        per_stage = self._engines.setdefault(stage, {})
        if name in per_stage:
            raise ValueError(f"engine {name!r} already registered "
                             f"for stage {stage!r}")
        engine = Engine(stage=stage, name=name, fn=fn, doc=doc)
        per_stage[name] = engine
        if default or stage not in self._defaults:
            self._defaults[stage] = name
        return engine

    def stages(self) -> tuple[str, ...]:
        """Stages with at least one registered engine."""
        return tuple(sorted(self._engines))

    def names(self, stage: str) -> tuple[str, ...]:
        """Engine names registered for ``stage`` (error when none)."""
        self._require_stage(stage)
        return tuple(sorted(self._engines[stage]))

    def default(self, stage: str) -> str:
        self._require_stage(stage)
        return self._defaults[stage]

    def resolve(self, stage: str, name: str | None = None) -> Engine:
        """Look up ``name`` (or the stage default) with a helpful error."""
        self._require_stage(stage)
        per_stage = self._engines[stage]
        if name is None:
            name = self._defaults[stage]
        if name not in per_stage:
            known = ", ".join(sorted(per_stage))
            raise ValueError(f"unknown engine {name!r} for stage "
                             f"{stage!r} (registered: {known})")
        return per_stage[name]

    def _require_stage(self, stage: str) -> None:
        if stage not in self._engines:
            known = ", ".join(sorted(self._engines)) or "<none>"
            raise ValueError(f"stage {stage!r} has no registered engines "
                             f"(stages with engines: {known})")


def _atpg_adapter(engine_name: str) -> Callable[..., Any]:
    def run(circuit, *, seed, timer=None):
        from repro.atpg.transition import generate_transition_tests

        return generate_transition_tests(circuit, seed=seed,
                                         engine=engine_name, timer=timer)
    return run


def _simulation_adapter(engine_name: str) -> Callable[..., Any]:
    def run(circuit, faults, patterns, **kwargs):
        from repro.faults.detection import compute_detection_data

        return compute_detection_data(circuit, faults, patterns,
                                      engine=engine_name, **kwargs)
    return run


def _schedule_adapter():
    def run(data, targets, clock, configs, **kwargs):
        from repro.scheduling.schedule import optimize_schedule

        return optimize_schedule(data, targets, clock, configs, **kwargs)
    return run


def _resched_adapter(engine_name: str) -> Callable[..., Any]:
    def run(state, delta):
        from repro.scheduling.resched import RESCHED_ENGINES

        return RESCHED_ENGINES[engine_name](state, delta)
    return run


def _fleet_adapter(engine_name: str) -> Callable[..., Any]:
    def run(circuit, spec, population, **kwargs):
        from repro.aging.fleet import FLEET_ENGINES

        return FLEET_ENGINES[engine_name](circuit, spec, population,
                                          **kwargs)
    return run


def _build_default_registry() -> EngineRegistry:
    reg = EngineRegistry()
    reg.register("atpg", "matrix", _atpg_adapter("matrix"), default=True,
                 doc="vectorized word-matrix fault grading (PR 4)")
    reg.register("atpg", "reference", _atpg_adapter("reference"),
                 doc="seed big-int grading pipeline, kept for cross-checks")
    reg.register("simulation", "wordwave",
                 _simulation_adapter("wordwave"), default=True,
                 doc="batched array-kernel timed waveform simulation (PR 6)")
    reg.register("simulation", "incremental",
                 _simulation_adapter("incremental"),
                 doc="event-driven incremental fault simulation (PR 1)")
    reg.register("simulation", "reference",
                 _simulation_adapter("reference"),
                 doc="seed full-cone resweep, bit-identical cross-check")
    reg.register("schedule", "bitset", _schedule_adapter(), default=True,
                 doc="packed-bitset two-step covering pipeline (PR 3)")
    reg.register("resched", "incremental", _resched_adapter("incremental"),
                 default=True,
                 doc="warm-started incremental alert re-solve (PR 9)")
    reg.register("resched", "cold", _resched_adapter("cold"),
                 doc="full cold re-solve per alert, the equivalence "
                     "yardstick and bench baseline")
    reg.register("aging", "vectorized", _fleet_adapter("vectorized"),
                 default=True,
                 doc="(gates, devices) block-kernel fleet Monte Carlo (PR 7)")
    reg.register("aging", "reference", _fleet_adapter("reference"),
                 doc="per-device Python loop, bit-identical semantics pin")
    return reg


#: Process-wide default registry used by :class:`FlowConfig` validation and
#: the pipeline stages.  Tests may build private registries instead.
ENGINES = _build_default_registry()
