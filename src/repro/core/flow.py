"""The complete HDF test flow (Fig. 4).

Steps, mirroring the paper:

1. **Topological analysis** — STA over the netlist timing; at-speed
   detectable faults (min slack < δ) and timing-redundant HDFs are removed
   from the initial fault list.
2. **Timing-accurate fault simulation** of the remaining sites against the
   (generated or supplied) transition test set.
3. **Detection ranges** from XOR-ed fault-free/faulty waveforms.
4. **Monitor analysis** — ranges under every delay-element configuration;
   faults becoming observable at nominal speed are *monitor at-speed
   detectable* and removed.
5. **Target fault set** Φ_tar — detectable only at FAST frequencies.
6. **Test schedule optimization** — two-step ILP selection of frequencies
   and (pattern, configuration) combinations, plus the conventional and
   heuristic baselines and relaxed-coverage variants (Table III).

Execution is staged: :meth:`HdfTestFlow.run` drives the typed pipeline of
:mod:`repro.core.pipeline` / :mod:`repro.core.stages`, which enables
per-stage artifact caching and resumable runs (pass ``cache=``).  The
pre-pipeline monolithic implementation is retained verbatim as
:meth:`HdfTestFlow.run_monolith` — it is the golden reference the parity
tests pin the staged execution against; do not optimize it.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.atpg.patterns import TestSet
from repro.atpg.transition import generate_transition_tests
from repro.core.config import FlowConfig
from repro.core.pipeline import DEFAULT_PIPELINE, Pipeline, StageStore
from repro.core.results import FlowResult
from repro.core.stages import StageContext
from repro.faults.classify import classify_faults, structural_prefilter
from repro.faults.detection import compute_detection_data
from repro.faults.universe import small_delay_fault_universe
from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.netlist.circuit import Circuit
from repro.scheduling.baselines import (
    conventional_schedule,
    heuristic_schedule,
    proposed_schedule,
)
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta
from repro.utils.profiling import StageTimer


class HdfTestFlow:
    """Runs the flow of Fig. 4 on one finalized circuit."""

    def __init__(self, circuit: Circuit,
                 config: FlowConfig | None = None, *,
                 pipeline: Pipeline | None = None) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized")
        self.circuit = circuit
        self.config = config or FlowConfig()
        self.pipeline = pipeline or DEFAULT_PIPELINE

    def context(self, *, test_set: TestSet | None = None,
                with_schedules: bool = True,
                with_coverage_schedules: bool = False,
                progress: Callable[[str], None] | None = None,
                timer: StageTimer | None = None) -> StageContext:
        """The :class:`StageContext` a run with these arguments would use.

        Public so external schedulers (the sharded suite runner) can
        derive stage keys and execute individual stages against the same
        context the in-process pipeline would see.
        """
        return StageContext(
            circuit=self.circuit,
            config=self.config,
            test_set=test_set,
            with_schedules=with_schedules,
            with_coverage_schedules=with_coverage_schedules,
            timer=timer,
            note=progress or (lambda _msg: None))

    def run(self, *,
            test_set: TestSet | None = None,
            with_schedules: bool = True,
            with_coverage_schedules: bool = False,
            progress: Callable[[str], None] | None = None,
            timer: StageTimer | None = None,
            cache: StageStore | None = None,
            recompute_from: Iterable[str] = ()) -> FlowResult:
        """Execute the staged flow and return a :class:`FlowResult`.

        ``test_set`` bypasses the built-in ATPG (e.g. to replay an external
        pattern set); ``with_coverage_schedules`` additionally optimizes the
        relaxed-coverage schedules of Table III.  ``timer`` collects the
        fine-grained wall-clock split of the engine internals.  ``cache``
        (see :class:`repro.experiments.artifact_cache.StageCache`) enables
        per-stage artifact reuse; ``recompute_from`` forces the named
        stages — plus everything downstream — to recompute even on a hit.
        """
        ctx = self.context(test_set=test_set,
                           with_schedules=with_schedules,
                           with_coverage_schedules=with_coverage_schedules,
                           progress=progress, timer=timer)
        artifacts, meta = self.pipeline.run(ctx, cache=cache,
                                            recompute_from=recompute_from)
        return self._assemble(artifacts, meta)

    def cached_result(self, *,
                      test_set: TestSet | None = None,
                      with_schedules: bool = True,
                      with_coverage_schedules: bool = False,
                      cache: StageStore | None = None) -> FlowResult | None:
        """Whole-flow cache probe: the result iff every stage artifact is
        already in ``cache`` (the legacy whole-``FlowResult`` cache as a
        thin wrapper over the per-stage store)."""
        ctx = self.context(test_set=test_set,
                           with_schedules=with_schedules,
                           with_coverage_schedules=with_coverage_schedules,
                           progress=None, timer=None)
        artifacts = self.pipeline.cached_artifacts(ctx, cache)
        if artifacts is None:
            return None
        n = len(artifacts)
        meta = {
            "stages": {name: {"seconds": 0.0, "cache": "hit"}
                       for name in artifacts},
            "cache": {"hits": n, "misses": 0},
        }
        return self._assemble(artifacts, meta)

    def _assemble(self, artifacts: dict, meta: dict) -> FlowResult:
        timing = artifacts["sta"]
        faults = artifacts["faults"]
        patterns = artifacts["atpg"]
        detection = artifacts["simulation"]
        classification = artifacts["classify"]
        schedule = artifacts["schedule"]
        return FlowResult(
            circuit=self.circuit,
            sta=timing.sta,
            clock=timing.clock,
            configs=timing.configs,
            placement=timing.placement,
            universe_size=faults.universe_size,
            prefilter=faults.prefilter,
            atpg=patterns.atpg,
            test_set=patterns.test_set,
            data=detection.data,
            classification=classification.classification,
            schedules=dict(schedule.schedules),
            coverage_schedules=dict(schedule.coverage_schedules),
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Golden reference (pre-pipeline monolith) — do not optimize
    # ------------------------------------------------------------------
    def run_monolith(self, *,
                     test_set: TestSet | None = None,
                     with_schedules: bool = True,
                     with_coverage_schedules: bool = False,
                     progress: Callable[[str], None] | None = None,
                     timer: StageTimer | None = None) -> FlowResult:
        """The pre-pipeline monolithic flow, retained verbatim.

        The parity tests (``tests/test_pipeline_golden.py``) pin that the
        staged :meth:`run` produces bit-identical results to this body.
        """
        cfg = self.config
        note = progress or (lambda _msg: None)

        # -- Step 0: timing, clocking, monitors --------------------------
        note("static timing analysis")
        sta = run_sta(self.circuit)
        clock = ClockSpec(sta.clock_period, cfg.fast_ratio)
        configs = MonitorConfigSet(tuple(
            f * clock.t_nom for f in sorted(cfg.monitor_delay_fractions)))
        placement = insert_monitors(self.circuit, sta, configs,
                                    fraction=cfg.monitor_fraction)

        # -- Step 1: fault universe + topological screening ---------------
        note("fault universe")
        universe = small_delay_fault_universe(
            self.circuit, sigma_fraction=cfg.sigma_fraction,
            n_sigma=cfg.n_sigma)
        prefilter = None
        faults = universe
        if cfg.structural_prefilter:
            note("structural prefilter")
            prefilter = structural_prefilter(
                self.circuit, sta, universe, clock, configs,
                placement.monitored_gates)
            faults = prefilter.remaining

        # -- Step 2: pattern set ------------------------------------------
        atpg = None
        if test_set is None:
            note("transition-fault ATPG")
            atpg = generate_transition_tests(self.circuit, seed=cfg.atpg_seed,
                                             engine=cfg.engine_for("atpg"),
                                             timer=timer)
            test_set = atpg.test_set
        if cfg.pattern_cap is not None and len(test_set) > cfg.pattern_cap:
            test_set = test_set.subset(range(cfg.pattern_cap))
        test_set = test_set.filled(seed=cfg.atpg_seed)

        # -- Steps 3+4: detection ranges under all configurations ---------
        note(f"fault simulation ({len(faults)} faults x "
             f"{len(test_set)} patterns)")
        data = compute_detection_data(
            self.circuit, faults, test_set,
            horizon=clock.t_nom,
            monitored_gates=placement.monitored_gates,
            inertial=cfg.inertial_ps,
            jobs=cfg.simulation_jobs,
            engine=cfg.engine_for("simulation"),
            timer=timer)

        # -- Step 5: classification / target faults -----------------------
        note("fault classification")
        classification = classify_faults(data, clock, configs)

        result = FlowResult(
            circuit=self.circuit,
            sta=sta,
            clock=clock,
            configs=configs,
            placement=placement,
            universe_size=len(universe),
            prefilter=prefilter,
            atpg=atpg,
            test_set=test_set,
            data=data,
            classification=classification,
        )

        # -- Step 6: schedule optimization ---------------------------------
        if with_schedules:
            note("schedule optimization (conv/heur/prop)")
            result.schedules["conv"] = conventional_schedule(
                data, classification, clock,
                time_limit=cfg.ilp_time_limit,
                jobs=cfg.schedule_jobs, timer=timer)
            result.schedules["heur"] = heuristic_schedule(
                data, classification, clock, configs,
                jobs=cfg.schedule_jobs, timer=timer)
            result.schedules["prop"] = proposed_schedule(
                data, classification, clock, configs,
                time_limit=cfg.ilp_time_limit,
                jobs=cfg.schedule_jobs, timer=timer)
        if with_coverage_schedules:
            for cov in cfg.coverage_targets:
                note(f"schedule optimization (cov >= {cov:.0%})")
                result.coverage_schedules[cov] = proposed_schedule(
                    data, classification, clock, configs, coverage=cov,
                    time_limit=cfg.ilp_time_limit,
                    jobs=cfg.schedule_jobs, timer=timer)
        return result
