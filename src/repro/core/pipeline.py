"""Staged execution of the Fig. 4 flow with per-stage artifact reuse.

:class:`Pipeline` runs the registered :class:`~repro.core.stages.Stage`
objects in topological order.  When given a cache (any object with
``load(key) -> obj | None`` and ``store(key, obj)`` — see
:class:`repro.experiments.artifact_cache.StageCache`), every stage is
keyed by a Merkle-style content hash::

    key(stage) = sha256(stage name, stage CACHE_VERSION,
                        circuit content hash,
                        stage semantic config fields (+ engine selection),
                        {dep: key(dep) for dep in stage.deps})

so a key changes exactly when the stage itself, its configuration, the
circuit, or anything upstream changes.  Editing a scheduling knob
therefore reuses the cached STA/faults/ATPG/detection artifacts and only
re-optimizes schedules; a partially-completed flow resumes from its last
finished stage.

Observability: ``run`` returns a ``meta`` dict with per-stage wall clock
and cache hit/miss status; the flow surfaces it as ``FlowResult.meta``
and ``repro bench`` aggregates the counters across a suite replay.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Iterable, Protocol

from repro.core.stages import DEFAULT_STAGES, Stage, StageContext


class StageStore(Protocol):
    """Minimal cache interface the pipeline consumes."""

    def load(self, key: str) -> Any | None: ...  # pragma: no cover

    def store(self, key: str, obj: Any) -> None: ...  # pragma: no cover


class Pipeline:
    """An ordered DAG of flow stages."""

    def __init__(self, stages: Iterable[Stage] = DEFAULT_STAGES) -> None:
        self._stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._stages:
                raise ValueError(f"duplicate stage {stage.name!r}")
            missing = [d for d in stage.deps if d not in self._stages]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} depends on unregistered/later "
                    f"stage(s) {missing} — stages must be topologically "
                    f"ordered")
            self._stages[stage.name] = stage

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stages(self) -> tuple[str, ...]:
        """Registered stage names in execution order."""
        return tuple(self._stages)

    def get(self, name: str) -> Stage:
        self._require(name)
        return self._stages[name]

    def _require(self, name: str) -> None:
        if name not in self._stages:
            known = ", ".join(self._stages)
            raise ValueError(f"unknown stage {name!r} "
                             f"(registered stages: {known})")

    def descendants(self, names: Iterable[str]) -> set[str]:
        """``names`` plus every stage downstream of them (validated)."""
        seeds = set(names)
        for name in seeds:
            self._require(name)
        out = set(seeds)
        for name, stage in self._stages.items():  # topological order
            if any(d in out for d in stage.deps):
                out.add(name)
        return out

    # ------------------------------------------------------------------
    # Cache keys
    # ------------------------------------------------------------------
    def stage_keys(self, ctx: StageContext) -> dict[str, str]:
        """Merkle-style content key per stage for this context."""
        circuit_hash = ctx.circuit.content_hash()
        keys: dict[str, str] = {}
        for name, stage in self._stages.items():
            payload = {
                "stage": name,
                "version": stage.CACHE_VERSION,
                "circuit": circuit_hash,
                "config": stage.config_key(ctx),
                "deps": {d: keys[d] for d in stage.deps},
            }
            blob = json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))
            keys[name] = hashlib.sha256(blob.encode()).hexdigest()
        return keys

    def unit_descriptors(self, ctx: StageContext) -> tuple[
            tuple[str, str, tuple[tuple[str, str], ...]], ...]:
        """Serializable ``(stage, key, ((dep, dep_key), ...))`` descriptors.

        One per registered stage, in topological order — the work-unit
        decomposition the sharded suite runner
        (:mod:`repro.experiments.shard`) schedules over a shared stage
        store: a unit is ready exactly when every ``dep_key`` artifact is
        present, and complete when its own ``key`` is.
        """
        keys = self.stage_keys(ctx)
        return tuple(
            (name, keys[name],
             tuple((d, keys[d]) for d in stage.deps))
            for name, stage in self._stages.items())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, ctx: StageContext, *, cache: StageStore | None = None,
            recompute_from: Iterable[str] = (),
            ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Execute all stages; returns ``(artifacts, meta)``.

        ``cache`` enables per-stage artifact reuse; ``recompute_from``
        names stages whose cached entries (and those of every downstream
        stage) are bypassed for this run.
        """
        forced = self.descendants(recompute_from) if recompute_from else set()
        keys = self.stage_keys(ctx) if cache is not None else {}
        artifacts: dict[str, Any] = {}
        meta: dict[str, Any] = {
            "stages": {},
            "cache": {"hits": 0, "misses": 0},
        }
        if cache is not None:
            meta["keys"] = dict(keys)
        for name, stage in self._stages.items():
            t0 = time.perf_counter()
            artifact = None
            status = "computed"
            storable = cache is not None and stage.cacheable(ctx)
            if storable and name not in forced:
                artifact = cache.load(keys[name])
                if artifact is not None and \
                        not isinstance(artifact, stage.artifact_type):
                    artifact = None  # stale/foreign entry: treat as miss
                status = "hit" if artifact is not None else "miss"
            if artifact is None:
                artifact = stage.run(ctx, {d: artifacts[d]
                                           for d in stage.deps})
                if storable:
                    # Forced recomputes refresh the stored entry too.
                    cache.store(keys[name], artifact)
            artifacts[name] = artifact
            if cache is not None:
                if status == "hit":
                    meta["cache"]["hits"] += 1
                else:
                    meta["cache"]["misses"] += 1
            meta["stages"][name] = {
                "seconds": time.perf_counter() - t0,
                "cache": status,
            }
        return artifacts, meta

    def cached_artifacts(self, ctx: StageContext,
                         cache: StageStore | None) -> dict[str, Any] | None:
        """Load every stage artifact from cache, or None on any miss.

        This is the whole-``FlowResult`` cache as a thin wrapper over the
        stage store: a flow is "done" exactly when all of its stage
        artifacts are present.
        """
        if cache is None:
            return None
        keys = self.stage_keys(ctx)
        artifacts: dict[str, Any] = {}
        for name, stage in self._stages.items():
            if not stage.cacheable(ctx):
                return None
            artifact = cache.load(keys[name])
            if artifact is None or \
                    not isinstance(artifact, stage.artifact_type):
                return None
            artifacts[name] = artifact
        return artifacts


#: Process-wide default pipeline mirroring Fig. 4.
DEFAULT_PIPELINE = Pipeline()
