"""Result container of the HDF test flow plus paper-style table rows."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atpg.patterns import TestSet
from repro.atpg.transition import AtpgResult
from repro.faults.classify import FaultClassification, StructuralFilterResult
from repro.faults.detection import DetectionData
from repro.monitors.insertion import MonitorPlacement
from repro.monitors.monitor import MonitorConfigSet
from repro.netlist.circuit import Circuit
from repro.scheduling.schedule import ScheduleResult
from repro.timing.clock import ClockSpec
from repro.timing.sta import StaResult


@dataclass
class FlowResult:
    """Everything the flow produced for one circuit."""

    circuit: Circuit
    sta: StaResult
    clock: ClockSpec
    configs: MonitorConfigSet
    placement: MonitorPlacement
    universe_size: int
    prefilter: StructuralFilterResult | None
    atpg: AtpgResult | None
    test_set: TestSet
    data: DetectionData
    classification: FaultClassification
    schedules: dict[str, ScheduleResult] = field(default_factory=dict)
    coverage_schedules: dict[float, ScheduleResult] = field(default_factory=dict)
    #: Pipeline observability: per-stage wall clock and cache hit/miss
    #: status of the run that produced this result (``{"stages": {name:
    #: {"seconds": s, "cache": "hit"|"miss"|"computed"}}, "cache":
    #: {"hits": n, "misses": n}}``; empty for monolith runs).
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived fault counts (Table I semantics)
    # ------------------------------------------------------------------
    @property
    def conv_hdf_detected(self) -> int:
        """HDFs detected by conventional FAST (at-speed faults excluded)."""
        cls = self.classification
        return len(cls.conv_detected - cls.at_speed)

    @property
    def prop_hdf_detected(self) -> int:
        """HDFs detected with programmable monitors (at-speed excluded)."""
        cls = self.classification
        return len(cls.prop_detected - cls.at_speed)

    @property
    def gain_percent(self) -> float:
        """Δ% column of Table I."""
        conv = self.conv_hdf_detected
        if conv == 0:
            return float("inf") if self.prop_hdf_detected else 0.0
        return (self.prop_hdf_detected / conv - 1.0) * 100.0

    @property
    def num_target_faults(self) -> int:
        return len(self.classification.target)

    # ------------------------------------------------------------------
    # Paper-style rows
    # ------------------------------------------------------------------
    def table1_row(self) -> dict[str, object]:
        return {
            "circuit": self.circuit.name,
            "gates": self.circuit.num_gates,
            "ffs": self.circuit.num_ffs,
            "patterns": len(self.test_set),
            "monitors": self.placement.count,
            "conv": self.conv_hdf_detected,
            "prop": self.prop_hdf_detected,
            "gain_percent": round(self.gain_percent, 1),
            "targets": self.num_target_faults,
        }

    def table2_row(self) -> dict[str, object]:
        conv = self.schedules["conv"]
        heur = self.schedules["heur"]
        prop = self.schedules["prop"]
        n_p = len(self.test_set)
        n_c = len(self.configs)
        freq_red = ((1.0 - prop.num_frequencies / conv.num_frequencies) * 100.0
                    if conv.num_frequencies else 0.0)
        return {
            "circuit": self.circuit.name,
            "freq_conv": conv.num_frequencies,
            "freq_heur": heur.num_frequencies,
            "freq_prop": prop.num_frequencies,
            "freq_reduction_percent": round(freq_red, 1),
            "pc_orig": prop.naive_size(n_p, n_c),
            "pc_opti": prop.num_entries,
            "pc_reduction_percent": round(
                prop.reduction_percent(n_p, n_c), 1),
        }

    def table3_row(self) -> dict[str, object]:
        row: dict[str, object] = {"circuit": self.circuit.name}
        n_p = len(self.test_set)
        n_c = len(self.configs)
        for cov, sched in sorted(self.coverage_schedules.items(),
                                 reverse=True):
            tag = f"{int(round(cov * 100))}"
            row[f"F_{tag}"] = sched.num_frequencies
            row[f"PC_{tag}"] = sched.naive_size(n_p, n_c)
            row[f"S_{tag}"] = sched.num_entries
            row[f"dpc_{tag}"] = round(sched.reduction_percent(n_p, n_c), 1)
        return row

    def summary(self) -> dict[str, object]:
        out: dict[str, object] = self.table1_row()
        if self.prefilter is not None:
            out["prefilter_at_speed"] = len(self.prefilter.at_speed)
            out["prefilter_redundant"] = len(self.prefilter.redundant)
        if self.atpg is not None:
            out["atpg_coverage"] = round(self.atpg.coverage, 4)
        for name, sched in self.schedules.items():
            out[f"freqs_{name}"] = sched.num_frequencies
            out[f"entries_{name}"] = sched.num_entries
        return out
