"""Declarative job specifications: the unified request surface.

Four request surfaces grew separately — :class:`FlowConfig` + CLI flags
for single flows, ``ScenarioSpec`` JSON for fleet aging studies,
alert-stream JSON for ``repro resched`` and ``--profile/--workers`` knobs
for the sharded suite runner — each with its own parsing, validation and
cache-keying path.  This module collapses them into one typed layer:

* :class:`FlowJob`, :class:`SuiteJob`, :class:`FleetJob` and
  :class:`ReschedJob` are frozen dataclasses with JSON/dict round-trip
  (:meth:`JobSpec.to_dict` / :meth:`JobSpec.from_dict`), schema
  validation raising :class:`SpecError` with actionable messages, and a
  canonical :meth:`JobSpec.fingerprint` — sha256 over sorted-key compact
  JSON, the same hashing discipline the stage cache keys artifacts with
  (:mod:`repro.experiments.artifact_cache`).
* :class:`ScenarioSpec` / :class:`VariationSpec` (previously
  ``repro.aging.scenario``, which now re-exports from here) describe
  everything random or physical about a lifetime study and ride inside
  :class:`FleetJob` / :class:`ReschedJob` as nested specs.

Fingerprints cover only *semantic* fields: knobs that cannot change the
result (worker counts, execution substrate) are declared per class in
``NON_SEMANTIC`` and excluded, mirroring the runner cache's
``_NON_SEMANTIC_FIELDS``.  Two submissions with equal fingerprints are
therefore interchangeable — the property the service orchestrator's
dedupe relies on (:mod:`repro.service.orchestrator`).

Import discipline: this module imports nothing from :mod:`repro.aging`
(or any other heavy subsystem) at module level — the degradation/hazard
model classes load lazily inside default factories and (de)serialisers —
so the ``repro.aging.scenario`` re-export shim cannot create an import
cycle regardless of which end is imported first.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, ClassVar, Mapping

from repro.core.engines import ENGINES

#: Bumped when the canonical serialisation of any spec changes meaning,
#: so stale fingerprints can never alias fresh ones.
SPEC_VERSION = 1

#: Default lifetime checkpoints (geometric sweep, lifetime units).
DEFAULT_CHECKPOINTS = tuple(0.25 * 2 ** (k / 2.0) for k in range(14))


class SpecError(ValueError):
    """A job/scenario document failed validation (message says how)."""


def canonical_fingerprint(payload: Mapping[str, Any]) -> str:
    """sha256 over sorted-key compact JSON — the shared hashing idiom."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Lazy model access (keeps this module import-cycle-proof)
# ----------------------------------------------------------------------
def _models():
    from repro.aging.degradation import BtiModel, EmModel, HciModel

    return BtiModel, HciModel, EmModel


def _hazards():
    from repro.aging.hazard import WeibullHazard, WeibullMixture

    return WeibullHazard, WeibullMixture


# ----------------------------------------------------------------------
# Scenario specs (the fleet/aging surface)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VariationSpec:
    """Per-device process spread of the degradation-law amplitudes.

    Each device draws one lognormal multiplier per mechanism
    (``exp(N(0, sigma))``), modeling die-to-die process variation of the
    BTI/HCI/EM susceptibility.
    """

    bti_sigma: float = 0.15
    hci_sigma: float = 0.20
    em_sigma: float = 0.25

    def __post_init__(self) -> None:
        for name in ("bti_sigma", "hci_sigma", "em_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete description of a (fleet) lifetime study.

    ``seed`` drives the population draws (process variation, lifetimes,
    weak-gate selection); ``gate_seed`` drives the deterministic per-gate
    stress/activity/current factors of the underlying
    :class:`~repro.aging.degradation.AgingScenario`.
    """

    bti: Any = field(default_factory=lambda: _models()[0]())
    hci: Any = field(default_factory=lambda: _models()[1]())
    em: Any = field(default_factory=lambda: _models()[2]())
    stress_spread: float = 0.5
    variation: VariationSpec = field(default_factory=VariationSpec)
    hazard: Any = field(default_factory=lambda: _hazards()[1].bathtub())
    checkpoints: tuple[float, ...] = DEFAULT_CHECKPOINTS
    #: Weak (marginal-defect) gates injected into infant-mortality devices.
    infant_weak_gates: int = 2
    #: Clamp of the per-device aging time-scale tau = wearout_scale / L.
    tau_min: float = 0.25
    tau_max: float = 8.0
    #: Operating clock period as a multiple of the t=0 critical path (the
    #: design's timing margin the degradation has to eat through).
    clock_margin: float = 1.15
    gate_seed: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.checkpoints:
            raise ValueError("scenario needs at least one checkpoint")
        if list(self.checkpoints) != sorted(self.checkpoints):
            raise ValueError("checkpoints must be ascending")
        if self.checkpoints[0] <= 0.0:
            raise ValueError("checkpoints must be positive")
        if self.infant_weak_gates < 0:
            raise ValueError("infant_weak_gates must be non-negative")
        if not 0.0 < self.tau_min <= self.tau_max:
            raise ValueError("need 0 < tau_min <= tau_max")
        if self.clock_margin < 1.0:
            raise ValueError("clock_margin must be >= 1")

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def aging_scenario(self):
        """The per-gate degradation scenario this spec describes."""
        from repro.aging.degradation import AgingScenario

        return AgingScenario(bti=self.bti, hci=self.hci, em=self.em,
                             seed=self.gate_seed,
                             stress_spread=self.stress_spread)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["checkpoints"] = list(self.checkpoints)
        d["hazard"] = {
            "components": [asdict(c) for c in self.hazard.components],
            "weights": list(self.hazard.weights),
        }
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown scenario fields: {', '.join(sorted(unknown))}")
        bti_cls, hci_cls, em_cls = _models()
        hazard_cls, mixture_cls = _hazards()
        kwargs: dict = dict(data)
        for name, model_cls in (("bti", bti_cls), ("hci", hci_cls),
                                ("em", em_cls)):
            if name in kwargs and isinstance(kwargs[name], dict):
                kwargs[name] = model_cls(**kwargs[name])
        if "variation" in kwargs and isinstance(kwargs["variation"], dict):
            kwargs["variation"] = VariationSpec(**kwargs["variation"])
        if "hazard" in kwargs and isinstance(kwargs["hazard"], dict):
            h = kwargs["hazard"]
            kwargs["hazard"] = mixture_cls(
                components=tuple(hazard_cls(**c)
                                 for c in h["components"]),
                weights=tuple(h["weights"]),
            )
        if "checkpoints" in kwargs:
            kwargs["checkpoints"] = tuple(kwargs["checkpoints"])
        return cls(**kwargs)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2,
                                         sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def fingerprint(self) -> str:
        """Stable content hash — the stage-cache key component."""
        return canonical_fingerprint(self.to_dict())[:16]


# ----------------------------------------------------------------------
# Job specs (the service/CLI surface)
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """Spec field value → JSON document value (tuples become lists)."""
    if isinstance(value, ScenarioSpec):
        return value.to_dict()
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


class JobSpec:
    """Base machinery shared by every job type.

    Subclasses are frozen dataclasses; ``kind`` names the job type in
    serialized documents and ``NON_SEMANTIC`` lists fields that cannot
    change the result (excluded from :meth:`fingerprint`).
    """

    kind: ClassVar[str] = ""
    NON_SEMANTIC: ClassVar[frozenset[str]] = frozenset()

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        out: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):  # type: ignore[arg-type]
            out[f.name] = _jsonable(getattr(self, f.name))
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"{cls.kind} job document must be a JSON "
                            f"object, got {type(data).__name__}")
        payload = dict(data)
        kind = payload.pop("kind", cls.kind)
        if kind != cls.kind:
            raise SpecError(f"expected a {cls.kind!r} job document, "
                            f"got kind {kind!r}")
        known = {f.name for f in fields(cls)}  # type: ignore[arg-type]
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"unknown {cls.kind} job field(s): {', '.join(unknown)} "
                f"(known fields: {', '.join(sorted(known))})")
        try:
            return cls(**cls._coerce(payload))
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(f"invalid {cls.kind} job: {exc}") from exc

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        """Subclass hook: JSON-typed values → constructor arguments."""
        return payload

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    # -- identity -------------------------------------------------------
    def semantic_dict(self) -> dict:
        """The serialized spec with non-semantic fields removed."""
        d = self.to_dict()
        for name in self.NON_SEMANTIC:
            d.pop(name, None)
        return d

    def fingerprint(self) -> str:
        """Canonical content hash over the semantic fields.

        Equal fingerprints mean interchangeable results: the orchestrator
        dedupes submissions on this key, and repeated runs replay from
        the stage store.
        """
        return canonical_fingerprint(
            {"version": SPEC_VERSION, "spec": self.semantic_dict()})


def _check_engines(pairs: Any, *, stages: tuple[str, ...] | None = None
                   ) -> tuple[tuple[str, str], ...]:
    """Validate/normalize explicit ``(stage, engine)`` selections."""
    seen: dict[str, str] = {}
    for item in pairs:
        try:
            stage, name = item
        except (TypeError, ValueError):
            raise SpecError(f"engines entries must be (stage, engine) "
                            f"pairs, got {item!r}") from None
        if stages is not None and stage not in stages:
            raise SpecError(f"engine selection for stage {stage!r} not "
                            f"allowed here (stages: {', '.join(stages)})")
        try:
            resolved = ENGINES.resolve(stage, name).name
        except ValueError as exc:
            raise SpecError(str(exc)) from exc
        if seen.get(stage, resolved) != resolved:
            raise SpecError(f"conflicting engines for stage {stage!r}")
        seen[stage] = resolved
    return tuple(sorted(seen.items()))


def _check_resched_engine(name: str | None) -> None:
    if name is not None:
        try:
            ENGINES.resolve("resched", name)
        except ValueError as exc:
            raise SpecError(str(exc)) from exc


@dataclass(frozen=True)
class FlowJob(JobSpec):
    """One complete HDF test flow on one circuit.

    ``circuit`` resolves like the CLI argument: a ``.bench``/``.v`` path,
    an embedded name (``s27``, ``c17``) or a suite circuit name.
    """

    kind: ClassVar[str] = "flow"

    circuit: str = ""
    fast_ratio: float = 3.0
    monitor_fraction: float = 0.25
    pattern_cap: int | None = None
    atpg_seed: int = 7
    #: Explicit per-stage engine overrides; unlisted stages keep their
    #: registry defaults (engine outputs are pinned bit-identical, but
    #: selection is part of the stage-cache key, hence semantic).
    engines: tuple[tuple[str, str], ...] = ()
    with_schedules: bool = True
    with_coverage_schedules: bool = False

    def __post_init__(self) -> None:
        if not self.circuit:
            raise SpecError("flow job needs a non-empty 'circuit'")
        if self.fast_ratio < 1.0:
            raise SpecError("fast_ratio must be >= 1")
        if not 0.0 <= self.monitor_fraction <= 1.0:
            raise SpecError("monitor_fraction must lie in [0, 1]")
        if self.pattern_cap is not None and self.pattern_cap < 1:
            raise SpecError("pattern_cap must be positive when given")
        object.__setattr__(self, "engines", _check_engines(self.engines))

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if "engines" in payload and payload["engines"] is not None:
            payload["engines"] = tuple(
                tuple(p) for p in payload["engines"])
        return payload

    def flow_config(self, *, simulation_jobs: int = 1,
                    schedule_jobs: int = 1):
        """The :class:`FlowConfig` this job runs under."""
        from repro.core.config import FlowConfig

        return FlowConfig(
            fast_ratio=self.fast_ratio,
            monitor_fraction=self.monitor_fraction,
            pattern_cap=self.pattern_cap,
            atpg_seed=self.atpg_seed,
            engines=self.engines,
            simulation_jobs=simulation_jobs,
            schedule_jobs=schedule_jobs,
        )


@dataclass(frozen=True)
class SuiteJob(JobSpec):
    """One suite replay (Tables I–III drivers, sharded runner).

    ``workers`` and ``sharded`` choose the execution substrate — a fork
    pool inside one process versus cooperating processes over the shared
    stage store — and are non-semantic: results are bit-identical either
    way, so neither enters the fingerprint.
    """

    kind: ClassVar[str] = "suite"
    NON_SEMANTIC: ClassVar[frozenset[str]] = frozenset(
        {"workers", "sharded"})

    names: tuple[str, ...] = ()
    scale: float = 1.0
    with_schedules: bool = True
    with_coverage_schedules: bool = False
    fast_ratio: float = 3.0
    monitor_fraction: float = 0.25
    atpg_seed: int = 7
    #: Worker processes (None = the runner's REPRO_JOBS default).
    workers: int | None = None
    #: Drain stage work units through the shard substrate.
    sharded: bool = False

    def __post_init__(self) -> None:
        if not self.names:
            raise SpecError("suite job needs at least one circuit name")
        object.__setattr__(self, "names", tuple(self.names))
        if self.scale <= 0.0:
            raise SpecError("scale must be positive")
        if self.workers is not None and self.workers < 1:
            raise SpecError("workers must be >= 1 when given")

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if "names" in payload and payload["names"] is not None:
            payload["names"] = tuple(payload["names"])
        return payload

    @classmethod
    def from_profile(cls, profile: str, *, count: int = 40,
                     **overrides: Any) -> "SuiteJob":
        """The CLI's ``--profile quick|paper|synth`` resolution."""
        from repro.circuits.library import (
            QUICK_SUITE_NAMES,
            paper_suite,
            synthetic_suite,
        )

        if profile == "quick":
            base: dict[str, Any] = {"names": tuple(QUICK_SUITE_NAMES),
                                    "scale": 0.6}
        elif profile == "paper":
            base = {"names": tuple(e.name for e in paper_suite())}
        elif profile == "synth":
            base = {"names": tuple(e.name
                                   for e in synthetic_suite(count)),
                    "with_schedules": False}
        else:
            raise SpecError(f"unknown suite profile {profile!r} "
                            f"(known: quick, paper, synth)")
        base.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**base)

    def run_config(self):
        """The :class:`SuiteRunConfig` this job executes as."""
        from repro.experiments.runner import SuiteRunConfig

        kwargs: dict[str, Any] = dict(
            names=self.names, scale=self.scale,
            with_schedules=self.with_schedules,
            with_coverage_schedules=self.with_coverage_schedules,
            fast_ratio=self.fast_ratio,
            monitor_fraction=self.monitor_fraction,
            atpg_seed=self.atpg_seed)
        if self.workers is not None:
            kwargs["jobs"] = max(1, self.workers)
        return SuiteRunConfig(**kwargs)


@dataclass(frozen=True)
class FleetJob(JobSpec):
    """One fleet-scale Monte Carlo aging study.

    The nested :class:`ScenarioSpec` carries everything random or
    physical; ``jobs`` only shards the population across processes
    (results are bit-identical), so it stays out of the fingerprint.
    """

    kind: ClassVar[str] = "fleet"
    NON_SEMANTIC: ClassVar[frozenset[str]] = frozenset({"jobs"})

    circuit: str = ""
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    devices: int = 1024
    #: Fleet engine name (None = registry default).  Selection is part
    #: of the aging stage's cache key, hence semantic.
    engine: str | None = None
    jobs: int = 1

    def __post_init__(self) -> None:
        if not self.circuit:
            raise SpecError("fleet job needs a non-empty 'circuit'")
        if self.devices < 1:
            raise SpecError("devices must be >= 1")
        if self.jobs < 1:
            raise SpecError("jobs must be >= 1")
        if self.engine is not None:
            try:
                ENGINES.resolve("aging", self.engine)
            except ValueError as exc:
                raise SpecError(str(exc)) from exc

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if isinstance(payload.get("scenario"), Mapping):
            payload["scenario"] = ScenarioSpec.from_dict(
                dict(payload["scenario"]))
        return payload


def _canonical_alerts(alerts: Any) -> tuple[tuple[tuple[int, float], ...],
                                            ...]:
    """Alert stream → ordered events of sorted ``(gate, shift)`` pairs."""
    out = []
    for k, event in enumerate(alerts):
        try:
            pairs = sorted((int(g), float(s)) for g, s in event)
        except (TypeError, ValueError):
            raise SpecError(
                f"alert #{k} must be a list of [gate, shift_ps] pairs, "
                f"got {event!r}") from None
        out.append(tuple(pairs))
    return tuple(out)


@dataclass(frozen=True)
class ReschedJob(JobSpec):
    """One in-field alert-stream replay through the resched engine.

    ``alerts`` is an explicit stream — ordered events, each a tuple of
    sorted ``(gate, shift_ps)`` pairs (the canonical form of
    :class:`repro.scheduling.resched.AlertDelta`).  When empty, a
    synthetic stream is generated from ``scenario`` (or the bench
    default scenario when that is ``None`` too).
    """

    kind: ClassVar[str] = "resched"

    circuit: str = ""
    fast_ratio: float = 3.0
    monitor_fraction: float = 0.25
    pattern_cap: int | None = None
    atpg_seed: int = 7
    #: Resched engine name (None = registry default).
    engine: str | None = None
    alerts: tuple[tuple[tuple[int, float], ...], ...] = ()
    scenario: ScenarioSpec | None = None
    #: Synthetic-generator granularity: gates per alert event.
    max_gates: int = 1

    def __post_init__(self) -> None:
        if not self.circuit:
            raise SpecError("resched job needs a non-empty 'circuit'")
        if self.fast_ratio < 1.0:
            raise SpecError("fast_ratio must be >= 1")
        if not 0.0 <= self.monitor_fraction <= 1.0:
            raise SpecError("monitor_fraction must lie in [0, 1]")
        if self.pattern_cap is not None and self.pattern_cap < 1:
            raise SpecError("pattern_cap must be positive when given")
        if self.max_gates < 1:
            raise SpecError("max_gates must be >= 1")
        _check_resched_engine(self.engine)
        object.__setattr__(self, "alerts",
                           _canonical_alerts(self.alerts))

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if isinstance(payload.get("scenario"), Mapping):
            payload["scenario"] = ScenarioSpec.from_dict(
                dict(payload["scenario"]))
        if "alerts" in payload and payload["alerts"] is not None:
            payload["alerts"] = _canonical_alerts(payload["alerts"])
        return payload

    @classmethod
    def alerts_from_deltas(cls, deltas) -> tuple[
            tuple[tuple[int, float], ...], ...]:
        """``AlertDelta`` events → the spec's canonical alert tuples."""
        return tuple(delta.shifts for delta in deltas)

    def alert_deltas(self):
        """The explicit alert stream as ``AlertDelta`` events."""
        from repro.scheduling.resched import AlertDelta

        return [AlertDelta.from_mapping(dict(pairs))
                for pairs in self.alerts]

    def flow_config(self):
        from repro.core.config import FlowConfig

        return FlowConfig(
            fast_ratio=self.fast_ratio,
            monitor_fraction=self.monitor_fraction,
            pattern_cap=self.pattern_cap,
            atpg_seed=self.atpg_seed,
        )


#: Registry of serialized job kinds (the ``"kind"`` document field).
JOB_TYPES: dict[str, type[JobSpec]] = {
    cls.kind: cls for cls in (FlowJob, SuiteJob, FleetJob, ReschedJob)}


def job_from_dict(data: Mapping[str, Any]) -> JobSpec:
    """Parse any job document, dispatching on its ``kind`` field."""
    if not isinstance(data, Mapping):
        raise SpecError(f"job document must be a JSON object, "
                        f"got {type(data).__name__}")
    kind = data.get("kind")
    if kind is None:
        raise SpecError("job document needs a 'kind' field "
                        f"(one of: {', '.join(sorted(JOB_TYPES))})")
    if kind not in JOB_TYPES:
        raise SpecError(f"unknown job kind {kind!r} "
                        f"(known kinds: {', '.join(sorted(JOB_TYPES))})")
    return JOB_TYPES[kind].from_dict(data)


def job_from_json(text: str) -> JobSpec:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"job document is not valid JSON: {exc}") from exc
    return job_from_dict(data)


def load_job(path: str | Path) -> JobSpec:
    """Parse a job document from a JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SpecError(f"cannot read job file {path}: {exc}") from exc
    return job_from_json(text)
