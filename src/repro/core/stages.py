"""Typed stages of the Fig. 4 flow.

Each paper step is a first-class :class:`Stage` object: a name, the
upstream stages it consumes, a typed output artifact dataclass, the
semantic :class:`~repro.core.config.FlowConfig` fields it reads, and a
per-stage ``CACHE_VERSION``.  The pipeline (:mod:`repro.core.pipeline`)
derives a content-addressed cache key for every stage from exactly these
declarations, so flipping one config knob invalidates precisely the stage
that reads it plus its downstream closure — nothing upstream.

Stage DAG (deps point left)::

    sta ──> faults ──────> simulation ──> classify ──> schedule
    atpg ─────────────────────^              sta ────────^
    (sta, atpg also feed simulation; sta feeds classify/schedule)

Engine-bearing stages (``atpg``, ``simulation``, ``schedule``) resolve
their implementation through :data:`repro.core.engines.ENGINES` using the
per-stage selection in ``FlowConfig.engines``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.aging.fleet import FleetResult, fleet_setup, sample_population
from repro.aging.prediction import FleetPredictions, predict_fleet
from repro.aging.scenario import ScenarioSpec
from repro.atpg.patterns import TestSet
from repro.atpg.transition import AtpgResult
from repro.core.config import FlowConfig
from repro.core.engines import ENGINES, EngineRegistry
from repro.faults.classify import (
    FaultClassification,
    StructuralFilterResult,
    classify_faults,
    structural_prefilter,
)
from repro.faults.detection import DetectionData
from repro.faults.models import SmallDelayFault
from repro.faults.universe import small_delay_fault_universe
from repro.monitors.insertion import MonitorPlacement, insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.netlist.circuit import Circuit
from repro.scheduling.baselines import (
    conventional_schedule,
    heuristic_schedule,
    proposed_schedule,
)
from repro.scheduling.schedule import ScheduleResult
from repro.timing.clock import ClockSpec
from repro.timing.sta import StaResult, run_sta
from repro.utils.profiling import StageTimer


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
@dataclass
class StageContext:
    """Everything a stage may read while running one flow."""

    circuit: Circuit
    config: FlowConfig
    #: Externally supplied pattern set (bypasses the ATPG engine).
    test_set: TestSet | None = None
    with_schedules: bool = True
    with_coverage_schedules: bool = False
    #: Fleet Monte Carlo inputs (``aging`` stage only): scenario spec and
    #: population size.  ``None`` spec means the scenario defaults.
    fleet_spec: "ScenarioSpec | None" = None
    fleet_devices: int = 256
    #: Worker processes for the fleet sweep (1 = in-process; sharded runs
    #: are bit-identical, so this is not part of the cache key).
    fleet_jobs: int = 1
    #: Fine-grained profiling sink threaded into the stage internals
    #: (``pregrade``/``base_sim``/``random``/``step2``/... keys).
    timer: StageTimer | None = None
    #: Progress callback (the flow's ``progress=`` argument).
    note: Callable[[str], None] = lambda _msg: None
    registry: EngineRegistry = field(default_factory=lambda: ENGINES)

    def engine(self, stage: str):
        """Resolved engine adapter for ``stage`` per the flow config."""
        return self.registry.resolve(stage, self.config.engine_for(stage))


# ----------------------------------------------------------------------
# Typed artifacts
# ----------------------------------------------------------------------
@dataclass
class TimingArtifact:
    """Step 0: STA, clocking, monitor configurations and placement."""

    sta: StaResult
    clock: ClockSpec
    configs: MonitorConfigSet
    placement: MonitorPlacement


@dataclass
class FaultSetArtifact:
    """Step 1: fault universe after the topological screening."""

    universe_size: int
    prefilter: StructuralFilterResult | None
    faults: list[SmallDelayFault]


@dataclass
class PatternsArtifact:
    """Step 2: transition test set (generated or externally supplied)."""

    atpg: AtpgResult | None
    test_set: TestSet


@dataclass
class DetectionArtifact:
    """Steps 3+4: detection ranges under every monitor configuration."""

    data: DetectionData


@dataclass
class ClassificationArtifact:
    """Step 5: fault classification / target fault set."""

    classification: FaultClassification


@dataclass
class ScheduleArtifact:
    """Step 6: optimized test schedules (plus relaxed-coverage variants)."""

    schedules: dict[str, ScheduleResult]
    coverage_schedules: dict[float, ScheduleResult]


@dataclass
class FleetArtifact:
    """Fleet Monte Carlo: population aging traces plus batch predictions."""

    result: FleetResult
    predictions: FleetPredictions
    metrics: dict[str, Any]


# ----------------------------------------------------------------------
# Stage objects
# ----------------------------------------------------------------------
class Stage:
    """One registered pipeline stage.

    Subclasses declare ``name``, ``deps``, ``artifact_type``,
    ``config_fields`` (the semantic ``FlowConfig`` fields the stage
    reads — worker counts are deliberately absent) and bump
    ``CACHE_VERSION`` whenever their semantics change.
    """

    name: str = ""
    deps: tuple[str, ...] = ()
    artifact_type: type = object
    config_fields: tuple[str, ...] = ()
    CACHE_VERSION: int = 1

    def run(self, ctx: StageContext, inputs: dict[str, Any]) -> Any:
        raise NotImplementedError

    def cacheable(self, ctx: StageContext) -> bool:
        """Whether this stage's artifact may be persisted for ``ctx``."""
        return True

    def config_key(self, ctx: StageContext) -> dict[str, Any]:
        """JSON-able view of every semantic knob this stage reads."""
        out: dict[str, Any] = {}
        for name in self.config_fields:
            value = getattr(ctx.config, name)
            if isinstance(value, tuple):
                value = list(value)
            out[name] = value
        if self.name in ctx.registry.stages():
            out["engine"] = ctx.config.engine_for(self.name)
        return out


class StaStage(Stage):
    name = "sta"
    deps = ()
    artifact_type = TimingArtifact
    config_fields = ("fast_ratio", "monitor_delay_fractions",
                     "monitor_fraction")

    def run(self, ctx: StageContext, inputs: dict[str, Any]) -> TimingArtifact:
        cfg = ctx.config
        ctx.note("static timing analysis")
        sta = run_sta(ctx.circuit)
        clock = ClockSpec(sta.clock_period, cfg.fast_ratio)
        configs = MonitorConfigSet(tuple(
            f * clock.t_nom for f in sorted(cfg.monitor_delay_fractions)))
        placement = insert_monitors(ctx.circuit, sta, configs,
                                    fraction=cfg.monitor_fraction)
        return TimingArtifact(sta=sta, clock=clock, configs=configs,
                              placement=placement)


class FaultsStage(Stage):
    name = "faults"
    deps = ("sta",)
    artifact_type = FaultSetArtifact
    config_fields = ("sigma_fraction", "n_sigma", "structural_prefilter")

    def run(self, ctx: StageContext,
            inputs: dict[str, Any]) -> FaultSetArtifact:
        cfg = ctx.config
        timing: TimingArtifact = inputs["sta"]
        ctx.note("fault universe")
        universe = small_delay_fault_universe(
            ctx.circuit, sigma_fraction=cfg.sigma_fraction,
            n_sigma=cfg.n_sigma)
        prefilter = None
        faults = universe
        if cfg.structural_prefilter:
            ctx.note("structural prefilter")
            prefilter = structural_prefilter(
                ctx.circuit, timing.sta, universe, timing.clock,
                timing.configs, timing.placement.monitored_gates)
            faults = prefilter.remaining
        return FaultSetArtifact(universe_size=len(universe),
                                prefilter=prefilter, faults=faults)


class AtpgStage(Stage):
    name = "atpg"
    deps = ()
    artifact_type = PatternsArtifact
    config_fields = ("atpg_seed", "pattern_cap")

    def run(self, ctx: StageContext,
            inputs: dict[str, Any]) -> PatternsArtifact:
        cfg = ctx.config
        atpg = None
        test_set = ctx.test_set
        if test_set is None:
            ctx.note("transition-fault ATPG")
            atpg = ctx.engine(self.name).fn(ctx.circuit, seed=cfg.atpg_seed,
                                            timer=ctx.timer)
            test_set = atpg.test_set
        if cfg.pattern_cap is not None and len(test_set) > cfg.pattern_cap:
            test_set = test_set.subset(range(cfg.pattern_cap))
        test_set = test_set.filled(seed=cfg.atpg_seed)
        return PatternsArtifact(atpg=atpg, test_set=test_set)

    def config_key(self, ctx: StageContext) -> dict[str, Any]:
        out = super().config_key(ctx)
        if ctx.test_set is not None:
            # External pattern sets are content-addressed so replays of the
            # same patterns still hit the cache.
            digest = hashlib.sha256()
            for p in ctx.test_set:
                digest.update(f"{p.launch}|{p.capture}\n".encode())
            out["external_test_set"] = digest.hexdigest()
        return out


class SimulationStage(Stage):
    name = "simulation"
    deps = ("sta", "faults", "atpg")
    artifact_type = DetectionArtifact
    config_fields = ("inertial_ps",)
    # v2: DetectionData._sched_cache became a bounded LruCache — older
    # pickled artifacts carry a plain dict there.
    CACHE_VERSION = 2

    def run(self, ctx: StageContext,
            inputs: dict[str, Any]) -> DetectionArtifact:
        cfg = ctx.config
        timing: TimingArtifact = inputs["sta"]
        faults: FaultSetArtifact = inputs["faults"]
        patterns: PatternsArtifact = inputs["atpg"]
        ctx.note(f"fault simulation ({len(faults.faults)} faults x "
                 f"{len(patterns.test_set)} patterns)")
        data = ctx.engine(self.name).fn(
            ctx.circuit, faults.faults, patterns.test_set,
            horizon=timing.clock.t_nom,
            monitored_gates=timing.placement.monitored_gates,
            inertial=cfg.inertial_ps,
            jobs=cfg.simulation_jobs,
            timer=ctx.timer)
        return DetectionArtifact(data=data)


class ClassifyStage(Stage):
    name = "classify"
    deps = ("sta", "simulation")
    artifact_type = ClassificationArtifact
    config_fields = ()

    def run(self, ctx: StageContext,
            inputs: dict[str, Any]) -> ClassificationArtifact:
        timing: TimingArtifact = inputs["sta"]
        detection: DetectionArtifact = inputs["simulation"]
        ctx.note("fault classification")
        classification = classify_faults(detection.data, timing.clock,
                                         timing.configs)
        return ClassificationArtifact(classification=classification)


class ScheduleStage(Stage):
    name = "schedule"
    deps = ("sta", "simulation", "classify")
    artifact_type = ScheduleArtifact
    config_fields = ("ilp_time_limit", "coverage_targets")

    def run(self, ctx: StageContext,
            inputs: dict[str, Any]) -> ScheduleArtifact:
        cfg = ctx.config
        timing: TimingArtifact = inputs["sta"]
        data = inputs["simulation"].data
        classification = inputs["classify"].classification
        schedules: dict[str, ScheduleResult] = {}
        coverage_schedules: dict[float, ScheduleResult] = {}
        if ctx.with_schedules:
            ctx.note("schedule optimization (conv/heur/prop)")
            schedules["conv"] = conventional_schedule(
                data, classification, timing.clock,
                time_limit=cfg.ilp_time_limit,
                jobs=cfg.schedule_jobs, timer=ctx.timer)
            schedules["heur"] = heuristic_schedule(
                data, classification, timing.clock, timing.configs,
                jobs=cfg.schedule_jobs, timer=ctx.timer)
            schedules["prop"] = proposed_schedule(
                data, classification, timing.clock, timing.configs,
                time_limit=cfg.ilp_time_limit,
                jobs=cfg.schedule_jobs, timer=ctx.timer)
        if ctx.with_coverage_schedules:
            for cov in cfg.coverage_targets:
                ctx.note(f"schedule optimization (cov >= {cov:.0%})")
                coverage_schedules[cov] = proposed_schedule(
                    data, classification, timing.clock, timing.configs,
                    coverage=cov, time_limit=cfg.ilp_time_limit,
                    jobs=cfg.schedule_jobs, timer=ctx.timer)
        return ScheduleArtifact(schedules=schedules,
                                coverage_schedules=coverage_schedules)

    def config_key(self, ctx: StageContext) -> dict[str, Any]:
        out = super().config_key(ctx)
        out["with_schedules"] = ctx.with_schedules
        out["with_coverage_schedules"] = ctx.with_coverage_schedules
        return out


class AgingStage(Stage):
    """Fleet-scale Monte Carlo lifetime evaluation (not in the Fig. 4 flow).

    Consumes the cached ``sta`` artifact (clock, monitor placement) and
    runs the configured fleet engine over a sampled device population;
    keyed by the scenario fingerprint and device count so repeated sweeps
    over engines or analysis settings replay from the cache.
    """

    name = "aging"
    deps = ("sta",)
    artifact_type = FleetArtifact
    config_fields = ("monitor_delay_fractions",)

    def run(self, ctx: StageContext, inputs: dict[str, Any]) -> FleetArtifact:
        timing: TimingArtifact = inputs["sta"]
        spec = ctx.fleet_spec or ScenarioSpec()
        ctx.note(f"fleet aging ({ctx.fleet_devices} devices x "
                 f"{len(spec.checkpoints)} checkpoints)")
        population = sample_population(ctx.circuit, spec, ctx.fleet_devices)
        # The fleet operates at the scenario's clock margin (the timing
        # slack degradation has to eat through); monitor delay elements
        # scale with that operating period.  Placement reuses the cached
        # t=0 STA artifact — it only depends on path ranking.
        period = spec.clock_margin * timing.sta.critical_path
        configs = MonitorConfigSet(tuple(
            f * period
            for f in sorted(ctx.config.monitor_delay_fractions)))
        setup = fleet_setup(
            ctx.circuit, spec, clock_period=period,
            config_delays=tuple(configs),
            monitored_gates=timing.placement.monitored_gates)
        result = ctx.engine(self.name).fn(ctx.circuit, spec, population,
                                          setup=setup, jobs=ctx.fleet_jobs)
        predictions = predict_fleet(result)
        return FleetArtifact(result=result, predictions=predictions,
                             metrics=predictions.metrics())

    def config_key(self, ctx: StageContext) -> dict[str, Any]:
        out = super().config_key(ctx)
        spec = ctx.fleet_spec or ScenarioSpec()
        out["scenario"] = spec.fingerprint()
        out["devices"] = ctx.fleet_devices
        return out


#: The Fig. 4 flow in topological order.
DEFAULT_STAGES: tuple[Stage, ...] = (
    StaStage(), FaultsStage(), AtpgStage(), SimulationStage(),
    ClassifyStage(), ScheduleStage(),
)
