"""Small-delay-fault diagnosis from FAST failing signatures.

After a deployed monitor raises alerts, or after a FAST run fails, the
natural question is *which* defect explains the observation.  This package
implements failing-frequency-signature diagnosis in the spirit of Lee &
McCluskey's failing frequency signature analysis ([11] in the paper):
observed (frequency, pattern, configuration, pass/fail) tuples are matched
against the per-fault detection ranges the flow already computed, and
candidate faults are ranked by signature consistency.
"""

from repro.diagnosis.signature import FailingSignature, Observation, collect_signature
from repro.diagnosis.ranking import DiagnosisCandidate, diagnose

__all__ = [
    "FailingSignature",
    "Observation",
    "collect_signature",
    "DiagnosisCandidate",
    "diagnose",
]
