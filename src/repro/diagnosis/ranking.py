"""Candidate ranking: match a failing signature against detection ranges.

For every candidate fault φ the stored detection data predicts the outcome
of each observation: application (t, p, c) *should* fail iff
``t ∈ i_all(φ,p) ∪ (i_mon(φ,p) + d_c)``.  Candidates are scored by how well
prediction matches observation:

* a failing observation the fault explains    → true positive,
* a failing observation it cannot explain     → miss (strongly penalized:
  the defect must explain every failure under the single-fault assumption),
* a passing observation it predicts to fail   → false alarm (mildly
  penalized — detection ranges are pessimistically pulse-filtered, so a
  predicted-fail may legitimately pass on silicon).

The returned ranking lists candidates by descending score; ties are broken
deterministically by fault order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.diagnosis.signature import FailingSignature
from repro.faults.detection import DetectionData
from repro.faults.models import SmallDelayFault
from repro.monitors.monitor import MonitorConfigSet
from repro.scheduling.schedule import FF_ONLY_CONFIG

#: Score weights: (true positive, missed failure, false alarm).
WEIGHT_TP = 1.0
WEIGHT_MISS = -4.0
WEIGHT_FALSE_ALARM = -0.25


@dataclass(frozen=True)
class DiagnosisCandidate:
    """One ranked explanation of the signature."""

    fault_index: int
    fault: SmallDelayFault
    score: float
    explained: int
    missed: int
    false_alarms: int

    @property
    def explains_all_failures(self) -> bool:
        return self.missed == 0


def predicts_failure(data: DetectionData, fault_idx: int, period: float,
                     pattern: int, config: int,
                     configs: MonitorConfigSet) -> bool:
    """Would fault ``fault_idx`` fail the given application, per the model?"""
    fpr = data.ranges.get(fault_idx, {}).get(pattern)
    if fpr is None:
        return False
    if fpr.i_all.contains(period):
        return True
    if config == FF_ONLY_CONFIG:
        return False
    return fpr.i_mon.shifted(configs[config]).contains(period)


def diagnose(data: DetectionData, configs: MonitorConfigSet,
             signature: FailingSignature, *,
             candidates: Iterable[int] | None = None,
             max_results: int = 10) -> list[DiagnosisCandidate]:
    """Rank candidate faults against the observed signature.

    ``candidates`` restricts the search (defaults to every fault with
    recorded detection ranges).  Only candidates explaining at least one
    failing observation are returned.
    """
    pool = sorted(candidates) if candidates is not None else sorted(data.ranges)
    ranked: list[DiagnosisCandidate] = []
    for fi in pool:
        explained = missed = false_alarms = 0
        for obs in signature.observations:
            predicted = predicts_failure(data, fi, obs.period, obs.pattern,
                                         obs.config, configs)
            if obs.failed and predicted:
                explained += 1
            elif obs.failed and not predicted:
                missed += 1
            elif not obs.failed and predicted:
                false_alarms += 1
        if explained == 0:
            continue
        score = (WEIGHT_TP * explained + WEIGHT_MISS * missed
                 + WEIGHT_FALSE_ALARM * false_alarms)
        ranked.append(DiagnosisCandidate(
            fault_index=fi, fault=data.faults[fi], score=score,
            explained=explained, missed=missed, false_alarms=false_alarms))
    ranked.sort(key=lambda c: (-c.score, c.fault_index))
    return ranked[:max_results]


def resolution(ranked: list[DiagnosisCandidate], true_fault: int) -> int | None:
    """1-based rank of the true fault in the candidate list (None if absent).

    The standard diagnosis quality metric: rank 1 means perfect resolution.
    """
    for i, c in enumerate(ranked, start=1):
        if c.fault_index == true_fault:
            return i
    return None
