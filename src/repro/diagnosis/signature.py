"""Failing signatures: what the tester actually observed.

An :class:`Observation` is one applied (period, pattern, configuration)
with its pass/fail outcome; a :class:`FailingSignature` is the collection
gathered over a test session.  :func:`collect_signature` builds the
signature for a *known* injected fault by re-simulating the device — the
ground-truth generator used in tests, examples and fault-injection
campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.results import FlowResult
from repro.faults.models import SmallDelayFault
from repro.scheduling.schedule import FF_ONLY_CONFIG, ScheduleEntry
from repro.simulation.wave_sim import WaveformSimulator


@dataclass(frozen=True, order=True)
class Observation:
    """One test application and its outcome."""

    period: float
    pattern: int
    config: int
    failed: bool


@dataclass
class FailingSignature:
    """All observations of one device under test."""

    observations: list[Observation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.observations.sort()

    @property
    def failing(self) -> list[Observation]:
        return [o for o in self.observations if o.failed]

    @property
    def passing(self) -> list[Observation]:
        return [o for o in self.observations if not o.failed]

    @property
    def has_failures(self) -> bool:
        return any(o.failed for o in self.observations)

    def __len__(self) -> int:
        return len(self.observations)


def observe_entry(result: FlowResult, fault: SmallDelayFault,
                  entry: ScheduleEntry, *,
                  sim: WaveformSimulator | None = None) -> bool:
    """Ground truth: does the device with ``fault`` fail this application?

    Re-simulates the pattern on the faulty machine and compares the values
    captured by the standard flip-flops at ``t`` and — when a monitor
    configuration is active — by the shadow registers at ``t - d``.
    """
    sim = sim or WaveformSimulator(result.circuit)
    pattern = result.test_set[entry.pattern]
    base = sim.simulate(pattern.launch, pattern.capture)
    faulty = sim.simulate_fault(base, fault)
    t = entry.period
    d = (None if entry.config == FF_ONLY_CONFIG
         else result.configs[entry.config])
    for op in result.circuit.observation_points():
        og = op.gate
        if base.waveforms[og].value_at(t) != faulty.waveforms[og].value_at(t):
            return True
        if d is not None and og in result.placement.monitored_gates and \
                base.waveforms[og].value_at(t - d) != \
                faulty.waveforms[og].value_at(t - d):
            return True
    return False


def collect_signature(result: FlowResult, fault: SmallDelayFault,
                      entries: Iterable[ScheduleEntry] | None = None
                      ) -> FailingSignature:
    """Apply a schedule to a device carrying ``fault`` and log outcomes.

    Defaults to the proposed schedule's entries; any entry list works
    (e.g. an adaptive diagnosis pattern set).
    """
    if entries is None:
        entries = result.schedules["prop"].entries
    sim = WaveformSimulator(result.circuit)
    observations = [
        Observation(period=e.period, pattern=e.pattern, config=e.config,
                    failed=observe_entry(result, fault, e, sim=sim))
        for e in entries
    ]
    return FailingSignature(observations)
