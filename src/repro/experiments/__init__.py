"""Experiment drivers reproducing the paper's evaluation (Sec. V).

One module per artifact: :mod:`fig3` (coverage vs f_max), :mod:`table1`
(HDF coverage gain), :mod:`table2` (schedule optimization), :mod:`table3`
(relaxed coverage targets), plus the shared :mod:`runner` and plain-text
:mod:`reporting`.  :mod:`paper_data` embeds the published numbers so every
run can be compared against the paper.
"""

from repro.experiments.runner import SuiteRunConfig, run_suite
from repro.experiments.fig3 import Fig3Point, fig3_series
from repro.experiments.robustness import RobustnessPoint, robustness_study
from repro.experiments.table1 import table1_rows
from repro.experiments.table2 import table2_rows
from repro.experiments.table3 import table3_rows

__all__ = [
    "SuiteRunConfig",
    "run_suite",
    "Fig3Point",
    "fig3_series",
    "RobustnessPoint",
    "robustness_study",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]
