"""Persistent on-disk store for per-stage pipeline artifacts.

Repeated table/figure/benchmark drivers replay the same (circuit, scale,
config) flows; the in-process cache of :mod:`repro.experiments.runner` only
helps within one interpreter.  This module persists pipeline artifacts to
disk at **stage** granularity: the :class:`~repro.core.pipeline.Pipeline`
keys every stage by a Merkle-style content hash of

* the circuit content hash,
* the stage's semantic config fields (including its engine selection) —
  worker-count knobs (``simulation_jobs`` / ``schedule_jobs``) are
  deliberately excluded, results are bit-identical for any job count,
* the keys of its upstream stages, and
* the stage's own ``CACHE_VERSION``,

so editing, say, a scheduling knob reuses the cached STA/faults/ATPG/
detection artifacts and only re-optimizes schedules, and a killed run
resumes from its last completed stage.  The legacy whole-``FlowResult``
cache survives as a thin wrapper: a flow is fully cached exactly when all
of its stage artifacts are present
(:meth:`repro.core.flow.HdfTestFlow.cached_result`).

Environment knobs:

* ``REPRO_FLOW_CACHE=0`` disables the disk cache entirely (in-memory
  caching is unaffected);
* ``REPRO_CACHE_DIR`` overrides the cache directory (default:
  ``<repo root>/.repro_cache``).

Writes are atomic (temp file + ``os.replace``) so concurrent workers of the
parallel suite runner can share one directory safely; loads tolerate
corrupt/truncated entries by treating them as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import Any

from repro.core.config import FlowConfig

#: Global salt over every stage entry — bump on cross-cutting semantic
#: changes (per-stage changes should bump the stage's own CACHE_VERSION).
CACHE_VERSION = 2

#: FlowConfig fields excluded from flow keys: they cannot change the result.
_NON_SEMANTIC_FIELDS = frozenset({"simulation_jobs", "schedule_jobs"})


def cache_enabled() -> bool:
    """Disk cache toggle (``REPRO_FLOW_CACHE``, default on)."""
    return os.environ.get("REPRO_FLOW_CACHE", "1") not in ("0", "off", "no")


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # src/repro/experiments/artifact_cache.py -> repo root is 3 levels up
    # from the package directory.
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def config_fingerprint(config: FlowConfig) -> dict[str, Any]:
    """JSON-serializable view of the semantically relevant config fields."""
    out: dict[str, Any] = {}
    for f in fields(config):
        if f.name in _NON_SEMANTIC_FIELDS:
            continue
        value = getattr(config, f.name)
        if isinstance(value, tuple):
            value = [list(v) if isinstance(v, tuple) else v for v in value]
        out[f.name] = value
    return out


def flow_key(circuit_name: str, scale: float, config: FlowConfig,
             *, with_schedules: bool, with_coverage_schedules: bool) -> str:
    """Stable hex digest identifying one whole-flow execution.

    Stage artifacts are keyed by the pipeline's content hashes, not by
    this; it remains the coarse identity used for in-process bookkeeping
    and external tooling.
    """
    payload = {
        "version": CACHE_VERSION,
        "circuit": circuit_name,
        "scale": scale,
        "config": config_fingerprint(config),
        "with_schedules": with_schedules,
        "with_coverage_schedules": with_coverage_schedules,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactCache:
    """Pickle-per-entry artifact store with atomic writes."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.root / f"{key[:2]}" / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        """Cheap presence probe (one ``stat``, no deserialization).

        The sharded suite runner uses this for ready-checks; entries are
        written atomically, so a visible path is always a complete pickle
        (which may still fail :meth:`load` if written by foreign code).
        """
        return self._path(key).exists()

    def delete(self, key: str) -> None:
        """Drop the entry if present (used by forced recomputes)."""
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def load(self, key: str) -> Any | None:
        """Return the stored object, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return None

    def store(self, key: str, obj: Any) -> None:
        """Atomically persist ``obj`` under ``key`` (best effort)."""
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=path.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # Read-only filesystems / quota: caching is an optimization,
            # never a hard failure.
            pass


class StageCache(ArtifactCache):
    """The per-stage content-addressed store the pipeline plugs into.

    Entries live under a ``v<CACHE_VERSION>`` namespace of the cache
    directory, so bumping the global salt orphans (rather than corrupts)
    every pre-existing entry.  Keys are the pipeline's Merkle-style stage
    hashes (:meth:`repro.core.pipeline.Pipeline.stage_keys`).
    """

    def __init__(self, root: Path | str | None = None) -> None:
        base = Path(root) if root is not None else default_cache_dir()
        super().__init__(base / f"v{CACHE_VERSION}")
