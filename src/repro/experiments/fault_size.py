"""Fault-size sensitivity: how the δ = 6σ choice shapes the experiment.

The paper sizes small delay faults at δ = 6σ "to model degraded or
marginal devices" (Sec. III).  This sweep reruns the flow at other
multiples of σ and reports how the fault population redistributes:

* the at-speed class grows monotonically with δ (bigger faults exceed
  more path slacks),
* the *relative monitor gain* is largest for the smallest faults: tiny
  marginal delays produce short, early detection intervals that only the
  shifted shadow registers can observe — the early-life-failure story in
  one curve,
* very large faults are increasingly caught by ordinary at-speed test,
  eroding the population FAST scheduling has to cover.

δ = 6σ sits in the transition region with both a substantial hidden
population and a pronounced monitor gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.library import paper_suite, suite_circuit
from repro.core.config import FlowConfig
from repro.core.flow import HdfTestFlow


@dataclass(frozen=True)
class FaultSizePoint:
    """Flow outcome at one fault size."""

    n_sigma: float
    universe: int
    at_speed_structural: int
    at_speed_simulated: int
    conv_detected: int
    prop_detected: int
    targets: int
    timing_redundant: int

    @property
    def gain_percent(self) -> float:
        if self.conv_detected == 0:
            return float("inf") if self.prop_detected else 0.0
        return (self.prop_detected / self.conv_detected - 1.0) * 100.0

    @property
    def at_speed_total(self) -> int:
        return self.at_speed_structural + self.at_speed_simulated

    def row(self) -> dict[str, object]:
        return {
            "n_sigma": self.n_sigma,
            "universe": self.universe,
            "at_speed": self.at_speed_total,
            "conv": self.conv_detected,
            "prop": self.prop_detected,
            "gain_%": round(self.gain_percent, 1),
            "targets": self.targets,
            "redundant": self.timing_redundant,
        }


def fault_size_sweep(circuit_name: str = "s13207", *,
                     n_sigmas: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 12.0),
                     scale: float = 0.5,
                     pattern_cap: int | None = None,
                     seed: int = 7) -> list[FaultSizePoint]:
    """Run the flow at each fault size on the same circuit and patterns."""
    entry = paper_suite([circuit_name])[0]
    cap = (pattern_cap if pattern_cap is not None
           else entry.pattern_budget(scale=scale))
    points: list[FaultSizePoint] = []
    for n_sigma in n_sigmas:
        circuit = suite_circuit(circuit_name, scale=scale)
        config = FlowConfig(n_sigma=n_sigma, pattern_cap=cap, atpg_seed=seed)
        result = HdfTestFlow(circuit, config).run(with_schedules=False)
        cls = result.classification
        points.append(FaultSizePoint(
            n_sigma=n_sigma,
            universe=result.universe_size,
            at_speed_structural=(len(result.prefilter.at_speed)
                                 if result.prefilter else 0),
            at_speed_simulated=len(cls.at_speed),
            conv_detected=result.conv_hdf_detected,
            prop_detected=result.prop_hdf_detected,
            targets=len(cls.target),
            timing_redundant=len(cls.timing_redundant),
        ))
    return points
