"""Fig. 3 — hidden-delay-fault coverage vs. maximum FAST frequency.

Sweeps ``f_max`` from ``f_nom`` to ``3·f_nom`` and reports, per point, the
HDF coverage of conventional FAST (standard flip-flops only) and of FAST
with programmable monitors (25 % of pseudo-outputs, delay ``t_nom/3`` as in
the figure's caption).

Denominator: all hidden delay faults, i.e. the initial fault universe minus
the at-speed detectable faults (structurally screened ones plus those the
simulation confirms at ``t_nom``).  Timing-redundant and never-activated
faults stay in the denominator — that is why the curves saturate well below
100 %, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import FlowResult
from repro.utils.intervals import IntervalSet

#: Default sweep of f_max as multiples of f_nom.
DEFAULT_RATIOS = tuple(round(1.0 + 0.1 * i, 2) for i in range(21))  # 1.0 .. 3.0


@dataclass(frozen=True)
class Fig3Point:
    """One sweep point: coverages in [0, 1]."""

    fmax_ratio: float
    conv_coverage: float
    prop_coverage: float


def fig3_series(result: FlowResult,
                ratios: tuple[float, ...] = DEFAULT_RATIOS,
                *, monitor_delay_fraction: float = 1.0 / 3.0,
                denominator: str = "all_hdf") -> list[Fig3Point]:
    """Compute the two coverage curves from one flow result.

    ``ratios`` must not exceed the flow's ``fast_ratio`` (detection data is
    only complete inside the simulated window).  ``denominator`` selects
    the HDF population: ``"all_hdf"`` keeps every non-at-speed fault (as
    pessimistic as it gets — faults the pattern set never activates dilute
    the coverage), ``"activated"`` counts only faults the pattern set
    excites (closer to the paper's setting, whose commercial pattern sets
    reach >99.9 % transition coverage).
    """
    clock = result.clock
    if max(ratios) > clock.fast_ratio + 1e-9:
        raise ValueError(
            f"sweep ratio {max(ratios)} exceeds the simulated fast_ratio "
            f"{clock.fast_ratio}")
    data = result.data
    cls = result.classification
    t_nom = clock.t_nom
    shift = monitor_delay_fraction * t_nom

    n_at_speed_structural = (len(result.prefilter.at_speed)
                             if result.prefilter is not None else 0)
    if denominator == "all_hdf":
        denom = (result.universe_size - n_at_speed_structural
                 - len(cls.at_speed))
    elif denominator == "activated":
        denom = len(data.ranges) - len(cls.at_speed & set(data.ranges))
    else:
        raise ValueError(f"unknown denominator {denominator!r}")
    if denom <= 0:
        return [Fig3Point(r, 0.0, 0.0) for r in ratios]

    # Per-fault ranges, excluding simulated at-speed faults.
    hdf_ranges: list[tuple[IntervalSet, IntervalSet]] = []
    for fi in data.ranges:
        if fi in cls.at_speed:
            continue
        hdf_ranges.append((data.union_all(fi), data.union_mon(fi).shifted(shift)))

    points: list[Fig3Point] = []
    for r in sorted(ratios):
        t_min = t_nom / r
        conv = 0
        prop = 0
        for i_all, i_mon_shifted in hdf_ranges:
            ff_hit = not i_all.clipped(t_min, t_nom).is_empty
            if ff_hit:
                conv += 1
                prop += 1
            elif not i_mon_shifted.clipped(t_min, t_nom).is_empty:
                prop += 1
        points.append(Fig3Point(
            fmax_ratio=r,
            conv_coverage=conv / denom,
            prop_coverage=prop / denom,
        ))
    return points
