"""Fleet-scale Monte Carlo aging study.

Drives the ``aging`` pipeline stage over a device population and distils
the paper's population-level claims (Sec. II-B): how detection latency,
prediction lead time and mispredict rate distribute across a shipped
fleet, and how the infant-mortality sub-population differs from the
wear-out bulk.  The study runs as a two-stage pipeline (``sta`` →
``aging``) through the per-stage artifact cache, so repeated sweeps over
device counts, engines or analysis settings reuse the timing artifacts,
and an identical (circuit, scenario, devices, engine) run replays
entirely from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.aging.scenario import ScenarioSpec
from repro.core.config import FlowConfig
from repro.core.pipeline import Pipeline
from repro.core.stages import AgingStage, FleetArtifact, StaStage, StageContext
from repro.experiments.artifact_cache import StageCache, cache_enabled
from repro.netlist.circuit import Circuit

#: The sta -> aging sub-pipeline; sharing StaStage with the Fig. 4 flow
#: means fleet runs amortize cached STA artifacts and vice versa.
FLEET_PIPELINE_STAGES = (StaStage, AgingStage)


@dataclass
class FleetStudy:
    """One fleet run: the stage artifact plus run/cache metadata."""

    circuit: str
    devices: int
    engine: str
    artifact: FleetArtifact
    meta: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """JSON-able study digest (metrics + distributions)."""
        return {
            "circuit": self.circuit,
            "devices": self.devices,
            "engine": self.engine,
            "metrics": self.artifact.metrics,
            "distributions": fleet_distributions(self.artifact),
            "stage_seconds": {
                name: round(info["seconds"], 6)
                for name, info in self.meta.get("stages", {}).items()
            },
            "cache": self.meta.get("cache"),
        }


def _percentiles(values: np.ndarray) -> dict[str, float] | None:
    values = values[~np.isnan(values)]
    if values.size == 0:
        return None
    pct = np.percentile(values, [5, 25, 50, 75, 95])
    return {
        "count": int(values.size),
        "mean": float(np.mean(values)),
        "p5": float(pct[0]), "p25": float(pct[1]), "p50": float(pct[2]),
        "p75": float(pct[3]), "p95": float(pct[4]),
    }


def fleet_distributions(artifact: FleetArtifact) -> dict[str, Any]:
    """Distribution summaries of the fleet outcome quantities.

    * ``detection_latency`` — device age at the first monitor alert;
    * ``lead_time`` — failure time minus first warning (detected devices);
    * ``failure_time`` — actual failure times across the population;
    * ``infant``/``wearout`` — failure-time split by mixture component.
    """
    result = artifact.result
    preds = artifact.predictions
    failure = preds.actual_failure
    infant = result.population.is_infant
    with np.errstate(invalid="ignore"):
        lead = preds.lead_time
    return {
        "detection_latency": _percentiles(preds.first_warning),
        "lead_time": _percentiles(lead),
        "failure_time": _percentiles(failure),
        "infant_failure_time": _percentiles(failure[infant]),
        "wearout_failure_time": _percentiles(failure[~infant]),
        "infant_devices": int(np.count_nonzero(infant)),
    }


def run_fleet_study(circuit: Circuit, *,
                    spec: ScenarioSpec | None = None,
                    devices: int = 1024,
                    engine: str | None = None,
                    jobs: int = 1,
                    config: FlowConfig | None = None,
                    cache: StageCache | None = None,
                    use_cache: bool | None = None) -> FleetStudy:
    """Run (or replay from cache) one fleet Monte Carlo study.

    ``engine`` overrides the registry selection (``vectorized`` default);
    ``jobs`` shards the population over worker processes (bit-identical);
    ``use_cache`` defaults to the ``REPRO_FLOW_CACHE`` environment toggle.
    """
    cfg = config or FlowConfig()
    if engine is not None:
        others = tuple((s, e) for s, e in cfg.engines if s != "aging")
        cfg = FlowConfig(engines=others + (("aging", engine),))
    ctx = StageContext(circuit=circuit, config=cfg,
                       fleet_spec=spec, fleet_devices=devices,
                       fleet_jobs=jobs)
    if use_cache is None:
        use_cache = cache_enabled()
    store = cache if cache is not None else (
        StageCache() if use_cache else None)
    pipeline = Pipeline(tuple(s() for s in FLEET_PIPELINE_STAGES))
    artifacts, meta = pipeline.run(ctx, cache=store)
    artifact: FleetArtifact = artifacts["aging"]
    return FleetStudy(circuit=circuit.name, devices=devices,
                      engine=cfg.engine_for("aging"),
                      artifact=artifact, meta=meta)


# ----------------------------------------------------------------------
# Quick-profile perf workload (shared by ``repro bench --stage fleet``
# and ``benchmarks/test_bench_fleet.py`` so committed baselines and CLI
# re-measurements time the exact same thing)
# ----------------------------------------------------------------------
BENCH_FLEET_DEVICES = 4096
BENCH_FLEET_SEED = 42


def bench_fleet_spec() -> ScenarioSpec:
    """The pinned scenario behind ``BENCH_fleet.json``."""
    return ScenarioSpec(seed=BENCH_FLEET_SEED)


def bench_fleet_seconds(circuit: Circuit, *,
                        devices: int = BENCH_FLEET_DEVICES,
                        engine: str = "vectorized",
                        repeats: int = 2) -> float:
    """Best-of-``repeats`` uncached wall clock of the fleet workload."""
    import time

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_fleet_study(circuit, spec=bench_fleet_spec(), devices=devices,
                        engine=engine, use_cache=False)
        best = min(best, time.perf_counter() - t0)
    return best
