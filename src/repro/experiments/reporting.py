"""Plain-text rendering and paper-vs-measured comparison of experiment rows."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.experiments.paper_data import PAPER_TABLE1, PAPER_TABLE2


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None, *,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells))
              for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(v.rjust(w) if _num(v) else v.ljust(w)
                               for v, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.1f}"
    return str(v)


def _num(v: str) -> bool:
    try:
        float(v)
        return True
    except ValueError:
        return False


def compare_table1(rows: Iterable[Mapping[str, object]]) -> list[dict[str, object]]:
    """Side-by-side measured-vs-paper gain for Table I rows.

    ``shape_match`` records whether the sign and rough ordering of the gain
    agree with the paper (the reproduction criterion — absolute values are
    on different circuits).
    """
    out: list[dict[str, object]] = []
    for row in rows:
        name = str(row["circuit"])
        paper = PAPER_TABLE1.get(name)
        if paper is None:
            continue
        paper_gain = paper[6]
        measured_gain = float(row["gain_percent"])  # type: ignore[arg-type]
        out.append({
            "circuit": name,
            "paper_gain_percent": paper_gain,
            "measured_gain_percent": round(measured_gain, 1),
            "both_positive": (paper_gain > 0) == (measured_gain > 0),
        })
    return out


def compare_table2(rows: Iterable[Mapping[str, object]]) -> list[dict[str, object]]:
    """Measured-vs-paper shape check for Table II: does ILP beat (or match)
    the heuristic, and is the schedule reduction in the paper's 73-98 % band?"""
    out: list[dict[str, object]] = []
    for row in rows:
        name = str(row["circuit"])
        paper = PAPER_TABLE2.get(name)
        if paper is None:
            continue
        out.append({
            "circuit": name,
            "paper_dpc_percent": paper[6],
            "measured_dpc_percent": row["pc_reduction_percent"],
            "ilp_beats_heuristic": (row["freq_prop"] <= row["freq_heur"]),
        })
    return out
