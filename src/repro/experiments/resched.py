"""Alert-burst replay harness for the rescheduling engines.

One replay drives two independent :class:`ScheduleState`s over the same
deterministic alert stream — the ``incremental`` engine against the
``cold`` full-recompute baseline — records per-alert latencies and
re-solve paths, and asserts the schedules stay cost-equal alert by
alert.  ``benchmarks/test_bench_resched.py`` persists the aggregate to
``BENCH_resched.json``; ``repro bench --stage resched`` and the
``pytest -m perf`` guard in ``tests/test_perf_smoke.py`` replay the same
workload against the committed numbers.

Workload shape: single-gate alerts (``max_gates=1`` — one programmable
delay monitor raises one alert) on a densified checkpoint grid (42
points, 12 per lifetime octave), restricted to gates actually carrying
target faults so every alert forces a real re-solve.  Everything derives
from the spec's seeds, so replays are reproducible across hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from time import perf_counter

from repro.aging.scenario import ScenarioSpec
from repro.scheduling.resched import (
    apply_alert,
    apply_alert_cold,
    prepare_state_for_result,
    scenario_alert_stream,
)

#: Dense lifetime grid of the bench replay: 12 checkpoints per octave
#: (the scenario default uses 2) so a quick-profile circuit raises
#: 14-16 single-gate alerts instead of a handful.
ALERT_CHECKPOINTS = tuple(0.25 * 2 ** (k / 6.0) for k in range(42))

#: Spec of the committed bench workload (seeds pin the gate population
#: and the degradation draw).
DEFAULT_SPEC = ScenarioSpec(gate_seed=7, seed=7)

#: Per-gate shift (ps) below which no alert is raised.
ALERT_THRESHOLD_PS = 0.5


@dataclass
class ReschedReplay:
    """One circuit's alert-burst replay: latencies plus equivalence."""

    circuit: str
    alerts: int
    prep_s: float
    #: Per-alert wall clock of the incremental engine, seconds.
    latencies_s: list[float] = field(default_factory=list)
    #: Per-alert wall clock of the cold baseline, seconds.
    cold_s: list[float] = field(default_factory=list)
    #: Histogram of the warm step-1 paths taken.
    paths: dict[str, int] = field(default_factory=dict)
    #: Incremental cost == cold cost at every alert.
    cost_equal: bool = True

    @property
    def median_ms(self) -> float:
        return 1000.0 * median(self.latencies_s) if self.latencies_s else 0.0

    @property
    def max_ms(self) -> float:
        return 1000.0 * max(self.latencies_s) if self.latencies_s else 0.0

    @property
    def total_s(self) -> float:
        return sum(self.latencies_s)

    @property
    def cold_total_s(self) -> float:
        return sum(self.cold_s)

    @property
    def speedup(self) -> float:
        return self.cold_total_s / self.total_s if self.total_s else 0.0


def alert_stream_for_state(circuit, state, *,
                           spec: ScenarioSpec = DEFAULT_SPEC,
                           checkpoints=ALERT_CHECKPOINTS,
                           max_gates: int = 1):
    """The bench alert stream: single-gate alerts on fault-carrying gates."""
    return scenario_alert_stream(
        circuit, spec, checkpoints=checkpoints,
        threshold_ps=ALERT_THRESHOLD_PS, max_gates=max_gates,
        gates=state.gate_faults.keys())


def replay_alert_events(state, alerts, engine, *,
                        progress=None) -> tuple[list[dict], dict]:
    """Replay ``alerts`` against one state with one resched engine.

    The CLI/service replay loop (``repro resched`` and the facade's
    resched executor share it): returns the per-alert event records and
    the latency summary.  ``progress`` receives each event as it lands.
    """
    events: list[dict] = []
    for k, delta in enumerate(alerts):
        out = engine.fn(state, delta)
        sched = out.schedule
        path = out.fast_path or out.stats.get("step1_path", "?")
        event = {
            "alert": k, "gates": sorted(delta.gates),
            "ms": round(1000.0 * out.seconds, 3), "path": path,
            "frequencies": sched.num_frequencies,
            "entries": sched.num_entries, "covered": len(sched.covered),
        }
        events.append(event)
        if progress is not None:
            progress(event)
    lat = sorted(e["ms"] for e in events)
    summary = {
        "alerts": len(events),
        "median_ms": round(lat[len(lat) // 2], 3) if lat else 0.0,
        "max_ms": max(lat) if lat else 0.0,
        "total_s": round(sum(lat) / 1000.0, 4),
    }
    return events, summary


def replay_result(res, *, spec: ScenarioSpec = DEFAULT_SPEC,
                  checkpoints=ALERT_CHECKPOINTS,
                  max_gates: int = 1) -> ReschedReplay:
    """Race the two engines over one flow result's alert stream.

    Two independent states replay the identical stream (the incremental
    engine must not benefit from the cold solver's refreshed caches, and
    vice versa); the cold state is prepared second so allocator warm-up
    penalizes neither side systematically.
    """
    t0 = perf_counter()
    st_inc = prepare_state_for_result(res)
    st_cold = prepare_state_for_result(res)
    prep_s = perf_counter() - t0
    alerts = alert_stream_for_state(res.circuit, st_inc, spec=spec,
                                    checkpoints=checkpoints,
                                    max_gates=max_gates)
    replay = ReschedReplay(circuit=res.circuit.name, alerts=len(alerts),
                           prep_s=round(prep_s, 4))
    for delta in alerts:
        out_inc = apply_alert(st_inc, delta)
        out_cold = apply_alert_cold(st_cold, delta)
        replay.latencies_s.append(out_inc.seconds)
        replay.cold_s.append(out_cold.seconds)
        path = out_inc.fast_path or out_inc.stats.get("step1_path", "?")
        replay.paths[path] = replay.paths.get(path, 0) + 1
        if (out_inc.cost != out_cold.cost
                or out_inc.schedule.covered != out_cold.schedule.covered):
            replay.cost_equal = False
    return replay


def replay_record(replay: ReschedReplay, res) -> dict:
    """JSON record of one replay for ``BENCH_resched.json``."""
    return {
        "gates": len(res.circuit.gates),
        "faults": len(res.data.faults),
        "targets": len(res.classification.target),
        "alerts": replay.alerts,
        "prep_s": replay.prep_s,
        "median_ms": round(replay.median_ms, 3),
        "max_ms": round(replay.max_ms, 3),
        "total_s": round(replay.total_s, 4),
        "cold_total_s": round(replay.cold_total_s, 4),
        "speedup": round(replay.speedup, 2),
        "paths": dict(sorted(replay.paths.items())),
        "cost_equal": replay.cost_equal,
    }


def aggregate_totals(replays) -> dict:
    """Aggregate metrics across circuits (sums race sums, not medians)."""
    replays = list(replays)
    lat = sorted(s for r in replays for s in r.latencies_s)
    inc = sum(r.total_s for r in replays)
    cold = sum(r.cold_total_s for r in replays)
    return {
        "alerts": sum(r.alerts for r in replays),
        "incremental_s": round(inc, 4),
        "cold_s": round(cold, 4),
        "speedup": round(cold / inc, 2) if inc else 0.0,
        "median_ms": round(1000.0 * median(lat), 3) if lat else 0.0,
        "max_ms": round(1000.0 * max(lat), 3) if lat else 0.0,
        "cost_equal": all(r.cost_equal for r in replays),
    }
