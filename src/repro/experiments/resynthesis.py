"""Resynthesis sensitivity: how netlist structure moves the monitor gain.

The method's profit depends on the path-delay population, which synthesis
controls.  This experiment reruns the flow on structurally transformed
versions of the same function:

* **decomposed** — all gates broken into 2-input trees: paths deepen, the
  clock stretches, per-gate fault sizes shrink,
* **buffered** — heavy fanouts split with buffer trees: load delays drop,
  short branch paths appear at the buffers.

Functional equivalence of the variants is guaranteed by construction
(:mod:`repro.netlist.techmap` is property-tested against simulation), so
any change in the Table-I columns is attributable purely to structure —
the experimental knob a DfT engineer actually controls.
"""

from __future__ import annotations

from repro.circuits.library import paper_suite, suite_circuit
from repro.core.config import FlowConfig
from repro.core.flow import HdfTestFlow
from repro.netlist.circuit import Circuit
from repro.netlist.techmap import buffer_fanouts, decompose_wide_gates


def _run(circuit: Circuit, pattern_cap: int, seed: int) -> dict[str, object]:
    result = HdfTestFlow(circuit, FlowConfig(
        pattern_cap=pattern_cap, atpg_seed=seed)).run(with_schedules=False)
    row = result.table1_row()
    row["variant"] = circuit.name
    row["clk_ps"] = round(result.clock.t_nom, 1)
    row["depth"] = circuit.depth
    return row


def resynthesis_comparison(circuit_name: str = "s13207", *,
                           scale: float = 0.5,
                           pattern_cap: int | None = None,
                           seed: int = 7) -> list[dict[str, object]]:
    """Table-I rows for the original, decomposed and buffered variants."""
    entry = paper_suite([circuit_name])[0]
    cap = (pattern_cap if pattern_cap is not None
           else entry.pattern_budget(scale=scale))
    original = suite_circuit(circuit_name, scale=scale)
    decomposed = decompose_wide_gates(original, max_arity=2)
    buffered = buffer_fanouts(original, max_fanout=3)
    return [
        _run(original, cap, seed),
        _run(decomposed, cap, seed),
        _run(buffered, cap, seed),
    ]
