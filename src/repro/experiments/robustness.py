"""Schedule robustness under process variation.

The paper selects the *mid-points* of the representative intervals "in
order to cover the targeted faults robustly even under variations"
(Sec. IV-A).  This experiment quantifies that choice: a schedule generated
on the nominal-corner detection data is replayed on seeded process corners
(every pin delay perturbed by Gaussian noise), and the fraction of target
faults the unchanged schedule still exposes is measured.  Midpoint
schedules should degrade gracefully; schedules whose periods sit at the
segment *edges* should lose faults as soon as delays shift.

The replay is fully independent of the stored detection ranges: every
(fault, entry) pair is re-simulated on the corner circuit and the captured
values of the standard and shadow registers are compared directly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.core.results import FlowResult
from repro.scheduling.schedule import ScheduleResult, optimize_schedule
from repro.simulation.wave_sim import WaveformSimulator
from repro.timing.variation import apply_process_variation


@dataclass(frozen=True)
class RobustnessPoint:
    """Replay outcome of one schedule on one process corner."""

    corner_seed: int
    policy: str
    detected: int
    targets: int

    @property
    def coverage(self) -> float:
        return self.detected / self.targets if self.targets else 1.0


def replay_schedule(result: FlowResult, schedule: ScheduleResult,
                    circuit) -> int:
    """Count target faults the schedule exposes on the given circuit.

    Detection criterion per entry (period t, pattern p, config c): some
    observation point captures different values in the fault-free and
    faulty simulation — the standard FF samples at ``t``, the shadow
    register of a monitored output at ``t - d_c``.
    """
    sim = WaveformSimulator(circuit)
    configs = result.configs
    monitored = result.placement.monitored_gates
    obs_gates = sorted({op.gate for op in circuit.observation_points()})

    base_cache: dict[int, object] = {}

    def base_of(pattern_idx: int):
        if pattern_idx not in base_cache:
            pattern = result.test_set[pattern_idx]
            base_cache[pattern_idx] = sim.simulate(pattern.launch,
                                                   pattern.capture)
        return base_cache[pattern_idx]

    detected = 0
    for fi in sorted(schedule.targets):
        fault = result.data.faults[fi]
        hit = False
        for e in schedule.entries:
            base = base_of(e.pattern)
            faulty = sim.simulate_fault(base, fault)
            t = e.period
            d = configs[e.config] if e.config >= 0 else None
            for og in obs_gates:
                gw = base.waveforms[og]
                fw = faulty.waveforms[og]
                if gw.value_at(t) != fw.value_at(t):
                    hit = True
                    break
                if d is not None and og in monitored and \
                        gw.value_at(t - d) != fw.value_at(t - d):
                    hit = True
                    break
            if hit:
                break
        if hit:
            detected += 1
    return detected


def robustness_study(result: FlowResult, *, corner_seeds: list[int],
                     sigma_fraction: float = 0.05,
                     policies: tuple[str, ...] = ("mid", "lo"),
                     max_targets: int | None = 60) -> list[RobustnessPoint]:
    """Replay nominal schedules on perturbed corners for each policy.

    ``sigma_fraction`` is the per-delay relative variation of the corners
    (smaller than the 20 % fault-sizing σ: this models die-to-die spread
    the schedule must survive, not the defect population).  ``max_targets``
    caps the replayed fault count to bound runtime.
    """
    targets = frozenset(sorted(result.classification.target)[:max_targets]
                        if max_targets else result.classification.target)
    schedules = {
        policy: optimize_schedule(result.data, targets, result.clock,
                                  result.configs, candidate_point=policy)
        for policy in policies
    }

    points: list[RobustnessPoint] = []
    for seed in corner_seeds:
        corner = copy.deepcopy(result.circuit)
        apply_process_variation(corner, seed=seed,
                                sigma_fraction=sigma_fraction)
        for policy, schedule in schedules.items():
            detected = replay_schedule(result, schedule, corner)
            points.append(RobustnessPoint(
                corner_seed=seed, policy=policy, detected=detected,
                targets=len(schedule.targets)))
    return points


def mean_coverage(points: list[RobustnessPoint], policy: str) -> float:
    sel = [p.coverage for p in points if p.policy == policy]
    return sum(sel) / len(sel) if sel else 0.0
