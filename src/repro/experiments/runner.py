"""Shared suite runner with in-process caching.

All table/figure drivers replay the same flow over the (scaled) evaluation
suite; the runner executes each circuit once per parameterization and caches
the :class:`FlowResult` so Table I/II/III and Fig. 3 drivers — and the
benchmark harness, which calls them repeatedly — share the expensive fault
simulation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.circuits.library import QUICK_SUITE_NAMES, paper_suite, suite_circuit
from repro.core.config import FlowConfig
from repro.core.flow import HdfTestFlow
from repro.core.results import FlowResult
from repro.utils.profiling import StageTimer


def _default_jobs() -> int:
    """Worker processes for fault simulation and the per-period schedule
    solves (env ``REPRO_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


@dataclass(frozen=True)
class SuiteRunConfig:
    """Parameters of one suite replay."""

    names: tuple[str, ...] = tuple(e.name for e in paper_suite())
    scale: float = 1.0
    with_schedules: bool = True
    with_coverage_schedules: bool = False
    fast_ratio: float = 3.0
    monitor_fraction: float = 0.25
    atpg_seed: int = 7

    @classmethod
    def quick(cls, **overrides: object) -> "SuiteRunConfig":
        """Four small circuits at reduced scale — tests and CI benchmarks."""
        base = cls(names=tuple(QUICK_SUITE_NAMES), scale=0.6)
        return replace(base, **overrides)  # type: ignore[arg-type]


@dataclass
class _CacheEntry:
    results: dict[str, FlowResult] = field(default_factory=dict)


_CACHE: dict[SuiteRunConfig, _CacheEntry] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_suite(config: SuiteRunConfig | None = None,
              *, progress: bool = False,
              timer: StageTimer | None = None) -> dict[str, FlowResult]:
    """Run (or fetch cached) flow results for every circuit of the config.

    ``timer`` accumulates the fault-simulation stage split across all
    circuits actually executed (cache hits contribute nothing).
    """
    cfg = config or SuiteRunConfig()
    entry = _CACHE.setdefault(cfg, _CacheEntry())
    suite = {e.name: e for e in paper_suite(list(cfg.names))}
    for name in cfg.names:
        if name in entry.results:
            continue
        suite_entry = suite[name]
        circuit = suite_circuit(name, scale=cfg.scale)
        flow_config = FlowConfig(
            fast_ratio=cfg.fast_ratio,
            monitor_fraction=cfg.monitor_fraction,
            atpg_seed=cfg.atpg_seed,
            pattern_cap=suite_entry.pattern_budget(scale=cfg.scale),
            simulation_jobs=_default_jobs(),
            schedule_jobs=_default_jobs(),
        )
        note = (lambda m, _n=name: print(f"[{_n}] {m}")) if progress else None
        entry.results[name] = HdfTestFlow(circuit, flow_config).run(
            with_schedules=cfg.with_schedules,
            with_coverage_schedules=cfg.with_coverage_schedules,
            progress=note, timer=timer)
    return {name: entry.results[name] for name in cfg.names}
