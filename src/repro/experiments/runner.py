"""Shared suite runner with in-process, on-disk and multi-process reuse.

All table/figure drivers replay the same flow over the (scaled) evaluation
suite; the runner executes each circuit once per parameterization and caches
the :class:`FlowResult` at three levels:

* **in-process** — keyed by the full :class:`SuiteRunConfig` (including the
  effective job count, so runs under different ``REPRO_JOBS`` settings never
  alias each other's timer splits);
* **on disk** — at *stage* granularity via
  :class:`repro.experiments.artifact_cache.StageCache`: every flow runs
  against the shared stage store, so repeated invocations skip completed
  stages across processes and sessions, a partially-completed suite run
  resumes from the last finished stage of each circuit, and a fully cached
  flow is assembled without executing anything
  (:meth:`~repro.core.flow.HdfTestFlow.cached_result`);
* **across workers** — with ``jobs > 1`` the circuits fan out over a fork
  process pool; each worker runs its flow with in-process stage parallelism
  disabled (no nested pools) and ships back ``(result, timer)``.  Atomic
  stage-store writes make the shared cache directory safe under
  concurrency.

``run_suite(..., recompute_from=("schedule",))`` bypasses the cached
artifacts of the named pipeline stages plus their downstream closure —
unknown stage names raise ``ValueError`` listing the registered stages.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass, field, replace

from repro.circuits.library import (
    QUICK_SUITE_NAMES,
    paper_suite,
    suite_circuit,
    suite_entry,
    synthetic_suite,
)
from repro.core.config import FlowConfig
from repro.core.flow import HdfTestFlow
from repro.core.pipeline import DEFAULT_PIPELINE
from repro.core.results import FlowResult
from repro.experiments.artifact_cache import StageCache, cache_enabled
from repro.utils.profiling import StageTimer


def _default_jobs() -> int:
    """Worker-process count from the environment (``REPRO_JOBS``).

    Read once into :class:`SuiteRunConfig` at construction time, so the
    effective parallelism is part of the cache key instead of ambient
    state.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


@dataclass(frozen=True)
class SuiteRunConfig:
    """Parameters of one suite replay."""

    names: tuple[str, ...] = tuple(e.name for e in paper_suite())
    scale: float = 1.0
    with_schedules: bool = True
    with_coverage_schedules: bool = False
    fast_ratio: float = 3.0
    monitor_fraction: float = 0.25
    atpg_seed: int = 7
    #: Effective worker count (captured from ``REPRO_JOBS`` by default).
    #: With multiple circuits the suite fans out one flow per worker;
    #: with a single circuit the jobs go to the in-flow stage pools.
    jobs: int = field(default_factory=_default_jobs)

    @classmethod
    def quick(cls, **overrides: object) -> "SuiteRunConfig":
        """Four small circuits at reduced scale — tests and CI benchmarks."""
        base = cls(names=tuple(QUICK_SUITE_NAMES), scale=0.6)
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def synth(cls, count: int = 120, *, start: int = 0,
              **overrides: object) -> "SuiteRunConfig":
        """A ``count``-circuit synthetic matrix (``syn0000``, ...).

        The sharded-suite workload: hundreds of small, deterministic
        circuits (see :func:`repro.circuits.library.synthetic_suite`).
        Schedules are off by default to keep the per-circuit flow cheap.
        """
        names = tuple(e.name for e in synthetic_suite(count, start=start))
        base = cls(names=names, scale=1.0, with_schedules=False)
        return replace(base, **overrides)  # type: ignore[arg-type]


def run_suite_job(job, *, progress: bool = False,
                  timer: "StageTimer | None" = None,
                  recompute_from: tuple[str, ...] = ()
                  ) -> dict[str, FlowResult]:
    """Execute a declarative :class:`repro.core.spec.SuiteJob` in-process.

    The facade's suite path (:func:`repro.service.orchestrator.run_job`):
    the job's semantic fields map onto one :class:`SuiteRunConfig` and
    run through the same three-level cache as every direct caller.
    """
    return run_suite(job.run_config(), progress=progress, timer=timer,
                     recompute_from=recompute_from)


@dataclass
class _CacheEntry:
    results: dict[str, FlowResult] = field(default_factory=dict)


_CACHE: dict[SuiteRunConfig, _CacheEntry] = {}


def clear_cache() -> None:
    _CACHE.clear()


def _stage_cache() -> StageCache | None:
    return StageCache() if cache_enabled() else None


def flow_config(cfg: SuiteRunConfig, pattern_cap: int | None,
                stage_jobs: int) -> FlowConfig:
    """The :class:`FlowConfig` one suite circuit runs under."""
    return FlowConfig(
        fast_ratio=cfg.fast_ratio,
        monitor_fraction=cfg.monitor_fraction,
        atpg_seed=cfg.atpg_seed,
        pattern_cap=pattern_cap,
        simulation_jobs=stage_jobs,
        schedule_jobs=stage_jobs,
    )


def suite_flow(name: str, cfg: SuiteRunConfig, pattern_cap: int | None,
               stage_jobs: int) -> HdfTestFlow:
    """Build the flow for one suite circuit (shared with the shard planner)."""
    circuit = suite_circuit(name, scale=cfg.scale)
    return HdfTestFlow(circuit, flow_config(cfg, pattern_cap, stage_jobs))


def _execute_flow(name: str, cfg: SuiteRunConfig, pattern_cap: int | None,
                  stage_jobs: int, progress: bool,
                  timer: StageTimer | None,
                  recompute_from: tuple[str, ...] = (),
                  cache: StageCache | None = None) -> FlowResult:
    flow = suite_flow(name, cfg, pattern_cap, stage_jobs)
    note = (lambda m, _n=name: print(f"[{_n}] {m}")) if progress else None
    return flow.run(
        with_schedules=cfg.with_schedules,
        with_coverage_schedules=cfg.with_coverage_schedules,
        progress=note, timer=timer,
        cache=cache, recompute_from=recompute_from)


def _worker_run(args: tuple[str, SuiteRunConfig, int | None, bool,
                            tuple[str, ...], StageCache | None]
                ) -> tuple[str, FlowResult, StageTimer]:
    """Pool entry point: run one circuit flow, stage pools disabled.

    The parent's stage cache (or None) rides along in the args so every
    worker targets the same store root — claim bookkeeping and hit/miss
    counters all see a single shared directory.
    """
    name, cfg, pattern_cap, progress, recompute_from, cache = args
    timer = StageTimer()
    result = _execute_flow(name, cfg, pattern_cap, stage_jobs=1,
                           progress=progress, timer=timer,
                           recompute_from=recompute_from, cache=cache)
    return name, result, timer


def _pool_context() -> mp.context.BaseContext:
    # fork shares the (already imported) circuit/library state with zero
    # pickling of inputs; fall back to the platform default elsewhere.
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def run_suite(config: SuiteRunConfig | None = None,
              *, progress: bool = False,
              timer: StageTimer | None = None,
              recompute_from: tuple[str, ...] = ()) -> dict[str, FlowResult]:
    """Run (or fetch cached) flow results for every circuit of the config.

    ``timer`` accumulates the per-stage wall-clock split across all
    circuits actually executed (cache hits contribute nothing; parallel
    workers' splits are merged in).  ``recompute_from`` forces the named
    pipeline stages plus everything downstream to recompute even when
    cached — unknown names raise ``ValueError`` listing the registered
    stages.
    """
    cfg = config or SuiteRunConfig()
    recompute_from = tuple(recompute_from)
    if recompute_from:
        DEFAULT_PIPELINE.descendants(recompute_from)  # validate names early
    entry = _CACHE.setdefault(cfg, _CacheEntry())
    suite = {name: suite_entry(name) for name in cfg.names}
    # One stage store instance for the whole replay: the pre-scan below,
    # the serial path and every pool worker all target the same root.
    disk = _stage_cache()

    caps = {name: suite[name].pattern_budget(scale=cfg.scale)
            for name in cfg.names}
    pending: list[str] = []
    for name in cfg.names:
        if name in entry.results and not recompute_from:
            continue
        if disk is not None and not recompute_from:
            cached = suite_flow(name, cfg, caps[name], 1).cached_result(
                with_schedules=cfg.with_schedules,
                with_coverage_schedules=cfg.with_coverage_schedules,
                cache=disk)
            if cached is not None:
                entry.results[name] = cached
                continue
        pending.append(name)

    if len(pending) > 1 and cfg.jobs > 1:
        ctx = _pool_context()
        args = [(name, cfg, caps[name], progress, recompute_from, disk)
                for name in pending]
        with ctx.Pool(processes=min(cfg.jobs, len(pending))) as pool:
            # Unordered collection: a slow circuit must not head-of-line
            # block result pickup and timer merging (results are keyed by
            # name, so arrival order is irrelevant).
            for name, result, wtimer in pool.imap_unordered(_worker_run,
                                                            args):
                entry.results[name] = result
                if timer is not None:
                    timer.merge(wtimer)
    else:
        # Serial circuits: hand the job budget to the in-flow stage pools.
        for name in pending:
            entry.results[name] = _execute_flow(
                name, cfg, caps[name], stage_jobs=cfg.jobs,
                progress=progress, timer=timer,
                recompute_from=recompute_from, cache=disk)

    return {name: entry.results[name] for name in cfg.names}
