"""Sharded suite execution: stage work units over the shared stage store.

The fork pool in :mod:`repro.experiments.runner` fans out at whole-circuit
granularity, so a long pipeline stage on one big circuit serializes the
suite's tail while other workers idle.  This module decomposes a suite run
into **stage work units** — the serializable ``(circuit, stage,
upstream-keys)`` descriptors of
:meth:`repro.core.pipeline.Pipeline.unit_descriptors` — and turns the
Merkle-keyed :class:`~repro.experiments.artifact_cache.StageCache` into a
coordination substrate for any number of independent worker processes:

* **Readiness** is an artifact-presence check: a unit may run once every
  upstream stage key exists in the store.  Workers learn about remote
  progress purely through the filesystem, so the design is multi-process
  today and multi-host-shaped (any shared ``REPRO_CACHE_DIR`` works).
* **Claims** are lock-free: a worker claims a unit by exclusively creating
  ``claims/<key>.claim`` (atomic on POSIX), heartbeats the claim's mtime
  from a daemon thread while the stage runs, and releases it after the
  atomic artifact store.  A killed worker stops heartbeating; once the
  claim's age exceeds the TTL any other worker *steals* it with an atomic
  ``os.rename`` to a per-worker tombstone — exactly one thief wins — and
  re-runs the unit.  Claims only dedupe work: artifact writes are atomic
  and stage execution is deterministic, so the rare duplicated execution
  under claim races is waste, never corruption.
* **Scheduling** is dynamic and greedy: every worker scans the shared
  frontier in priority order (circuits sorted by estimated cost,
  longest-processing-time first; stages in topological order) and runs the
  first ready unclaimed unit.  Ready units are picked up the moment their
  upstream artifacts land, instead of pinning one circuit per worker.
* **Resumability** falls out: re-invoking the same suite recomputes
  nothing that already has an artifact, so a partially-completed (or
  killed) suite run picks up exactly the missing stage units.

``run_suite_sharded`` is the public entry point (surfaced as ``repro
suite --workers N``); ``timed_plan``/``run_plan`` drive the same
scheduler with simulated-duration units, which is how
``BENCH_suite.json`` measures scheduler scaling independently of the
recording host's core count.

Environment knobs: ``REPRO_CLAIM_TTL`` (stale-claim age in seconds,
default 30; heartbeats refresh at TTL/4, so it bounds how long a killed
worker's unit stays orphaned, not the longest stage duration).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.circuits.library import suite_entry, synthetic_suite
from repro.core.pipeline import DEFAULT_PIPELINE
from repro.core.results import FlowResult
from repro.core.stages import StageContext
from repro.experiments.artifact_cache import StageCache, cache_enabled
from repro.experiments.runner import SuiteRunConfig, suite_flow
from repro.utils.profiling import StageTimer

#: Default stale-claim TTL in seconds (override via ``REPRO_CLAIM_TTL``).
DEFAULT_CLAIM_TTL = 30.0


def default_claim_ttl() -> float:
    try:
        return max(0.05, float(os.environ.get("REPRO_CLAIM_TTL",
                                              DEFAULT_CLAIM_TTL)))
    except ValueError:
        return DEFAULT_CLAIM_TTL


# ----------------------------------------------------------------------
# Work units and plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkUnit:
    """One schedulable ``(circuit, stage)`` node of the suite DAG."""

    circuit: str
    stage: str
    #: Content-addressed artifact key (the unit is complete when present).
    key: str
    #: Upstream ``(stage name, artifact key)`` pairs (ready when all present).
    deps: tuple[tuple[str, str], ...]
    #: Scheduling priority / simulated duration (seconds for timed plans,
    #: a unitless cost estimate for suite plans).
    cost: float = 0.0


@dataclass
class ShardStats:
    """Aggregated accounting of one sharded run."""

    computed: int = 0
    hits: int = 0
    reclaimed: int = 0
    wait_s: float = 0.0
    worker_failures: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    timer: StageTimer = field(default_factory=StageTimer)

    def credit(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = (self.stage_seconds.get(stage, 0.0)
                                     + seconds)

    def merge(self, other: "ShardStats") -> None:
        self.computed += other.computed
        self.hits += other.hits
        self.reclaimed += other.reclaimed
        self.wait_s += other.wait_s
        self.worker_failures += other.worker_failures
        for stage, seconds in other.stage_seconds.items():
            self.credit(stage, seconds)
        self.timer.merge(other.timer)


class ShardPlan:
    """An ordered set of work units plus the executor that runs one.

    ``units`` are priority-ordered: circuits sorted by total estimated
    cost descending (LPT — big circuits start first, so no straggler is
    dispatched last into an otherwise-drained pool), stages in
    topological order within each circuit.
    """

    def __init__(self, units: Sequence[WorkUnit],
                 execute: Callable[[WorkUnit, StageTimer | None], Any],
                 *, label: str = "plan") -> None:
        self.units = tuple(units)
        self._execute = execute
        self.label = label

    def executor(self, store: StageCache, timer: StageTimer | None,
                 ) -> Callable[[WorkUnit], Any]:
        def run(unit: WorkUnit) -> Any:
            return self._execute(unit, timer)
        return run

    @staticmethod
    def order_units(units: Iterable[WorkUnit]) -> list[WorkUnit]:
        """LPT priority: costliest circuit first, stages in topo order."""
        units = list(units)
        by_circuit: dict[str, float] = {}
        for u in units:
            by_circuit[u.circuit] = by_circuit.get(u.circuit, 0.0) + u.cost
        rank = {name: (-total, name)
                for name, total in by_circuit.items()}
        # Stable sort keeps the per-circuit topological order intact.
        return sorted(units, key=lambda u: rank[u.circuit])


def suite_plan(cfg: SuiteRunConfig, *,
               store: StageCache,
               progress: bool = False) -> ShardPlan:
    """Decompose a suite replay into stage work units.

    Builds one :class:`~repro.core.stages.StageContext` per circuit (the
    exact context an in-process run would use, so stage keys — and hence
    artifacts — are shared with ``run_suite``) and derives the unit DAG
    from the pipeline's descriptors.
    """
    contexts: dict[str, StageContext] = {}
    units: list[WorkUnit] = []
    for name in cfg.names:
        entry = suite_entry(name)
        cap = entry.pattern_budget(scale=cfg.scale)
        flow = suite_flow(name, cfg, cap, stage_jobs=1)
        ctx = flow.context(
            with_schedules=cfg.with_schedules,
            with_coverage_schedules=cfg.with_coverage_schedules)
        contexts[name] = ctx
        cost = float(entry.gates) * max(1, entry.patterns)
        for stage, key, deps in flow.pipeline.unit_descriptors(ctx):
            if not flow.pipeline.get(stage).cacheable(ctx):
                raise ValueError(
                    f"stage {stage!r} is not cacheable for {name!r}; "
                    f"sharded execution coordinates through the store")
            units.append(WorkUnit(circuit=name, stage=stage, key=key,
                                  deps=deps, cost=cost))

    def execute(unit: WorkUnit, timer: StageTimer | None) -> Any:
        ctx = contexts[unit.circuit]
        ctx.timer = timer
        ctx.note = ((lambda m, _n=unit.circuit: print(f"[{_n}] {m}"))
                    if progress else (lambda _m: None))
        stage = DEFAULT_PIPELINE.get(unit.stage)
        inputs: dict[str, Any] = {}
        for dep_name, dep_key in unit.deps:
            artifact = store.load(dep_key)
            if artifact is None:
                raise RuntimeError(
                    f"upstream artifact {dep_name!r} of {unit.circuit!r} "
                    f"disappeared from the stage store mid-run")
            inputs[dep_name] = artifact
        return stage.run(ctx, inputs)

    return ShardPlan(ShardPlan.order_units(units), execute,
                     label=f"suite[{len(cfg.names)}]")


@dataclass(frozen=True)
class TimedStage:
    """A simulated-duration work unit spec for scheduler benchmarks."""

    circuit: str
    stage: str
    cost: float


#: Relative duration model of the six pipeline stages (measured shape of
#: the real flow: ATPG and simulation dominate, schedule is the mid cost).
STAGE_COST_WEIGHTS = {"sta": 0.05, "faults": 0.04, "atpg": 0.30,
                      "simulation": 0.40, "classify": 0.04,
                      "schedule": 0.17}


def suite_timed_specs(count: int, *,
                      serial_s: float = 12.0) -> list[TimedStage]:
    """Modeled stage durations for a ``count``-circuit synthetic matrix.

    Per-circuit cost tracks the structural size of the deterministic
    synthetic entries (gates x patterns), split across stages by
    :data:`STAGE_COST_WEIGHTS` and normalized so the serial total is
    ``serial_s``.  This is the workload behind ``BENCH_suite.json``'s
    scaling curve — shared between the benchmark that records it and the
    perf smoke test that re-measures it.
    """
    entries = synthetic_suite(count)
    raw = {e.name: float(e.gates) * max(1, e.patterns) for e in entries}
    norm = serial_s / sum(raw.values())
    return [TimedStage(e.name, stage, raw[e.name] * norm * weight)
            for e in entries
            for stage, weight in STAGE_COST_WEIGHTS.items()]


def timed_plan(specs: Sequence[TimedStage], *, nonce: str,
               granularity: str = "stage",
               order: str = "lpt") -> ShardPlan:
    """A plan whose units sleep for their cost instead of running stages.

    This benchmarks the *scheduler* (claims, readiness, packing) with
    modeled stage durations, independent of host core count.  ``nonce``
    salts the unit keys so repeated benchmark runs never hit stale
    artifacts.  ``granularity="circuit"`` collapses each circuit into a
    single unit of summed cost and ``order="given"`` keeps spec order —
    together they model the old whole-circuit ``pool.imap`` dispatch for
    the granularity ablation.
    """
    if granularity not in ("stage", "circuit"):
        raise ValueError(f"unknown granularity {granularity!r}")
    if order not in ("lpt", "given"):
        raise ValueError(f"unknown order {order!r}")

    def key_of(circuit: str, stage: str) -> str:
        blob = f"timed|{nonce}|{circuit}|{stage}"
        return hashlib.sha256(blob.encode()).hexdigest()

    units: list[WorkUnit] = []
    if granularity == "circuit":
        totals: dict[str, float] = {}
        for s in specs:
            totals[s.circuit] = totals.get(s.circuit, 0.0) + s.cost
        units = [WorkUnit(circuit=name, stage="flow",
                          key=key_of(name, "flow"), deps=(), cost=cost)
                 for name, cost in totals.items()]
    else:
        per_circuit: dict[str, dict[str, TimedStage]] = {}
        for s in specs:
            per_circuit.setdefault(s.circuit, {})[s.stage] = s
        for name, stages in per_circuit.items():
            for stage_name in DEFAULT_PIPELINE.stages():
                spec = stages.get(stage_name)
                if spec is None:
                    continue
                deps = tuple(
                    (d, key_of(name, d))
                    for d in DEFAULT_PIPELINE.get(stage_name).deps
                    if d in stages)
                units.append(WorkUnit(circuit=name, stage=stage_name,
                                      key=key_of(name, stage_name),
                                      deps=deps, cost=spec.cost))

    def execute(unit: WorkUnit, _timer: StageTimer | None) -> Any:
        time.sleep(unit.cost)
        return {"circuit": unit.circuit, "stage": unit.stage,
                "cost": unit.cost}

    if order == "lpt":
        units = ShardPlan.order_units(units)
    return ShardPlan(units, execute, label=f"timed[{len(units)}]")


# ----------------------------------------------------------------------
# Claim board: lock-free unit claims in the shared store
# ----------------------------------------------------------------------
class _Heartbeat:
    """Thread refreshing a claim's mtime while its stage runs.

    Lifecycle is explicit: :meth:`cancel` stops the thread and joins it,
    so long-lived processes (the service orchestrator's workers) never
    accumulate heartbeat threads across units.  Threads are named
    ``repro-heartbeat-*`` so leaks are observable, and a heartbeat whose
    claim has vanished (released, or stolen after a stall) terminates
    itself on the next tick instead of spinning until process exit.
    """

    #: Live-thread name prefix (regression tests count against this).
    THREAD_PREFIX = "repro-heartbeat"

    def __init__(self, board: "ClaimBoard", key: str) -> None:
        self._board = board
        self._key = key
        self._stop = threading.Event()
        interval = max(0.05, board.ttl / 4.0)
        self._thread = threading.Thread(
            target=self._run, args=(interval,), daemon=True,
            name=f"{self.THREAD_PREFIX}-{key[:12]}")

    def _run(self, interval: float) -> None:
        while not self._stop.wait(interval):
            if not self._board.refresh(self._key):
                return  # claim gone (released or stolen): stop refreshing

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def cancel(self) -> None:
        """Stop and join the refresher (idempotent).

        The join is bounded only to survive a pathologically hung
        ``os.utime`` (network filesystems); the thread observes the stop
        event within one wait slice, so the join normally returns in
        microseconds.
        """
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "_Heartbeat":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cancel()


class ClaimBoard:
    """Lock-free unit claims: exclusive-create, heartbeat, rename-steal.

    Lives in a ``claims/`` directory next to the versioned stage store.
    All operations are safe under arbitrary concurrency; the worst a race
    can produce is one duplicated (idempotent) stage execution.
    """

    def __init__(self, root: Path, *, ttl: float | None = None,
                 worker: str | None = None) -> None:
        self.root = Path(root)
        self.ttl = default_claim_ttl() if ttl is None else max(0.05, ttl)
        self.worker = worker or f"pid{os.getpid()}"
        self._seq = itertools.count()
        self.root.mkdir(parents=True, exist_ok=True)

    @classmethod
    def for_store(cls, store: StageCache, *, ttl: float | None = None,
                  worker: str | None = None) -> "ClaimBoard":
        return cls(Path(store.root) / "claims", ttl=ttl, worker=worker)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.claim"

    def try_claim(self, key: str) -> bool:
        """Atomically claim ``key``; False when somebody else holds it."""
        try:
            fd = os.open(self._path(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps({"worker": self.worker,
                                 "claimed_at": time.time()}))
        return True

    def release(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def refresh(self, key: str) -> bool:
        """Heartbeat: bump the claim's mtime.

        Returns False when the claim no longer exists (released or
        stolen) so the heartbeat thread can retire itself.
        """
        try:
            os.utime(self._path(key))
        except OSError:
            return False
        return True

    def age(self, key: str) -> float | None:
        """Seconds since the claim's last heartbeat, or None if absent."""
        try:
            return max(0.0, time.time() - self._path(key).stat().st_mtime)
        except OSError:
            return None

    def heartbeat(self, key: str) -> _Heartbeat:
        return _Heartbeat(self, key).start()

    def reclaim_if_stale(self, key: str) -> bool:
        """Steal an expired claim; True iff *this* board won the steal.

        The steal is an atomic ``os.rename`` of the claim file to a
        per-worker tombstone: under contention exactly one renamer
        succeeds, so a dead worker's unit is re-run once, not N times.
        If the rename lands on a claim that turned out to be fresh (the
        stale holder released and another worker re-claimed inside our
        stat/rename window), the tombstone is linked back when possible
        and the steal is reported as lost.
        """
        path = self._path(key)
        age = self.age(key)
        if age is None or age <= self.ttl:
            return False
        tomb = path.with_name(
            f"{path.name}.stale-{self.worker}-{next(self._seq)}")
        try:
            os.rename(path, tomb)
        except OSError:
            return False  # another thief won, or the holder finished
        try:
            stolen_age = max(0.0, time.time() - tomb.stat().st_mtime)
            if stolen_age <= self.ttl:
                # Mis-steal of a freshly re-created claim: restore it
                # unless the slot was re-claimed in the meantime.
                try:
                    os.link(tomb, path)
                except OSError:
                    pass
                os.unlink(tomb)
                return False
            os.unlink(tomb)
        except OSError:
            pass
        return True


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
def drain_units(plan: ShardPlan, store: StageCache, board: ClaimBoard, *,
                timer: StageTimer | None = None,
                poll: float = 0.02) -> ShardStats:
    """Run ready units from ``plan`` until every unit has an artifact.

    The scan is restarted from the top after each completed unit so the
    LPT priority order is honored; when no unit is ready (all claimed
    elsewhere or blocked on upstreams) the worker sleeps ``poll`` seconds
    — with a capped exponential backoff — and rescans, reclaiming any
    claim whose heartbeat has gone stale.
    """
    stats = ShardStats(timer=timer or StageTimer())
    execute = plan.executor(store, stats.timer)
    done: set[str] = set()
    remaining: dict[str, WorkUnit] = {u.key: u for u in plan.units}
    backoff = poll

    def have(key: str) -> bool:
        if key in done:
            return True
        if store.contains(key):
            done.add(key)
            return True
        return False

    while remaining:
        advanced = False
        for key, unit in list(remaining.items()):
            if have(key):
                del remaining[key]
                stats.hits += 1
                advanced = True
                continue
            if not all(have(k) for _, k in unit.deps):
                continue
            claimed = board.try_claim(key)
            if not claimed and board.reclaim_if_stale(key):
                stats.reclaimed += 1
                claimed = board.try_claim(key)
            if not claimed:
                continue
            if have(key):
                # Raced with a finishing worker between probe and claim.
                board.release(key)
                del remaining[key]
                stats.hits += 1
                advanced = True
                continue
            t0 = time.perf_counter()
            try:
                # The context manager stops *and joins* the heartbeat on
                # unit completion (or failure) before the claim is
                # released — no thread outlives its unit.
                with board.heartbeat(key):
                    artifact = execute(unit)
                    store.store(key, artifact)
            finally:
                board.release(key)
            stats.credit(unit.stage, time.perf_counter() - t0)
            done.add(key)
            del remaining[key]
            stats.computed += 1
            advanced = True
            break  # rescan from the top: honor the LPT priority order
        if remaining and not advanced:
            time.sleep(backoff)
            stats.wait_s += backoff
            backoff = min(backoff * 2.0, max(poll, 0.25))
        else:
            backoff = poll
    return stats


# ----------------------------------------------------------------------
# Multi-process driver
# ----------------------------------------------------------------------
#: Inherited by forked workers (plan objects hold closures, so they ride
#: the fork instead of a pickle).
_FORK_STATE: tuple[ShardPlan, StageCache, float, float] | None = None


def _worker_main(seat: int, queue) -> None:
    assert _FORK_STATE is not None
    plan, store, ttl, poll = _FORK_STATE
    board = ClaimBoard.for_store(store, ttl=ttl,
                                 worker=f"w{seat}-pid{os.getpid()}")
    try:
        stats = drain_units(plan, store, board, poll=poll)
    except BaseException as exc:  # surface the cause to the parent
        queue.put(("error", seat, f"{type(exc).__name__}: {exc}"))
        raise
    queue.put(("stats", seat, stats))


def run_plan(plan: ShardPlan, *, workers: int = 1,
             store: StageCache, ttl: float | None = None,
             poll: float = 0.02) -> ShardStats:
    """Drain a plan with ``workers`` cooperating processes.

    Worker processes are forked (they inherit the plan copy-on-write);
    without the fork start method — or with ``workers <= 1`` — the plan
    drains in-process, which still goes through the claim board and the
    store, so resumability and crash reclamation behave identically.

    A worker that dies mid-run is tolerated as long as the survivors
    complete the plan (its claimed units are reclaimed after the TTL);
    if the plan is left incomplete, the first worker error is raised.
    """
    ttl = default_claim_ttl() if ttl is None else ttl
    workers = max(1, int(workers))
    if workers == 1 or "fork" not in mp.get_all_start_methods():
        board = ClaimBoard.for_store(store, ttl=ttl)
        return drain_units(plan, store, board, poll=poll)

    global _FORK_STATE
    ctx = mp.get_context("fork")
    queue = ctx.SimpleQueue()
    _FORK_STATE = (plan, store, ttl, poll)
    try:
        procs = [ctx.Process(target=_worker_main, args=(seat, queue))
                 for seat in range(workers)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
    finally:
        _FORK_STATE = None

    stats = ShardStats()
    errors: list[str] = []
    while not queue.empty():
        kind, _seat, payload = queue.get()
        if kind == "stats":
            stats.merge(payload)
        else:
            errors.append(payload)
    stats.worker_failures = sum(1 for p in procs if p.exitcode != 0)
    incomplete = [u for u in plan.units if not store.contains(u.key)]
    if incomplete:
        detail = errors[0] if errors else (
            f"worker exit codes {[p.exitcode for p in procs]}")
        raise RuntimeError(
            f"sharded run left {len(incomplete)} unit(s) incomplete "
            f"({detail}); re-invoke to resume from the stage store")
    return stats


@dataclass
class ShardReport:
    """Outcome of one sharded suite run."""

    results: dict[str, FlowResult]
    stats: ShardStats
    workers: int
    wall_s: float


def run_suite_sharded(config: SuiteRunConfig | None = None, *,
                      workers: int = 1,
                      store: StageCache | None = None,
                      ttl: float | None = None,
                      progress: bool = False,
                      timer: StageTimer | None = None) -> ShardReport:
    """Run a suite as stage work units over the shared stage store.

    Functionally equivalent to :func:`repro.experiments.runner.run_suite`
    (same stage keys, bit-identical ``FlowResult``s) but decomposed at
    stage granularity: ``workers`` independent processes claim ready
    units dynamically, and a re-invocation resumes from whatever stage
    artifacts already exist.  Requires the stage store — it *is* the
    coordination substrate — so ``REPRO_FLOW_CACHE=0`` raises unless an
    explicit ``store`` is passed.
    """
    cfg = config or SuiteRunConfig()
    if store is None:
        if not cache_enabled():
            raise RuntimeError(
                "the sharded suite runner coordinates through the stage "
                "store; unset REPRO_FLOW_CACHE=0 or pass store=")
        store = StageCache()
    plan = suite_plan(cfg, store=store, progress=progress)
    t0 = time.perf_counter()
    stats = run_plan(plan, workers=workers, store=store, ttl=ttl)
    wall = time.perf_counter() - t0
    if timer is not None:
        timer.merge(stats.timer)

    results: dict[str, FlowResult] = {}
    for name in cfg.names:
        cap = suite_entry(name).pattern_budget(scale=cfg.scale)
        result = suite_flow(name, cfg, cap, 1).cached_result(
            with_schedules=cfg.with_schedules,
            with_coverage_schedules=cfg.with_coverage_schedules,
            cache=store)
        if result is None:
            raise RuntimeError(
                f"sharded run completed but {name!r} has missing stage "
                f"artifacts — stage store at {store.root} is inconsistent")
        results[name] = result
    return ShardReport(results=results, stats=stats,
                       workers=max(1, int(workers)), wall_s=wall)


def run_suite_sharded_job(job, *, store: StageCache | None = None,
                          ttl: float | None = None,
                          progress: bool = False,
                          timer: StageTimer | None = None) -> ShardReport:
    """Execute a declarative :class:`repro.core.spec.SuiteJob`, sharded.

    The facade's sharded-suite path
    (:func:`repro.service.orchestrator.run_job`): the job's semantic
    fields become the :class:`SuiteRunConfig`, its non-semantic
    ``workers`` field sizes the cooperating process pool.
    """
    return run_suite_sharded(job.run_config(),
                             workers=job.workers or 1, store=store,
                             ttl=ttl, progress=progress, timer=timer)
