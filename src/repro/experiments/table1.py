"""Table I — circuit statistics and targeted hidden delay faults.

Columns per circuit: gates, FFs, |P|, |M|, HDFs detected by conventional
FAST, by the proposed monitor-reuse method, the relative gain Δ%, and the
size of the remaining target fault set Φ_tar.
"""

from __future__ import annotations

from repro.experiments.runner import SuiteRunConfig, run_suite

COLUMNS = ["circuit", "gates", "ffs", "patterns", "monitors",
           "conv", "prop", "gain_percent", "targets"]


def table1_rows(config: SuiteRunConfig | None = None) -> list[dict[str, object]]:
    """One dict per circuit with the Table I columns."""
    if config is None:
        config = SuiteRunConfig(with_schedules=False)
    results = run_suite(config)
    return [results[name].table1_row() for name in config.names]
