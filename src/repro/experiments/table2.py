"""Table II — selected test frequencies and test time in comparison.

Per circuit: |F| for conventional FAST, the greedy heuristic and the
proposed ILP with monitors; the relative frequency reduction; and the
pattern-configuration count before (naïve |P×C×F|) and after scheduling
with its reduction Δ%|PC|.
"""

from __future__ import annotations

from repro.experiments.runner import SuiteRunConfig, run_suite

COLUMNS = ["circuit", "freq_conv", "freq_heur", "freq_prop",
           "freq_reduction_percent", "pc_orig", "pc_opti",
           "pc_reduction_percent"]


def table2_rows(config: SuiteRunConfig | None = None) -> list[dict[str, object]]:
    """One dict per circuit with the Table II columns."""
    if config is None:
        config = SuiteRunConfig(with_schedules=True)
    if not config.with_schedules:
        raise ValueError("Table II needs with_schedules=True")
    results = run_suite(config)
    return [results[name].table2_row() for name in config.names]
