"""Table III — test time reduction at relaxed coverage targets.

Per circuit and coverage target cov ∈ {99, 98, 95, 90} %: the number of
required frequencies |F_cov|, the naïve pattern-configuration count
|PC_cov|, the optimized schedule size |S_cov| and the reduction Δ%.
"""

from __future__ import annotations

from repro.experiments.runner import SuiteRunConfig, run_suite

COVERAGES = (0.99, 0.98, 0.95, 0.90)


def table3_rows(config: SuiteRunConfig | None = None) -> list[dict[str, object]]:
    """One dict per circuit with per-coverage column groups."""
    if config is None:
        config = SuiteRunConfig(with_schedules=True,
                                with_coverage_schedules=True)
    if not config.with_coverage_schedules:
        raise ValueError("Table III needs with_coverage_schedules=True")
    results = run_suite(config)
    return [results[name].table3_row() for name in config.names]
