"""Fault models, fault-list generation, detection-range extraction and
classification for small (hidden) delay fault testing."""

from repro.faults.models import FaultSite, SmallDelayFault, StuckAtFault, TransitionFault
from repro.faults.universe import small_delay_fault_universe
from repro.faults.detection import DetectionData, FaultPatternRange, compute_detection_data
from repro.faults.classify import (
    FaultClassification,
    StructuralFilterResult,
    classify_faults,
    structural_prefilter,
)

__all__ = [
    "FaultSite",
    "SmallDelayFault",
    "StuckAtFault",
    "TransitionFault",
    "small_delay_fault_universe",
    "DetectionData",
    "FaultPatternRange",
    "compute_detection_data",
    "FaultClassification",
    "StructuralFilterResult",
    "classify_faults",
    "structural_prefilter",
]
