"""Fault classification — steps 1–5 of the test flow (Fig. 4).

Two stages mirror the paper:

* :func:`structural_prefilter` — topological analysis using STA slacks
  (step 1): faults whose minimum slack is below the fault size are *at-speed
  detectable* and removed; faults whose effects can never reach the
  observable window, even via monitor shifting, are *timing redundant*.
* :func:`classify_faults` — simulation-accurate classification from the
  detection ranges (steps 3–5): confirms at-speed detection, identifies
  *monitor-at-speed detectable* faults (a delay configuration makes them
  observable at nominal speed) and leaves the remaining detectable faults as
  the *target set* Φ_tar for FAST scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.detection import DetectionData
from repro.faults.models import SmallDelayFault
from repro.monitors.monitor import MonitorConfigSet
from repro.monitors.shifting import observable_range
from repro.netlist.circuit import Circuit
from repro.timing.clock import ClockSpec
from repro.timing.sta import StaResult
from repro.utils.intervals import EPS


@dataclass
class StructuralFilterResult:
    """Outcome of the topological pre-analysis (step 1)."""

    at_speed: list[SmallDelayFault] = field(default_factory=list)
    redundant: list[SmallDelayFault] = field(default_factory=list)
    remaining: list[SmallDelayFault] = field(default_factory=list)


def structural_prefilter(
    circuit: Circuit,
    sta: StaResult,
    faults: list[SmallDelayFault],
    clock: ClockSpec,
    configs: MonitorConfigSet,
    monitored_gates: frozenset[int],
) -> StructuralFilterResult:
    """Topological fault screening before expensive simulation.

    *At-speed detectable*: the smallest structural slack through the site is
    below δ — an ordinary at-speed test already catches the fault.

    *Timing redundant*: even the longest structural path through the site
    plus δ lands below ``t_min``, and no monitor observes the site's fanout
    cone (or the largest monitor delay still cannot lift the effect into the
    window) — the fault is undetectable under any FAST frequency.
    """
    result = StructuralFilterResult()
    cone_cache: dict[int, set[int]] = {}
    for fault in faults:
        gate = fault.site.gate
        g = circuit.gates[gate]
        if fault.site.is_output_pin:
            site_arrival = sta.arrival_max[gate]
        else:
            # Paths through *this pin* only: the driver's latest arrival plus
            # the pin-to-output delay.  A fast side-input of a deep gate has
            # far more slack than the gate's critical input.
            rise, fall = g.pin_delays[fault.site.pin]
            site_arrival = (sta.arrival_max[g.fanin[fault.site.pin]]
                            + max(rise, fall))
        site_latest_path = site_arrival + sta._downstream_max[gate]
        if fault.delta > clock.t_nom - site_latest_path + EPS:
            result.at_speed.append(fault)
            continue
        latest_effect = site_latest_path + fault.delta
        if latest_effect < clock.t_min - EPS:
            if gate not in cone_cache:
                cone_cache[gate] = circuit.fanout_cone(gate) | {gate}
            sees_monitor = bool(cone_cache[gate] & monitored_gates)
            if (not sees_monitor
                    or latest_effect + configs.largest < clock.t_min - EPS):
                result.redundant.append(fault)
                continue
        result.remaining.append(fault)
    return result


@dataclass
class FaultClassification:
    """Simulation-accurate fault partition (Fig. 4 steps 3–5).

    All members hold indices into ``data.faults``.
    """

    data: DetectionData
    clock: ClockSpec
    configs: MonitorConfigSet
    conv_detected: set[int] = field(default_factory=set)
    prop_detected: set[int] = field(default_factory=set)
    at_speed: set[int] = field(default_factory=set)
    monitor_at_speed: set[int] = field(default_factory=set)
    timing_redundant: set[int] = field(default_factory=set)
    target: set[int] = field(default_factory=set)
    not_activated: set[int] = field(default_factory=set)

    @property
    def num_faults(self) -> int:
        return len(self.data.faults)

    @property
    def coverage_gain_percent(self) -> float:
        """Relative gain Δ% of prop. over conv. detection (Table I col. 8)."""
        if not self.conv_detected:
            return float("inf") if self.prop_detected else 0.0
        return (len(self.prop_detected) / len(self.conv_detected) - 1.0) * 100.0

    def summary(self) -> dict[str, int]:
        return {
            "faults": self.num_faults,
            "conv": len(self.conv_detected),
            "prop": len(self.prop_detected),
            "at_speed": len(self.at_speed),
            "monitor_at_speed": len(self.monitor_at_speed),
            "timing_redundant": len(self.timing_redundant),
            "target": len(self.target),
            "not_activated": len(self.not_activated),
        }


def classify_faults(data: DetectionData, clock: ClockSpec,
                    configs: MonitorConfigSet) -> FaultClassification:
    """Partition the fault list using simulated detection ranges.

    Definitions (w.r.t. the window ``[t_min, t_nom]``):

    * *conv. detected*  — FF range intersects the window (plain FAST),
    * *at-speed*        — FF range covers ``t_nom``,
    * *monitor-at-speed*— not at-speed, but some config shifts the monitor
      range onto ``t_nom``,
    * *prop. detected*  — FF range or any shifted monitor range intersects
      the window (monitors in play),
    * *timing redundant*— fault effects exist but none reach the window,
    * *target* Φ_tar    — prop. detected minus the two at-speed classes:
      exactly the faults whose detection requires FAST frequencies.
    """
    cls = FaultClassification(data=data, clock=clock, configs=configs)
    t_min, t_nom = clock.t_min, clock.t_nom
    for fi in range(len(data.faults)):
        if fi not in data.ranges:
            cls.not_activated.add(fi)
            continue
        i_all = data.union_all(fi)
        i_mon = data.union_mon(fi)
        full = observable_range(i_all, i_mon, configs, t_min, t_nom)
        if full.is_empty:
            cls.timing_redundant.add(fi)
            continue
        cls.prop_detected.add(fi)
        if not i_all.clipped(t_min, t_nom).is_empty:
            cls.conv_detected.add(fi)
        if i_all.contains(t_nom):
            cls.at_speed.add(fi)
        elif any(i_mon.shifted(d).contains(t_nom) for d in configs):
            cls.monitor_at_speed.add(fi)
        else:
            cls.target.add(fi)
    return cls
