"""Detection-range extraction via timing-accurate fault simulation.

For every (fault, pattern) pair the faulty and fault-free waveforms at each
observation point are XOR-ed; intervals narrower than the pulse-filter
threshold are discarded pessimistically (Fig. 1).  Two interval sets are kept
per pair (Sec. III-B):

* ``i_all`` — union over *all* observation points: detection range of the
  standard capture flip-flops,
* ``i_mon`` — union over *monitored* observation points, before the monitor
  delay shift; a configuration ``d`` detects at period ``t`` iff
  ``t ∈ i_all ∪ (i_mon + d)``.

Ranges are stored unclipped in ``[0, horizon]`` (``horizon = t_nom``): the
portion below ``t_min`` is unobservable by flip-flops but becomes relevant
once shifted by a monitor delay, which is precisely the paper's mechanism for
recovering otherwise hidden faults.

Engine: the default ``"wordwave"`` engine runs the whole fault universe
through batched NumPy array kernels (:mod:`repro.simulation.word_wave`) —
flat event arrays merged in levelized order, with activation, injection and
interval extraction all vectorized across (fault, pattern) instances.  The
``"incremental"`` engine combines a bit-parallel activation pre-grading pass
with the change-driven cone-schedule fault simulator
(:meth:`WaveformSimulator.simulate_fault`) and doubles as the fallback for
workloads outside the array kernels' envelope.  The seed ``"reference"``
engine is retained for golden-equivalence testing and as the before-side of
the persistent perf baseline (``BENCH_detection.json``); all three produce
bit-identical :class:`DetectionData`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.atpg.patterns import TestSet
from repro.faults.models import SmallDelayFault
from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.parallel_sim import BitParallelSimulator
from repro.simulation.wave_sim import DEFAULT_INERTIAL_PS, WaveformSimulator
from repro.utils.cache import LruCache
from repro.utils.intervals import IntervalAccumulator, IntervalSet
from repro.utils.profiling import StageTimer

#: Recognized values of the ``engine`` parameter.
ENGINES = ("wordwave", "incremental", "reference")

#: Bound of the per-data schedule-candidate memo (``_sched_cache``): one
#: flow run queries at most a handful of distinct (targets, configs,
#: window) tuples, so a small window keeps every live key resident while
#: capping growth across ad-hoc queries.
SCHED_CACHE_SIZE = 8


def _build_simulator(circuit: Circuit, inertial: float) -> WaveformSimulator:
    """Single choke point for event-driven simulator construction.

    Both the serial path and the multiprocessing worker initializer build
    their :class:`WaveformSimulator` here, so engine-dependent setup (and
    any future tuning of the inertial handling) lives in exactly one place.
    """
    return WaveformSimulator(circuit, inertial=inertial)


@dataclass(frozen=True)
class FaultPatternRange:
    """Raw detection ranges of one fault under one pattern."""

    i_all: IntervalSet
    i_mon: IntervalSet

    @property
    def is_empty(self) -> bool:
        return self.i_all.is_empty and self.i_mon.is_empty


@dataclass
class DetectionData:
    """Sparse (fault, pattern) → detection-range table plus aggregates."""

    circuit: Circuit
    faults: list[SmallDelayFault]
    patterns: TestSet
    horizon: float
    monitored_gates: frozenset[int]
    #: fault index -> {pattern index -> ranges}; only non-empty entries exist.
    ranges: dict[int, dict[int, FaultPatternRange]] = field(default_factory=dict)
    _union_all: dict[int, IntervalSet] = field(default_factory=dict, repr=False)
    _union_mon: dict[int, IntervalSet] = field(default_factory=dict, repr=False)
    #: (fault, configs, window) -> clipped observable range; the schedule
    #: optimizer queries the same configuration tuple for every fault in a
    #: loop, so rebuilding the shifted union each call dominates otherwise.
    _det_range: dict[tuple[int, tuple[float, ...], float, float], IntervalSet] \
        = field(default_factory=dict, repr=False)
    #: (targets, configs, window, policy) -> (ranges, CandidateSet); the
    #: schedule optimizer's discretization cache — the heuristic, proposed
    #: and relaxed-coverage schedules all share one candidate set.  Bounded:
    #: distinct candidate-set keys (different target sets, windows, prune
    #: policies) used to accumulate without limit; the LRU keeps the most
    #: recent ones and counts hits/misses for ``repro bench``.
    _sched_cache: LruCache = field(
        default_factory=lambda: LruCache(maxsize=SCHED_CACHE_SIZE),
        repr=False)

    def add(self, fault_idx: int, pattern_idx: int,
            fpr: FaultPatternRange) -> None:
        self.ranges.setdefault(fault_idx, {})[pattern_idx] = fpr
        self._union_all.pop(fault_idx, None)
        self._union_mon.pop(fault_idx, None)
        if self._det_range:
            for key in [k for k in self._det_range if k[0] == fault_idx]:
                del self._det_range[key]
        self._sched_cache.clear()

    def pairs_for_fault(self, fault_idx: int) -> list[tuple[int, FaultPatternRange]]:
        """All patterns with a non-empty range for the fault."""
        return sorted(self.ranges.get(fault_idx, {}).items())

    def union_all(self, fault_idx: int) -> IntervalSet:
        """Union of ``i_all`` over all patterns (FF detection range of φ)."""
        if fault_idx not in self._union_all:
            acc = IntervalAccumulator()
            for fpr in self.ranges.get(fault_idx, {}).values():
                acc.add(fpr.i_all)
            self._union_all[fault_idx] = acc.build()
        return self._union_all[fault_idx]

    def union_mon(self, fault_idx: int) -> IntervalSet:
        """Union of pre-shift ``i_mon`` over all patterns."""
        if fault_idx not in self._union_mon:
            acc = IntervalAccumulator()
            for fpr in self.ranges.get(fault_idx, {}).values():
                acc.add(fpr.i_mon)
            self._union_mon[fault_idx] = acc.build()
        return self._union_mon[fault_idx]

    def detection_range(self, fault_idx: int, configs: Sequence[float],
                        t_min: float, t_nom: float) -> IntervalSet:
        """Observable detection range ``I(φ)`` with monitors (Sec. III-B):
        ``I_FF ∪ ⋃_{d∈C}(I_mon + d)`` clipped to ``[t_min, t_nom]``.

        Memoized per (fault, configuration tuple, window): the schedule
        optimizer evaluates the same configuration set for every fault and
        candidate period, so each union is built exactly once.
        """
        key = (fault_idx, tuple(configs), t_min, t_nom)
        cached = self._det_range.get(key)
        if cached is not None:
            return cached
        acc = IntervalAccumulator()
        acc.add(self.union_all(fault_idx))
        mon = self.union_mon(fault_idx)
        for d in key[1]:
            acc.add(mon.shifted(d))
        result = acc.build().clipped(t_min, t_nom)
        self._det_range[key] = result
        return result

    def faults_with_ranges(self) -> set[int]:
        return set(self.ranges)


def _prepare_reach(circuit: Circuit, faults: Sequence[SmallDelayFault]
                   ) -> tuple[list[list[int]], list[int]]:
    """Per fault: reachable observation gates and the site's signal gate."""
    obs_gates = {op.gate for op in circuit.observation_points()}
    reach: list[list[int]] = []
    site_signal: list[int] = []
    cone_cache: dict[int, frozenset[int]] = {}
    for f in faults:
        g = f.site.gate
        if g not in cone_cache:
            cone_cache[g] = circuit.fanout_cone(g) | {g}
        reach.append(sorted(cone_cache[g] & obs_gates))
        site_signal.append(f.site.signal_gate(circuit))
    return reach, site_signal


def _pregrade_activation(circuit: Circuit, patterns: TestSet,
                         site_signal: Sequence[int]) -> list[int] | None:
    """Bit-parallel activation pre-grading: per-fault pattern bitmasks.

    One packed :class:`BitParallelSimulator` sweep over the launch/capture
    toggle words prunes every (fault, pattern) pair whose site signal is
    provably constant — no transition of either polarity, hazards included —
    before any waveform is simulated.  Bit ``p`` of entry ``fi`` is set when
    pattern ``p`` *may* activate fault ``fi``; the cheap per-pattern
    polarity check on the actual waveform stays as the exact second stage.

    Returns None (grading disabled) when the patterns still contain
    don't-cares, which cannot be packed.
    """
    n = len(patterns)
    if n == 0 or any(p.has_dont_cares for p in patterns):
        return None
    bp = BitParallelSimulator(circuit)
    launch_words, width = bp.pack_vectors([p.launch for p in patterns])
    capture_words, _ = bp.pack_vectors([p.capture for p in patterns])
    toggles = {idx: launch_words[idx] ^ capture_words[idx]
               for idx in launch_words}
    # Constant generators never toggle regardless of the packed vector bits.
    for idx in toggles:
        kind = circuit.gates[idx].kind
        if kind == GateKind.CONST0 or kind == GateKind.CONST1:
            toggles[idx] = 0
    activity = bp.activity_words(toggles, width)
    return [activity[sg] for sg in site_signal]


def _simulate_one_pattern(
    sim: WaveformSimulator,
    faults: Sequence[SmallDelayFault],
    reach: list[list[int]],
    site_signal: list[int],
    pattern,
    pattern_idx: int,
    *,
    horizon: float,
    monitored: frozenset[int],
    glitch_threshold: float,
    active_masks: Sequence[int] | None = None,
    engine: str = "incremental",
    timer: StageTimer | None = None,
) -> list[tuple[int, FaultPatternRange]]:
    """Ranges of every activated fault under one pattern."""
    fault_sim = (sim.simulate_fault if engine == "incremental"
                 else sim.simulate_fault_reference)
    t0 = time.perf_counter() if timer is not None else 0.0
    base = sim.simulate(pattern.launch, pattern.capture)
    if timer is not None:
        timer.add("base_sim", time.perf_counter() - t0)
    base_waves = base.waveforms
    bit = 1 << pattern_idx
    out: list[tuple[int, FaultPatternRange]] = []
    for fi, fault in enumerate(faults):
        if not reach[fi]:
            continue
        # Stage 1 (bit-parallel pre-grading): site provably constant.
        if active_masks is not None and not (active_masks[fi] & bit):
            continue
        # Stage 2 (exact): the fault only matters when the signal at its
        # site has a transition of the faulted polarity.
        sig_wave = base_waves[site_signal[fi]]
        if not sig_wave.has_transition(rising=fault.slow_to_rise):
            continue
        if timer is not None:
            t0 = time.perf_counter()
        faulty = fault_sim(base, fault)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("faulty_sim", t1 - t0)
        i_all = IntervalAccumulator()
        i_mon = IntervalAccumulator()
        faulty_waves = faulty.waveforms
        for og in reach[fi]:
            bw = base_waves[og]
            fw = faulty_waves[og]
            if fw is bw:
                continue  # shared object: untouched by the fault
            diff = bw.diff_intervals(fw, horizon)
            if diff.is_empty:
                continue
            diff = diff.filter_glitches(glitch_threshold)
            if diff.is_empty:
                continue
            i_all.add(diff)
            if og in monitored:
                i_mon.add(diff)
        if not (i_all.is_empty and i_mon.is_empty):
            out.append((fi, FaultPatternRange(i_all.build(), i_mon.build())))
        if timer is not None:
            timer.add("intervals", time.perf_counter() - t1)
    return out


# Per-process state for the multiprocessing path.  Workers receive
# everything they need through the pool initializer arguments (pickled on
# spawn platforms, inherited on fork) — nothing here relies on
# fork-inherited globals.
_WORKER: dict[str, object] = {}


def _worker_init(circuit, faults, inertial, horizon, monitored,
                 glitch_threshold, active_masks,
                 engine):  # pragma: no cover - subprocess body
    _WORKER["sim"] = _build_simulator(circuit, inertial)
    _WORKER["faults"] = faults
    reach, site_signal = _prepare_reach(circuit, faults)
    _WORKER["reach"] = reach
    _WORKER["site_signal"] = site_signal
    _WORKER["kwargs"] = dict(horizon=horizon, monitored=monitored,
                             glitch_threshold=glitch_threshold,
                             active_masks=active_masks, engine=engine)


def _worker_run(job):  # pragma: no cover - subprocess body
    pi, pattern = job
    return pi, _simulate_one_pattern(
        _WORKER["sim"], _WORKER["faults"], _WORKER["reach"],
        _WORKER["site_signal"], pattern, pi, **_WORKER["kwargs"])


def compute_detection_data(
    circuit: Circuit,
    faults: Sequence[SmallDelayFault],
    patterns: TestSet,
    *,
    horizon: float,
    monitored_gates: Iterable[int] = (),
    inertial: float = DEFAULT_INERTIAL_PS,
    glitch_threshold: float | None = None,
    progress: Callable[[int, int], None] | None = None,
    jobs: int = 1,
    engine: str = "wordwave",
    timer: StageTimer | None = None,
) -> DetectionData:
    """Simulate every pattern against every (activated) fault.

    ``monitored_gates`` are the driving-gate indices of observation points
    that carry a delay monitor.  ``glitch_threshold`` defaults to the
    inertial threshold.  ``progress(done, total)`` is called once per pattern
    when provided; ``done`` counts patterns in pattern order on both the
    sequential and the multiprocessing path, so ``done - 1`` is always the
    index of the pattern just finished.  The ``wordwave`` engine simulates
    all patterns in one batched sweep and reports ``progress(total, total)``
    once at the end.  ``jobs > 1`` distributes patterns over worker
    processes on the event-driven engines (results are identical to the
    sequential path — patterns are independent); ``wordwave`` is
    single-process and ignores ``jobs``.

    ``engine`` selects ``"wordwave"`` (batched NumPy array kernels over flat
    event storage; default), ``"incremental"`` (bit-parallel pre-grading +
    change-driven cone-schedule propagation) or ``"reference"`` (the seed
    full-cone resweep, kept for equivalence testing and perf baselining).
    All engines return bit-identical data; ``wordwave`` falls back to
    ``incremental`` for workloads outside its envelope (don't-care patterns,
    gate kinds without truth-table kernels, fan-in above the kernel limit,
    or a degenerate inertial threshold).  ``timer``, when given, accumulates
    the per-stage wall-clock split (``pregrade`` / ``base_sim`` /
    ``site_inject`` / ``faulty_sim`` / ``intervals``; sequential path only).
    """
    if glitch_threshold is None:
        glitch_threshold = inertial
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    monitored = frozenset(monitored_gates)
    data = DetectionData(
        circuit=circuit,
        faults=list(faults),
        patterns=patterns,
        horizon=horizon,
        monitored_gates=monitored,
    )
    total = len(patterns)

    if engine == "wordwave":
        from repro.simulation.word_wave import (run_wordwave,
                                                wordwave_fallback_reason)
        reason = wordwave_fallback_reason(circuit, patterns, inertial)
        if reason is None and run_wordwave(
                data, inertial=inertial,
                glitch_threshold=glitch_threshold, timer=timer):
            if progress is not None:
                progress(total, total)
            return data
        # Workload outside the array kernels' envelope (don't-cares, exotic
        # gate kinds or fault sites, degenerate inertial): the incremental
        # engine produces the identical DetectionData, just event-driven.
        engine = "incremental"

    # Per-fault reachable observation gates: only the event-driven engines
    # walk explicit cone lists (wordwave decides eligibility on its plan's
    # reachability bitmap instead).
    reach, site_signal = _prepare_reach(circuit, data.faults)

    active_masks: list[int] | None = None
    if engine == "incremental" and data.faults:
        t0 = time.perf_counter() if timer is not None else 0.0
        active_masks = _pregrade_activation(circuit, patterns, site_signal)
        if timer is not None:
            timer.add("pregrade", time.perf_counter() - t0)

    if jobs == 1 or total <= 1:
        sim = _build_simulator(circuit, inertial)
        for pi, pattern in enumerate(patterns):
            for fi, fpr in _simulate_one_pattern(
                    sim, data.faults, reach, site_signal, pattern, pi,
                    horizon=horizon, monitored=monitored,
                    glitch_threshold=glitch_threshold,
                    active_masks=active_masks, engine=engine, timer=timer):
                data.add(fi, pi, fpr)
            if progress is not None:
                progress(pi + 1, total)
        return data

    import multiprocessing as mp

    # "fork" is the cheapest start method (the circuit is inherited, not
    # pickled) but is unavailable on Windows and non-default on recent
    # macOS; fall back to the platform default there.  Workers are
    # initialized exclusively through initargs, so every start method
    # produces identical results.
    if "fork" in mp.get_all_start_methods():
        ctx = mp.get_context("fork")
    else:  # pragma: no cover - platform-dependent
        ctx = mp.get_context()
    init_args = (circuit, data.faults, inertial, horizon, monitored,
                 glitch_threshold, active_masks, engine)
    with ctx.Pool(processes=jobs, initializer=_worker_init,
                  initargs=init_args) as pool:
        # Ordered imap keeps progress reports aligned with pattern indices
        # (done == pattern_idx + 1), matching the sequential path.
        for pi, results in pool.imap(
                _worker_run, list(enumerate(patterns))):
            for fi, fpr in results:
                data.add(fi, pi, fpr)
            if progress is not None:
                progress(pi + 1, total)
    return data
