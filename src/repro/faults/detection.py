"""Detection-range extraction via timing-accurate fault simulation.

For every (fault, pattern) pair the faulty and fault-free waveforms at each
observation point are XOR-ed; intervals narrower than the pulse-filter
threshold are discarded pessimistically (Fig. 1).  Two interval sets are kept
per pair (Sec. III-B):

* ``i_all`` — union over *all* observation points: detection range of the
  standard capture flip-flops,
* ``i_mon`` — union over *monitored* observation points, before the monitor
  delay shift; a configuration ``d`` detects at period ``t`` iff
  ``t ∈ i_all ∪ (i_mon + d)``.

Ranges are stored unclipped in ``[0, horizon]`` (``horizon = t_nom``): the
portion below ``t_min`` is unobservable by flip-flops but becomes relevant
once shifted by a monitor delay, which is precisely the paper's mechanism for
recovering otherwise hidden faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.atpg.patterns import TestSet
from repro.faults.models import SmallDelayFault
from repro.netlist.circuit import Circuit
from repro.simulation.wave_sim import DEFAULT_INERTIAL_PS, WaveformSimulator
from repro.utils.intervals import IntervalSet


@dataclass(frozen=True)
class FaultPatternRange:
    """Raw detection ranges of one fault under one pattern."""

    i_all: IntervalSet
    i_mon: IntervalSet

    @property
    def is_empty(self) -> bool:
        return self.i_all.is_empty and self.i_mon.is_empty


@dataclass
class DetectionData:
    """Sparse (fault, pattern) → detection-range table plus aggregates."""

    circuit: Circuit
    faults: list[SmallDelayFault]
    patterns: TestSet
    horizon: float
    monitored_gates: frozenset[int]
    #: fault index -> {pattern index -> ranges}; only non-empty entries exist.
    ranges: dict[int, dict[int, FaultPatternRange]] = field(default_factory=dict)
    _union_all: dict[int, IntervalSet] = field(default_factory=dict, repr=False)
    _union_mon: dict[int, IntervalSet] = field(default_factory=dict, repr=False)

    def add(self, fault_idx: int, pattern_idx: int,
            fpr: FaultPatternRange) -> None:
        self.ranges.setdefault(fault_idx, {})[pattern_idx] = fpr
        self._union_all.pop(fault_idx, None)
        self._union_mon.pop(fault_idx, None)

    def pairs_for_fault(self, fault_idx: int) -> list[tuple[int, FaultPatternRange]]:
        """All patterns with a non-empty range for the fault."""
        return sorted(self.ranges.get(fault_idx, {}).items())

    def union_all(self, fault_idx: int) -> IntervalSet:
        """Union of ``i_all`` over all patterns (FF detection range of φ)."""
        if fault_idx not in self._union_all:
            acc = IntervalSet.empty()
            for fpr in self.ranges.get(fault_idx, {}).values():
                acc = acc.union(fpr.i_all)
            self._union_all[fault_idx] = acc
        return self._union_all[fault_idx]

    def union_mon(self, fault_idx: int) -> IntervalSet:
        """Union of pre-shift ``i_mon`` over all patterns."""
        if fault_idx not in self._union_mon:
            acc = IntervalSet.empty()
            for fpr in self.ranges.get(fault_idx, {}).values():
                acc = acc.union(fpr.i_mon)
            self._union_mon[fault_idx] = acc
        return self._union_mon[fault_idx]

    def detection_range(self, fault_idx: int, configs: Sequence[float],
                        t_min: float, t_nom: float) -> IntervalSet:
        """Observable detection range ``I(φ)`` with monitors (Sec. III-B):
        ``I_FF ∪ ⋃_{d∈C}(I_mon + d)`` clipped to ``[t_min, t_nom]``."""
        acc = self.union_all(fault_idx)
        mon = self.union_mon(fault_idx)
        for d in configs:
            acc = acc.union(mon.shifted(d))
        return acc.clipped(t_min, t_nom)

    def faults_with_ranges(self) -> set[int]:
        return set(self.ranges)


def _prepare_reach(circuit: Circuit, faults: Sequence[SmallDelayFault]
                   ) -> tuple[list[list[int]], list[int]]:
    """Per fault: reachable observation gates and the site's signal gate."""
    obs_gates = {op.gate for op in circuit.observation_points()}
    reach: list[list[int]] = []
    site_signal: list[int] = []
    cone_cache: dict[int, set[int]] = {}
    for f in faults:
        g = f.site.gate
        if g not in cone_cache:
            cone_cache[g] = circuit.fanout_cone(g) | {g}
        reach.append(sorted(cone_cache[g] & obs_gates))
        site_signal.append(f.site.signal_gate(circuit))
    return reach, site_signal


def _simulate_one_pattern(
    sim: WaveformSimulator,
    faults: Sequence[SmallDelayFault],
    reach: list[list[int]],
    site_signal: list[int],
    pattern,
    *,
    horizon: float,
    monitored: frozenset[int],
    glitch_threshold: float,
) -> list[tuple[int, FaultPatternRange]]:
    """Ranges of every activated fault under one pattern."""
    base = sim.simulate(pattern.launch, pattern.capture)
    out: list[tuple[int, FaultPatternRange]] = []
    for fi, fault in enumerate(faults):
        if not reach[fi]:
            continue
        # Activation pre-filter: the fault only matters when the signal
        # at its site has a transition of the faulted polarity.
        sig_wave = base.waveforms[site_signal[fi]]
        if not sig_wave.has_transition(rising=fault.slow_to_rise):
            continue
        faulty = sim.simulate_fault(base, fault)
        i_all = IntervalSet.empty()
        i_mon = IntervalSet.empty()
        for og in reach[fi]:
            diff = base.waveforms[og].diff_intervals(
                faulty.waveforms[og], horizon)
            if diff.is_empty:
                continue
            diff = diff.filter_glitches(glitch_threshold)
            if diff.is_empty:
                continue
            i_all = i_all.union(diff)
            if og in monitored:
                i_mon = i_mon.union(diff)
        if not (i_all.is_empty and i_mon.is_empty):
            out.append((fi, FaultPatternRange(i_all, i_mon)))
    return out


# Per-process state for the multiprocessing path (set by the initializer;
# fork-safe because every worker rebuilds its own simulator).
_WORKER: dict[str, object] = {}


def _worker_init(circuit, faults, inertial, horizon, monitored,
                 glitch_threshold):  # pragma: no cover - subprocess body
    _WORKER["sim"] = WaveformSimulator(circuit, inertial=inertial)
    _WORKER["faults"] = faults
    reach, site_signal = _prepare_reach(circuit, faults)
    _WORKER["reach"] = reach
    _WORKER["site_signal"] = site_signal
    _WORKER["kwargs"] = dict(horizon=horizon, monitored=monitored,
                             glitch_threshold=glitch_threshold)


def _worker_run(job):  # pragma: no cover - subprocess body
    pi, pattern = job
    return pi, _simulate_one_pattern(
        _WORKER["sim"], _WORKER["faults"], _WORKER["reach"],
        _WORKER["site_signal"], pattern, **_WORKER["kwargs"])


def compute_detection_data(
    circuit: Circuit,
    faults: Sequence[SmallDelayFault],
    patterns: TestSet,
    *,
    horizon: float,
    monitored_gates: Iterable[int] = (),
    inertial: float = DEFAULT_INERTIAL_PS,
    glitch_threshold: float | None = None,
    progress: Callable[[int, int], None] | None = None,
    jobs: int = 1,
) -> DetectionData:
    """Simulate every pattern against every (activated) fault.

    ``monitored_gates`` are the driving-gate indices of observation points
    that carry a delay monitor.  ``glitch_threshold`` defaults to the
    inertial threshold.  ``progress(done, total)`` is called once per pattern
    when provided.  ``jobs > 1`` distributes patterns over worker processes
    (results are identical to the sequential path — patterns are
    independent).
    """
    if glitch_threshold is None:
        glitch_threshold = inertial
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    monitored = frozenset(monitored_gates)
    data = DetectionData(
        circuit=circuit,
        faults=list(faults),
        patterns=patterns,
        horizon=horizon,
        monitored_gates=monitored,
    )
    total = len(patterns)

    if jobs == 1 or total <= 1:
        sim = WaveformSimulator(circuit, inertial=inertial)
        reach, site_signal = _prepare_reach(circuit, data.faults)
        for pi, pattern in enumerate(patterns):
            for fi, fpr in _simulate_one_pattern(
                    sim, data.faults, reach, site_signal, pattern,
                    horizon=horizon, monitored=monitored,
                    glitch_threshold=glitch_threshold):
                data.add(fi, pi, fpr)
            if progress is not None:
                progress(pi + 1, total)
        return data

    import multiprocessing as mp

    ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
    init_args = (circuit, data.faults, inertial, horizon, monitored,
                 glitch_threshold)
    with ctx.Pool(processes=jobs, initializer=_worker_init,
                  initargs=init_args) as pool:
        done = 0
        for pi, results in pool.imap_unordered(
                _worker_run, list(enumerate(patterns))):
            for fi, fpr in results:
                data.add(fi, pi, fpr)
            done += 1
            if progress is not None:
                progress(done, total)
    return data
