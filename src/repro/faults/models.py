"""Fault models used by the flow.

* :class:`SmallDelayFault` — the paper's fault model ``φ = (g, δ)``: a lumped
  extra delay ``δ`` on one transition polarity at a gate pin (Sec. II-A).
  Two faults (slow-to-rise / slow-to-fall) are modeled per site.
* :class:`TransitionFault` — gross-delay abstraction used by the ATPG to
  generate pattern pairs.
* :class:`StuckAtFault` — combinational abstraction that PODEM solves for the
  second (capture) vector of a transition test.

A *fault site* is a pin of a combinational gate: ``pin is None`` denotes the
output pin, otherwise the input pin index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.circuit import Circuit


#: Sentinel pin index denoting a gate's output pin.
OUTPUT_PIN = -1


@dataclass(frozen=True, order=True)
class FaultSite:
    """A gate pin: the output pin when ``pin == OUTPUT_PIN`` (-1), else the
    input pin index."""

    gate: int
    pin: int = OUTPUT_PIN

    @property
    def is_output_pin(self) -> bool:
        return self.pin < 0

    def signal_gate(self, circuit: Circuit) -> int:
        """Index of the gate whose output signal is observed at this pin.

        For an input pin this is the fanin driver (the fault models the
        fanout-branch segment); for the output pin it is the gate itself.
        """
        if self.is_output_pin:
            return self.gate
        return circuit.gates[self.gate].fanin[self.pin]

    def describe(self, circuit: Circuit) -> str:
        g = circuit.gates[self.gate]
        where = "out" if self.is_output_pin else f"in{self.pin}"
        return f"{g.name}.{where}"


@dataclass(frozen=True, order=True)
class SmallDelayFault:
    """Small delay fault ``(site, polarity, δ)`` in picoseconds."""

    site: FaultSite
    slow_to_rise: bool
    delta: float

    @property
    def polarity(self) -> str:
        return "STR" if self.slow_to_rise else "STF"

    def describe(self, circuit: Circuit) -> str:
        return f"{self.site.describe(circuit)}/{self.polarity}/{self.delta:g}ps"


@dataclass(frozen=True, order=True)
class TransitionFault:
    """Transition (gross delay) fault at a site, for ATPG pattern pairs."""

    site: FaultSite
    slow_to_rise: bool

    @property
    def polarity(self) -> str:
        return "STR" if self.slow_to_rise else "STF"

    def as_stuck_at(self) -> "StuckAtFault":
        """The stuck-at fault whose test is the capture vector of this
        transition test: slow-to-rise behaves like stuck-at-0 in v2."""
        return StuckAtFault(self.site, value=0 if self.slow_to_rise else 1)

    @property
    def launch_value(self) -> int:
        """Value the site must hold in the launch vector v1."""
        return 0 if self.slow_to_rise else 1


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """Single stuck-at fault at a gate pin."""

    site: FaultSite
    value: int

    def describe(self, circuit: Circuit) -> str:
        return f"{self.site.describe(circuit)}/SA{self.value}"
