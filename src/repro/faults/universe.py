"""Small-delay-fault universe generation.

Following Sec. V of the paper, the initial fault set contains small delay
faults at *all input and output pins* of every combinational gate, with two
faults per location (slow-to-rise and slow-to-fall) and a per-gate fault size
``δ = 6σ`` where ``σ = 0.2 ×`` nominal gate delay.
"""

from __future__ import annotations

from typing import Iterable

from repro.faults.models import FaultSite, SmallDelayFault
from repro.netlist.circuit import Circuit, GateKind
from repro.timing.variation import N_SIGMA, SIGMA_FRACTION, fault_size_for_gate


def fault_sites(circuit: Circuit) -> list[FaultSite]:
    """All gate pins: one output-pin site plus one site per input pin."""
    sites: list[FaultSite] = []
    for g in circuit.gates:
        if not GateKind.is_combinational(g.kind):
            continue
        sites.append(FaultSite(g.index))
        sites.extend(FaultSite(g.index, pin) for pin in range(g.arity))
    return sites


def small_delay_fault_universe(
    circuit: Circuit,
    *,
    sigma_fraction: float = SIGMA_FRACTION,
    n_sigma: float = N_SIGMA,
    delta: float | None = None,
    sites: Iterable[FaultSite] | None = None,
) -> list[SmallDelayFault]:
    """Build the initial fault list (Sec. V).

    ``delta`` overrides the per-gate 6σ sizing with a fixed fault size;
    ``sites`` restricts generation to the given locations (used by tests and
    ablations).
    """
    out: list[SmallDelayFault] = []
    site_list = list(sites) if sites is not None else fault_sites(circuit)
    for site in site_list:
        size = delta if delta is not None else fault_size_for_gate(
            circuit, site.gate, sigma_fraction=sigma_fraction, n_sigma=n_sigma)
        if size <= 0.0:
            continue
        out.append(SmallDelayFault(site, slow_to_rise=True, delta=size))
        out.append(SmallDelayFault(site, slow_to_rise=False, delta=size))
    return out
