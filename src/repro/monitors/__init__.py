"""Programmable delay monitor models (Sec. II-B / III of the paper).

A monitor is a shadow register observing a pseudo-primary output through a
selectable delay element, compared against the standard flip-flop by an XOR
gate.  The package covers the hardware model (:mod:`monitor`), placement at
long path ends (:mod:`insertion`), detection-range shifting math
(:mod:`shifting`) and guard-band aging alerts (:mod:`alerts`).
"""

from repro.monitors.monitor import MonitorConfigSet, ProgrammableDelayMonitor
from repro.monitors.insertion import MonitorPlacement, insert_monitors

__all__ = [
    "MonitorConfigSet",
    "ProgrammableDelayMonitor",
    "MonitorPlacement",
    "insert_monitors",
]
