"""Circuit-level aging-alert evaluation.

Convenience API over the monitor bank: simulate a workload sample and
collect, per monitor and configuration, whether the guard band was violated
at the capture edge.  Used by the lifetime examples and tests; the
:mod:`repro.aging.lifetime` simulator embeds the same semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.monitors.insertion import MonitorPlacement
from repro.netlist.circuit import Circuit
from repro.simulation.wave_sim import WaveformSimulator


@dataclass
class AlertSummary:
    """Alert outcome of one workload evaluation."""

    period: float
    #: (monitor name, config index) pairs that alerted at least once.
    alerts: set[tuple[str, int]] = field(default_factory=set)
    #: per-config count of alerting monitors.
    per_config: dict[int, int] = field(default_factory=dict)

    @property
    def any_alert(self) -> bool:
        return bool(self.alerts)

    def alerted_configs(self) -> list[int]:
        return sorted(ci for ci, n in self.per_config.items() if n > 0)


def evaluate_alerts(
    circuit: Circuit,
    placement: MonitorPlacement,
    patterns: Sequence[tuple[Sequence[int], Sequence[int]]],
    period: float,
    *,
    configs: Sequence[int] | None = None,
    strict_window: bool = False,
) -> AlertSummary:
    """Run the workload and evaluate every monitor under the given configs.

    ``strict_window`` uses the conservative stability check (any toggle in
    the guard band) instead of the hardware XOR comparison.
    """
    sim = WaveformSimulator(circuit)
    config_indices = (list(configs) if configs is not None
                      else list(range(len(placement.configs))))
    summary = AlertSummary(period=period,
                           per_config={ci: 0 for ci in config_indices})
    flagged: set[tuple[str, int]] = set()
    for launch, capture in patterns:
        res = sim.simulate(list(launch), list(capture))
        for mon in placement.bank:
            wave = res.waveforms[mon.gate]
            for ci in config_indices:
                key = (mon.name, ci)
                if key in flagged:
                    continue
                saved = mon.selected
                mon.select(ci)
                hit = (mon.window_violation(wave, period) if strict_window
                       else mon.alert(wave, period))
                mon.select(saved)
                if hit:
                    flagged.add(key)
    summary.alerts = flagged
    for name, ci in flagged:
        summary.per_config[ci] = summary.per_config.get(ci, 0) + 1
    return summary
