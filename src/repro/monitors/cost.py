"""Hardware cost model for monitor insertion.

Programmable monitors are not free: each instance adds a shadow flip-flop,
a delay line per element, a selection MUX and an XOR comparator (Fig. 2a).
The related work the paper builds on ([13]) optimizes exactly this
penalty, so the reproduction ships the standard gate-equivalent (GE)
accounting used to weigh coverage gain against silicon area.

All values are in NAND2-gate equivalents, the conventional unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitors.insertion import MonitorPlacement
from repro.netlist.circuit import Circuit, GateKind

#: Typical gate-equivalent weights (NAND2 = 1.0).
GE_FLIP_FLOP = 6.0
GE_XOR2 = 2.5
GE_MUX_PER_INPUT = 1.75
GE_DELAY_ELEMENT_PER_PS = 0.08  # buffer chains: ~2 GE per 25 ps stage

#: GE weight per combinational cell kind for circuit area.
_KIND_GE = {
    GateKind.NOT: 0.67,
    GateKind.BUF: 1.0,
    GateKind.NAND: 1.0,
    GateKind.NOR: 1.0,
    GateKind.AND: 1.33,
    GateKind.OR: 1.33,
    GateKind.XOR: 2.5,
    GateKind.XNOR: 2.5,
}
_GE_PER_EXTRA_INPUT = 0.5


@dataclass(frozen=True)
class MonitorCost:
    """Gate-equivalent breakdown of one monitor placement."""

    monitors: int
    ge_per_monitor: float
    circuit_ge: float

    @property
    def total_ge(self) -> float:
        return self.monitors * self.ge_per_monitor

    @property
    def overhead_percent(self) -> float:
        """Monitor area relative to the bare circuit (incl. its FFs)."""
        if self.circuit_ge <= 0:
            return 0.0
        return 100.0 * self.total_ge / self.circuit_ge


def circuit_gate_equivalents(circuit: Circuit) -> float:
    """GE area of the bare circuit (combinational cells + flip-flops)."""
    total = 0.0
    for g in circuit.gates:
        if g.kind == GateKind.DFF:
            total += GE_FLIP_FLOP
        elif GateKind.is_combinational(g.kind):
            base = _KIND_GE[g.kind]
            total += base + _GE_PER_EXTRA_INPUT * max(0, g.arity - 2)
    return total


def monitor_gate_equivalents(placement: MonitorPlacement) -> float:
    """GE area of one monitor instance under the placement's config set.

    Shadow FF + XOR + an n-input selection MUX + one buffer chain per
    delay element, sized by its delay value.
    """
    configs = placement.configs
    mux = GE_MUX_PER_INPUT * len(configs)
    delay_lines = sum(GE_DELAY_ELEMENT_PER_PS * d for d in configs)
    return GE_FLIP_FLOP + GE_XOR2 + mux + delay_lines


def placement_cost(placement: MonitorPlacement) -> MonitorCost:
    """Full cost report for a monitor placement."""
    return MonitorCost(
        monitors=placement.count,
        ge_per_monitor=monitor_gate_equivalents(placement),
        circuit_ge=circuit_gate_equivalents(placement.circuit),
    )
