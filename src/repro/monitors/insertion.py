"""Monitor placement at long path ends.

Following [25] and Sec. V of the paper, monitors are integrated at the ends
of the *longest* paths, covering a fraction (default 25 %) of the
pseudo-primary outputs: flip-flops terminating long paths are the first to
age into timing violations, and their shadow registers recover the most
otherwise-hidden faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitors.monitor import MonitorBank, MonitorConfigSet, ProgrammableDelayMonitor
from repro.netlist.circuit import Circuit, ObservationPoint
from repro.timing.sta import StaResult

#: Fraction of pseudo-primary outputs that receive a monitor (Sec. V: 25 %).
DEFAULT_COVERAGE_FRACTION = 0.25


@dataclass
class MonitorPlacement:
    """Result of monitor insertion."""

    circuit: Circuit
    bank: MonitorBank
    points: list[ObservationPoint]
    configs: MonitorConfigSet

    @property
    def count(self) -> int:
        """|M|: number of inserted monitors (Table I column 5)."""
        return len(self.bank)

    @property
    def monitored_gates(self) -> frozenset[int]:
        """Driving-gate indices observed by a monitor."""
        return self.bank.gates()


def insert_monitors(
    circuit: Circuit,
    sta: StaResult,
    configs: MonitorConfigSet,
    *,
    fraction: float = DEFAULT_COVERAGE_FRACTION,
    include_primary_outputs: bool = False,
) -> MonitorPlacement:
    """Place monitors on the longest-path pseudo-primary outputs.

    PPOs are ranked by the maximum arrival time of their driving gate; the
    top ``fraction`` (at least one, if any PPO exists) get a monitor.  With
    ``include_primary_outputs`` the ranking additionally considers POs, for
    designs whose responses are captured on-chip.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    points = [op for op in circuit.observation_points()
              if op.is_pseudo or include_primary_outputs]
    ranked = sorted(points, key=lambda op: (-sta.arrival_max[op.gate], op.name))
    count = int(round(fraction * len(ranked)))
    if fraction > 0.0 and ranked:
        count = max(1, count)
    chosen = ranked[:count]

    bank = MonitorBank([
        ProgrammableDelayMonitor(name=f"mon:{op.name}", gate=op.gate,
                                 configs=configs)
        for op in chosen
    ])
    return MonitorPlacement(circuit=circuit, bank=bank, points=chosen,
                            configs=configs)
