"""Programmable delay monitor hardware model.

Structure (Fig. 2a): the monitored data signal ``D`` feeds both the standard
capture flip-flop and, through one of several selectable delay elements, a
shadow flip-flop.  An XOR of the two captured values raises an *alert*.

Two use modes:

* **Aging prediction** (Fig. 2b/c): at nominal speed, a late transition of
  ``D`` inside the detection window ``(t_clk - d, t_clk)`` makes the shadow
  register capture a stale value → alert.  Early in life a *large* delay
  (wide guard band) senses initial degradation; after the first alert a
  smaller delay tracks the remaining margin.
* **HDF detection in FAST** (Fig. 2d): the shadow register observes the
  delayed signal ``D(t - d)``, so a fault's detection range is shifted right
  by ``d`` — faults needing ``t < t_min`` become observable at reachable
  frequencies (Sec. III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.simulation.waveform import Waveform

#: The paper's delay-element values as fractions of the nominal clock
#: (Sec. V): d = 0.05, 0.1, 0.15 and 1/3 of clk.
PAPER_DELAY_FRACTIONS = (0.05, 0.10, 0.15, 1.0 / 3.0)


@dataclass(frozen=True)
class MonitorConfigSet:
    """The set ``C`` of selectable monitor delays, in ps, ascending.

    All monitors share one selected configuration at any time (Sec. V).
    """

    delays: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.delays:
            raise ValueError("a monitor needs at least one delay element")
        if any(d <= 0 for d in self.delays):
            raise ValueError("monitor delays must be positive")
        if list(self.delays) != sorted(self.delays):
            raise ValueError("monitor delays must be ascending")

    @classmethod
    def paper_default(cls, clock_period: float) -> "MonitorConfigSet":
        """The four-element configuration of Sec. V for a given clock."""
        return cls(tuple(f * clock_period for f in PAPER_DELAY_FRACTIONS))

    def __len__(self) -> int:
        return len(self.delays)

    def __iter__(self) -> Iterator[float]:
        return iter(self.delays)

    def __getitem__(self, idx: int) -> float:
        return self.delays[idx]

    @property
    def largest(self) -> float:
        return self.delays[-1]

    @property
    def smallest(self) -> float:
        return self.delays[0]

    def index_of(self, delay: float, *, tol: float = 1e-9) -> int:
        for i, d in enumerate(self.delays):
            if abs(d - delay) <= tol:
                return i
        raise ValueError(f"delay {delay} is not a configured element")


@dataclass
class ProgrammableDelayMonitor:
    """One monitor instance attached to an observation point.

    ``gate`` is the driving gate whose output waveform the monitor sees;
    ``selected`` indexes the active delay element.
    """

    name: str
    gate: int
    configs: MonitorConfigSet
    selected: int = 0

    def __post_init__(self) -> None:
        self._check_selection(self.selected)

    def _check_selection(self, idx: int) -> None:
        if not 0 <= idx < len(self.configs):
            raise ValueError(
                f"config index {idx} out of range 0..{len(self.configs) - 1}")

    @property
    def delay(self) -> float:
        """Currently selected delay element value."""
        return self.configs[self.selected]

    def select(self, idx: int) -> None:
        self._check_selection(idx)
        self.selected = idx

    # ------------------------------------------------------------------
    # Capture semantics
    # ------------------------------------------------------------------
    def shadow_value(self, wave: Waveform, t_capture: float) -> int:
        """Value captured by the shadow register at the clock edge."""
        return wave.value_at(t_capture - self.delay)

    def main_value(self, wave: Waveform, t_capture: float) -> int:
        """Value captured by the standard flip-flop."""
        return wave.value_at(t_capture)

    def alert(self, wave: Waveform, t_capture: float) -> bool:
        """XOR-comparator output: True when main and shadow FF disagree."""
        return self.main_value(wave, t_capture) != self.shadow_value(
            wave, t_capture)

    def window_violation(self, wave: Waveform, t_capture: float) -> bool:
        """Strict guard-band check: any toggle inside the detection window.

        Stricter than :meth:`alert` (an even number of toggles inside the
        window escapes the XOR but still violates stability); used for
        conservative aging alerts.
        """
        return not wave.is_stable_in(t_capture - self.delay, t_capture)


@dataclass
class MonitorBank:
    """All monitors of a circuit sharing one configuration selection."""

    monitors: list[ProgrammableDelayMonitor] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.monitors)

    def __iter__(self) -> Iterator[ProgrammableDelayMonitor]:
        return iter(self.monitors)

    def select_all(self, idx: int) -> None:
        for m in self.monitors:
            m.select(idx)

    def gates(self) -> frozenset[int]:
        return frozenset(m.gate for m in self.monitors)

    def alerts(self, waves: Sequence[Waveform], t_capture: float) -> list[bool]:
        """Per-monitor XOR alert flags for one simulation result."""
        return [m.alert(waves[m.gate], t_capture) for m in self.monitors]

    def any_alert(self, waves: Sequence[Waveform], t_capture: float) -> bool:
        return any(self.alerts(waves, t_capture))
