"""Detection-range shifting math (Sec. III-B).

Delay elements shift the signal a monitor's shadow register observes, and
therefore shift a fault's detection range right along the time axis:
``I_SR(φ, o) = I_FF(φ, o) + d``.  These helpers implement the two effects the
paper exploits:

* recovering *unobservable* fault effects from ``(0, t_min)`` into the
  testable window, and
* widening the usable detection range across multiple configurations:
  ``I_SR(φ) = ⋃_{d ∈ C} (I_FF(φ) + d)``.
"""

from __future__ import annotations

from typing import Iterable

from repro.monitors.monitor import MonitorConfigSet
from repro.utils.intervals import IntervalSet


def shifted_union(i_mon: IntervalSet, configs: Iterable[float]) -> IntervalSet:
    """``⋃_{d∈C}(I_mon + d)`` — the shadow-register range over all configs."""
    acc = IntervalSet.empty()
    for d in configs:
        acc = acc.union(i_mon.shifted(d))
    return acc


def observable_range(i_all: IntervalSet, i_mon: IntervalSet,
                     configs: Iterable[float],
                     t_min: float, t_nom: float) -> IntervalSet:
    """Full observable range ``I(φ) = I_FF ∪ ⋃_d (I_SR + d)`` clipped to the
    FAST window (Definition 2 extended by Sec. III-B)."""
    return i_all.union(shifted_union(i_mon, configs)).clipped(t_min, t_nom)


def range_for_config(i_all: IntervalSet, i_mon: IntervalSet, d: float,
                     t_min: float, t_nom: float) -> IntervalSet:
    """Observable range when one specific configuration ``d`` is active."""
    return i_all.union(i_mon.shifted(d)).clipped(t_min, t_nom)


def detecting_configs(i_mon: IntervalSet, configs: MonitorConfigSet,
                      period: float, *,
                      t_min: float, t_nom: float) -> list[int]:
    """Indices of configurations whose shifted range covers ``period``."""
    if not t_min <= period <= t_nom:
        return []
    return [idx for idx, d in enumerate(configs)
            if i_mon.shifted(d).contains(period)]


def recoverable_below_window(i_mon: IntervalSet, configs: MonitorConfigSet,
                             t_min: float, t_nom: float) -> IntervalSet:
    """Portion of a sub-``t_min`` range that some config makes observable.

    The paper notes a maximum monitor delay of ``t_nom / 3`` suffices to
    recover any range located in ``(0, t_nom/3)`` when ``f_max = 3 f_nom``.
    """
    hidden = i_mon.clipped(0.0, t_min)
    recovered = IntervalSet.empty()
    for d in configs:
        recovered = recovered.union(
            hidden.shifted(d).clipped(t_min, t_nom).shifted(-d))
    return recovered
