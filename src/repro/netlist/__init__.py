"""Gate-level netlist substrate.

Provides the circuit data structures the whole flow operates on, a
NanGate-45nm-like standard-cell library with per-pin rise/fall delays, ISCAS'89
``.bench`` and structural-Verilog readers/writers, an SDF (Standard Delay
Format) subset for timing annotation, and netlist validation.
"""

from repro.netlist.cells import CellLibrary, CellSpec, nangate45_like
from repro.netlist.circuit import Circuit, Gate, GateKind, ObservationPoint

__all__ = [
    "CellLibrary",
    "CellSpec",
    "nangate45_like",
    "Circuit",
    "Gate",
    "GateKind",
    "ObservationPoint",
]
