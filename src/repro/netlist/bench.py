"""ISCAS'89 ``.bench`` netlist reader and writer.

The benchmark circuits used in the paper's evaluation (s9234, s13207, …) are
distributed in this format::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G7  = DFF(G10)

Definitions may appear in any order and flip-flops introduce sequential
feedback, so parsing is two-pass: declarations are collected first, then
combinational gates are instantiated in topological order and DFF data pins
are patched in last.
"""

from __future__ import annotations

import re
from pathlib import Path
from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Circuit, GateKind

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]$]+)\s*=\s*(?P<fn>\w+)\s*\((?P<args>[^)]*)\)\s*$")
_DECL_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[\w.\[\]$]+)\)\s*$",
                      re.IGNORECASE)

_FN_MAP = {
    "AND": GateKind.AND,
    "NAND": GateKind.NAND,
    "OR": GateKind.OR,
    "NOR": GateKind.NOR,
    "XOR": GateKind.XOR,
    "XNOR": GateKind.XNOR,
    "NOT": GateKind.NOT,
    "INV": GateKind.NOT,
    "BUF": GateKind.BUF,
    "BUFF": GateKind.BUF,
    "DFF": GateKind.DFF,
}


class BenchParseError(ValueError):
    """Raised on malformed ``.bench`` input."""


def parse_bench(text: str, *, name: str = "bench",
                library: CellLibrary | None = None) -> Circuit:
    """Parse ``.bench`` source text into a finalized :class:`Circuit`."""
    inputs: list[str] = []
    outputs: list[str] = []
    defs: dict[str, tuple[str, list[str]]] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            if decl.group("kind").upper() == "INPUT":
                inputs.append(decl.group("name"))
            else:
                outputs.append(decl.group("name"))
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise BenchParseError(f"line {lineno}: cannot parse {raw!r}")
        out = m.group("out")
        fn = m.group("fn").upper()
        if fn not in _FN_MAP:
            raise BenchParseError(f"line {lineno}: unknown function {fn!r}")
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if out in defs:
            raise BenchParseError(f"line {lineno}: signal {out!r} redefined")
        defs[out] = (_FN_MAP[fn], args)

    circuit = Circuit(name)
    for pi in inputs:
        if pi in defs:
            raise BenchParseError(f"INPUT {pi!r} also has a gate definition")
        circuit.add_input(pi)

    # DFF outputs are combinational sources; create them (unconnected) first.
    dff_names = [n for n, (kind, _a) in defs.items() if kind == GateKind.DFF]
    for n in dff_names:
        circuit.add_dff(n, None)

    # Instantiate combinational gates in dependency order (DFS).
    comb = {n: (kind, args) for n, (kind, args) in defs.items()
            if kind != GateKind.DFF}
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def instantiate(sig: str, chain: tuple[str, ...]) -> None:
        if circuit.has_gate(sig):
            return
        if sig not in comb:
            raise BenchParseError(f"undefined signal {sig!r}")
        if state.get(sig) == 0:
            raise BenchParseError(
                f"combinational cycle through {sig!r} (path {' -> '.join(chain)})")
        state[sig] = 0
        kind, args = comb[sig]
        for a in args:
            instantiate(a, chain + (sig,))
        circuit.add_gate(sig, kind, [circuit.index_of(a) for a in args])
        state[sig] = 1

    for sig in comb:
        instantiate(sig, ())

    for n in dff_names:
        (_kind, args) = defs[n]
        if len(args) != 1:
            raise BenchParseError(f"DFF {n!r} must have exactly one input")
        if not circuit.has_gate(args[0]):
            raise BenchParseError(f"DFF {n!r}: undefined data signal {args[0]!r}")
        circuit.connect_dff(n, circuit.index_of(args[0]))

    for po in outputs:
        if not circuit.has_gate(po):
            raise BenchParseError(f"OUTPUT {po!r} is undefined")
        circuit.mark_output(circuit.index_of(po))

    return circuit.finalize(library=library)


def load_bench(path: str | Path, *,
               library: CellLibrary | None = None) -> Circuit:
    """Read a ``.bench`` file from disk."""
    p = Path(path)
    return parse_bench(p.read_text(), name=p.stem, library=library)


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit back to ``.bench`` text (stable gate order)."""
    lines: list[str] = [f"# {circuit.name}"]
    for idx in circuit.inputs:
        lines.append(f"INPUT({circuit.gates[idx].name})")
    for idx in circuit.outputs:
        lines.append(f"OUTPUT({circuit.gates[idx].name})")
    inv_fn = {v: k for k, v in _FN_MAP.items() if k not in ("INV", "BUFF")}
    for g in circuit.gates:
        if g.kind == GateKind.INPUT:
            continue
        if g.kind in (GateKind.CONST0, GateKind.CONST1):
            if circuit.fanouts(g.index) or g.index in circuit.outputs:
                raise ValueError(
                    f"the .bench format cannot express constant driver "
                    f"{g.name!r}; export as Verilog instead")
            continue  # dangling constant: drop silently
        args = ", ".join(circuit.gates[s].name for s in g.fanin)
        lines.append(f"{g.name} = {inv_fn[g.kind]}({args})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: str | Path) -> None:
    Path(path).write_text(write_bench(circuit))
