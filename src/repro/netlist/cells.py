"""Standard-cell library model with NanGate-45nm-like timing.

The paper synthesizes its benchmarks with the NanGate 45 nm open cell library
[24].  The real library is not redistributable, so this module provides a
*library model*: per-cell base pin-to-pin rise/fall delays in picoseconds plus
a linear fanout-load term.  The absolute values are representative of a 45 nm
node (inverter ≈ 10 ps); what matters for the reproduction is the resulting
*path delay distribution*, which drives slacks, fault detection ranges and the
FAST frequency range.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CellSpec:
    """Timing/shape description of one standard cell.

    ``base_rise``/``base_fall`` are the intrinsic pin-to-output delays (ps),
    ``load_rise``/``load_fall`` are added once per fanout destination, and
    ``pin_spread`` is the relative delay difference between the fastest and
    slowest input pin (later pins are slower, as in real cells where the pin
    closest to the output transistor is fastest).
    """

    name: str
    kind: str
    max_inputs: int
    base_rise: float
    base_fall: float
    load_rise: float = 1.6
    load_fall: float = 1.4
    pin_spread: float = 0.15

    def pin_delay(self, pin: int, fanout: int) -> tuple[float, float]:
        """(rise, fall) delay in ps through input ``pin`` for ``fanout`` loads."""
        if pin < 0:
            raise ValueError("pin index must be non-negative")
        spread = 1.0 + self.pin_spread * pin
        load = max(1, fanout)
        rise = self.base_rise * spread + self.load_rise * (load - 1)
        fall = self.base_fall * spread + self.load_fall * (load - 1)
        return (rise, fall)


@dataclass
class CellLibrary:
    """A named collection of :class:`CellSpec` indexed by logic function.

    ``choose(kind, n_inputs)`` picks the smallest cell implementing ``kind``
    with at least ``n_inputs`` inputs, mirroring how a synthesis tool maps a
    generic gate onto the library.
    """

    name: str
    cells: dict[str, CellSpec] = field(default_factory=dict)

    def add(self, spec: CellSpec) -> None:
        if spec.name in self.cells:
            raise ValueError(f"duplicate cell {spec.name!r} in library {self.name!r}")
        self.cells[spec.name] = spec

    def choose(self, kind: str, n_inputs: int) -> CellSpec:
        """Smallest cell of logic function ``kind`` with >= ``n_inputs`` pins."""
        candidates = [c for c in self.cells.values()
                      if c.kind == kind and c.max_inputs >= n_inputs]
        if not candidates:
            raise KeyError(
                f"library {self.name!r} has no {kind} cell with {n_inputs} inputs")
        return min(candidates, key=lambda c: c.max_inputs)

    def kinds(self) -> set[str]:
        return {c.kind for c in self.cells.values()}


def nangate45_like() -> CellLibrary:
    """Build the default 45 nm-class library used by the reproduction.

    Delay values approximate NanGate 45 nm typical-corner cells (X1 drive):
    an inverter is ~10 ps, a NAND2 ~14 ps, wider/composite gates are slower,
    XOR is the slowest two-input function.
    """
    lib = CellLibrary(name="nangate45_like")
    specs = [
        # name       kind    n   rise   fall
        ("INV_X1",   "NOT",  1, 10.0,  8.0),
        ("BUF_X1",   "BUF",  1, 16.0, 15.0),
        ("NAND2_X1", "NAND", 2, 14.0, 11.0),
        ("NAND3_X1", "NAND", 3, 19.0, 15.0),
        ("NAND4_X1", "NAND", 4, 24.0, 19.0),
        ("NOR2_X1",  "NOR",  2, 16.0, 12.0),
        ("NOR3_X1",  "NOR",  3, 23.0, 17.0),
        ("NOR4_X1",  "NOR",  4, 30.0, 22.0),
        ("AND2_X1",  "AND",  2, 22.0, 19.0),
        ("AND3_X1",  "AND",  3, 27.0, 23.0),
        ("AND4_X1",  "AND",  4, 32.0, 27.0),
        ("OR2_X1",   "OR",   2, 24.0, 21.0),
        ("OR3_X1",   "OR",   3, 31.0, 26.0),
        ("OR4_X1",   "OR",   4, 38.0, 31.0),
        ("XOR2_X1",  "XOR",  2, 33.0, 30.0),
        ("XNOR2_X1", "XNOR", 2, 33.0, 30.0),
    ]
    for name, kind, n, rise, fall in specs:
        lib.add(CellSpec(name=name, kind=kind, max_inputs=n,
                         base_rise=rise, base_fall=fall))
    return lib


#: Module-level default library instance (cheap, immutable in practice).
DEFAULT_LIBRARY = nangate45_like()
