"""Gate-level circuit data structures.

The whole flow operates on a :class:`Circuit`: a directed acyclic graph of
gates in ISCAS'89 style (every gate drives exactly one net named after the
gate).  Flip-flops (``DFF``) split the design into a combinational core:

* sources   = primary inputs + DFF outputs (pseudo-primary inputs, PPI),
* sinks     = primary outputs + DFF data inputs (pseudo-primary outputs, PPO).

FAST captures test responses at the sinks; delay monitors are shadow
registers attached to a subset of the PPOs (Sec. III of the paper).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.netlist.cells import CellLibrary, DEFAULT_LIBRARY


class GateKind:
    """String constants for gate kinds plus membership helpers."""

    INPUT = "INPUT"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    NOT = "NOT"
    BUF = "BUF"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"

    #: Kinds that act as combinational sources (no evaluated fanin).
    SOURCES = frozenset({INPUT, DFF, CONST0, CONST1})
    #: Kinds evaluated by the simulators.
    COMBINATIONAL = frozenset({NOT, BUF, AND, NAND, OR, NOR, XOR, XNOR})
    ALL = SOURCES | COMBINATIONAL

    _ARITY_ONE = frozenset({NOT, BUF})

    @classmethod
    def is_source(cls, kind: str) -> bool:
        return kind in cls.SOURCES

    @classmethod
    def is_combinational(cls, kind: str) -> bool:
        return kind in cls.COMBINATIONAL

    @classmethod
    def check_arity(cls, kind: str, n_inputs: int) -> None:
        if kind in (cls.INPUT, cls.CONST0, cls.CONST1):
            if n_inputs != 0:
                raise ValueError(f"{kind} gate takes no inputs, got {n_inputs}")
        elif kind == cls.DFF:
            if n_inputs != 1:
                raise ValueError(f"DFF takes exactly one input, got {n_inputs}")
        elif kind in cls._ARITY_ONE:
            if n_inputs != 1:
                raise ValueError(f"{kind} takes exactly one input, got {n_inputs}")
        elif kind in (cls.XOR, cls.XNOR):
            if n_inputs < 2:
                raise ValueError(f"{kind} needs >=2 inputs, got {n_inputs}")
        elif kind in cls.COMBINATIONAL:
            if n_inputs < 1:
                raise ValueError(f"{kind} needs >=1 input, got {n_inputs}")
        else:
            raise ValueError(f"unknown gate kind {kind!r}")


@dataclass
class Gate:
    """One gate / net in the circuit.

    ``pin_delays[i]`` is the ``(rise, fall)`` pin-to-output delay in ps for
    input pin ``i``; sources have no pins.  Delays are assigned from the cell
    library (:meth:`Circuit.assign_delays`) or an SDF file.
    """

    index: int
    name: str
    kind: str
    fanin: tuple[int, ...] = ()
    pin_delays: tuple[tuple[float, float], ...] = ()
    cell: str = ""

    @property
    def arity(self) -> int:
        return len(self.fanin)

    def max_delay(self) -> float:
        """Largest pin-to-output delay of the gate (0 for sources)."""
        if not self.pin_delays:
            return 0.0
        return max(max(r, f) for r, f in self.pin_delays)

    def min_delay(self) -> float:
        if not self.pin_delays:
            return 0.0
        return min(min(r, f) for r, f in self.pin_delays)


@dataclass(frozen=True, order=True)
class ObservationPoint:
    """A response-capture location: a primary output or a DFF data input.

    ``gate`` is the index of the *driving* gate whose waveform is observed;
    ``kind`` is ``"po"`` or ``"ppo"``; for PPOs ``sink`` is the DFF index.
    """

    kind: str
    gate: int
    name: str
    sink: int = -1

    @property
    def is_pseudo(self) -> bool:
        return self.kind == "ppo"


class Circuit:
    """A named gate-level netlist with cached structural analyses.

    Build with :meth:`add_input`, :meth:`add_gate`, :meth:`add_dff`,
    :meth:`mark_output`, then call :meth:`finalize` (validates, computes the
    topological order and fanout lists, and freezes the structure).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: list[Gate] = []
        self.inputs: list[int] = []
        self.dffs: list[int] = []
        self.outputs: list[int] = []
        self._by_name: dict[str, int] = {}
        self._finalized = False
        self._topo: list[int] = []
        self._topo_pos: list[int] = []
        self._fanouts: list[list[tuple[int, int]]] = []
        self._levels: list[int] = []
        # Structural memo caches (safe: finalize() freezes the structure).
        self._fanout_cone_cache: dict[int, frozenset[int]] = {}
        self._fanin_cone_cache: dict[int, frozenset[int]] = {}
        self._cone_schedule_cache: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, name: str, kind: str, fanin: tuple[int, ...]) -> int:
        if self._finalized:
            raise RuntimeError("circuit is finalized; structure is frozen")
        if name in self._by_name:
            raise ValueError(f"duplicate gate name {name!r} in {self.name!r}")
        GateKind.check_arity(kind, len(fanin))
        for src in fanin:
            if not 0 <= src < len(self.gates):
                raise ValueError(f"gate {name!r}: unknown fanin index {src}")
        idx = len(self.gates)
        self.gates.append(Gate(index=idx, name=name, kind=kind, fanin=fanin))
        self._by_name[name] = idx
        return idx

    def add_input(self, name: str) -> int:
        idx = self._add(name, GateKind.INPUT, ())
        self.inputs.append(idx)
        return idx

    def add_const(self, name: str, value: int) -> int:
        kind = GateKind.CONST1 if value else GateKind.CONST0
        return self._add(name, kind, ())

    def add_gate(self, name: str, kind: str, fanin: Sequence[int]) -> int:
        if not GateKind.is_combinational(kind):
            raise ValueError(f"add_gate expects a combinational kind, got {kind!r}")
        return self._add(name, kind, tuple(fanin))

    def add_dff(self, name: str, data: int | None = None) -> int:
        """Add a flip-flop.  ``data`` may be None and wired up later through
        :meth:`connect_dff` (sequential feedback makes forward references
        unavoidable when parsing netlists)."""
        if data is None:
            if self._finalized:
                raise RuntimeError("circuit is finalized; structure is frozen")
            if name in self._by_name:
                raise ValueError(f"duplicate gate name {name!r} in {self.name!r}")
            idx = len(self.gates)
            self.gates.append(Gate(index=idx, name=name, kind=GateKind.DFF,
                                   fanin=()))
            self._by_name[name] = idx
        else:
            idx = self._add(name, GateKind.DFF, (data,))
        self.dffs.append(idx)
        return idx

    def connect_dff(self, name: str, data: int) -> None:
        """Attach the data input of a DFF created without one."""
        if self._finalized:
            raise RuntimeError("circuit is finalized; structure is frozen")
        gate = self.gates[self._by_name[name]]
        if gate.kind != GateKind.DFF:
            raise ValueError(f"{name!r} is not a DFF")
        if gate.fanin:
            raise ValueError(f"DFF {name!r} already connected")
        if not 0 <= data < len(self.gates):
            raise ValueError(f"unknown gate index {data}")
        gate.fanin = (data,)

    def mark_output(self, gate: int) -> None:
        if self._finalized:
            raise RuntimeError("circuit is finalized; structure is frozen")
        if not 0 <= gate < len(self.gates):
            raise ValueError(f"unknown gate index {gate}")
        if gate not in self.outputs:
            self.outputs.append(gate)

    def finalize(self, *, library: CellLibrary | None = None) -> "Circuit":
        """Validate, compute caches and freeze the structure.

        If no pin delays were assigned yet, defaults from ``library`` (or the
        NanGate-like default) are applied.
        """
        if self._finalized:
            return self
        dangling = [self.gates[d].name for d in self.dffs
                    if not self.gates[d].fanin]
        if dangling:
            raise ValueError(f"DFFs without data input: {dangling[:8]}")
        self._compute_topo()
        self._compute_fanouts()
        self._compute_levels()
        self._finalized = True
        if any(g.kind in GateKind.COMBINATIONAL and not g.pin_delays
               for g in self.gates):
            self.assign_delays(library or DEFAULT_LIBRARY)
        return self

    # ------------------------------------------------------------------
    # Structural caches
    # ------------------------------------------------------------------
    def _compute_topo(self) -> None:
        """Topological order over combinational gates (Kahn's algorithm).

        Sources (inputs, DFF outputs, constants) come first; a cycle through
        combinational gates is a structural error.
        """
        n = len(self.gates)
        indeg = [0] * n
        fanout: list[list[int]] = [[] for _ in range(n)]
        for g in self.gates:
            if g.kind == GateKind.DFF:
                continue  # DFF breaks combinational cycles
            for src in g.fanin:
                fanout[src].append(g.index)
                indeg[g.index] += 1
        ready = [i for i, g in enumerate(self.gates)
                 if indeg[i] == 0]
        order: list[int] = []
        head = 0
        ready.sort()
        while head < len(ready):
            u = ready[head]
            head += 1
            order.append(u)
            for v in fanout[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != n:
            stuck = [self.gates[i].name for i in range(n) if indeg[i] > 0]
            raise ValueError(
                f"combinational cycle in {self.name!r} involving: {stuck[:8]}")
        self._topo = order
        self._topo_pos = [0] * n
        for pos, idx in enumerate(order):
            self._topo_pos[idx] = pos

    def _compute_fanouts(self) -> None:
        self._fanouts = [[] for _ in self.gates]
        for g in self.gates:
            for pin, src in enumerate(g.fanin):
                self._fanouts[src].append((g.index, pin))

    def _compute_levels(self) -> None:
        self._levels = [0] * len(self.gates)
        for idx in self._topo:
            g = self.gates[idx]
            if GateKind.is_source(g.kind):
                self._levels[idx] = 0
            else:
                self._levels[idx] = 1 + max(
                    (self._levels[s] for s in g.fanin), default=0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("call finalize() before structural queries")

    @property
    def is_finalized(self) -> bool:
        return self._finalized

    def gate_by_name(self, name: str) -> Gate:
        return self.gates[self._by_name[name]]

    def index_of(self, name: str) -> int:
        return self._by_name[name]

    def has_gate(self, name: str) -> bool:
        return name in self._by_name

    @property
    def topo_order(self) -> list[int]:
        self._require_finalized()
        return self._topo

    def fanouts(self, gate: int) -> list[tuple[int, int]]:
        """``(consumer gate index, consumer pin index)`` pairs for ``gate``."""
        self._require_finalized()
        return self._fanouts[gate]

    def fanout_count(self, gate: int) -> int:
        self._require_finalized()
        n = len(self._fanouts[gate])
        if gate in self.outputs:
            n += 1
        return n

    def level(self, gate: int) -> int:
        self._require_finalized()
        return self._levels[gate]

    @property
    def depth(self) -> int:
        self._require_finalized()
        return max(self._levels, default=0)

    def combinational_gates(self) -> list[int]:
        return [g.index for g in self.gates
                if GateKind.is_combinational(g.kind)]

    @property
    def num_gates(self) -> int:
        """Number of combinational gates (the paper's |Gates| column)."""
        return sum(1 for g in self.gates
                   if GateKind.is_combinational(g.kind))

    @property
    def num_ffs(self) -> int:
        return len(self.dffs)

    def sources(self) -> list[int]:
        """All combinational sources: PIs, PPIs (DFF outputs) and constants."""
        return [g.index for g in self.gates if GateKind.is_source(g.kind)]

    def observation_points(self) -> list[ObservationPoint]:
        """Primary outputs followed by pseudo-primary outputs (DFF D-pins)."""
        self._require_finalized()
        points = [
            ObservationPoint(kind="po", gate=idx,
                             name=f"po:{self.gates[idx].name}")
            for idx in self.outputs
        ]
        points.extend(
            ObservationPoint(kind="ppo", gate=self.gates[dff].fanin[0],
                             name=f"ppo:{self.gates[dff].name}", sink=dff)
            for dff in self.dffs
        )
        return points

    def topo_position(self, gate: int) -> int:
        """Position of ``gate`` in :attr:`topo_order` (O(1) lookup)."""
        self._require_finalized()
        return self._topo_pos[gate]

    @property
    def topo_positions(self) -> list[int]:
        """Topological position per gate index (for sort keys)."""
        self._require_finalized()
        return self._topo_pos

    def fanout_cone(self, gate: int) -> frozenset[int]:
        """All gates reachable from ``gate`` through combinational edges.

        Memoized on the finalized circuit — the structure is frozen, so the
        cone of a site never changes and the fault simulators query it once
        per (fault, pattern) pair otherwise.
        """
        self._require_finalized()
        cached = self._fanout_cone_cache.get(gate)
        if cached is not None:
            return cached
        cone: set[int] = set()
        stack = [gate]
        while stack:
            u = stack.pop()
            for v, _pin in self._fanouts[u]:
                if v not in cone and self.gates[v].kind != GateKind.DFF:
                    cone.add(v)
                    stack.append(v)
        result = frozenset(cone)
        self._fanout_cone_cache[gate] = result
        return result

    def fanin_cone(self, gate: int) -> frozenset[int]:
        """All combinational gates/sources feeding ``gate`` (inclusive).

        Memoized on the finalized circuit, like :meth:`fanout_cone`.
        """
        self._require_finalized()
        cached = self._fanin_cone_cache.get(gate)
        if cached is not None:
            return cached
        cone = {gate}
        stack = [gate]
        while stack:
            u = stack.pop()
            if self.gates[u].kind == GateKind.DFF:
                continue
            for src in self.gates[u].fanin:
                if src not in cone:
                    cone.add(src)
                    stack.append(src)
        result = frozenset(cone)
        self._fanin_cone_cache[gate] = result
        return result

    def cone_schedule(self, gate: int) -> tuple[int, ...]:
        """Fanout cone of ``gate`` as a topologically-sorted tuple.

        This is the per-site evaluation schedule of the incremental fault
        simulator: only these gates can differ from the fault-free
        simulation, and visiting them in topological order guarantees every
        fanin is settled before a gate is evaluated.
        """
        self._require_finalized()
        cached = self._cone_schedule_cache.get(gate)
        if cached is None:
            pos = self._topo_pos
            cached = tuple(sorted(self.fanout_cone(gate),
                                  key=pos.__getitem__))
            self._cone_schedule_cache[gate] = cached
        return cached

    def iter_gates(self) -> Iterator[Gate]:
        return iter(self.gates)

    # ------------------------------------------------------------------
    # Timing annotation
    # ------------------------------------------------------------------
    def assign_delays(self, library: CellLibrary, *,
                      scale: float = 1.0) -> None:
        """Map every combinational gate onto a library cell and set delays.

        ``scale`` multiplies all delays (used to model global process/aging
        shifts).  Requires the fanout cache, hence a finalized circuit.
        """
        self._require_finalized()
        for g in self.gates:
            if not GateKind.is_combinational(g.kind):
                continue
            spec = library.choose(g.kind, g.arity)
            fo = self.fanout_count(g.index)
            g.cell = spec.name
            g.pin_delays = tuple(
                (r * scale, f * scale)
                for r, f in (spec.pin_delay(p, fo) for p in range(g.arity))
            )

    def scale_gate_delays(self, factors) -> None:
        """Multiply the delays of selected gates (aging degradation model).

        ``factors`` is either a ``{gate index: factor}`` mapping or a
        per-gate sequence/array of length ``len(self.gates)`` (the
        :class:`~repro.aging.api.DegradationModel` contract); unit factors
        are skipped.
        """
        items = (factors.items() if hasattr(factors, "items")
                 else enumerate(factors))
        for idx, factor in items:
            if factor == 1.0:
                continue
            g = self.gates[idx]
            g.pin_delays = tuple((r * factor, f * factor)
                                 for r, f in g.pin_delays)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """Stable sha256 over the full netlist content.

        Covers name, structure (gate names/kinds/fanin/outputs) and the
        timing annotation (pin delays, cells), so two circuits hash equal
        iff every flow stage would treat them identically.  Recomputed on
        every call — delays may be rescaled after finalize (aging models),
        so the digest is deliberately not memoized.
        """
        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(repr(self.outputs).encode())
        for g in self.gates:
            h.update(f"{g.name}|{g.kind}|{g.fanin}|"
                     f"{g.pin_delays!r}|{g.cell}\n".encode())
        return h.hexdigest()

    def stats(self) -> dict[str, int]:
        return {
            "gates": self.num_gates,
            "ffs": self.num_ffs,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "depth": self.depth if self._finalized else -1,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Circuit({self.name!r}, gates={self.num_gates}, "
                f"ffs={self.num_ffs}, pis={len(self.inputs)}, "
                f"pos={len(self.outputs)})")
