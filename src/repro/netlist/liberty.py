"""Liberty (.lib) subset — cell library exchange.

Synthesis libraries like NanGate 45 nm ship as Liberty files.  This module
implements the small structural subset needed to exchange the bundled
:class:`~repro.netlist.cells.CellLibrary` model::

    library (nangate45_like) {
      time_unit : "1ps";
      cell (NAND2_X1) {
        function : "NAND";
        pin_spread : 0.15;
        load_rise : 1.6;
        load_fall : 1.4;
        pin (A) { timing () { cell_rise : 14.0; cell_fall : 11.0; } }
        pin (B) { timing () { cell_rise : 16.1; cell_fall : 12.65; } }
      }
    }

Only the attributes the timing model consumes are read; unknown groups and
attributes are skipped (Liberty is huge — this is an exchange subset, not
a front end).  Per-pin ``cell_rise``/``cell_fall`` values are mapped back
onto the base+spread model by taking pin 0 as the base delay.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.netlist.cells import CellLibrary, CellSpec


class LibertyParseError(ValueError):
    """Raised on malformed Liberty input."""


def write_liberty(library: CellLibrary) -> str:
    """Serialize a cell library as Liberty text."""
    lines = [f"library ({library.name}) {{",
             '  time_unit : "1ps";']
    for name in sorted(library.cells):
        spec = library.cells[name]
        lines.append(f"  cell ({spec.name}) {{")
        lines.append(f'    function : "{spec.kind}";')
        lines.append(f"    pin_spread : {spec.pin_spread};")
        lines.append(f"    load_rise : {spec.load_rise};")
        lines.append(f"    load_fall : {spec.load_fall};")
        for pin in range(spec.max_inputs):
            rise, fall = spec.pin_delay(pin, fanout=1)
            lines.append(f"    pin (in{pin}) {{ timing () {{ "
                         f"cell_rise : {rise:.4f}; "
                         f"cell_fall : {fall:.4f}; }} }}")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_liberty(library: CellLibrary, path: str | Path) -> None:
    Path(path).write_text(write_liberty(library))


_LIB_RE = re.compile(r"library\s*\(\s*(?P<name>[\w.]+)\s*\)")
_CELL_RE = re.compile(r"cell\s*\(\s*(?P<name>[\w.]+)\s*\)\s*\{")
_ATTR_RE = re.compile(r"(?P<key>\w+)\s*:\s*\"?(?P<value>[^\";]+)\"?\s*;")
_PIN_RE = re.compile(
    r"pin\s*\(\s*in(?P<idx>\d+)\s*\)\s*\{[^}]*?"
    r"cell_rise\s*:\s*(?P<rise>[\d.eE+-]+)\s*;[^}]*?"
    r"cell_fall\s*:\s*(?P<fall>[\d.eE+-]+)\s*;", re.S)


def _split_cells(text: str) -> list[tuple[str, str]]:
    """Return (cell name, cell body) pairs using brace counting."""
    out: list[tuple[str, str]] = []
    for m in _CELL_RE.finditer(text):
        depth = 1
        i = m.end()
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        if depth:
            raise LibertyParseError(
                f"unbalanced braces in cell {m.group('name')!r}")
        out.append((m.group("name"), text[m.end():i - 1]))
    return out


def parse_liberty(text: str) -> CellLibrary:
    """Parse Liberty text into a :class:`CellLibrary`."""
    lib_match = _LIB_RE.search(text)
    if not lib_match:
        raise LibertyParseError("no library group found")
    library = CellLibrary(name=lib_match.group("name"))

    for cell_name, body in _split_cells(text):
        attrs = dict(_ATTR_RE.findall(body))
        kind = attrs.get("function")
        if kind is None:
            raise LibertyParseError(f"cell {cell_name!r} has no function")
        pins = {int(m.group("idx")): (float(m.group("rise")),
                                      float(m.group("fall")))
                for m in _PIN_RE.finditer(body)}
        if not pins or 0 not in pins:
            raise LibertyParseError(f"cell {cell_name!r} has no pin in0")
        base_rise, base_fall = pins[0]
        library.add(CellSpec(
            name=cell_name,
            kind=kind.strip(),
            max_inputs=max(pins) + 1,
            base_rise=base_rise,
            base_fall=base_fall,
            load_rise=float(attrs.get("load_rise", 1.6)),
            load_fall=float(attrs.get("load_fall", 1.4)),
            pin_spread=float(attrs.get("pin_spread", 0.15)),
        ))
    return library


def load_liberty(path: str | Path) -> CellLibrary:
    return parse_liberty(Path(path).read_text())
