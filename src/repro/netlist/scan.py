"""Scan-chain model and test-application time accounting.

FAST applies its pattern pairs through scan: a pattern is shifted into the
chains at slow scan-clock speed, the launch/capture cycle pair runs at the
selected FAST frequency, and the response is shifted out (overlapped with
the next shift-in).  Monitor configurations are selected during shift-in
(Sec. IV-B), so switching configurations is free; switching *frequencies*
re-locks the PLL and dominates the cost.

This module turns a schedule's abstract counts into scan cycles so that test
times can be compared in a hardware-meaningful unit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.netlist.circuit import Circuit
from repro.scheduling.schedule import ScheduleResult
from repro.timing.clock import DEFAULT_PLL_RELOCK_PATTERNS


@dataclass(frozen=True)
class ScanChainPlan:
    """Flip-flops balanced over ``n_chains`` scan chains."""

    n_ffs: int
    n_chains: int

    def __post_init__(self) -> None:
        if self.n_chains < 1:
            raise ValueError("need at least one scan chain")

    @property
    def longest_chain(self) -> int:
        return math.ceil(self.n_ffs / self.n_chains)

    @property
    def cycles_per_pattern(self) -> int:
        """Shift-in (overlapped with shift-out) plus launch and capture."""
        return self.longest_chain + 2

    def chains(self, circuit: Circuit) -> list[list[int]]:
        """Assign the circuit's DFFs to chains round-robin in index order."""
        if circuit.num_ffs != self.n_ffs:
            raise ValueError(
                f"plan is for {self.n_ffs} FFs, circuit has {circuit.num_ffs}")
        out: list[list[int]] = [[] for _ in range(self.n_chains)]
        for i, ff in enumerate(sorted(circuit.dffs)):
            out[i % self.n_chains].append(ff)
        return out


def plan_scan_chains(circuit: Circuit, *, n_chains: int = 1) -> ScanChainPlan:
    return ScanChainPlan(n_ffs=circuit.num_ffs, n_chains=n_chains)


def schedule_test_cycles(schedule: ScheduleResult, plan: ScanChainPlan, *,
                         relock_cycles: float = DEFAULT_PLL_RELOCK_PATTERNS
                         ) -> float:
    """Total scan cycles to apply a schedule.

    One PLL re-lock per selected frequency plus one scan load per schedule
    entry.  This is the quantity Table II/III's Δ% reductions track, with
    the frequency term explaining why step 1 minimizes |F| first.
    """
    return (schedule.num_frequencies * relock_cycles
            + schedule.num_entries * plan.cycles_per_pattern)


def naive_test_cycles(schedule: ScheduleResult, plan: ScanChainPlan,
                      num_patterns: int, num_configs: int, *,
                      relock_cycles: float = DEFAULT_PLL_RELOCK_PATTERNS
                      ) -> float:
    """Cycles of the naïve schedule (all patterns × configs × frequencies)."""
    return (schedule.num_frequencies * relock_cycles
            + schedule.naive_size(num_patterns, num_configs)
            * plan.cycles_per_pattern)
