"""Standard Delay Format (SDF) subset — writer and reader.

The paper's flow consumes post-synthesis timing "using timing information
from standard delay format files" (Sec. III-A).  This module implements the
subset needed for that: per-instance ``IOPATH`` delays with rise/fall
triples.  The writer emits one ``CELL`` per combinational gate::

    (CELL (CELLTYPE "NAND2_X1") (INSTANCE g1)
      (DELAY (ABSOLUTE
        (IOPATH in0 out (14.0::14.0) (11.0::11.0))
      ))
    )

and the reader applies such annotations back onto a circuit, overriding the
library defaults.  Times are picoseconds (``TIMESCALE 1ps``); triples
``(min:typ:max)`` collapse to the typ value (middle field), with one- and
two-field forms accepted.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.netlist.circuit import Circuit, GateKind


class SdfParseError(ValueError):
    """Raised on malformed SDF input."""


def write_sdf(circuit: Circuit, *, design: str | None = None) -> str:
    """Serialize the circuit's pin-to-pin delays as SDF text."""
    lines = [
        "(DELAYFILE",
        '  (SDFVERSION "3.0")',
        f'  (DESIGN "{design or circuit.name}")',
        "  (TIMESCALE 1ps)",
    ]
    for g in circuit.gates:
        if not GateKind.is_combinational(g.kind) or not g.pin_delays:
            continue
        lines.append(f'  (CELL (CELLTYPE "{g.cell or g.kind}")'
                     f' (INSTANCE {g.name})')
        lines.append("    (DELAY (ABSOLUTE")
        for pin, (rise, fall) in enumerate(g.pin_delays):
            lines.append(
                f"      (IOPATH in{pin} out ({rise:.3f}::{rise:.3f})"
                f" ({fall:.3f}::{fall:.3f}))")
        lines.append("    ))")
        lines.append("  )")
    lines.append(")")
    return "\n".join(lines) + "\n"


def save_sdf(circuit: Circuit, path: str | Path) -> None:
    Path(path).write_text(write_sdf(circuit))


_IOPATH_RE = re.compile(
    r"\(IOPATH\s+(?P<ipin>\S+)\s+\S+\s+"
    r"\((?P<rise>[^)]*)\)\s+\((?P<fall>[^)]*)\)\s*\)")
_INSTANCE_RE = re.compile(r"\(INSTANCE\s+(?P<name>[^)\s]+)\s*\)")
_TIMESCALE_RE = re.compile(r"\(TIMESCALE\s+(?P<factor>[\d.]+)\s*(?P<unit>[np]?s)\s*\)")

_UNIT_PS = {"ps": 1.0, "ns": 1000.0, "s": 1e12}


def _triple(text: str) -> float:
    """Parse a (min:typ:max) value group, returning the typ field."""
    fields = [f.strip() for f in text.split(":")]
    for candidate in (fields[1] if len(fields) >= 2 else "", fields[0]):
        if candidate:
            try:
                return float(candidate)
            except ValueError as exc:
                raise SdfParseError(f"bad delay value {candidate!r}") from exc
    raise SdfParseError(f"empty delay triple {text!r}")


def parse_sdf(text: str) -> dict[str, list[tuple[float, float]]]:
    """Extract instance → per-pin (rise, fall) delays in ps."""
    scale = 1.0
    ts = _TIMESCALE_RE.search(text)
    if ts:
        scale = float(ts.group("factor")) * _UNIT_PS[ts.group("unit")]

    out: dict[str, list[tuple[float, float]]] = {}
    # Split on CELL boundaries; each chunk holds one instance.
    for chunk in re.split(r"\(CELL\b", text)[1:]:
        inst = _INSTANCE_RE.search(chunk)
        if not inst:
            raise SdfParseError("CELL without INSTANCE")
        name = inst.group("name")
        pins: list[tuple[int, float, float]] = []
        for m in _IOPATH_RE.finditer(chunk):
            ipin = m.group("ipin")
            pin_match = re.fullmatch(r"in(\d+)", ipin)
            if not pin_match:
                raise SdfParseError(
                    f"unsupported IOPATH input pin {ipin!r} on {name!r}")
            pins.append((int(pin_match.group(1)),
                         _triple(m.group("rise")) * scale,
                         _triple(m.group("fall")) * scale))
        if pins:
            pins.sort()
            out[name] = [(r, f) for _i, r, f in pins]
    return out


def apply_sdf(circuit: Circuit, text: str, *, strict: bool = True) -> int:
    """Annotate a circuit with SDF delays; returns the instance count applied.

    With ``strict``, instances missing from the circuit or pin-count
    mismatches raise; otherwise they are skipped.
    """
    annotations = parse_sdf(text)
    applied = 0
    for name, delays in annotations.items():
        if not circuit.has_gate(name):
            if strict:
                raise SdfParseError(f"SDF instance {name!r} not in circuit")
            continue
        gate = circuit.gate_by_name(name)
        if len(delays) != gate.arity:
            if strict:
                raise SdfParseError(
                    f"{name!r}: SDF has {len(delays)} pins, gate has "
                    f"{gate.arity}")
            continue
        gate.pin_delays = tuple(delays)
        applied += 1
    return applied


def load_sdf(circuit: Circuit, path: str | Path, *, strict: bool = True) -> int:
    return apply_sdf(circuit, Path(path).read_text(), strict=strict)
