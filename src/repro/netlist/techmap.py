"""Netlist transformations: gate decomposition and fanout buffering.

Synthesis decisions reshape the path-delay population the FAST flow works
on.  Two classic transforms are provided, both producing a *new* finalized
circuit that is functionally equivalent (the tests prove it by exhaustive/
random bit-parallel simulation):

* :func:`decompose_wide_gates` — replace gates wider than ``max_arity``
  with balanced trees of 2-input cells (``NAND4 → NAND2(AND2, AND2)``),
  deepening paths and shrinking per-gate delays,
* :func:`buffer_fanouts` — split nets driving more than ``max_fanout``
  loads with buffer trees, the standard fix for load-dominated delays.

Both keep flip-flop and primary-output structure intact, so flow results
before/after a transform are directly comparable.
"""

from __future__ import annotations

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Circuit, GateKind

#: Wide kind -> (leaf kind for the lower tree levels, root kind).
_DECOMPOSE = {
    GateKind.AND: (GateKind.AND, GateKind.AND),
    GateKind.OR: (GateKind.OR, GateKind.OR),
    GateKind.NAND: (GateKind.AND, GateKind.NAND),
    GateKind.NOR: (GateKind.OR, GateKind.NOR),
    GateKind.XOR: (GateKind.XOR, GateKind.XOR),
    GateKind.XNOR: (GateKind.XOR, GateKind.XNOR),
}


def decompose_wide_gates(circuit: Circuit, *, max_arity: int = 2,
                         library: CellLibrary | None = None,
                         suffix: str = "_dec") -> Circuit:
    """Rebuild the circuit with no gate wider than ``max_arity``."""
    if max_arity < 2:
        raise ValueError("max_arity must be >= 2")
    out = Circuit(circuit.name + suffix)
    mapping: dict[int, int] = {}
    aux = 0

    for g in circuit.gates:
        if g.kind == GateKind.INPUT:
            mapping[g.index] = out.add_input(g.name)
        elif g.kind == GateKind.DFF:
            mapping[g.index] = out.add_dff(g.name, None)
        elif g.kind in (GateKind.CONST0, GateKind.CONST1):
            mapping[g.index] = out.add_const(
                g.name, 1 if g.kind == GateKind.CONST1 else 0)

    def tree(kind: str, sources: list[int], name: str) -> int:
        """Balanced reduction tree over already-mapped source indices."""
        nonlocal aux
        leaf_kind, root_kind = _DECOMPOSE[kind]
        level = list(sources)
        while len(level) > max_arity:
            nxt: list[int] = []
            for i in range(0, len(level), max_arity):
                chunk = level[i:i + max_arity]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                    continue
                aux += 1
                nxt.append(out.add_gate(f"{name}__t{aux}", leaf_kind, chunk))
            level = nxt
        return out.add_gate(name, root_kind, level)

    for idx in circuit.topo_order:
        g = circuit.gates[idx]
        if not GateKind.is_combinational(g.kind):
            continue
        srcs = [mapping[s] for s in g.fanin]
        if g.arity <= max_arity or g.kind not in _DECOMPOSE:
            mapping[idx] = out.add_gate(g.name, g.kind, srcs)
        else:
            mapping[idx] = tree(g.kind, srcs, g.name)

    for g in circuit.gates:
        if g.kind == GateKind.DFF:
            out.connect_dff(g.name, mapping[g.fanin[0]])
    for po in circuit.outputs:
        out.mark_output(mapping[po])
    return out.finalize(library=library)


def buffer_fanouts(circuit: Circuit, *, max_fanout: int = 4,
                   library: CellLibrary | None = None,
                   suffix: str = "_buf") -> Circuit:
    """Rebuild the circuit with buffer trees on heavily-loaded nets.

    Consumers beyond the first ``max_fanout`` are moved onto inserted
    ``BUF`` stages (round-robin), bounding every net's fanout.
    """
    if max_fanout < 2:
        raise ValueError("max_fanout must be >= 2")
    out = Circuit(circuit.name + suffix)
    mapping: dict[int, int] = {}
    #: per original net: list of buffered aliases to hand to consumers.
    taps: dict[int, list[int]] = {}
    tap_uses: dict[int, int] = {}
    aux = 0

    for g in circuit.gates:
        if g.kind == GateKind.INPUT:
            mapping[g.index] = out.add_input(g.name)
        elif g.kind == GateKind.DFF:
            mapping[g.index] = out.add_dff(g.name, None)
        elif g.kind in (GateKind.CONST0, GateKind.CONST1):
            mapping[g.index] = out.add_const(
                g.name, 1 if g.kind == GateKind.CONST1 else 0)

    def build_tree(src: int, n_loads: int) -> list[int]:
        """Buffer tree under ``src`` with >= ceil(n_loads/max_fanout)
        leaves, cascading levels so no net exceeds ``max_fanout``."""
        nonlocal aux
        leaves = [mapping[src]]
        while n_loads > len(leaves) * max_fanout:
            need = -(-n_loads // max_fanout)
            next_leaves: list[int] = []
            for parent in leaves:
                for _ in range(max_fanout):
                    if len(next_leaves) >= need:
                        break
                    aux += 1
                    next_leaves.append(out.add_gate(
                        f"{circuit.gates[src].name}__b{aux}",
                        GateKind.BUF, [parent]))
                if len(next_leaves) >= need:
                    break
            leaves = next_leaves
        return leaves

    def tap_of(src: int) -> int:
        """Next available (possibly buffered) alias of a source net."""
        if src not in taps:
            n_loads = len(circuit.fanouts(src)) + (
                1 if src in circuit.outputs else 0)
            taps[src] = build_tree(src, n_loads)
            tap_uses[src] = 0
        aliases = taps[src]
        i = tap_uses[src] // max_fanout
        tap_uses[src] += 1
        return aliases[min(i, len(aliases) - 1)]

    for idx in circuit.topo_order:
        g = circuit.gates[idx]
        if not GateKind.is_combinational(g.kind):
            continue
        srcs = [tap_of(s) for s in g.fanin]
        mapping[idx] = out.add_gate(g.name, g.kind, srcs)

    for g in circuit.gates:
        if g.kind == GateKind.DFF:
            out.connect_dff(g.name, tap_of(g.fanin[0]))
    for po in circuit.outputs:
        out.mark_output(mapping[po])
    return out.finalize(library=library)
