"""Netlist sanity checks.

Run :func:`validate_circuit` before handing a parsed or generated netlist to
the flow; it reports structural problems that the simulators would otherwise
surface as confusing downstream errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit, GateKind


@dataclass
class ValidationReport:
    """Findings of one validation run.  ``errors`` make the netlist unusable;
    ``warnings`` are suspicious but tolerated (e.g. dangling logic)."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            raise ValueError("invalid netlist: " + "; ".join(self.errors[:5]))


def validate_circuit(circuit: Circuit) -> ValidationReport:
    """Check a finalized circuit for structural problems."""
    report = ValidationReport()
    if not circuit.is_finalized:
        report.errors.append("circuit is not finalized")
        return report

    observed = {op.gate for op in circuit.observation_points()}
    if not observed:
        report.errors.append("circuit has no observation points")
    if not circuit.inputs and not circuit.dffs:
        report.errors.append("circuit has no sources")

    for g in circuit.gates:
        if GateKind.is_combinational(g.kind):
            if not g.pin_delays:
                report.errors.append(f"gate {g.name!r} has no delays")
            elif len(g.pin_delays) != g.arity:
                report.errors.append(
                    f"gate {g.name!r}: {len(g.pin_delays)} delay entries for "
                    f"{g.arity} pins")
            elif any(r <= 0 or f <= 0 for r, f in g.pin_delays):
                report.errors.append(f"gate {g.name!r} has non-positive delay")
            if not circuit.fanouts(g.index) and g.index not in circuit.outputs:
                report.warnings.append(
                    f"gate {g.name!r} is dangling (no fanout, not a PO)")
        elif g.kind == GateKind.DFF and not g.fanin:
            report.errors.append(f"DFF {g.name!r} has no data input")

    # Every source should reach some observation point.
    reaching: set[int] = set(observed)
    for idx in reversed(circuit.topo_order):
        if idx in reaching:
            for src in circuit.gates[idx].fanin:
                reaching.add(src)
    for idx in circuit.inputs:
        if idx not in reaching:
            report.warnings.append(
                f"input {circuit.gates[idx].name!r} reaches no output")
    return report
