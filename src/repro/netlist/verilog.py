"""Structural Verilog subset — writer and reader.

Covers gate-level netlists as produced by synthesis against the bundled
library model::

    module s27 (G0, G1, G17);
      input G0, G1;
      output G17;
      wire w1;
      NAND2_X1 g1 (.A(G0), .B(G1), .ZN(w1));
      DFF_X1 ff1 (.D(w1), .Q(G17));
    endmodule

Supported: one module per file, named port connections, input/output/wire
declarations (comma lists), cells of the bundled library plus ``DFF_X1``.
Input pins are ``A``-``D`` (in pin order), outputs ``Z``/``ZN``/``Q``.
Unsupported constructs raise :class:`VerilogParseError` — this is a netlist
exchange format, not a Verilog front end.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Circuit, GateKind

_PIN_NAMES = ("A", "B", "C", "D")
_OUT_PINS = ("Z", "ZN", "Q")

#: cell-name prefix -> gate kind (drive strength suffix ignored).
_CELL_KINDS = {
    "INV": GateKind.NOT,
    "BUF": GateKind.BUF,
    "NAND": GateKind.NAND,
    "NOR": GateKind.NOR,
    "AND": GateKind.AND,
    "OR": GateKind.OR,
    "XOR": GateKind.XOR,
    "XNOR": GateKind.XNOR,
    "DFF": GateKind.DFF,
}

_KIND_CELLS = {
    GateKind.NOT: "INV_X1",
    GateKind.BUF: "BUF_X1",
    GateKind.NAND: "NAND{n}_X1",
    GateKind.NOR: "NOR{n}_X1",
    GateKind.AND: "AND{n}_X1",
    GateKind.OR: "OR{n}_X1",
    GateKind.XOR: "XOR2_X1",
    GateKind.XNOR: "XNOR2_X1",
}


class VerilogParseError(ValueError):
    """Raised on unsupported or malformed structural Verilog."""


def _sanitize(name: str) -> str:
    """Make a net name a legal Verilog identifier."""
    clean = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not re.match(r"[A-Za-z_]", clean):
        clean = "n_" + clean
    return clean


def write_verilog(circuit: Circuit) -> str:
    """Serialize a circuit as structural Verilog."""
    names = {g.index: _sanitize(g.name) for g in circuit.gates}
    if len(set(names.values())) != len(names):
        # Disambiguate collisions introduced by sanitizing.
        seen: dict[str, int] = {}
        for idx in sorted(names):
            base = names[idx]
            if base in seen:
                seen[base] += 1
                names[idx] = f"{base}__{seen[base]}"
            else:
                seen[base] = 0

    pis = [names[i] for i in circuit.inputs]
    pos = [names[i] for i in circuit.outputs]
    ports = pis + [p for p in pos if p not in pis]
    lines = [f"module {_sanitize(circuit.name)} ({', '.join(ports)});"]
    if pis:
        lines.append(f"  input {', '.join(pis)};")
    if pos:
        lines.append(f"  output {', '.join(dict.fromkeys(pos))};")
    wires = [names[g.index] for g in circuit.gates
             if g.kind not in (GateKind.INPUT,) and names[g.index] not in pos]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    inst = 0
    for g in circuit.gates:
        if g.kind == GateKind.INPUT:
            continue
        if g.kind in (GateKind.CONST0, GateKind.CONST1):
            value = "1'b1" if g.kind == GateKind.CONST1 else "1'b0"
            lines.append(f"  assign {names[g.index]} = {value};")
            continue
        if g.kind == GateKind.DFF:
            cell = "DFF_X1"
            conns = [f".D({names[g.fanin[0]]})", f".Q({names[g.index]})"]
        else:
            cell = g.cell or _KIND_CELLS[g.kind].format(n=g.arity)
            conns = [f".{_PIN_NAMES[p]}({names[s]})"
                     for p, s in enumerate(g.fanin)]
            out_pin = "ZN" if g.kind in (GateKind.NOT, GateKind.NAND,
                                         GateKind.NOR, GateKind.XNOR) else "Z"
            conns.append(f".{out_pin}({names[g.index]})")
        lines.append(f"  {cell} U{inst} ({', '.join(conns)});")
        inst += 1
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(circuit: Circuit, path: str | Path) -> None:
    Path(path).write_text(write_verilog(circuit))


_MODULE_RE = re.compile(
    r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;", re.S)
_DECL_RE = re.compile(r"(?P<kind>input|output|wire)\s+(?P<names>[^;]+);")
_INST_RE = re.compile(
    r"(?P<cell>[A-Za-z_]\w*)\s+(?P<inst>\w+)\s*\((?P<conns>[^;]*)\)\s*;")
_CONN_RE = re.compile(r"\.(?P<pin>\w+)\s*\(\s*(?P<net>[\w$]+)\s*\)")
_ASSIGN_RE = re.compile(r"assign\s+(?P<net>[\w$]+)\s*=\s*1'b(?P<val>[01])\s*;")


def _cell_kind(cell: str) -> str:
    for prefix, kind in sorted(_CELL_KINDS.items(), key=lambda kv: -len(kv[0])):
        if cell.upper().startswith(prefix):
            return kind
    raise VerilogParseError(f"unknown cell {cell!r}")


def parse_verilog(text: str, *, library: CellLibrary | None = None) -> Circuit:
    """Parse structural Verilog into a finalized circuit."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    m = _MODULE_RE.search(text)
    if not m:
        raise VerilogParseError("no module found")
    body = text[m.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogParseError("missing endmodule")
    body = body[:end]

    inputs: list[str] = []
    outputs: list[str] = []
    for d in _DECL_RE.finditer(body):
        names = [n.strip() for n in d.group("names").split(",") if n.strip()]
        if d.group("kind") == "input":
            inputs.extend(names)
        elif d.group("kind") == "output":
            outputs.extend(names)

    # Collect instances: output net -> (kind, ordered input nets).
    defs: dict[str, tuple[str, list[str]]] = {}
    decl_body = _DECL_RE.sub("", body)
    for a in _ASSIGN_RE.finditer(decl_body):
        kind = GateKind.CONST1 if a.group("val") == "1" else GateKind.CONST0
        defs[a.group("net")] = (kind, [])
    inst_body = _ASSIGN_RE.sub("", decl_body)
    for i in _INST_RE.finditer(inst_body):
        if i.group("cell") == "module":
            continue
        kind = _cell_kind(i.group("cell"))
        pins: dict[str, str] = {}
        for c in _CONN_RE.finditer(i.group("conns")):
            pins[c.group("pin").upper()] = c.group("net")
        out_net = next((pins[p] for p in _OUT_PINS if p in pins), None)
        if out_net is None:
            raise VerilogParseError(
                f"instance {i.group('inst')!r} has no output pin")
        if kind == GateKind.DFF:
            ins = [pins["D"]] if "D" in pins else []
        else:
            ins = [pins[p] for p in _PIN_NAMES if p in pins]
        if out_net in defs:
            raise VerilogParseError(f"net {out_net!r} driven twice")
        defs[out_net] = (kind, ins)

    circuit = Circuit(m.group("name"))
    for pi in inputs:
        circuit.add_input(pi)
    dffs = [n for n, (k, _i) in defs.items() if k == GateKind.DFF]
    for n in dffs:
        circuit.add_dff(n, None)

    state: dict[str, int] = {}

    def build(net: str) -> None:
        if circuit.has_gate(net):
            return
        if net not in defs:
            raise VerilogParseError(f"undriven net {net!r}")
        if state.get(net) == 0:
            raise VerilogParseError(f"combinational cycle through {net!r}")
        state[net] = 0
        kind, ins = defs[net]
        for src in ins:
            build(src)
        if kind in (GateKind.CONST0, GateKind.CONST1):
            circuit.add_const(net, 1 if kind == GateKind.CONST1 else 0)
        else:
            circuit.add_gate(net, kind,
                             [circuit.index_of(s) for s in ins])
        state[net] = 1

    for net, (kind, _ins) in defs.items():
        if kind != GateKind.DFF:
            build(net)
    for n in dffs:
        _kind, ins = defs[n]
        if len(ins) != 1:
            raise VerilogParseError(f"DFF {n!r} needs a D connection")
        build(ins[0])
        circuit.connect_dff(n, circuit.index_of(ins[0]))
    for po in outputs:
        if not circuit.has_gate(po):
            raise VerilogParseError(f"output {po!r} is undriven")
        circuit.mark_output(circuit.index_of(po))
    return circuit.finalize(library=library)


def load_verilog(path: str | Path, *,
                 library: CellLibrary | None = None) -> Circuit:
    return parse_verilog(Path(path).read_text(), library=library)
