"""FAST test-schedule optimization (Sec. IV of the paper).

* :mod:`repro.scheduling.discretize` — observation-time discretization
  (Sec. IV-A, Fig. 5),
* :mod:`repro.scheduling.setcover` — set-covering solvers: greedy heuristic,
  exact branch-and-bound, and 0-1 ILP via scipy/HiGHS (the stand-in for the
  paper's commercial solver),
* :mod:`repro.scheduling.schedule` — the two-step optimization: minimal
  frequency selection, then per-frequency pattern × monitor-configuration
  selection (Sec. IV-B/C),
* :mod:`repro.scheduling.baselines` — conventional FAST (no monitors) and
  the greedy heuristic of [17] for Table II comparisons.
"""

from repro.scheduling.discretize import (
    CandidateSet,
    PeriodCandidate,
    discretize_candidate_set,
    discretize_observation_times,
)
from repro.scheduling.schedule import ScheduleEntry, ScheduleResult, optimize_schedule
from repro.scheduling.setcover import (
    CoverProblem,
    branch_and_bound_cover,
    greedy_cover,
    ilp_cover,
    presolve_cover,
)

__all__ = [
    "CandidateSet",
    "PeriodCandidate",
    "discretize_candidate_set",
    "discretize_observation_times",
    "ScheduleEntry",
    "ScheduleResult",
    "optimize_schedule",
    "CoverProblem",
    "branch_and_bound_cover",
    "greedy_cover",
    "ilp_cover",
    "presolve_cover",
]
