"""Comparison baselines for the schedule optimization (Table II columns).

* ``conv.`` — conventional FAST without monitors: only standard flip-flops
  observe responses, so the schedulable fault set and the candidate
  frequencies come from the FF detection ranges alone.
* ``heur.`` — the greedy heuristic selection in the spirit of [17]: same
  monitor-extended detection data as the proposed method, but both covering
  steps use the greedy heuristic instead of the exact ILP.
* ``prop.`` — the proposed method: monitors + two-step ILP
  (:func:`repro.scheduling.schedule.optimize_schedule` with ``solver="ilp"``).
"""

from __future__ import annotations

from repro.faults.classify import FaultClassification
from repro.faults.detection import DetectionData
from repro.monitors.monitor import MonitorConfigSet
from repro.scheduling.schedule import ScheduleResult, optimize_schedule
from repro.scheduling.setcover import DEFAULT_TIME_LIMIT_S
from repro.timing.clock import ClockSpec
from repro.utils.profiling import StageTimer


def conventional_targets(classification: FaultClassification) -> frozenset[int]:
    """Faults conventional FAST must schedule: FF-detectable in the window
    but not already caught at-speed."""
    return frozenset(classification.conv_detected - classification.at_speed)


def conventional_schedule(
    data: DetectionData,
    classification: FaultClassification,
    clock: ClockSpec,
    *,
    solver: str = "ilp",
    time_limit: float = DEFAULT_TIME_LIMIT_S,
    jobs: int = 1,
    timer: StageTimer | None = None,
) -> ScheduleResult:
    """Schedule for conventional FAST (no monitors, Table II col. 2)."""
    return optimize_schedule(
        data, conventional_targets(classification), clock, configs=None,
        solver=solver, time_limit=time_limit,  # type: ignore[arg-type]
        jobs=jobs, timer=timer)


def heuristic_schedule(
    data: DetectionData,
    classification: FaultClassification,
    clock: ClockSpec,
    configs: MonitorConfigSet,
    *,
    coverage: float = 1.0,
    jobs: int = 1,
    timer: StageTimer | None = None,
) -> ScheduleResult:
    """Greedy monitor-aware schedule (the [17]-style heuristic, col. 3)."""
    return optimize_schedule(
        data, classification.target, clock, configs,
        coverage=coverage, solver="greedy", jobs=jobs, timer=timer)


def proposed_schedule(
    data: DetectionData,
    classification: FaultClassification,
    clock: ClockSpec,
    configs: MonitorConfigSet,
    *,
    coverage: float = 1.0,
    time_limit: float = DEFAULT_TIME_LIMIT_S,
    jobs: int = 1,
    timer: StageTimer | None = None,
) -> ScheduleResult:
    """The paper's ILP schedule with programmable monitors (col. 4)."""
    return optimize_schedule(
        data, classification.target, clock, configs,
        coverage=coverage, solver="ilp", time_limit=time_limit,
        jobs=jobs, timer=timer)
