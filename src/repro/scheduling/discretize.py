"""Observation-time discretization (Sec. IV-A, Fig. 5).

The boundaries of all fault detection intervals partition the observable
window ``[t_min, t_nom]`` into segments within which the set of detected
faults is constant.  One candidate test clock period is taken at the
*midpoint* of each useful segment — midpoints are robust against small
process variations, which is why the paper selects them.

Two pruning levels:

* adjacent segments with identical fault sets are always merged,
* with ``prune_dominated=True``, segments whose fault set is a subset of
  another candidate's are removed — this preserves set-cover optimality
  while shrinking the ILP (the paper's "representative intervals" keep only
  the locally richest segments; dominance pruning is the lossless version).

Implementation: a sweep over the sorted interval endpoints fills one packed
bit matrix (rows = segments, one bit per target fault, numpy ``uint64``
words).  Each detection interval covers a *contiguous* run of segment
midpoints, located with two ``searchsorted`` calls and OR-ed into the
matrix as a slice — no per-(fault, segment) membership tests.  Merging and
dominance pruning are word-wise vector operations on the same matrix.  The
seed per-segment ``frozenset`` construction is retained verbatim in
:mod:`repro.scheduling.reference` for golden-equivalence testing and as the
before-side of the persistent ``BENCH_schedule.json`` perf baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.utils.bitset import (
    dominated_rows,
    matrix_bits,
    matrix_to_masks,
    popcount,
    zeros,
)
from repro.utils.intervals import EPS, Interval, IntervalSet, segment_points


@dataclass(frozen=True)
class PeriodCandidate:
    """One candidate FAST clock period.

    ``time`` is the segment midpoint; ``faults`` the indices of target
    faults whose detection range covers the whole segment.
    """

    time: float
    segment: Interval
    faults: frozenset[Hashable]

    @property
    def fault_count(self) -> int:
        return len(self.faults)


@dataclass(frozen=True)
class CandidateSet:
    """Discretization output in both representations.

    ``candidates[r]`` materializes row ``r`` of ``matrix`` as a frozenset;
    ``fault_ids[b]`` is the fault carried by bit ``b``.  The matrix/mask
    views let the set-cover step consume the packed rows directly instead
    of re-hashing frozensets.
    """

    candidates: tuple[PeriodCandidate, ...]
    matrix: np.ndarray          # (n_candidates, n_words) uint64
    fault_ids: tuple[Hashable, ...]

    @property
    def masks(self) -> list[int]:
        """Python int bitmask per candidate (bit b = ``fault_ids[b]``)."""
        return matrix_to_masks(self.matrix)


def _pick_time(segment: Interval, point: str) -> float:
    """Observation time inside a segment according to the policy.

    ``"mid"`` is the paper's robust choice; ``"lo"``/``"hi"`` sit a sliver
    inside the segment edges and exist for the robustness ablation that
    demonstrates *why* midpoints are the right call under variation.
    """
    margin = min(1e-6, 0.01 * segment.length)
    if point == "mid":
        return segment.midpoint
    if point == "lo":
        return segment.lo + margin
    if point == "hi":
        return segment.hi - margin
    raise ValueError(f"unknown candidate point policy {point!r}")


def discretize_candidate_set(
    fault_ranges: Mapping[Hashable, IntervalSet],
    t_min: float,
    t_nom: float,
    *,
    prune_dominated: bool = True,
    point: str = "mid",
) -> CandidateSet:
    """Sweep-line discretization returning the packed candidate matrix.

    Semantics match :func:`discretize_observation_times` (which wraps this
    function) — same segments, same merge rule, same dominance pruning and
    tie-breaking — but the fault sets are built as bit-matrix rows.
    """
    fault_ids = tuple(sorted(fault_ranges, key=repr))
    boundaries: list[float] = []
    for rng in fault_ranges.values():
        boundaries.extend(rng.boundaries())
    pts = segment_points(boundaries, t_min, t_nom)
    n_seg = max(0, len(pts) - 1)
    if n_seg == 0 or not fault_ids:
        return CandidateSet((), zeros(0, len(fault_ids)), fault_ids)

    lows = np.asarray(pts[:-1])
    highs = np.asarray(pts[1:])
    mids = 0.5 * (lows + highs)

    # Guard (robustness): duplicate interval endpoints can only produce
    # zero-length segments when the whole window degenerates (segment_points
    # guarantees > EPS gaps otherwise); such segments must never become
    # candidates, so they are masked out of the sweep explicitly rather
    # than relying on downstream filtering.
    degenerate = (highs - lows) <= EPS

    # Fill the occupancy matrix: interval [lo, hi] of fault bit b covers
    # exactly the segments whose midpoint lies in [lo - EPS, hi + EPS] —
    # identical to the seed's IntervalSet.contains(mid) test — which is a
    # contiguous slice of the sorted midpoint array.
    matrix = zeros(n_seg, len(fault_ids))
    for b, fid in enumerate(fault_ids):
        word, bit = b >> 6, np.uint64(1 << (b & 63))
        for iv in fault_ranges[fid]:
            i0 = int(np.searchsorted(mids, iv.lo - EPS, side="left"))
            i1 = int(np.searchsorted(mids, iv.hi + EPS, side="right"))
            if i1 > i0:
                matrix[i0:i1, word] |= bit
    if degenerate.any():
        matrix[degenerate] = 0

    nonempty = matrix.any(axis=1)
    if not nonempty.any():
        return CandidateSet((), zeros(0, len(fault_ids)), fault_ids)

    # Merge maximal runs of *adjacent* non-empty segments with identical
    # fault sets.  Segments are contiguous by construction, so a run breaks
    # exactly where the row changes or an empty segment intervenes — the
    # seed's "never merge across a gap" rule.
    same_as_prev = np.zeros(n_seg, dtype=bool)
    if n_seg > 1:
        same_as_prev[1:] = (np.all(matrix[1:] == matrix[:-1], axis=1)
                            & nonempty[1:] & nonempty[:-1])

    run_lo: list[float] = []
    run_hi: list[float] = []
    run_row: list[int] = []
    for i in np.flatnonzero(nonempty):
        if run_row and same_as_prev[i]:
            run_hi[-1] = float(highs[i])
        else:
            run_lo.append(float(lows[i]))
            run_hi.append(float(highs[i]))
            run_row.append(int(i))
    merged = matrix[run_row]
    segments = [Interval(a, b) for a, b in zip(run_lo, run_hi)]

    keep = np.arange(len(segments))
    if prune_dominated:
        keep = np.array(_prune_dominated_rows(
            merged, [s.midpoint for s in segments]), dtype=np.int64)
        merged = merged[keep]
        segments = [segments[i] for i in keep]

    bits_per_row = matrix_bits(merged)
    candidates = tuple(
        PeriodCandidate(
            time=_pick_time(seg, point), segment=seg,
            faults=frozenset(fault_ids[b] for b in bits))
        for seg, bits in zip(segments, bits_per_row))
    return CandidateSet(candidates, merged, fault_ids)


def discretize_observation_times(
    fault_ranges: Mapping[Hashable, IntervalSet],
    t_min: float,
    t_nom: float,
    *,
    prune_dominated: bool = True,
    point: str = "mid",
) -> list[PeriodCandidate]:
    """Build candidate periods from per-fault observable detection ranges.

    ``fault_ranges`` maps fault index → detection range already clipped to
    the observable window.  ``point`` selects where inside each segment the
    candidate time sits (``"mid"``, the default and the paper's choice, or
    ``"lo"``/``"hi"`` for the robustness ablation).  Returns candidates
    sorted by ascending time.
    """
    return list(discretize_candidate_set(
        fault_ranges, t_min, t_nom, prune_dominated=prune_dominated,
        point=point).candidates)


def _prune_dominated_rows(matrix: np.ndarray,
                          times: list[float]) -> list[int]:
    """Row indices surviving dominance pruning, ascending.

    Seed tie-breaking preserved: rows are scanned by (-popcount, -time) —
    stable sort — and a row is dropped when its bits are a subset of an
    already-kept row's (duplicates included), keeping the later
    (slower-clock) candidate on ties so schedules prefer frequencies closer
    to nominal, which are cheaper to generate.
    """
    counts = popcount(matrix)
    order = sorted(range(matrix.shape[0]),
                   key=lambda i: (-int(counts[i]), -times[i]))
    return sorted(dominated_rows(matrix, order))
