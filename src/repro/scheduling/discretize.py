"""Observation-time discretization (Sec. IV-A, Fig. 5).

The boundaries of all fault detection intervals partition the observable
window ``[t_min, t_nom]`` into segments within which the set of detected
faults is constant.  One candidate test clock period is taken at the
*midpoint* of each useful segment — midpoints are robust against small
process variations, which is why the paper selects them.

Two pruning levels:

* adjacent segments with identical fault sets are always merged,
* with ``prune_dominated=True``, segments whose fault set is a subset of
  another candidate's are removed — this preserves set-cover optimality
  while shrinking the ILP (the paper's "representative intervals" keep only
  the locally richest segments; dominance pruning is the lossless version).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.utils.intervals import Interval, IntervalSet, segment_axis


@dataclass(frozen=True)
class PeriodCandidate:
    """One candidate FAST clock period.

    ``time`` is the segment midpoint; ``faults`` the indices of target
    faults whose detection range covers the whole segment.
    """

    time: float
    segment: Interval
    faults: frozenset[int]

    @property
    def fault_count(self) -> int:
        return len(self.faults)


def _pick_time(segment: Interval, point: str) -> float:
    """Observation time inside a segment according to the policy.

    ``"mid"`` is the paper's robust choice; ``"lo"``/``"hi"`` sit a sliver
    inside the segment edges and exist for the robustness ablation that
    demonstrates *why* midpoints are the right call under variation.
    """
    margin = min(1e-6, 0.01 * segment.length)
    if point == "mid":
        return segment.midpoint
    if point == "lo":
        return segment.lo + margin
    if point == "hi":
        return segment.hi - margin
    raise ValueError(f"unknown candidate point policy {point!r}")


def discretize_observation_times(
    fault_ranges: Mapping[int, IntervalSet],
    t_min: float,
    t_nom: float,
    *,
    prune_dominated: bool = True,
    point: str = "mid",
) -> list[PeriodCandidate]:
    """Build candidate periods from per-fault observable detection ranges.

    ``fault_ranges`` maps fault index → detection range already clipped to
    the observable window.  ``point`` selects where inside each segment the
    candidate time sits (``"mid"``, the default and the paper's choice, or
    ``"lo"``/``"hi"`` for the robustness ablation).  Returns candidates
    sorted by ascending time.
    """
    boundaries: list[float] = []
    for rng in fault_ranges.values():
        boundaries.extend(rng.boundaries())
    segments = segment_axis(boundaries, t_min, t_nom)

    candidates: list[PeriodCandidate] = []
    for seg in segments:
        mid = seg.midpoint
        detected = frozenset(
            fi for fi, rng in fault_ranges.items() if rng.contains(mid))
        if not detected:
            continue
        if (candidates and candidates[-1].faults == detected
                and abs(candidates[-1].segment.hi - seg.lo) <= 1e-9):
            # Merge *contiguous* segments detecting the identical fault set
            # (never across a gap whose own fault set was empty).
            prev = candidates.pop()
            merged = Interval(prev.segment.lo, seg.hi)
            candidates.append(PeriodCandidate(
                time=_pick_time(merged, point), segment=merged,
                faults=detected))
        else:
            candidates.append(PeriodCandidate(
                time=_pick_time(seg, point), segment=seg, faults=detected))

    if prune_dominated:
        candidates = _prune_dominated(candidates)
    return candidates


def _prune_dominated(candidates: list[PeriodCandidate]) -> list[PeriodCandidate]:
    """Drop candidates whose fault set is a subset of another's.

    Keeps the later (slower-clock) candidate on ties so schedules prefer
    frequencies closer to nominal, which are cheaper to generate.
    """
    keep: list[PeriodCandidate] = []
    by_size = sorted(enumerate(candidates),
                     key=lambda iv: (-iv[1].fault_count, -iv[1].time))
    kept_sets: list[frozenset[int]] = []
    kept_idx: list[int] = []
    for idx, cand in by_size:
        if any(cand.faults <= s for s in kept_sets):
            continue
        kept_sets.append(cand.faults)
        kept_idx.append(idx)
    kept_idx.sort()
    keep = [candidates[i] for i in kept_idx]
    return keep
