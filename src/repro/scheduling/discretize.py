"""Observation-time discretization (Sec. IV-A, Fig. 5).

The boundaries of all fault detection intervals partition the observable
window ``[t_min, t_nom]`` into segments within which the set of detected
faults is constant.  One candidate test clock period is taken at the
*midpoint* of each useful segment — midpoints are robust against small
process variations, which is why the paper selects them.

Two pruning levels:

* adjacent segments with identical fault sets are always merged,
* with ``prune_dominated=True``, segments whose fault set is a subset of
  another candidate's are removed — this preserves set-cover optimality
  while shrinking the ILP (the paper's "representative intervals" keep only
  the locally richest segments; dominance pruning is the lossless version).

Implementation: a sweep over the sorted interval endpoints fills one packed
bit matrix (rows = segments, one bit per target fault, numpy ``uint64``
words).  Each detection interval covers a *contiguous* run of segment
midpoints, located with two ``searchsorted`` calls and OR-ed into the
matrix as a slice — no per-(fault, segment) membership tests.  Merging and
dominance pruning are word-wise vector operations on the same matrix.  The
seed per-segment ``frozenset`` construction is retained verbatim in
:mod:`repro.scheduling.reference` for golden-equivalence testing and as the
before-side of the persistent ``BENCH_schedule.json`` perf baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, MutableMapping

import numpy as np

from repro.utils.bitset import (
    dominated_rows,
    matrix_bits,
    matrix_to_masks,
    popcount,
    zeros,
)
from repro.utils.intervals import EPS, Interval, IntervalSet, segment_points


@dataclass(frozen=True)
class PeriodCandidate:
    """One candidate FAST clock period.

    ``time`` is the segment midpoint; ``faults`` the indices of target
    faults whose detection range covers the whole segment.
    """

    time: float
    segment: Interval
    faults: frozenset[Hashable]

    @property
    def fault_count(self) -> int:
        return len(self.faults)


@dataclass(frozen=True)
class CandidateSet:
    """Discretization output in both representations.

    ``candidates[r]`` materializes row ``r`` of ``matrix`` as a frozenset;
    ``fault_ids[b]`` is the fault carried by bit ``b``.  The matrix/mask
    views let the set-cover step consume the packed rows directly instead
    of re-hashing frozensets.
    """

    candidates: tuple[PeriodCandidate, ...]
    matrix: np.ndarray          # (n_candidates, n_words) uint64
    fault_ids: tuple[Hashable, ...]

    @property
    def masks(self) -> list[int]:
        """Python int bitmask per candidate (bit b = ``fault_ids[b]``)."""
        return matrix_to_masks(self.matrix)


def _pick_time(segment: Interval, point: str) -> float:
    """Observation time inside a segment according to the policy.

    ``"mid"`` is the paper's robust choice; ``"lo"``/``"hi"`` sit a sliver
    inside the segment edges and exist for the robustness ablation that
    demonstrates *why* midpoints are the right call under variation.
    """
    margin = min(1e-6, 0.01 * segment.length)
    if point == "mid":
        return segment.midpoint
    if point == "lo":
        return segment.lo + margin
    if point == "hi":
        return segment.hi - margin
    raise ValueError(f"unknown candidate point policy {point!r}")


@dataclass(frozen=True)
class SweepGrid:
    """Segment grid of one discretization sweep.

    ``pts`` are the sorted segment boundary points inside the observable
    window; ``lows``/``highs``/``mids`` the per-segment edges and
    midpoints; ``degenerate`` flags zero-length segments that must never
    become candidates.  The rescheduling engine caches the grid together
    with the raw occupancy matrix so a degradation delta can patch only
    the dirty faults' rows (see :mod:`repro.scheduling.resched`).
    """

    pts: np.ndarray
    lows: np.ndarray
    highs: np.ndarray
    mids: np.ndarray
    degenerate: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.lows.shape[0])


def sweep_grid(boundaries: list[float], t_min: float,
               t_nom: float) -> SweepGrid:
    """Build the segment grid from all interval boundary points."""
    pts = np.asarray(segment_points(boundaries, t_min, t_nom))
    if pts.shape[0] < 2:
        empty = np.empty(0)
        return SweepGrid(pts=pts, lows=empty, highs=empty, mids=empty,
                         degenerate=np.empty(0, dtype=bool))
    lows = pts[:-1]
    highs = pts[1:]
    # Guard (robustness): duplicate interval endpoints can only produce
    # zero-length segments when the whole window degenerates (segment_points
    # guarantees > EPS gaps otherwise); such segments must never become
    # candidates, so they are masked out of the sweep explicitly rather
    # than relying on downstream filtering.
    return SweepGrid(pts=pts, lows=lows, highs=highs,
                     mids=0.5 * (lows + highs),
                     degenerate=(highs - lows) <= EPS)


def fill_fault_row(matrix: np.ndarray, grid: SweepGrid, b: int,
                   rng: IntervalSet) -> None:
    """OR fault bit ``b``'s occupancy into ``matrix`` (in place).

    Interval [lo, hi] covers exactly the segments whose midpoint lies in
    [lo - EPS, hi + EPS] — identical to the seed's
    ``IntervalSet.contains(mid)`` test — which is a contiguous slice of
    the sorted midpoint array.
    """
    word, bit = b >> 6, np.uint64(1 << (b & 63))
    for iv in rng:
        i0 = int(np.searchsorted(grid.mids, iv.lo - EPS, side="left"))
        i1 = int(np.searchsorted(grid.mids, iv.hi + EPS, side="right"))
        if i1 > i0:
            matrix[i0:i1, word] |= bit


def finalize_candidates(matrix: np.ndarray, grid: SweepGrid,
                        fault_ids: tuple[Hashable, ...], *,
                        prune_dominated: bool = True,
                        point: str = "mid",
                        faults_cache: "MutableMapping | None" = None,
                        candidate_cache: "MutableMapping | None" = None
                        ) -> CandidateSet:
    """Merge, prune and materialize candidates from a filled occupancy
    matrix (``matrix`` must already be restricted to non-degenerate
    segments — callers apply ``grid.degenerate``).  Shared tail of the
    cold sweep and the rescheduling engine's delta patch path.

    ``faults_cache`` (optional, e.g. an ``LruCache``) memoizes the
    per-row frozenset materialization keyed by the packed row bytes:
    across incremental re-solves most candidate rows recur unchanged, so
    their (immutable, safely shared) fault sets need not be rebuilt.
    ``candidate_cache`` memoizes whole :class:`PeriodCandidate` objects
    by ``(row bytes, segment lo, segment hi)`` — callers must keep one
    cache per ``point`` policy.
    """
    n_seg = grid.n_segments
    lows, highs = grid.lows, grid.highs
    nonempty = matrix.any(axis=1)
    if not nonempty.any():
        return CandidateSet((), zeros(0, len(fault_ids)), fault_ids)

    # Merge maximal runs of *adjacent* non-empty segments with identical
    # fault sets.  Segments are contiguous by construction, so a run breaks
    # exactly where the row changes or an empty segment intervenes — the
    # seed's "never merge across a gap" rule.
    same_as_prev = np.zeros(n_seg, dtype=bool)
    if n_seg > 1:
        same_as_prev[1:] = (np.all(matrix[1:] == matrix[:-1], axis=1)
                            & nonempty[1:] & nonempty[:-1])

    # A run starts at every non-empty segment not linked to its
    # predecessor and ends just before the next start (runs partition the
    # non-empty indices in order; empty gaps break the linkage above).
    idx = np.flatnonzero(nonempty)
    is_start = ~same_as_prev[idx]
    starts = idx[is_start]
    end_sel = np.roll(is_start, -1)
    end_sel[-1] = True
    ends = idx[end_sel]
    merged = matrix[starts]
    seg_lo = lows[starts]
    seg_hi = highs[ends]

    if prune_dominated:
        keep = np.array(_prune_dominated_rows(
            merged, 0.5 * (seg_lo + seg_hi)), dtype=np.int64)
        merged = merged[keep]
        seg_lo = seg_lo[keep]
        seg_hi = seg_hi[keep]
    if candidate_cache is not None:
        # Warm path: whole PeriodCandidate objects (frozen, safely shared
        # across CandidateSets) are memoized by row bytes + segment edges;
        # across incremental re-solves almost every candidate recurs.
        out = []
        los, his = seg_lo.tolist(), seg_hi.tolist()
        for r in range(merged.shape[0]):
            rb = merged[r].tobytes()
            key = (rb, los[r], his[r])
            cand = candidate_cache.get(key)
            if cand is None:
                fs = None
                if faults_cache is not None:
                    fs = faults_cache.get(rb)
                if fs is None:
                    fs = frozenset(
                        fault_ids[b]
                        for b in matrix_bits(merged[r:r + 1])[0])
                    if faults_cache is not None:
                        faults_cache[rb] = fs
                seg = Interval(los[r], his[r])
                cand = PeriodCandidate(time=_pick_time(seg, point),
                                       segment=seg, faults=fs)
                candidate_cache[key] = cand
            out.append(cand)
        return CandidateSet(tuple(out), merged, fault_ids)

    segments = [Interval(a, b)
                for a, b in zip(seg_lo.tolist(), seg_hi.tolist())]

    if faults_cache is None:
        bits_per_row = matrix_bits(merged)
        fault_sets = [frozenset(fault_ids[b] for b in bits)
                      for bits in bits_per_row]
    else:
        fault_sets = []
        for r in range(merged.shape[0]):
            key = merged[r].tobytes()
            fs = faults_cache.get(key)
            if fs is None:
                fs = frozenset(fault_ids[b]
                               for b in matrix_bits(merged[r:r + 1])[0])
                faults_cache[key] = fs
            fault_sets.append(fs)
    candidates = tuple(
        PeriodCandidate(time=_pick_time(seg, point), segment=seg, faults=fs)
        for seg, fs in zip(segments, fault_sets))
    return CandidateSet(candidates, merged, fault_ids)


def discretize_candidate_set(
    fault_ranges: Mapping[Hashable, IntervalSet],
    t_min: float,
    t_nom: float,
    *,
    prune_dominated: bool = True,
    point: str = "mid",
) -> CandidateSet:
    """Sweep-line discretization returning the packed candidate matrix.

    Semantics match :func:`discretize_observation_times` (which wraps this
    function) — same segments, same merge rule, same dominance pruning and
    tie-breaking — but the fault sets are built as bit-matrix rows.
    Composed from :func:`sweep_grid` / :func:`fill_fault_row` /
    :func:`finalize_candidates` so the rescheduling engine can rebuild only
    the stages a degradation delta invalidates.
    """
    fault_ids = tuple(sorted(fault_ranges, key=repr))
    boundaries: list[float] = []
    for rng in fault_ranges.values():
        boundaries.extend(rng.boundaries())
    grid = sweep_grid(boundaries, t_min, t_nom)
    if grid.n_segments == 0 or not fault_ids:
        return CandidateSet((), zeros(0, len(fault_ids)), fault_ids)

    matrix = zeros(grid.n_segments, len(fault_ids))
    for b, fid in enumerate(fault_ids):
        fill_fault_row(matrix, grid, b, fault_ranges[fid])
    if grid.degenerate.any():
        matrix[grid.degenerate] = 0
    return finalize_candidates(matrix, grid, fault_ids,
                               prune_dominated=prune_dominated, point=point)


def discretize_observation_times(
    fault_ranges: Mapping[Hashable, IntervalSet],
    t_min: float,
    t_nom: float,
    *,
    prune_dominated: bool = True,
    point: str = "mid",
) -> list[PeriodCandidate]:
    """Build candidate periods from per-fault observable detection ranges.

    ``fault_ranges`` maps fault index → detection range already clipped to
    the observable window.  ``point`` selects where inside each segment the
    candidate time sits (``"mid"``, the default and the paper's choice, or
    ``"lo"``/``"hi"`` for the robustness ablation).  Returns candidates
    sorted by ascending time.
    """
    return list(discretize_candidate_set(
        fault_ranges, t_min, t_nom, prune_dominated=prune_dominated,
        point=point).candidates)


def _prune_dominated_rows(matrix: np.ndarray,
                          times: np.ndarray) -> list[int]:
    """Row indices surviving dominance pruning, ascending.

    Seed tie-breaking preserved: rows are scanned by (-popcount, -time) —
    stable sort — and a row is dropped when its bits are a subset of an
    already-kept row's (duplicates included), keeping the later
    (slower-clock) candidate on ties so schedules prefer frequencies closer
    to nominal, which are cheaper to generate.
    """
    counts = popcount(matrix)
    # lexsort is stable with the last key primary — identical order to
    # sorted(key=lambda i: (-counts[i], -times[i])).
    order = np.lexsort((-np.asarray(times), -counts)).tolist()
    return sorted(dominated_rows(matrix, order))
