"""Schedule serialization and tester-program export.

A :class:`~repro.scheduling.schedule.ScheduleResult` is the flow's final
product; this module turns it into artifacts a test engineer can consume:

* :func:`schedule_to_dict` / :func:`schedule_from_dict` — lossless JSON-able
  round trip (periods, entries, targets, method),
* :func:`write_tester_program` — a human-readable program listing: one
  block per FAST frequency (with the PLL re-lock step made explicit),
  inside it one line per pattern application with the monitor
  configuration to shift in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.monitors.monitor import MonitorConfigSet
from repro.scheduling.schedule import FF_ONLY_CONFIG, ScheduleEntry, ScheduleResult

#: Format identifier embedded in exported dictionaries.
FORMAT = "repro-schedule/1"


def schedule_to_dict(schedule: ScheduleResult) -> dict[str, Any]:
    """Lossless dictionary representation (JSON compatible)."""
    return {
        "format": FORMAT,
        "method": schedule.method,
        "num_candidates": schedule.num_candidates,
        "periods": list(schedule.periods),
        "targets": sorted(schedule.targets),
        "covered": sorted(schedule.covered),
        "entries": [
            {"period": e.period, "pattern": e.pattern, "config": e.config}
            for e in schedule.entries
        ],
        "per_period_faults": {
            repr(period): sorted(faults)
            for period, faults in schedule.per_period_faults.items()
        },
    }


def schedule_from_dict(data: dict[str, Any]) -> ScheduleResult:
    """Inverse of :func:`schedule_to_dict`."""
    if data.get("format") != FORMAT:
        raise ValueError(f"unsupported schedule format {data.get('format')!r}")
    return ScheduleResult(
        periods=[float(p) for p in data["periods"]],
        entries=[ScheduleEntry(period=float(e["period"]),
                               pattern=int(e["pattern"]),
                               config=int(e["config"]))
                 for e in data["entries"]],
        targets=frozenset(int(f) for f in data["targets"]),
        covered=frozenset(int(f) for f in data["covered"]),
        method=str(data["method"]),
        num_candidates=int(data["num_candidates"]),
        per_period_faults={
            float(k): frozenset(v)  # repr(float) parses back losslessly
            for k, v in data.get("per_period_faults", {}).items()
        },
    )


def save_schedule(schedule: ScheduleResult, path: str | Path) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: str | Path) -> ScheduleResult:
    return schedule_from_dict(json.loads(Path(path).read_text()))


def write_tester_program(schedule: ScheduleResult,
                         configs: MonitorConfigSet | None = None,
                         *, circuit_name: str = "",
                         t_nom: float | None = None) -> str:
    """Render the schedule as a frequency-grouped application listing."""
    lines = [f"# FAST test program{' for ' + circuit_name if circuit_name else ''}",
             f"# method: {schedule.method}; "
             f"{schedule.num_frequencies} frequencies, "
             f"{schedule.num_entries} applications"]
    for period in schedule.periods:
        entries = schedule.entries_at(period)
        ratio = f" ({t_nom / period:.2f} x f_nom)" if t_nom else ""
        lines.append("")
        lines.append(f"SET_CLOCK period={period:.3f}ps{ratio}  "
                     f"# PLL re-lock")
        for e in sorted(entries, key=lambda x: (x.config, x.pattern)):
            if e.config == FF_ONLY_CONFIG:
                cfg = "monitors=off"
            elif configs is not None:
                cfg = f"monitor_delay={configs[e.config]:.3f}ps (cfg {e.config})"
            else:
                cfg = f"cfg {e.config}"
            lines.append(f"  APPLY pattern={e.pattern:<5d} {cfg}")
    return "\n".join(lines) + "\n"
