"""Seed (pre-bitset) scheduling pipeline, retained verbatim.

This module preserves the PR-1-era scheduler — per-segment ``frozenset``
discretization, frozenset dominance pruning, set-based greedy covering and
the unreduced ILP — exactly as it shipped, for two purposes:

* **golden equivalence**: ``tests/test_schedule_golden.py`` asserts the
  bitset pipeline (:mod:`repro.scheduling.discretize`,
  :mod:`repro.scheduling.schedule`) selects identical period sets and
  entry counts on s27 / c17 / synthetic circuits,
* **perf baselining**: ``benchmarks/test_bench_schedule.py`` times this
  implementation as the before-side of ``BENCH_schedule.json``, mirroring
  the ``engine="reference"`` convention of the fault-simulation engine.

Do not optimize this module; it is the measurement yardstick.
"""

from __future__ import annotations

from typing import Mapping

from repro.faults.detection import DetectionData
from repro.monitors.monitor import MonitorConfigSet
from repro.monitors.shifting import observable_range
from repro.scheduling.discretize import PeriodCandidate, _pick_time
from repro.scheduling.schedule import (
    FF_ONLY_CONFIG,
    ScheduleEntry,
    ScheduleResult,
    Solver,
    _pattern_config_subsets,
)
from repro.scheduling.setcover import (
    DEFAULT_TIME_LIMIT_S,
    CoverProblem,
    ilp_cover,
)
from repro.timing.clock import ClockSpec
from repro.utils.intervals import Interval, IntervalSet, segment_axis


def discretize_observation_times_reference(
    fault_ranges: Mapping[int, IntervalSet],
    t_min: float,
    t_nom: float,
    *,
    prune_dominated: bool = True,
    point: str = "mid",
) -> list[PeriodCandidate]:
    """Seed discretization: one frozenset membership pass per segment."""
    boundaries: list[float] = []
    for rng in fault_ranges.values():
        boundaries.extend(rng.boundaries())
    segments = segment_axis(boundaries, t_min, t_nom)

    candidates: list[PeriodCandidate] = []
    for seg in segments:
        mid = seg.midpoint
        detected = frozenset(
            fi for fi, rng in fault_ranges.items() if rng.contains(mid))
        if not detected:
            continue
        if (candidates and candidates[-1].faults == detected
                and abs(candidates[-1].segment.hi - seg.lo) <= 1e-9):
            # Merge *contiguous* segments detecting the identical fault set
            # (never across a gap whose own fault set was empty).
            prev = candidates.pop()
            merged = Interval(prev.segment.lo, seg.hi)
            candidates.append(PeriodCandidate(
                time=_pick_time(merged, point), segment=merged,
                faults=detected))
        else:
            candidates.append(PeriodCandidate(
                time=_pick_time(seg, point), segment=seg, faults=detected))

    if prune_dominated:
        candidates = _prune_dominated_reference(candidates)
    return candidates


def _prune_dominated_reference(
        candidates: list[PeriodCandidate]) -> list[PeriodCandidate]:
    """Seed dominance pruning: pairwise frozenset subset tests."""
    by_size = sorted(enumerate(candidates),
                     key=lambda iv: (-iv[1].fault_count, -iv[1].time))
    kept_sets: list[frozenset[int]] = []
    kept_idx: list[int] = []
    for idx, cand in by_size:
        if any(cand.faults <= s for s in kept_sets):
            continue
        kept_sets.append(cand.faults)
        kept_idx.append(idx)
    kept_idx.sort()
    return [candidates[i] for i in kept_idx]


def greedy_cover_reference(problem: CoverProblem, *,
                           coverage: float = 1.0) -> list[int]:
    """Seed greedy heuristic on Python sets (the [17]-style baseline)."""
    need = problem.required_count(coverage)
    uncovered = set(problem.universe)
    chosen: list[int] = []
    remaining = [(j, set(s) & uncovered)
                 for j, s in enumerate(problem.subsets)]
    covered_count = 0
    while covered_count < need:
        j_best, gain_best = -1, 0
        for j, s in remaining:
            gain = len(s)
            if gain > gain_best:
                j_best, gain_best = j, gain
        if j_best < 0:
            raise RuntimeError("greedy cover stalled before reaching coverage")
        chosen.append(j_best)
        newly = [s for j, s in remaining if j == j_best][0]
        covered_count += len(newly)
        uncovered -= newly
        remaining = [(j, s & uncovered) for j, s in remaining
                     if j != j_best and s & uncovered]
    chosen.sort()
    return chosen


def _solve_reference(problem: CoverProblem, solver: Solver, coverage: float,
                     time_limit: float) -> list[int]:
    if solver == "ilp":
        return ilp_cover(problem, coverage=coverage, time_limit=time_limit,
                         presolve=False)
    if solver == "greedy":
        return greedy_cover_reference(problem, coverage=coverage)
    raise ValueError(f"unknown solver {solver!r}")


def target_ranges_reference(data: DetectionData,
                            targets: frozenset[int] | set[int],
                            clock: ClockSpec,
                            configs: MonitorConfigSet | None
                            ) -> dict[int, IntervalSet]:
    """Seed observable-range construction (no memoization)."""
    config_delays = tuple(configs) if configs is not None else ()
    out: dict[int, IntervalSet] = {}
    for fi in targets:
        rng = observable_range(data.union_all(fi), data.union_mon(fi),
                               config_delays, clock.t_min, clock.t_nom)
        if not rng.is_empty:
            out[fi] = rng
    return out


def order_periods_fault_dropping_reference(
    chosen: list[PeriodCandidate],
    covered: frozenset[int],
) -> list[tuple[PeriodCandidate, frozenset[int]]]:
    """Seed fault dropping: re-intersects every pool candidate per round."""
    remaining = set(covered)
    pool = list(chosen)
    ordered: list[tuple[PeriodCandidate, frozenset[int]]] = []
    while pool and remaining:
        best = max(pool, key=lambda c: (len(c.faults & remaining), c.time))
        take = frozenset(best.faults & remaining)
        pool.remove(best)
        if not take:
            continue
        ordered.append((best, take))
        remaining -= take
    return ordered


def optimize_schedule_reference(
    data: DetectionData,
    targets: set[int] | frozenset[int],
    clock: ClockSpec,
    configs: MonitorConfigSet | None,
    *,
    coverage: float = 1.0,
    solver: Solver = "ilp",
    time_limit: float = DEFAULT_TIME_LIMIT_S,
    prune_dominated: bool = True,
    candidate_point: str = "mid",
) -> ScheduleResult:
    """Seed two-step optimization (Sec. IV-B/C), frozensets end to end."""
    targets = frozenset(targets)
    ranges = target_ranges_reference(data, targets, clock, configs)
    if not ranges:
        return ScheduleResult(periods=[], entries=[], targets=targets,
                              covered=frozenset(), method=solver,
                              num_candidates=0)

    candidates = discretize_observation_times_reference(
        ranges, clock.t_min, clock.t_nom, prune_dominated=prune_dominated,
        point=candidate_point)

    # Step 1: minimal frequency selection.
    problem = CoverProblem(subsets=[c.faults for c in candidates])
    chosen_idx = _solve_reference(problem, solver, coverage, time_limit)
    chosen = [candidates[j] for j in chosen_idx]
    covered = (frozenset().union(*(c.faults for c in chosen))
               if chosen else frozenset())

    # Step 2: per-frequency pattern/config selection.
    entries: list[ScheduleEntry] = []
    per_period: dict[float, frozenset[int]] = {}
    for cand, fault_set in order_periods_fault_dropping_reference(
            chosen, covered):
        per_period[cand.time] = fault_set
        combos = _pattern_config_subsets(data, fault_set, cand.time, configs)
        keys = sorted(combos)
        sub_problem = CoverProblem(
            subsets=[frozenset(combos[k]) for k in keys],
            universe=fault_set)
        picked = _solve_reference(sub_problem, solver, 1.0, time_limit)
        entries.extend(
            ScheduleEntry(period=cand.time, pattern=keys[j][0],
                          config=keys[j][1])
            for j in picked)

    return ScheduleResult(
        periods=sorted(per_period),
        entries=sorted(entries),
        targets=targets,
        covered=covered,
        method=solver,
        num_candidates=len(candidates),
        per_period_faults=per_period,
    )
