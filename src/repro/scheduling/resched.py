"""Adaptive in-field rescheduling: warm-started incremental re-solve.

The paper's Sec. II-B closed loop feeds monitor alerts back into the test
schedule: a degradation update shifts the affected faults' detection
ranges, and the FAST schedule must adapt.  Re-running the full cold
pipeline (target ranges → discretize → presolve → step-1 ILP → per-period
step-2 covers) for every alert is the latency bottleneck; this module
recomputes only what a delta actually invalidates.

Pipeline of one incremental re-solve (:func:`apply_alert`):

1. **Delta semantics** — an :class:`AlertDelta` carries per-gate delay
   shifts (ps).  A fault is *dirty* when its site's signal gate received a
   shift; all of its detection intervals (per-pattern ``i_all``/``i_mon``
   and therefore the observable union) translate by the gate's cumulative
   shift.  Shifting commutes with the union over patterns and monitor
   configurations, so the state caches one *unclipped* combined range per
   fault (``base_combined``) and a dirty fault's new observable range is
   ``base_combined.shifted(s).clipped(t_min, t_nom)`` — no per-pattern
   re-union.
2. **Delta discretization** — the sweep grid is rebuilt from cached
   per-fault boundaries (only dirty faults' entries change).  When the
   grid is unchanged, the occupancy matrix is patched in place: dirty
   bit columns are cleared and refilled.  When the grid moved, clean
   rows are *remapped*: every new segment copies the old segment
   containing its midpoint.  This is exact — both grids contain every
   clean fault's interval boundaries, so no clean boundary lies strictly
   inside a new segment and membership is constant across it (see
   ALGORITHMS.md §16 for the argument).
3. **Warm presolve** — :func:`~repro.scheduling.setcover.presolve_cover_warm`
   replays the previous reduction's dominance witnesses (mask values,
   re-verified O(1) against the new columns — unconditionally lossless)
   before running the normal fixpoint.
4. **Warm step 1** — when the merged candidate matrix is bit-identical to
   the previous solve (a *structure hit*: the delta moved segment times
   but not fault sets), the previous chosen rows are reused outright.
   Otherwise the reduced components are solved with lossless cuts: a
   greedy incumbent bounds the ILP (``Σx ≤ ub``) and components whose
   incumbent matches the covering lower bound skip the ILP entirely.
5. **Step-2 memo** — per-period covers are cached by
   ``(period, fault set, per-fault shifts)``; periods a delta did not
   touch replay their previous optimum without building the cover
   problem.

Every reuse rule above is lossless, so the incremental schedule is
cost-equal to a cold re-solve (asserted by the randomized suite in
``tests/test_resched.py``).  The ``cold`` engine
(:func:`apply_alert_cold`) performs the honest full recompute and doubles
as the equivalence yardstick and the bench baseline.  Rescheduling is
restricted to full-coverage schedules — the partial-coverage reductions
are not lossless, so there is nothing exact to warm-start.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.faults.detection import DetectionData, FaultPatternRange
from repro.monitors.monitor import MonitorConfigSet
from repro.scheduling.discretize import (
    CandidateSet,
    SweepGrid,
    fill_fault_row,
    finalize_candidates,
    sweep_grid,
)
from repro.scheduling.schedule import (
    FF_ONLY_CONFIG,
    ScheduleEntry,
    ScheduleResult,
    Solver,
    _solve_period,
    optimize_from_candidates,
    order_periods_fault_dropping,
)
from repro.scheduling.setcover import (
    DEFAULT_TIME_LIMIT_S,
    CoverProblem,
    PresolveReduction,
    greedy_cover,
    greedy_cover_masks,
    ilp_cover,
    independent_rows_bound_masks,
    independent_rows_bound_matrix,
    presolve_cover,
    presolve_cover_warm,
    solve_reduction,
)
from repro.timing.clock import ClockSpec
from repro.utils.bitset import zeros
from repro.utils.cache import LruCache
from repro.utils.intervals import IntervalAccumulator, IntervalSet

#: Bound of the per-state step-2 solution memo: alert bursts revisit the
#: same (period, fault set, shifts) subproblems across re-solves.
STEP2_CACHE_SIZE = 512

#: Bound of the per-state candidate-materialization memo (row bytes ->
#: frozenset); rows recur heavily across incremental re-solves.
CAND_FAULTS_CACHE_SIZE = 8192

#: Bound of the per-state (period, fault, shift) -> (pattern, config) hit
#: memo; step-2 subproblems re-test the same fault at the same period
#: across periods and re-solves.
COMBO_CACHE_SIZE = 32768

_WORD_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


# ----------------------------------------------------------------------
# Alert deltas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlertDelta:
    """One monitor-alert event: per-gate delay shifts in picoseconds.

    ``shifts`` is a sorted tuple of ``(gate, shift_ps)`` pairs with every
    zero entry dropped, so equality and hashing are canonical.
    """

    shifts: tuple[tuple[int, float], ...]

    @classmethod
    def from_mapping(cls, shifts: Mapping[int, float]) -> "AlertDelta":
        return cls(tuple(sorted(
            (int(g), float(s)) for g, s in shifts.items() if s != 0.0)))

    @property
    def is_empty(self) -> bool:
        return not self.shifts

    @property
    def gates(self) -> frozenset[int]:
        return frozenset(g for g, _ in self.shifts)


def load_alert_stream(path: str | Path) -> list[AlertDelta]:
    """Parse a JSON alert stream into :class:`AlertDelta` events.

    The file holds a list of events.  Each event is either one alert
    object ``{"gate": 12, "shift_ps": 4.0}``, a burst (list of alert
    objects applied atomically, shifts on the same gate summing), or a
    compact map form ``{"shifts": {"12": 4.0, "7": 1.5}}``.
    """
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, list):
        raise ValueError("alert stream must be a JSON list of events")
    out: list[AlertDelta] = []
    for event in raw:
        shifts: dict[int, float] = {}
        entries = event if isinstance(event, list) else [event]
        for entry in entries:
            if not isinstance(entry, dict):
                raise ValueError(f"malformed alert entry: {entry!r}")
            if "shifts" in entry:
                for g, s in entry["shifts"].items():
                    g = int(g)
                    shifts[g] = shifts.get(g, 0.0) + float(s)
            else:
                g = int(entry["gate"])
                shifts[g] = shifts.get(g, 0.0) + float(entry["shift_ps"])
        out.append(AlertDelta.from_mapping(shifts))
    return out


def scenario_alert_stream(circuit, spec, *,
                          checkpoints: Sequence[float] | None = None,
                          threshold_ps: float = 0.5,
                          max_gates: int = 4,
                          gates: Iterable[int] | None = None,
                          include_empty: bool = False) -> list[AlertDelta]:
    """Synthetic alert generator driven by a ``ScenarioSpec``.

    Walks the scenario's lifetime checkpoints; at each one, the per-gate
    delay shift since the previous checkpoint is
    ``(factor(t_k) - factor(t_{k-1})) · max_delay(gate)``.  Gates whose
    shift reaches ``threshold_ps`` raise an alert, capped at the
    ``max_gates`` largest shifts (ties to the lowest gate index) — the
    plausible granularity of an in-field monitor readout.  ``gates``
    restricts the candidate set (e.g. to the gates actually carrying
    target faults, so a bench replay exercises real re-solves instead of
    no-op alerts).  Deterministic: everything derives from the spec's
    seeds.
    """
    if max_gates < 1:
        raise ValueError("max_gates must be >= 1")
    scen = spec.aging_scenario()
    times = list(checkpoints if checkpoints is not None
                 else spec.checkpoints)
    pool = (sorted(set(gates)) if gates is not None
            else list(range(len(circuit.gates))))
    base_delay = np.array([g.max_delay() for g in circuit.gates])
    prev = scen.delay_factors(circuit, 0.0) if times else None
    out: list[AlertDelta] = []
    for t in times:
        cur = scen.delay_factors(circuit, t)
        shift = (cur - prev) * base_delay
        prev = cur
        over = [(float(shift[g]), g) for g in pool
                if shift[g] >= threshold_ps]
        over.sort(key=lambda sg: (-sg[0], sg[1]))
        delta = AlertDelta.from_mapping(
            {g: s for s, g in over[:max_gates]})
        if include_empty or not delta.is_empty:
            out.append(delta)
    return out


# ----------------------------------------------------------------------
# Schedule state
# ----------------------------------------------------------------------
@dataclass
class ReschedOutcome:
    """Result of one re-solve: the schedule plus reuse accounting."""

    schedule: ScheduleResult
    seconds: float
    fast_path: str | None
    stats: dict

    @property
    def cost(self) -> tuple[int, int]:
        """Comparable schedule cost: (frequencies, covered faults)."""
        return (self.schedule.num_frequencies, len(self.schedule.covered))


@dataclass
class ScheduleState:
    """Everything a warm re-solve reuses between alerts.

    Built once by :func:`prepare_state`; mutated in place by
    :func:`apply_alert` (incremental) and :func:`apply_alert_cold` (full
    recompute that still refreshes the caches so the two engines can be
    interleaved).  The underlying :class:`DetectionData` is never
    mutated — all shifted views live here.
    """

    data: DetectionData
    targets: frozenset[int]
    clock: ClockSpec
    configs: MonitorConfigSet | None
    solver: Solver
    time_limit: float
    prune_dominated: bool
    point: str
    #: Fault universe of the candidate bit matrix: every target fault with
    #: a non-empty *unclipped* combined range.  Fixed across deltas so bit
    #: positions are stable (faults whose shifted range clips away keep
    #: their bit and simply contribute no segments).
    fault_ids: tuple[int, ...] = ()
    fault_bit: dict[int, int] = field(default_factory=dict)
    fault_gate: dict[int, int] = field(default_factory=dict)
    gate_faults: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: Cumulative per-gate shifts applied so far.
    shifts: dict[int, float] = field(default_factory=dict)
    #: fault -> unclipped I_FF ∪ ⋃(I_mon + d) at zero shift.
    base_combined: dict[int, IntervalSet] = field(default_factory=dict)
    #: fault -> current shifted+clipped observable range.
    fault_ranges: dict[int, IntervalSet] = field(default_factory=dict)
    #: fault -> boundaries of the current range (grid rebuild input).
    fault_boundaries: dict[int, list[float]] = field(default_factory=dict)
    #: fault -> per-pattern ranges at the current shift (clean faults
    #: alias the DetectionData entries; dirty faults get shifted copies).
    pattern_ranges: dict[int, dict[int, FaultPatternRange]] = \
        field(default_factory=dict)
    grid: SweepGrid | None = None
    matrix_raw: np.ndarray | None = None       # occupancy pre-degenerate
    cand_set: CandidateSet | None = None
    reduction: PresolveReduction | None = None
    fingerprint: bytes | None = None           # merged-matrix structure
    chosen_idx: list[int] = field(default_factory=list)
    #: Mask values of the last step-1 optimum — the repair candidate the
    #: warm solve promotes when the lower bound certifies it.
    prev_chosen_masks: tuple[int, ...] = ()
    step2_cache: LruCache = field(
        default_factory=lambda: LruCache(maxsize=STEP2_CACHE_SIZE))
    #: Row-bytes -> frozenset memo for candidate materialization.
    cand_faults_cache: LruCache = field(
        default_factory=lambda: LruCache(maxsize=CAND_FAULTS_CACHE_SIZE))
    #: (row-bytes, seg lo, seg hi) -> PeriodCandidate object memo.
    cand_obj_cache: LruCache = field(
        default_factory=lambda: LruCache(maxsize=CAND_FAULTS_CACHE_SIZE))
    #: (period, fault, shift) -> tuple of (pattern, config) hits.
    combo_cache: LruCache = field(
        default_factory=lambda: LruCache(maxsize=COMBO_CACHE_SIZE))
    #: period -> (pattern, config) keys of the last step-2 optimum there,
    #: shift-agnostic: the repair candidate the warm step 2 re-validates
    #: against the current combos before certifying it optimal.
    period_prev: dict[float, tuple[tuple[int, int], ...]] = \
        field(default_factory=dict)
    schedule: ScheduleResult | None = None
    #: Monotonic re-solve counter (prepare counts as solve 0).
    revision: int = 0

    @property
    def config_delays(self) -> tuple[float, ...]:
        return tuple(self.configs) if self.configs is not None else ()


def _combined_unclipped(data: DetectionData, fault: int,
                        config_delays: tuple[float, ...]) -> IntervalSet:
    """``I_FF ∪ ⋃_d (I_mon + d)`` without the window clip (shift-stable)."""
    acc = IntervalAccumulator()
    acc.add(data.union_all(fault))
    mon = data.union_mon(fault)
    for d in config_delays:
        acc.add(mon.shifted(d))
    return acc.build()


def prepare_state(
    data: DetectionData,
    targets: frozenset[int] | set[int],
    clock: ClockSpec,
    configs: MonitorConfigSet | None,
    *,
    solver: Solver = "ilp",
    time_limit: float = DEFAULT_TIME_LIMIT_S,
    prune_dominated: bool = True,
    point: str = "mid",
) -> ScheduleState:
    """Build the re-schedulable state and solve the initial schedule."""
    state = ScheduleState(
        data=data, targets=frozenset(targets), clock=clock, configs=configs,
        solver=solver, time_limit=time_limit,
        prune_dominated=prune_dominated, point=point)
    delays = state.config_delays
    ids = []
    for f in sorted(state.targets, key=repr):
        base = _combined_unclipped(data, f, delays)
        if base.is_empty:
            continue
        ids.append(f)
        state.base_combined[f] = base
        rng = base.clipped(clock.t_min, clock.t_nom)
        state.fault_ranges[f] = rng
        state.fault_boundaries[f] = rng.boundaries()
        if f in data.ranges:
            state.pattern_ranges[f] = data.ranges[f]
    state.fault_ids = tuple(ids)
    state.fault_bit = {f: b for b, f in enumerate(state.fault_ids)}
    for f in state.fault_ids:
        g = data.faults[f].site.signal_gate(data.circuit)
        state.fault_gate[f] = g
    by_gate: dict[int, list[int]] = {}
    for f, g in state.fault_gate.items():
        by_gate.setdefault(g, []).append(f)
    state.gate_faults = {g: tuple(sorted(fs)) for g, fs in by_gate.items()}

    _rebuild_candidates(state)
    state.schedule = _solve_two_step(state, warm=False)
    return state


# ----------------------------------------------------------------------
# Candidate (re)construction
# ----------------------------------------------------------------------
def _all_boundaries(state: ScheduleState) -> list[float]:
    out: list[float] = []
    for f in state.fault_ids:
        out.extend(state.fault_boundaries[f])
    return out


def _empty_candidates(state: ScheduleState) -> None:
    state.matrix_raw = zeros(0, len(state.fault_ids))
    state.cand_set = CandidateSet((), zeros(0, len(state.fault_ids)),
                                  state.fault_ids)


def _finalize_state(state: ScheduleState, *,
                    prune: bool | None = None) -> None:
    """Apply the degenerate mask and run merge/prune on ``matrix_raw``.

    ``prune=False`` skips dominance pruning: the pruning is lossless (the
    cover optimum is unchanged), exists only to shrink the ILP, and the
    warm path certifies its solutions without an ILP almost always — so
    the patch path trades a slightly wider candidate matrix for skipping
    the most expensive discretization stage.
    """
    grid, matrix = state.grid, state.matrix_raw
    if grid.degenerate.any():
        matrix = matrix.copy()
        matrix[grid.degenerate] = 0
    state.cand_set = finalize_candidates(
        matrix, grid, state.fault_ids,
        prune_dominated=(state.prune_dominated if prune is None
                         else prune),
        point=state.point, faults_cache=state.cand_faults_cache,
        candidate_cache=state.cand_obj_cache)


def _rebuild_candidates(state: ScheduleState) -> None:
    """Cold sweep: full grid + occupancy fill from the current ranges."""
    state.grid = sweep_grid(_all_boundaries(state), state.clock.t_min,
                            state.clock.t_nom)
    if state.grid.n_segments == 0 or not state.fault_ids:
        _empty_candidates(state)
        return
    matrix = zeros(state.grid.n_segments, len(state.fault_ids))
    for f in state.fault_ids:
        fill_fault_row(matrix, state.grid, state.fault_bit[f],
                       state.fault_ranges[f])
    state.matrix_raw = matrix
    _finalize_state(state)


def _patch_candidates(state: ScheduleState,
                      dirty: Sequence[int]) -> str:
    """Delta discretization: patch or remap instead of resweeping.

    Returns the path taken (``"patched"`` — grid unchanged, rows edited
    in place; ``"remapped"`` — clean rows gathered from the old grid by
    midpoint lookup).  Exactness of the remap: both grids contain every
    clean fault's boundaries, so a clean fault's membership is constant
    across each new segment and equals its membership at the midpoint of
    the old segment containing it (ALGORITHMS.md §16).
    """
    old_grid, old_matrix = state.grid, state.matrix_raw
    new_grid = sweep_grid(_all_boundaries(state), state.clock.t_min,
                          state.clock.t_nom)
    state.grid = new_grid
    if new_grid.n_segments == 0 or not state.fault_ids:
        _empty_candidates(state)
        return "emptied"
    if (old_grid is not None and old_matrix is not None
            and old_grid.n_segments > 0
            and np.array_equal(new_grid.pts, old_grid.pts)):
        matrix = old_matrix          # replaced below; safe to edit in place
        path = "patched"
    else:
        if old_grid is None or old_matrix is None \
                or old_grid.n_segments == 0:
            _rebuild_candidates(state)
            return "rebuilt"
        idx = np.searchsorted(old_grid.pts, new_grid.mids,
                              side="right") - 1
        np.clip(idx, 0, old_grid.n_segments - 1, out=idx)
        matrix = old_matrix[idx]
        path = "remapped"
    for f in dirty:
        b = state.fault_bit[f]
        matrix[:, b >> 6] &= _WORD_MASK ^ np.uint64(1 << (b & 63))
    for f in dirty:
        fill_fault_row(matrix, new_grid, state.fault_bit[f],
                       state.fault_ranges[f])
    state.matrix_raw = matrix
    _finalize_state(state, prune=False)
    return path


# ----------------------------------------------------------------------
# Two-step solve (shared by cold refresh and warm re-solve)
# ----------------------------------------------------------------------
def _repair_previous(prev_masks: tuple[int, ...], masks: list[int],
                     full: int) -> list[int] | None:
    """Map the previous step-1 optimum into the new candidate set.

    Each previously chosen mask value is matched to a new column — by
    identical value, else any superset, else the largest overlap (a delta
    typically nudges one chosen candidate's composition).  If the mapped
    picks leave elements uncovered, two cheap completions are tried while
    staying within the previous cardinality: fill unused slots greedily,
    then a single-column swap.  Returns column picks covering the
    universe with at most ``len(prev_masks)`` columns — a feasible warm
    upper bound the caller checks against the lower bound — or None.
    """
    if not prev_masks or not masks:
        return None
    budget = len(prev_masks)
    by_value: dict[int, int] = {}
    for j, m in enumerate(masks):
        by_value.setdefault(m, j)
    picks: set[int] = set()
    for pm in prev_masks:
        j = by_value.get(pm)
        if j is None:
            j = next((k for k, m in enumerate(masks)
                      if pm & ~m == 0), None)
        if j is None:
            j = max(range(len(masks)),
                    key=lambda k: ((masks[k] & pm).bit_count(), -k))
        picks.add(j)
    union = 0
    for j in picks:
        union |= masks[j]
    # Greedy completion into slots freed by deduplication.
    while union & full != full and len(picks) < budget:
        uncovered = full & ~union
        j = max(range(len(masks)),
                key=lambda k: ((masks[k] & uncovered).bit_count(), -k))
        if not masks[j] & uncovered:
            return None
        picks.add(j)
        union |= masks[j]
    if union & full == full:
        return sorted(picks)
    # One-column swap: replace a single pick so the union closes.
    uncovered = full & ~union
    ordered = sorted(picks)
    for j_new in range(len(masks)):
        if not masks[j_new] & uncovered:
            continue
        for p in ordered:
            u = masks[j_new]
            for q in ordered:
                if q != p:
                    u |= masks[q]
            if u & full == full:
                out = [j for j in ordered if j != p] + [j_new]
                return sorted(set(out))
    return None


def _step1_warm(state: ScheduleState, masks: list[int], full: int,
                stats: dict) -> list[int]:
    """Warm minimal frequency selection — cost-equal to ``ilp_cover``.

    Certificate ladder, cheapest first:

    1. repair the previous optimum into the new columns; if it meets the
       independent-elements lower bound it *is* a new optimum — no
       presolve, no ILP;
    2. same test for the greedy cover;
    3. otherwise the exact path.  When the previous reduction recorded
       dominance witnesses (unpruned candidate sets), replay them through
       the witness-warmed presolve and solve the components with the
       lossless incumbent cut; with pre-pruned candidates rule 1 provably
       cannot fire, so presolve is skipped and one direct HiGHS ILP runs
       with the best known upper bound as a cardinality cut.
    """
    if not masks or not full:
        return []
    lb = independent_rows_bound_matrix(state.cand_set.matrix)
    stats["step1_lb"] = lb
    repaired = _repair_previous(state.prev_chosen_masks, masks, full)
    if repaired is not None and len(repaired) <= lb:
        stats["step1_path"] = "repair"
        return repaired
    greedy = greedy_cover_masks(masks, full)
    if len(greedy) <= lb:
        stats["step1_path"] = "greedy-certified"
        return greedy
    # Exact fallback.  The patch path skips dominance pruning, so the
    # presolve's dominated-column rule has real work to do here; replay
    # the previous reduction's witnesses when one exists.
    problem = CoverProblem(
        subsets=[c.faults for c in state.cand_set.candidates])
    if state.reduction is not None and state.reduction.dominators:
        stats["step1_path"] = "warm-presolve-ilp"
        red = presolve_cover_warm(problem, state.reduction)
        stats["warm_dropped_columns"] = red.stats.get(
            "warm_dropped_columns", 0)
    else:
        stats["step1_path"] = "presolve-ilp"
        red = presolve_cover(problem)
    state.reduction = red
    chosen = solve_reduction(red, state.time_limit, cuts=True)
    stats["early_exit_components"] = red.stats.get(
        "early_exit_components", 0)
    if chosen is None:       # ILP timeout: greedy fallback like ilp_cover
        return greedy
    return sorted(chosen)


def _step1_cold(state: ScheduleState, stats: dict) -> list[int]:
    """Cold minimal frequency selection — the seed ``ilp_cover`` path."""
    problem = CoverProblem(
        subsets=[c.faults for c in state.cand_set.candidates])
    if problem.num_subsets == 0 or not problem.universe:
        return []
    red = presolve_cover(problem)
    state.reduction = red
    chosen = solve_reduction(red, state.time_limit)
    if chosen is None:       # ILP timeout: greedy fallback like ilp_cover
        return greedy_cover(problem)
    return sorted(chosen)


def _step2_key(state: ScheduleState, period: float,
               fault_set: frozenset[int]) -> tuple:
    shifts = tuple(sorted(
        (f, state.shifts.get(state.fault_gate[f], 0.0))
        for f in fault_set))
    return (period, fault_set, shifts)


def _fault_combo_hits(state: ScheduleState, period: float,
                      f: int) -> tuple[tuple[int, int], ...]:
    """(pattern, config) combos detecting fault ``f`` at ``period``.

    Memoized by ``(period, fault, shift)`` — the per-pattern overlay is a
    pure function of the fault and its gate's cumulative shift, so the
    hit tuple is too.  Interval tests match
    ``_pattern_config_subsets_from_ranges`` bit for bit (same
    ``i_mon.shifted(d).contains(period)`` float expression), keeping the
    warm step-2 subproblems identical to the cold ones.
    """
    key = (period, f, state.shifts.get(state.fault_gate[f], 0.0))
    hits = state.combo_cache.get(key)
    if hits is not None:
        return hits
    configs = state.configs
    out: list[tuple[int, int]] = []
    for pi, fpr in state.pattern_ranges.get(f, {}).items():
        ff_hit = fpr.i_all.contains(period)
        if configs is None:
            if ff_hit:
                out.append((pi, FF_ONLY_CONFIG))
            continue
        for ci, d in enumerate(configs):
            if ff_hit or fpr.i_mon.shifted(d).contains(period):
                out.append((pi, ci))
    hits = tuple(out)
    state.combo_cache[key] = hits
    return hits


def _solve_period_warm(state: ScheduleState, period: float,
                       fault_set: frozenset[int],
                       stats: dict) -> list[ScheduleEntry]:
    """Step-2 covering with the same certificate ladder as step 1.

    The entry *count* per period is the optimal cover cardinality either
    way, so replacing the ILP with a certified greedy cover keeps the
    schedule cost identical to the cold path.
    """
    combos: dict[tuple[int, int], set[int]] = {}
    for fi in fault_set:
        for k in _fault_combo_hits(state, period, fi):
            combos.setdefault(k, set()).add(fi)
    index = {f: b for b, f in enumerate(sorted(fault_set, key=repr))}
    masks_by_key = {k: sum(1 << index[f] for f in fs)
                    for k, fs in combos.items()}
    keys = sorted(combos)
    masks = [masks_by_key[k] for k in keys]
    full = (1 << len(index)) - 1
    lb = (independent_rows_bound_masks(masks, len(index)) if full else 0)
    prev = state.period_prev.get(period)
    if prev is not None and full and len(prev) <= lb:
        union = 0
        for k in prev:
            union |= masks_by_key.get(k, 0)
        if union == full:
            # The previous optimum here still covers under the new shifts
            # and matches the lower bound: certified, no cover solve.
            stats["step2_prev"] = stats.get("step2_prev", 0) + 1
            return [ScheduleEntry(period=period, pattern=p, config=c)
                    for p, c in prev]
    greedy = greedy_cover_masks(masks, full) if full else []
    if full and len(greedy) > lb:
        stats["step2_ilp"] = stats.get("step2_ilp", 0) + 1
        sub_problem = CoverProblem(
            subsets=[frozenset(combos[k]) for k in keys],
            universe=fault_set)
        greedy = ilp_cover(sub_problem, time_limit=state.time_limit)
    picked = [keys[j] for j in greedy]
    state.period_prev[period] = tuple(picked)
    return [ScheduleEntry(period=period, pattern=p, config=c)
            for p, c in picked]


def _solve_two_step(state: ScheduleState, *, warm: bool,
                    stats: dict | None = None) -> ScheduleResult:
    stats = stats if stats is not None else {}
    candidates = list(state.cand_set.candidates)
    masks = state.cand_set.masks
    full = 0
    for m in masks:
        full |= m
    fingerprint = state.cand_set.matrix.tobytes()

    if (warm and fingerprint == state.fingerprint
            and state.chosen_idx is not None
            and all(j < len(candidates) for j in state.chosen_idx)):
        # Structure hit: the delta moved segment times but left every
        # candidate's fault set unchanged, so the previous step-1 optimum
        # solves the identical cover problem.
        chosen_idx = list(state.chosen_idx)
        stats["structure_hit"] = True
        stats["step1_path"] = "structure"
    else:
        stats["structure_hit"] = False
        if state.solver == "greedy":
            chosen_idx = (greedy_cover_masks(masks, full) if masks and full
                          else [])
            stats["step1_path"] = "greedy"
        elif warm:
            chosen_idx = _step1_warm(state, masks, full, stats)
        else:
            chosen_idx = _step1_cold(state, stats)
            stats["step1_path"] = "cold-ilp"
    state.fingerprint = fingerprint
    state.chosen_idx = list(chosen_idx)
    state.prev_chosen_masks = tuple(masks[j] for j in chosen_idx)

    chosen = [candidates[j] for j in chosen_idx]
    covered_acc: set[int] = set()
    for c in chosen:
        covered_acc |= c.faults
    covered = frozenset(covered_acc)

    dropping = order_periods_fault_dropping(chosen, covered)
    per_period = {cand.time: fs for cand, fs in dropping}
    entries = []
    hits = misses = 0
    for cand, fault_set in dropping:
        if warm:
            key = _step2_key(state, cand.time, fault_set)
            picked = state.step2_cache.get(key)
            if picked is not None:
                hits += 1
                state.period_prev[cand.time] = tuple(
                    (e.pattern, e.config) for e in picked)
                entries.extend(picked)
                continue
            misses += 1
            if state.solver == "ilp":
                picked = tuple(_solve_period_warm(
                    state, cand.time, fault_set, stats))
                state.step2_cache[key] = picked
                entries.extend(picked)
                continue
        picked = tuple(_solve_period(
            state.pattern_ranges, cand.time, fault_set, state.configs,
            state.solver, state.time_limit))
        if warm:
            state.step2_cache[key] = picked
        entries.extend(picked)
    stats["step2_hits"] = hits
    stats["step2_misses"] = misses

    state.revision += 1
    return ScheduleResult(
        periods=sorted(per_period),
        entries=sorted(entries),
        targets=state.targets,
        covered=covered,
        method=state.solver,
        num_candidates=len(candidates),
        per_period_faults=per_period,
    )


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
def _accumulate(state: ScheduleState, delta: AlertDelta) -> list[int]:
    """Fold the delta into the cumulative shifts; return dirty faults."""
    dirty: set[int] = set()
    for g, s in delta.shifts:
        state.shifts[g] = state.shifts.get(g, 0.0) + s
        dirty.update(state.gate_faults.get(g, ()))
    return sorted(dirty)


def _update_fault(state: ScheduleState, f: int) -> bool:
    """Refresh one dirty fault's cached ranges.

    The step-2 pattern-range overlay is updated *unconditionally* — the
    window clip can mask a translation (combined range fills the window
    at both shifts) while the per-pattern intervals still moved, so the
    overlay must always track the current shift.  Returns True when the
    clipped combined range changed, i.e. the candidate matrix needs a
    patch.
    """
    s = state.shifts.get(state.fault_gate[f], 0.0)
    base_patterns = state.data.ranges.get(f)
    if base_patterns is not None:
        if s == 0.0:
            state.pattern_ranges[f] = base_patterns
        else:
            state.pattern_ranges[f] = {
                pi: FaultPatternRange(fpr.i_all.shifted(s),
                                      fpr.i_mon.shifted(s))
                for pi, fpr in base_patterns.items()}
    new_rng = state.base_combined[f].shifted(s).clipped(
        state.clock.t_min, state.clock.t_nom)
    if new_rng == state.fault_ranges[f]:
        return False
    state.fault_ranges[f] = new_rng
    state.fault_boundaries[f] = new_rng.boundaries()
    return True


def apply_alert(state: ScheduleState, delta: AlertDelta) -> ReschedOutcome:
    """Incremental re-solve: recompute only what the delta invalidates."""
    t0 = time.perf_counter()
    stats: dict = {"dirty_gates": len(delta.gates), "dirty_faults": 0}

    def _fast(reason: str) -> ReschedOutcome:
        stats["grid"] = None
        return ReschedOutcome(state.schedule, time.perf_counter() - t0,
                              reason, stats)

    if delta.is_empty:
        return _fast("empty-delta")
    dirty = _accumulate(state, delta)
    stats["dirty_faults"] = len(dirty)
    if not dirty:
        return _fast("no-dirty-faults")
    changed = [f for f in dirty if _update_fault(state, f)]
    stats["changed_faults"] = len(changed)
    if changed:
        stats["grid"] = _patch_candidates(state, changed)
    else:
        # Shifts swallowed by the window clip: the candidate matrix is
        # still exact and step 1 replays via the structure fingerprint,
        # but the per-pattern overlays moved, so step 2 must re-solve the
        # dirty periods (the shift-aware cache keys force the misses).
        stats["grid"] = "unchanged"
    schedule = _solve_two_step(state, warm=True, stats=stats)
    state.schedule = schedule
    return ReschedOutcome(schedule, time.perf_counter() - t0, None, stats)


def apply_alert_cold(state: ScheduleState,
                     delta: AlertDelta) -> ReschedOutcome:
    """Full cold re-solve (the honest baseline the increments race).

    Applies the delta, then recomputes the entire pipeline from the
    detection data: per-fault observable unions (rebuilt, not memoized —
    the memo key does not know about shifts), full sweep discretization,
    cold presolve and uncut ILPs, fresh per-period step-2 covers.  State
    caches are refreshed afterwards so incremental calls may follow.
    """
    t0 = time.perf_counter()
    stats: dict = {"dirty_gates": len(delta.gates)}
    dirty = _accumulate(state, delta)
    stats["dirty_faults"] = len(dirty)
    for f in dirty:
        _update_fault(state, f)
    # Honest cold cost: rebuild every fault's observable union from the
    # per-pattern data, the work detection_range would redo in the field.
    delays = state.config_delays
    for f in state.fault_ids:
        s = state.shifts.get(state.fault_gate[f], 0.0)
        base = _combined_unclipped(state.data, f, delays)
        rng = base.shifted(s).clipped(state.clock.t_min, state.clock.t_nom)
        state.fault_ranges[f] = rng
        state.fault_boundaries[f] = rng.boundaries()
    _rebuild_candidates(state)
    schedule = _solve_two_step(state, warm=False, stats=stats)
    state.schedule = schedule
    stats["grid"] = "rebuilt"
    return ReschedOutcome(schedule, time.perf_counter() - t0, None, stats)


#: Engine table consumed by the ``resched`` EngineRegistry stage.
RESCHED_ENGINES = {
    "incremental": apply_alert,
    "cold": apply_alert_cold,
}


def prepare_state_for_result(result, *, solver: Solver = "ilp",
                             time_limit: float = DEFAULT_TIME_LIMIT_S
                             ) -> ScheduleState:
    """State over a :class:`FlowResult`'s proposed-schedule inputs."""
    return prepare_state(result.data, result.classification.target,
                         result.clock, result.configs, solver=solver,
                         time_limit=time_limit)


def cold_schedule_result(state: ScheduleState) -> ScheduleResult:
    """Cold reference schedule for the state's *current* shifts.

    Recomputes via the stock :func:`optimize_from_candidates` path on a
    throwaway copy of the ranges — used by equivalence tests to compare
    against a solve that shares no warm-start machinery with the state.
    """
    from repro.scheduling.discretize import discretize_candidate_set

    ranges = {f: rng for f, rng in state.fault_ranges.items()
              if not rng.is_empty}
    cand_set = discretize_candidate_set(
        ranges, state.clock.t_min, state.clock.t_nom,
        prune_dominated=state.prune_dominated, point=state.point)
    return optimize_from_candidates(
        state.pattern_ranges, cand_set, state.targets, state.configs,
        solver=state.solver, time_limit=state.time_limit)


__all__ = [
    "AlertDelta",
    "ReschedOutcome",
    "ScheduleState",
    "RESCHED_ENGINES",
    "apply_alert",
    "apply_alert_cold",
    "cold_schedule_result",
    "load_alert_stream",
    "prepare_state",
    "prepare_state_for_result",
    "scenario_alert_stream",
]
