"""Two-step FAST test-schedule optimization (Sec. IV-B/C).

Step 1 minimizes the number of test frequencies — PLL re-locking dominates
test time, so frequencies are more expensive than patterns (Sec. IV-B).
Step 2 walks the selected periods with a fault-dropping heuristic (richest
period first) and, per period, minimizes the number of
(pattern, monitor-configuration) combinations covering the period's faults.

Both steps are set-covering problems; ``solver`` chooses between the exact
0-1 ILP (``"ilp"``, the paper's approach) and the greedy heuristic
(``"greedy"``, the [17] baseline).

A schedule is a set of triples ``(frequency, pattern, configuration)``
(Sec. III-A: ``S ⊆ F × P × C``).

Performance structure (the bitset pipeline):

* per-fault observable ranges come from the memoized
  :meth:`DetectionData.detection_range` instead of rebuilding the shifted
  union per call,
* discretization + dominance pruning run once per
  ``(targets, configs, window, policy)`` tuple and are cached on the
  :class:`DetectionData` (the heuristic, proposed and relaxed-coverage
  schedules all share one candidate set),
* fault dropping accumulates coverage incrementally on int bitmasks
  instead of re-intersecting every pool candidate per round,
* the independent per-period step-2 cover problems can be solved by a
  worker pool (``jobs > 1``), mirroring the fault-simulation pool.

``timer`` collects the per-stage wall-clock split (``target_ranges`` /
``discretize`` / ``step1`` / ``step2``, plus ``presolve`` nested inside
``step1``) that ``BENCH_schedule.json`` persists.  The seed pipeline
survives verbatim in :mod:`repro.scheduling.reference` for golden
equivalence and perf baselining.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Literal, Mapping

from repro.faults.detection import DetectionData, FaultPatternRange
from repro.monitors.monitor import MonitorConfigSet
from repro.scheduling.discretize import (
    CandidateSet,
    PeriodCandidate,
    discretize_candidate_set,
)
from repro.scheduling.setcover import (
    DEFAULT_TIME_LIMIT_S,
    CoverProblem,
    greedy_cover,
    ilp_cover,
)
from repro.timing.clock import ClockSpec
from repro.utils.bitset import mask_bits
from repro.utils.intervals import IntervalSet
from repro.utils.profiling import StageTimer

Solver = Literal["ilp", "greedy"]

#: Config index used when a fault is captured by the standard flip-flops and
#: the monitor configuration is irrelevant for the entry.
FF_ONLY_CONFIG = -1


@dataclass(frozen=True, order=True)
class ScheduleEntry:
    """One scheduled application: pattern ``pattern`` at clock period
    ``period`` under monitor configuration ``config``."""

    period: float
    pattern: int
    config: int


@dataclass
class ScheduleResult:
    """Outcome of the two-step optimization."""

    periods: list[float]
    entries: list[ScheduleEntry]
    targets: frozenset[int]
    covered: frozenset[int]
    method: str
    num_candidates: int
    per_period_faults: dict[float, frozenset[int]] = field(default_factory=dict)

    @property
    def num_frequencies(self) -> int:
        return len(self.periods)

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def coverage(self) -> float:
        if not self.targets:
            return 1.0
        return len(self.covered) / len(self.targets)

    def naive_size(self, num_patterns: int, num_configs: int) -> int:
        """|P × C × F| of the naïve schedule: every pattern under every
        configuration (including monitors-off) at every selected frequency."""
        return num_patterns * (num_configs + 1) * self.num_frequencies

    def reduction_percent(self, num_patterns: int, num_configs: int) -> float:
        """Δ%|PC| = (1 - |S| / |P×C×F|) · 100 (Table II/III)."""
        naive = self.naive_size(num_patterns, num_configs)
        if naive == 0:
            return 0.0
        return (1.0 - self.num_entries / naive) * 100.0

    def entries_at(self, period: float) -> list[ScheduleEntry]:
        return [e for e in self.entries if abs(e.period - period) < 1e-9]


def _solve(problem: CoverProblem, solver: Solver, coverage: float,
           time_limit: float, timer: StageTimer | None = None) -> list[int]:
    if solver == "ilp":
        return ilp_cover(problem, coverage=coverage, time_limit=time_limit,
                         timer=timer)
    if solver == "greedy":
        return greedy_cover(problem, coverage=coverage)
    raise ValueError(f"unknown solver {solver!r}")


def target_ranges(data: DetectionData, targets: frozenset[int] | set[int],
                  clock: ClockSpec, configs: MonitorConfigSet | None
                  ) -> dict[int, IntervalSet]:
    """Observable detection range per target fault (monitors optional).

    Delegates to the memoized :meth:`DetectionData.detection_range`, so the
    shifted union of each fault is built at most once per (configuration
    set, window) across all schedules computed from the same data.
    """
    config_delays = tuple(configs) if configs is not None else ()
    out: dict[int, IntervalSet] = {}
    for fi in targets:
        rng = data.detection_range(fi, config_delays, clock.t_min,
                                   clock.t_nom)
        if not rng.is_empty:
            out[fi] = rng
    return out


def order_periods_fault_dropping(
    chosen: list[PeriodCandidate],
    covered: frozenset[int],
) -> list[tuple[PeriodCandidate, frozenset[int]]]:
    """Assign every covered fault to exactly one selected period.

    Implements the paper's "heuristic selection that uses fault dropping":
    periods are ranked by how many still-unassigned faults they detect; each
    iteration takes the richest period and drops its faults.  Coverage is
    accumulated incrementally on int bitmasks — one AND + popcount per pool
    candidate per round — rather than re-intersecting frozensets; selection
    order and tie-breaking (highest gain, then latest period, first
    candidate wins) are unchanged from the seed.
    """
    ids = tuple(sorted(covered, key=repr))
    index = {f: b for b, f in enumerate(ids)}
    masks = [sum(1 << index[f] for f in c.faults if f in index)
             for c in chosen]
    remaining = (1 << len(ids)) - 1
    pool = list(range(len(chosen)))
    ordered: list[tuple[PeriodCandidate, frozenset[int]]] = []
    while pool and remaining:
        best_pos = max(
            range(len(pool)),
            key=lambda p: ((masks[pool[p]] & remaining).bit_count(),
                           chosen[pool[p]].time))
        j = pool.pop(best_pos)
        take = masks[j] & remaining
        if not take:
            continue
        ordered.append((chosen[j],
                        frozenset(ids[b] for b in mask_bits(take))))
        remaining &= ~take
    return ordered


def _pattern_config_subsets_from_ranges(
    ranges: Mapping[int, Mapping[int, FaultPatternRange]],
    fault_set: frozenset[int],
    period: float,
    configs: MonitorConfigSet | None,
) -> dict[tuple[int, int], set[int]]:
    """Fault sets ``Φ_(m,n)`` detected by pattern m under config n at the
    given period (Sec. IV-B).  Without monitors the config index is
    :data:`FF_ONLY_CONFIG`."""
    combos: dict[tuple[int, int], set[int]] = {}
    for fi in fault_set:
        for pi, fpr in ranges.get(fi, {}).items():
            ff_hit = fpr.i_all.contains(period)
            if configs is None:
                if ff_hit:
                    combos.setdefault((pi, FF_ONLY_CONFIG), set()).add(fi)
                continue
            for ci, d in enumerate(configs):
                if ff_hit or fpr.i_mon.shifted(d).contains(period):
                    combos.setdefault((pi, ci), set()).add(fi)
    return combos


def _pattern_config_subsets(
    data: DetectionData,
    fault_set: frozenset[int],
    period: float,
    configs: MonitorConfigSet | None,
) -> dict[tuple[int, int], set[int]]:
    return _pattern_config_subsets_from_ranges(
        data.ranges, fault_set, period, configs)


def _candidate_set_cached(
    data: DetectionData,
    targets: frozenset[int],
    clock: ClockSpec,
    configs: MonitorConfigSet | None,
    prune_dominated: bool,
    candidate_point: str,
    timer: StageTimer | None,
) -> tuple[dict[int, IntervalSet], CandidateSet]:
    """Observable ranges + discretized candidates, cached on the data.

    The heuristic, proposed and every relaxed-coverage schedule query the
    identical (targets, configs, window) tuple; discretization and
    dominance pruning therefore run once, like ``detection_range``.
    """
    config_delays = tuple(configs) if configs is not None else ()
    key = (targets, config_delays, clock.t_min, clock.t_nom,
           prune_dominated, candidate_point)
    cached = data._sched_cache.get(key)
    if cached is not None:
        return cached
    if timer is not None:
        with timer.stage("target_ranges"):
            ranges = target_ranges(data, targets, clock, configs)
        with timer.stage("discretize"):
            cand_set = discretize_candidate_set(
                ranges, clock.t_min, clock.t_nom,
                prune_dominated=prune_dominated, point=candidate_point)
    else:
        ranges = target_ranges(data, targets, clock, configs)
        cand_set = discretize_candidate_set(
            ranges, clock.t_min, clock.t_nom,
            prune_dominated=prune_dominated, point=candidate_point)
    data._sched_cache[key] = (ranges, cand_set)
    return ranges, cand_set


def _solve_period(
    ranges: Mapping[int, Mapping[int, FaultPatternRange]],
    period: float,
    fault_set: frozenset[int],
    configs: MonitorConfigSet | None,
    solver: Solver,
    time_limit: float,
) -> list[ScheduleEntry]:
    """Step-2 covering for one selected period (worker-safe)."""
    combos = _pattern_config_subsets_from_ranges(
        ranges, fault_set, period, configs)
    keys = sorted(combos)
    sub_problem = CoverProblem(
        subsets=[frozenset(combos[k]) for k in keys],
        universe=fault_set)
    picked = _solve(sub_problem, solver, 1.0, time_limit)
    return [ScheduleEntry(period=period, pattern=keys[j][0],
                          config=keys[j][1])
            for j in picked]


# Per-process state for the step-2 worker pool; initialized exclusively
# through the pool initializer (inherited on fork, pickled on spawn),
# mirroring the fault-simulation pool in repro.faults.detection.
_SCHED_WORKER: dict[str, object] = {}


def _sched_worker_init(ranges, configs, solver,
                       time_limit):  # pragma: no cover - subprocess body
    _SCHED_WORKER["ranges"] = ranges
    _SCHED_WORKER["configs"] = configs
    _SCHED_WORKER["solver"] = solver
    _SCHED_WORKER["time_limit"] = time_limit


def _sched_worker_run(job):  # pragma: no cover - subprocess body
    period, fault_set = job
    return _solve_period(
        _SCHED_WORKER["ranges"], period, fault_set,
        _SCHED_WORKER["configs"], _SCHED_WORKER["solver"],
        _SCHED_WORKER["time_limit"])


def optimize_schedule(
    data: DetectionData,
    targets: set[int] | frozenset[int],
    clock: ClockSpec,
    configs: MonitorConfigSet | None,
    *,
    coverage: float = 1.0,
    solver: Solver = "ilp",
    time_limit: float = DEFAULT_TIME_LIMIT_S,
    prune_dominated: bool = True,
    candidate_point: str = "mid",
    jobs: int = 1,
    timer: StageTimer | None = None,
) -> ScheduleResult:
    """Run both optimization steps and return the complete test schedule.

    ``configs`` may be None to schedule *without* monitors (the conventional
    FAST baseline).  ``coverage`` relaxes step 1 to partial covering
    (Table III); step 2 always fully covers the faults the selected
    frequencies can reach.  ``candidate_point`` chooses where inside each
    discretization segment the test period sits (``"mid"`` per the paper).

    ``jobs > 1`` distributes the independent per-period step-2 cover
    problems over worker processes (results are identical to the
    sequential path).  ``timer`` accumulates the per-stage wall-clock
    split; the parallel path credits step 2 as one block.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    targets = frozenset(targets)
    ranges, cand_set = _candidate_set_cached(
        data, targets, clock, configs, prune_dominated, candidate_point,
        timer)
    if not ranges:
        return ScheduleResult(periods=[], entries=[], targets=targets,
                              covered=frozenset(), method=solver,
                              num_candidates=0)
    return optimize_from_candidates(
        data.ranges, cand_set, targets, configs, coverage=coverage,
        solver=solver, time_limit=time_limit, jobs=jobs, timer=timer)


def optimize_from_candidates(
    pattern_ranges: Mapping[int, Mapping[int, FaultPatternRange]],
    cand_set: CandidateSet,
    targets: frozenset[int],
    configs: MonitorConfigSet | None,
    *,
    coverage: float = 1.0,
    solver: Solver = "ilp",
    time_limit: float = DEFAULT_TIME_LIMIT_S,
    jobs: int = 1,
    timer: StageTimer | None = None,
) -> ScheduleResult:
    """Step 1 + step 2 from an explicit candidate set and pattern ranges.

    Extracted core of :func:`optimize_schedule` so the rescheduling engine
    can inject delta-patched candidates/ranges instead of the cached
    artifacts derived from a :class:`DetectionData`; behaviour is
    bit-identical to the inline code it replaces.
    """
    candidates = list(cand_set.candidates)

    # ------------------------------------------------------------------
    # Step 1: minimal frequency selection.
    # ------------------------------------------------------------------
    problem = CoverProblem(subsets=[c.faults for c in candidates])
    if timer is not None:
        with timer.stage("step1"):
            chosen_idx = _solve(problem, solver, coverage, time_limit, timer)
    else:
        chosen_idx = _solve(problem, solver, coverage, time_limit)
    chosen = [candidates[j] for j in chosen_idx]
    covered_acc: set[int] = set()
    for c in chosen:
        covered_acc |= c.faults
    covered = frozenset(covered_acc)

    # ------------------------------------------------------------------
    # Step 2: per-frequency pattern/config selection.
    # ------------------------------------------------------------------
    dropping = order_periods_fault_dropping(chosen, covered)
    per_period: dict[float, frozenset[int]] = {
        cand.time: fault_set for cand, fault_set in dropping}
    entries: list[ScheduleEntry] = []
    with (timer.stage("step2") if timer is not None else nullcontext()):
        if jobs == 1 or len(dropping) <= 1:
            for cand, fault_set in dropping:
                entries.extend(_solve_period(
                    pattern_ranges, cand.time, fault_set, configs, solver,
                    time_limit))
        else:
            import multiprocessing as mp

            if "fork" in mp.get_all_start_methods():
                ctx = mp.get_context("fork")
            else:  # pragma: no cover - platform-dependent
                ctx = mp.get_context()
            init_args = (pattern_ranges, configs, solver, time_limit)
            jobs_list = [(cand.time, fault_set)
                         for cand, fault_set in dropping]
            with ctx.Pool(processes=min(jobs, len(jobs_list)),
                          initializer=_sched_worker_init,
                          initargs=init_args) as pool:
                for picked in pool.imap(_sched_worker_run, jobs_list):
                    entries.extend(picked)

    return ScheduleResult(
        periods=sorted(per_period),
        entries=sorted(entries),
        targets=targets,
        covered=covered,
        method=solver,
        num_candidates=len(candidates),
        per_period_faults=per_period,
    )
