"""Two-step FAST test-schedule optimization (Sec. IV-B/C).

Step 1 minimizes the number of test frequencies — PLL re-locking dominates
test time, so frequencies are more expensive than patterns (Sec. IV-B).
Step 2 walks the selected periods with a fault-dropping heuristic (richest
period first) and, per period, minimizes the number of
(pattern, monitor-configuration) combinations covering the period's faults.

Both steps are set-covering problems; ``solver`` chooses between the exact
0-1 ILP (``"ilp"``, the paper's approach) and the greedy heuristic
(``"greedy"``, the [17] baseline).

A schedule is a set of triples ``(frequency, pattern, configuration)``
(Sec. III-A: ``S ⊆ F × P × C``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.faults.detection import DetectionData
from repro.monitors.monitor import MonitorConfigSet
from repro.monitors.shifting import observable_range
from repro.scheduling.discretize import PeriodCandidate, discretize_observation_times
from repro.scheduling.setcover import (
    DEFAULT_TIME_LIMIT_S,
    CoverProblem,
    greedy_cover,
    ilp_cover,
)
from repro.timing.clock import ClockSpec
from repro.utils.intervals import IntervalSet

Solver = Literal["ilp", "greedy"]

#: Config index used when a fault is captured by the standard flip-flops and
#: the monitor configuration is irrelevant for the entry.
FF_ONLY_CONFIG = -1


@dataclass(frozen=True, order=True)
class ScheduleEntry:
    """One scheduled application: pattern ``pattern`` at clock period
    ``period`` under monitor configuration ``config``."""

    period: float
    pattern: int
    config: int


@dataclass
class ScheduleResult:
    """Outcome of the two-step optimization."""

    periods: list[float]
    entries: list[ScheduleEntry]
    targets: frozenset[int]
    covered: frozenset[int]
    method: str
    num_candidates: int
    per_period_faults: dict[float, frozenset[int]] = field(default_factory=dict)

    @property
    def num_frequencies(self) -> int:
        return len(self.periods)

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def coverage(self) -> float:
        if not self.targets:
            return 1.0
        return len(self.covered) / len(self.targets)

    def naive_size(self, num_patterns: int, num_configs: int) -> int:
        """|P × C × F| of the naïve schedule: every pattern under every
        configuration (including monitors-off) at every selected frequency."""
        return num_patterns * (num_configs + 1) * self.num_frequencies

    def reduction_percent(self, num_patterns: int, num_configs: int) -> float:
        """Δ%|PC| = (1 - |S| / |P×C×F|) · 100 (Table II/III)."""
        naive = self.naive_size(num_patterns, num_configs)
        if naive == 0:
            return 0.0
        return (1.0 - self.num_entries / naive) * 100.0

    def entries_at(self, period: float) -> list[ScheduleEntry]:
        return [e for e in self.entries if abs(e.period - period) < 1e-9]


def _solve(problem: CoverProblem, solver: Solver, coverage: float,
           time_limit: float) -> list[int]:
    if solver == "ilp":
        return ilp_cover(problem, coverage=coverage, time_limit=time_limit)
    if solver == "greedy":
        return greedy_cover(problem, coverage=coverage)
    raise ValueError(f"unknown solver {solver!r}")


def target_ranges(data: DetectionData, targets: frozenset[int] | set[int],
                  clock: ClockSpec, configs: MonitorConfigSet | None
                  ) -> dict[int, IntervalSet]:
    """Observable detection range per target fault (monitors optional)."""
    config_delays = tuple(configs) if configs is not None else ()
    out: dict[int, IntervalSet] = {}
    for fi in targets:
        rng = observable_range(data.union_all(fi), data.union_mon(fi),
                               config_delays, clock.t_min, clock.t_nom)
        if not rng.is_empty:
            out[fi] = rng
    return out


def order_periods_fault_dropping(
    chosen: list[PeriodCandidate],
    covered: frozenset[int],
) -> list[tuple[PeriodCandidate, frozenset[int]]]:
    """Assign every covered fault to exactly one selected period.

    Implements the paper's "heuristic selection that uses fault dropping":
    periods are ranked by how many still-unassigned faults they detect; each
    iteration takes the richest period and drops its faults.
    """
    remaining = set(covered)
    pool = list(chosen)
    ordered: list[tuple[PeriodCandidate, frozenset[int]]] = []
    while pool and remaining:
        best = max(pool, key=lambda c: (len(c.faults & remaining), c.time))
        take = frozenset(best.faults & remaining)
        pool.remove(best)
        if not take:
            continue
        ordered.append((best, take))
        remaining -= take
    return ordered


def _pattern_config_subsets(
    data: DetectionData,
    fault_set: frozenset[int],
    period: float,
    configs: MonitorConfigSet | None,
) -> dict[tuple[int, int], set[int]]:
    """Fault sets ``Φ_(m,n)`` detected by pattern m under config n at the
    given period (Sec. IV-B).  Without monitors the config index is
    :data:`FF_ONLY_CONFIG`."""
    combos: dict[tuple[int, int], set[int]] = {}
    for fi in fault_set:
        for pi, fpr in data.ranges.get(fi, {}).items():
            ff_hit = fpr.i_all.contains(period)
            if configs is None:
                if ff_hit:
                    combos.setdefault((pi, FF_ONLY_CONFIG), set()).add(fi)
                continue
            for ci, d in enumerate(configs):
                if ff_hit or fpr.i_mon.shifted(d).contains(period):
                    combos.setdefault((pi, ci), set()).add(fi)
    return combos


def optimize_schedule(
    data: DetectionData,
    targets: set[int] | frozenset[int],
    clock: ClockSpec,
    configs: MonitorConfigSet | None,
    *,
    coverage: float = 1.0,
    solver: Solver = "ilp",
    time_limit: float = DEFAULT_TIME_LIMIT_S,
    prune_dominated: bool = True,
    candidate_point: str = "mid",
) -> ScheduleResult:
    """Run both optimization steps and return the complete test schedule.

    ``configs`` may be None to schedule *without* monitors (the conventional
    FAST baseline).  ``coverage`` relaxes step 1 to partial covering
    (Table III); step 2 always fully covers the faults the selected
    frequencies can reach.  ``candidate_point`` chooses where inside each
    discretization segment the test period sits (``"mid"`` per the paper).
    """
    targets = frozenset(targets)
    ranges = target_ranges(data, targets, clock, configs)
    if not ranges:
        return ScheduleResult(periods=[], entries=[], targets=targets,
                              covered=frozenset(), method=solver,
                              num_candidates=0)

    candidates = discretize_observation_times(
        ranges, clock.t_min, clock.t_nom, prune_dominated=prune_dominated,
        point=candidate_point)

    # ------------------------------------------------------------------
    # Step 1: minimal frequency selection.
    # ------------------------------------------------------------------
    problem = CoverProblem(subsets=[c.faults for c in candidates])
    chosen_idx = _solve(problem, solver, coverage, time_limit)
    chosen = [candidates[j] for j in chosen_idx]
    covered = frozenset().union(*(c.faults for c in chosen)) if chosen else frozenset()

    # ------------------------------------------------------------------
    # Step 2: per-frequency pattern/config selection.
    # ------------------------------------------------------------------
    entries: list[ScheduleEntry] = []
    per_period: dict[float, frozenset[int]] = {}
    for cand, fault_set in order_periods_fault_dropping(chosen, covered):
        per_period[cand.time] = fault_set
        combos = _pattern_config_subsets(data, fault_set, cand.time, configs)
        keys = sorted(combos)
        sub_problem = CoverProblem(
            subsets=[frozenset(combos[k]) for k in keys],
            universe=fault_set)
        picked = _solve(sub_problem, solver, 1.0, time_limit)
        entries.extend(
            ScheduleEntry(period=cand.time, pattern=keys[j][0],
                          config=keys[j][1])
            for j in picked)

    return ScheduleResult(
        periods=sorted(per_period),
        entries=sorted(entries),
        targets=targets,
        covered=covered,
        method=solver,
        num_candidates=len(candidates),
        per_period_faults=per_period,
    )
