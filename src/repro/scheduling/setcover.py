"""Set-covering solvers for the two scheduling steps (Sec. IV-B/C).

The paper models both optimization steps as 0-1 linear programs solved by a
commercial tool; here the exact solver is :func:`ilp_cover` on top of
``scipy.optimize.milp`` (HiGHS).  A :func:`greedy_cover` heuristic provides
the comparison baseline of [17], and :func:`branch_and_bound_cover` is a
dependency-free exact fallback used in tests to validate the ILP results.

All solvers work on a :class:`CoverProblem`: a universe of elements and a
list of subsets; they return subset indices whose union covers the required
part of the universe, minimizing the number of chosen subsets.  *Partial*
covering (``coverage < 1.0``) asks that at least ``ceil(coverage * |U|)``
elements be covered (Table III's relaxed coverage targets).

Internally every solver runs on a packed bitset view of the problem
(:meth:`CoverProblem.packed`): elements are numbered deterministically
(sorted by ``repr``) and each subset becomes an int bitmask, so gain
scoring is a popcount and union/subset tests are single int operations.
Full-coverage ILPs additionally pass through :func:`presolve_cover`, a
provably lossless reduction (duplicate-row/column collapse, dominated-
column elimination, essential-subset forcing, connected-component
splitting) that shrinks — often eliminates — the matrix ``milp`` sees;
see ALGORITHMS.md §9 for the losslessness argument.  The seed greedy and
the unreduced ILP construction survive via
``repro.scheduling.reference`` / ``presolve=False`` for golden testing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.utils.bitset import mask_bits, masks_to_matrix
from repro.utils.profiling import StageTimer

#: Default wall-clock limit per ILP, mirroring the paper's 1 h timeout but
#: scaled to interactive experiment sizes.
DEFAULT_TIME_LIMIT_S = 60.0


@dataclass(frozen=True)
class PackedCover:
    """Bitset view of a :class:`CoverProblem`.

    ``elements[b]`` is the universe element carried by bit ``b`` (sorted by
    ``repr`` — the same deterministic order the seed ILP used for its
    constraint rows); ``masks[j]`` is subset ``j`` restricted to the
    universe; ``full`` has every universe bit set.
    """

    elements: tuple[Hashable, ...]
    masks: tuple[int, ...]
    full: int

    @property
    def num_elements(self) -> int:
        return len(self.elements)


@dataclass
class CoverProblem:
    """A set-covering instance over hashable elements."""

    subsets: list[frozenset[Hashable]]
    universe: frozenset[Hashable] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        # Single accumulating union: frozenset().union(*subsets) builds a
        # fresh frozenset per argument-tuple element on large instances;
        # in-place |= over one set is linear in the total subset size.
        covered: set[Hashable] = set()
        for s in self.subsets:
            covered |= s
        if not self.universe:
            self.universe = frozenset(covered)
        else:
            missing = self.universe - covered
            if missing:
                # Deterministic, complete report: every missing element in
                # repr order, not a truncated sample.
                raise ValueError(
                    f"{len(missing)} universe elements not coverable: "
                    f"{sorted(missing, key=repr)}")
        self._packed: PackedCover | None = None

    @property
    def num_subsets(self) -> int:
        return len(self.subsets)

    def packed(self) -> PackedCover:
        """Bitset view (built lazily, cached; subsets must not mutate)."""
        if self._packed is None:
            elements = tuple(sorted(self.universe, key=repr))
            index = {e: b for b, e in enumerate(elements)}
            masks = tuple(
                sum(1 << index[e] for e in s if e in index)
                for s in self.subsets)
            self._packed = PackedCover(
                elements=elements, masks=masks,
                full=(1 << len(elements)) - 1)
        return self._packed

    def required_count(self, coverage: float) -> int:
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must lie in (0, 1]")
        return math.ceil(coverage * len(self.universe) - 1e-9)

    def covered_by(self, chosen: Sequence[int]) -> frozenset[Hashable]:
        out: set[Hashable] = set()
        for j in chosen:
            out |= self.subsets[j]
        return frozenset(out)


def greedy_cover_masks(masks: Sequence[int], universe: int,
                       need: int | None = None) -> list[int]:
    """Greedy cover on raw int bitmasks (shared deterministic core).

    Tie-breaking is *explicitly* deterministic: candidates are ranked by
    ``(gain, -index)`` and the maximum wins, i.e. highest popcount gain
    first, lowest subset index among equals — independent of the order in
    which the caller's container happens to iterate.  Returns subset
    indices in ascending order; raises when the requested count cannot be
    reached.  ``need`` defaults to full coverage of ``universe``.
    """
    if need is None:
        need = universe.bit_count()
    uncovered = universe
    chosen: list[int] = []
    remaining = [(j, m & uncovered) for j, m in enumerate(masks)]
    covered_count = 0
    while covered_count < need:
        if not remaining:
            raise RuntimeError("greedy cover stalled before reaching coverage")
        j_best, gain_neg = max(
            remaining, key=lambda jm: (jm[1].bit_count(), -jm[0]))
        gain_best = gain_neg.bit_count()
        if gain_best == 0:
            raise RuntimeError("greedy cover stalled before reaching coverage")
        chosen.append(j_best)
        covered_count += gain_best
        uncovered &= ~gain_neg
        remaining = [(j, m & uncovered) for j, m in remaining
                     if j != j_best and m & uncovered]
    chosen.sort()
    return chosen


def greedy_cover(problem: CoverProblem, *, coverage: float = 1.0) -> list[int]:
    """Classic greedy heuristic: repeatedly pick the subset covering the most
    still-uncovered elements (the [17]-style baseline).

    Runs on the packed bitmasks with popcount scoring via
    :func:`greedy_cover_masks`; selection order and tie-breaking (highest
    gain, then lowest index) are identical to the seed set-based
    implementation, which lives on as
    :func:`repro.scheduling.reference.greedy_cover_reference` — but the
    tie-break is now an explicit ``(gain, -index)`` sort key instead of
    relying on scan order, so warm-start equivalence tests are stable
    across platforms and container orderings.
    """
    p = problem.packed()
    return greedy_cover_masks(p.masks, p.full,
                              need=problem.required_count(coverage))


def independent_rows_bound(masks: Sequence[int], universe: int) -> int:
    """Combinatorial lower bound on the full-coverage optimum.

    Greedily collects *independent* elements — no two share a covering
    subset — rarest-covered first.  Every cover spends a distinct subset
    per independent element, so their count bounds the optimum from
    below.  On the interval-structured cover problems the scheduler
    produces, the bound is routinely tight, which lets the rescheduling
    engine certify a repaired previous solution as optimal without
    touching the ILP (see :mod:`repro.scheduling.resched`).  Deterministic:
    ties are broken by lowest element bit.
    """
    covering: dict[int, list[int]] = {}
    for cm in masks:
        m = cm & universe
        while m:
            e = m & -m
            m ^= e
            covering.setdefault(e, []).append(cm)
    order = sorted(covering, key=lambda e: (len(covering[e]), e))
    remaining = universe
    bound = 0
    for e in order:
        if not remaining & e:
            continue
        union = 0
        for cm in covering[e]:
            union |= cm
        remaining &= ~union
        bound += 1
    # Elements no subset covers cannot raise a *feasible* optimum's bound;
    # callers only certify against feasible covers, so ignore them.
    return bound


def independent_rows_bound_matrix(matrix: np.ndarray) -> int:
    """:func:`independent_rows_bound` over a packed bit matrix.

    Same greedy, same tie-breaking (rarest element first, lowest bit on
    ties), but vectorized: one ``unpackbits`` gives the element-by-column
    incidence, so each of the ≤ *bound* iterations is a masked column
    reduction instead of a Python scan over all masks.  The universe is
    the union of the rows — the only way the scheduler calls the bound.
    """
    if matrix.shape[0] == 0:
        return 0
    inc = np.unpackbits(np.ascontiguousarray(matrix).view(np.uint8),
                        axis=1, bitorder="little").astype(bool)
    counts = inc.sum(axis=0)
    present = np.flatnonzero(counts)
    if present.size == 0:
        return 0
    order = present[np.argsort(counts[present], kind="stable")]
    remaining = counts > 0
    bound = 0
    for e in order:
        if not remaining[e]:
            continue
        union = inc[inc[:, e]].any(axis=0)
        remaining &= ~union
        bound += 1
    return bound


def independent_rows_bound_masks(masks: Sequence[int], n_bits: int) -> int:
    """:func:`independent_rows_bound_matrix` for int-mask subproblems
    whose universe is the union of the masks (step-2 covers)."""
    if not masks or n_bits <= 0:
        return 0
    return independent_rows_bound_matrix(masks_to_matrix(masks, n_bits))


# ----------------------------------------------------------------------
# Presolve (full coverage only — provably lossless, see ALGORITHMS.md §9)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PresolveReduction:
    """Outcome of :func:`presolve_cover`.

    ``forced`` — original subset indices every minimum cover must contain
    (essential columns, discovered transitively).  ``components`` — the
    irreducible kernel, split into independent subproblems: each entry is
    ``(columns, masks, uncovered)`` with original column indices, their
    masks restricted to the component, and the component's element mask.
    An empty ``components`` list means presolve solved the instance
    outright.  ``stats`` counts eliminations per rule.

    ``column_masks`` / ``dominators`` feed the warm-start path of the
    rescheduling engine: the original packed column masks, and the
    dominance *witnesses* ``(dropped_mask, keeper_mask)`` recorded the
    first time rule 1 ran (mask values, not indices, so they survive
    column renumbering between re-solves).  Both default empty so
    hand-built reductions stay valid.
    """

    forced: tuple[int, ...]
    components: tuple[tuple[tuple[int, ...], tuple[int, ...], int], ...]
    stats: dict[str, int]
    column_masks: tuple[int, ...] = ()
    dominators: tuple[tuple[int, int], ...] = ()

    @property
    def solved(self) -> bool:
        return not self.components


def _presolve_masks(masks: Sequence[int], full: int,
                    skip: frozenset[int] = frozenset(),
                    warm_dropped: int = 0) -> PresolveReduction:
    """Fixpoint core shared by :func:`presolve_cover` (cold) and
    :func:`presolve_cover_warm` (columns in ``skip`` are pre-dropped by a
    re-verified dominance witness and never enter the fixpoint).
    """
    alive: dict[int, int] = {j: m for j, m in enumerate(masks)
                             if m and j not in skip}
    uncovered = full
    forced: list[int] = []
    stats = {"dominated_columns": 0, "essential_columns": 0,
             "duplicate_rows": 0, "components": 0,
             "warm_dropped_columns": warm_dropped}
    witnesses: list[tuple[int, int]] = []

    first_pass = True
    changed = True
    while changed and uncovered:
        changed = False
        # Rule 1: dominated / duplicate columns (largest first, then lowest
        # index, so the maximal representative of every chain is kept).
        order = sorted(alive, key=lambda j: (-alive[j].bit_count(), j))
        kept: list[int] = []
        for j in order:
            m = alive[j]
            keeper = next((k for k in kept if m & ~alive[k] == 0), None)
            if keeper is not None:
                if first_pass:
                    # Masks are still the caller's originals on the first
                    # pass, so (value, value) witnesses are replayable
                    # against a future problem over the same element order.
                    witnesses.append((m, alive[keeper]))
                del alive[j]
                stats["dominated_columns"] += 1
                changed = True
            else:
                kept.append(j)
        first_pass = False
        # Rule 2: essential columns — count covering subsets per element.
        count: dict[int, int] = {}
        only: dict[int, int] = {}
        for j in sorted(alive):
            for e in mask_bits(alive[j] & uncovered):
                count[e] = count.get(e, 0) + 1
                only[e] = j
        essential = sorted({only[e] for e, c in count.items() if c == 1})
        for j in essential:
            if j not in alive:       # may have been taken via another element
                continue
            forced.append(j)
            uncovered &= ~alive[j]
            del alive[j]
            stats["essential_columns"] += 1
            changed = True
        if changed:
            for j in list(alive):
                alive[j] &= uncovered
                if not alive[j]:
                    del alive[j]

    components: list[tuple[tuple[int, ...], tuple[int, ...], int]] = []
    if uncovered:
        # Union-find over elements; every column merges its elements.
        parent: dict[int, int] = {e: e for e in mask_bits(uncovered)}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for j in sorted(alive):
            bits = mask_bits(alive[j])
            for e in bits[1:]:
                ra, rb = find(bits[0]), find(e)
                if ra != rb:
                    parent[rb] = ra
        groups: dict[int, int] = {}
        for e in parent:
            groups[find(e)] = groups.get(find(e), 0) | (1 << e)
        for root in sorted(groups):
            comp_mask = groups[root]
            cols = tuple(j for j in sorted(alive) if alive[j] & comp_mask)
            components.append(
                (cols, tuple(alive[j] for j in cols), comp_mask))
        stats["components"] = len(components)

    forced.sort()
    return PresolveReduction(forced=tuple(forced),
                             components=tuple(components), stats=stats,
                             column_masks=tuple(masks),
                             dominators=tuple(witnesses))


def presolve_cover(problem: CoverProblem) -> PresolveReduction:
    """Lossless full-coverage reduction of a set-covering instance.

    Iterates three rules to a fixpoint, then splits what remains into
    connected components:

    1. **Dominated/duplicate columns** — drop subset ``j`` when its
       remaining elements are contained in subset ``k``'s (first index wins
       among equals).  Any cover using ``j`` swaps in ``k`` at equal
       cardinality, so some minimum cover survives the deletion.
    2. **Essential columns** — an element covered by exactly one surviving
       subset forces that subset into *every* cover; take it and delete
       its elements.
    3. **Duplicate rows** — elements covered by identical subset
       collections impose identical constraints; collapsing them changes
       nothing (applied when building the ILP matrix, via the component
       element masks).

    Connected-component splitting is exact because the constraint matrix
    is block-diagonal over components: a cover of the union is the
    disjoint union of covers, so the minima add.
    """
    p = problem.packed()
    return _presolve_masks(p.masks, p.full)


def presolve_cover_warm(problem: CoverProblem,
                        prev: PresolveReduction) -> PresolveReduction:
    """Warm-started presolve: replay ``prev``'s dominance witnesses first.

    Each witness is a ``(dropped_mask, keeper_mask)`` value pair from a
    previous :func:`presolve_cover` over the *same element ordering* (the
    rescheduling engine guarantees this — the fault universe is constant
    across deltas).  A witness is replayed only after re-verifying, on the
    NEW masks, that (a) a column with the keeper's mask value still exists
    and (b) containment ``dropped & ~keeper == 0`` still holds — an O(1)
    check per witness — so every pre-dropped column is dominated *in the
    new problem* and the reduction stays unconditionally lossless even
    against a stale or mismatched witness list.  Columns untouched by the
    delta typically re-verify wholesale, skipping most of the quadratic
    rule-1 scan; the normal fixpoint then runs on the survivors and picks
    up any dominance the delta newly created.
    """
    p = problem.packed()
    cols_by_value: dict[int, list[int]] = {}
    for j, m in enumerate(p.masks):
        if m:
            cols_by_value.setdefault(m, []).append(j)
    skip: set[int] = set()
    for dropped_mask, keeper_mask in prev.dominators:
        keepers = cols_by_value.get(keeper_mask)
        if not keepers:
            continue
        if dropped_mask == keeper_mask:
            # Duplicate-column witness: keep the lowest index of the value.
            skip.update(keepers[1:])
            continue
        if dropped_mask & ~keeper_mask:
            continue        # containment no longer holds; witness is stale
        keeper = keepers[0]
        for j in cols_by_value.get(dropped_mask, ()):
            if j != keeper:
                skip.add(j)
    return _presolve_masks(p.masks, p.full, skip=frozenset(skip),
                           warm_dropped=len(skip))


def _milp_component(cols: Sequence[int], masks: Sequence[int],
                    uncovered: int, time_limit: float,
                    stats: dict[str, int] | None = None,
                    ub: int | None = None) -> list[int] | None:
    """Exact minimum cover of one presolved component via HiGHS.

    Duplicate rows (rule 3) are collapsed here: elements with identical
    covering-column signatures produce one constraint.  ``ub`` adds a
    cardinality cut ``Σ x ≤ ub`` from a known feasible solution (lossless:
    the optimum can only be smaller).  Returns original column indices, or
    None when HiGHS yields no incumbent.
    """
    elements = mask_bits(uncovered)
    # Signature of an element = the set of local columns covering it.
    sig_rows: dict[tuple[int, ...], int] = {}
    for e in elements:
        bit = 1 << e
        sig = tuple(c for c, m in enumerate(masks) if m & bit)
        sig_rows.setdefault(sig, 0)
        sig_rows[sig] += 1
    signatures = sorted(sig_rows)
    if stats is not None:
        stats["duplicate_rows"] += len(elements) - len(signatures)
    n_el, n_sub = len(signatures), len(cols)
    rows_idx, cols_idx = [], []
    for r, sig in enumerate(signatures):
        for c in sig:
            rows_idx.append(r)
            cols_idx.append(c)
    a_cover = sparse.csr_matrix(
        (np.ones(len(rows_idx)), (rows_idx, cols_idx)), shape=(n_el, n_sub))
    constraints = [LinearConstraint(a_cover, lb=1.0, ub=np.inf)]
    if ub is not None:
        constraints.append(LinearConstraint(
            np.ones((1, n_sub)), lb=0.0, ub=float(ub)))
    res = milp(c=np.ones(n_sub),
               constraints=constraints,
               bounds=Bounds(0, 1), integrality=np.ones(n_sub),
               options={"time_limit": time_limit, "presolve": True})
    if res.x is None:
        return None
    return [cols[c] for c in range(n_sub) if res.x[c] > 0.5]


def solve_reduction(red: PresolveReduction,
                    time_limit: float = DEFAULT_TIME_LIMIT_S, *,
                    cuts: bool = False) -> list[int] | None:
    """Solve a :class:`PresolveReduction` to a provably minimum cover.

    Forced columns are taken as-is; each independent component is solved
    exactly by HiGHS.  With ``cuts=True`` (the rescheduling warm path)
    every component first computes a greedy incumbent and the covering
    lower bound ``⌈|elements| / max column popcount⌉``; when they meet,
    the greedy picks are returned without invoking the ILP (exact — the
    incumbent matches a valid lower bound), otherwise the incumbent's
    cardinality is passed to :func:`_milp_component` as a cut.  Both uses
    of the incumbent are lossless, so ``cuts`` never changes the cost.
    Returns None when any component times out without an incumbent
    (caller falls back to greedy, matching :func:`ilp_cover`).
    """
    chosen = list(red.forced)
    for cols, masks, comp_mask in red.components:
        ub: int | None = None
        if cuts:
            g_local = greedy_cover_masks(masks, comp_mask)
            largest = max(m.bit_count() for m in masks)
            lb = math.ceil(comp_mask.bit_count() / largest)
            if len(g_local) <= lb:
                red.stats["early_exit_components"] = (
                    red.stats.get("early_exit_components", 0) + 1)
                chosen.extend(cols[c] for c in g_local)
                continue
            ub = len(g_local)
        picks = _milp_component(cols, masks, comp_mask, time_limit,
                                red.stats, ub=ub)
        if picks is None:
            return None
        chosen.extend(picks)
    return chosen


def ilp_cover(problem: CoverProblem, *, coverage: float = 1.0,
              time_limit: float = DEFAULT_TIME_LIMIT_S,
              presolve: bool = True,
              timer: StageTimer | None = None) -> list[int]:
    """Exact 0-1 ILP set cover via HiGHS (Sec. IV-C formulation).

    Full coverage: ``min Σ x_j  s.t.  Σ_{j ∋ e} x_j ≥ 1 ∀ e``.
    Partial coverage adds indicator variables ``y_e ≤ Σ_{j ∋ e} x_j`` with
    ``Σ y_e ≥ ⌈coverage · |U|⌉``.

    With ``presolve=True`` (default) full-coverage instances are first
    reduced by :func:`presolve_cover`; components the reduction leaves
    behind are solved as independent (much smaller) ILPs.  Partial
    coverage skips presolve — element multiplicity matters there, so the
    reductions are not lossless.  ``timer`` credits the reduction time to
    a ``"presolve"`` stage.

    Falls back to the greedy solution when the solver hits the time limit
    without an incumbent (documented behaviour of the paper's flow, which
    aborted its commercial solver after one hour).
    """
    n_sub = problem.num_subsets
    n_el = len(problem.universe)
    if n_sub == 0 or n_el == 0:
        return []

    full_coverage = coverage >= 1.0 - 1e-12
    chosen: list[int] | None = None
    if full_coverage and presolve:
        if timer is not None:
            with timer.stage("presolve"):
                red = presolve_cover(problem)
        else:
            red = presolve_cover(problem)
        # cuts stay off here so the seed ILP path is bit-identical; the
        # rescheduling engine opts in via solve_reduction(cuts=True).
        chosen = solve_reduction(red, time_limit)
    elif full_coverage:
        chosen = _milp_seed_full(problem, time_limit)
    elif presolve:
        chosen = _milp_partial_aggregated(problem, coverage, time_limit)
    else:
        chosen = _milp_seed_partial(problem, coverage, time_limit)

    if chosen is None:
        return greedy_cover(problem, coverage=coverage)
    chosen.sort()
    # Defensive: HiGHS can return a feasible-but-suboptimal incumbent on
    # timeout; verify feasibility and fall back to greedy on violation.
    covered = problem.covered_by(chosen)
    if len(covered & problem.universe) < problem.required_count(coverage):
        return greedy_cover(problem, coverage=coverage)
    return chosen


def _seed_matrix(problem: CoverProblem) -> tuple[sparse.csr_matrix, int, int]:
    """Unreduced element × subset matrix, seed construction order."""
    elements = sorted(problem.universe, key=repr)
    e_index = {e: i for i, e in enumerate(elements)}
    n_el, n_sub = len(elements), problem.num_subsets
    rows, cols = [], []
    for j, s in enumerate(problem.subsets):
        for e in s:
            if e in e_index:
                rows.append(e_index[e])
                cols.append(j)
    a_cover = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_el, n_sub))
    return a_cover, n_el, n_sub


def _milp_seed_full(problem: CoverProblem,
                    time_limit: float) -> list[int] | None:
    """Seed full-coverage ILP without presolve (``presolve=False`` path)."""
    a_cover, _n_el, n_sub = _seed_matrix(problem)
    res = milp(c=np.ones(n_sub),
               constraints=[LinearConstraint(a_cover, lb=1.0, ub=np.inf)],
               bounds=Bounds(0, 1), integrality=np.ones(n_sub),
               options={"time_limit": time_limit, "presolve": True})
    if res.x is None:
        return None
    return [j for j in range(n_sub) if res.x[j] > 0.5]


def _milp_partial_aggregated(problem: CoverProblem, coverage: float,
                             time_limit: float) -> list[int] | None:
    """Partial-coverage ILP with signature-aggregated indicators.

    Elements covered by the *same* set of subsets are interchangeable for
    the count constraint: either some covering subset is chosen (all of
    them become coverable) or none is.  One indicator ``y_g`` per distinct
    covering signature with weight = group size therefore yields the same
    optimum as the per-element seed formulation while shrinking the ILP
    from ``|U|`` to ``#signatures`` indicator variables and link rows.
    (Duplicate-*column* and essential reductions are NOT lossless here —
    element multiplicity and optional coverage break them — so this is the
    only presolve rule the partial path applies.)
    """
    p = problem.packed()
    need = problem.required_count(coverage)
    # Element signature = int mask over columns covering it.
    sigs = [0] * p.num_elements
    for j, m in enumerate(p.masks):
        for e in mask_bits(m):
            sigs[e] |= 1 << j
    groups: dict[int, int] = {}
    for sig in sigs:
        if sig:
            groups[sig] = groups.get(sig, 0) + 1
    signatures = sorted(groups)
    n_sub, n_grp = len(p.masks), len(signatures)
    if n_grp == 0:
        return []       # nothing coverable; need == 0 handled by caller
    # Variables: [x_1..x_S, y_1..y_G]
    c = np.concatenate([np.ones(n_sub), np.zeros(n_grp)])
    rows_idx, cols_idx, vals = [], [], []
    for g, sig in enumerate(signatures):
        for j in mask_bits(sig):
            rows_idx.append(g)
            cols_idx.append(j)
            vals.append(1.0)
        rows_idx.append(g)
        cols_idx.append(n_sub + g)
        vals.append(-1.0)
    link = sparse.csr_matrix((vals, (rows_idx, cols_idx)),
                             shape=(n_grp, n_sub + n_grp))
    weights = np.concatenate([
        np.zeros(n_sub),
        np.array([float(groups[sig]) for sig in signatures])])
    # Greedy incumbent as a cardinality cut: greedy is feasible, so the
    # optimum satisfies Σx ≤ |greedy| — a lossless bound that lets the
    # solver prune most of its branch-and-bound tree up front.
    ub = float(len(greedy_cover(problem, coverage=coverage)))
    card = np.concatenate([np.ones(n_sub), np.zeros(n_grp)])
    constraints = [
        LinearConstraint(link, lb=0.0, ub=np.inf),
        LinearConstraint(weights[None, :], lb=float(need), ub=np.inf),
        LinearConstraint(card[None, :], lb=0.0, ub=ub),
    ]
    res = milp(c=c, constraints=constraints, bounds=Bounds(0, 1),
               integrality=np.ones(n_sub + n_grp),
               options={"time_limit": time_limit, "presolve": True})
    if res.x is None:
        return None
    return [j for j in range(n_sub) if res.x[j] > 0.5]


def _milp_seed_partial(problem: CoverProblem, coverage: float,
                       time_limit: float) -> list[int] | None:
    """Partial-coverage ILP with indicator variables ``y_e``."""
    a_cover, n_el, n_sub = _seed_matrix(problem)
    need = problem.required_count(coverage)
    # Variables: [x_1..x_S, y_1..y_E]
    c = np.concatenate([np.ones(n_sub), np.zeros(n_el)])
    link = sparse.hstack([a_cover, -sparse.identity(n_el, format="csr")])
    count = sparse.hstack([
        sparse.csr_matrix((1, n_sub)),
        sparse.csr_matrix(np.ones((1, n_el)))])
    constraints = [
        LinearConstraint(link, lb=0.0, ub=np.inf),
        LinearConstraint(count, lb=float(need), ub=np.inf),
    ]
    res = milp(c=c, constraints=constraints, bounds=Bounds(0, 1),
               integrality=np.ones(n_sub + n_el),
               options={"time_limit": time_limit, "presolve": True})
    if res.x is None:
        return None
    return [j for j in range(n_sub) if res.x[j] > 0.5]


def branch_and_bound_cover(problem: CoverProblem, *,
                           coverage: float = 1.0,
                           max_nodes: int = 200_000) -> list[int]:
    """Exact set cover by branch-and-bound on the packed bitmasks.

    Dependency-free reference used to cross-check :func:`ilp_cover` in the
    test suite.  Full coverage branches on the least-covered element and
    bounds with the greedy incumbent plus a covering lower bound (the seed
    strategy, now with popcount scoring).  ``coverage < 1.0`` switches to
    include/exclude branching on the highest-gain subset, which stays
    exact for the partial objective.
    """
    p = problem.packed()
    need = problem.required_count(coverage)
    if need == 0:
        return []
    masks = p.masks
    best = greedy_cover(problem, coverage=coverage)
    best_len = len(best)
    nodes = 0

    if coverage >= 1.0 - 1e-12:
        covers: list[list[int]] = [[] for _ in range(p.num_elements)]
        for j, m in enumerate(masks):
            for e in mask_bits(m):
                covers[e].append(j)

        def recurse(uncovered: int, chosen: list[int]) -> None:
            nonlocal best, best_len, nodes
            nodes += 1
            if nodes > max_nodes:
                return
            if not uncovered:
                if len(chosen) < best_len:
                    best, best_len = list(chosen), len(chosen)
                return
            if len(chosen) + 1 >= best_len:
                return
            # Lower bound: an element needs at least one more subset each
            # time the largest remaining subset cannot cover everything.
            largest = max(((m & uncovered).bit_count() for m in masks),
                          default=0)
            if largest == 0:
                return
            if (len(chosen) + math.ceil(uncovered.bit_count() / largest)
                    >= best_len):
                return
            pivot = min(mask_bits(uncovered), key=lambda e: len(covers[e]))
            options = sorted(covers[pivot],
                             key=lambda j: -(masks[j] & uncovered).bit_count())
            for j in options:
                recurse(uncovered & ~masks[j], chosen + [j])

        recurse(p.full, [])
        return sorted(best)

    # Partial coverage: include/exclude on the current highest-gain subset.
    def recurse_partial(pool: list[int], uncovered: int, need_rem: int,
                        chosen: list[int]) -> None:
        nonlocal best, best_len, nodes
        if need_rem <= 0:
            if len(chosen) < best_len:
                best, best_len = list(chosen), len(chosen)
            return
        nodes += 1
        if nodes > max_nodes:
            return
        if len(chosen) + 1 >= best_len:
            return
        gains = [(masks[j] & uncovered).bit_count() for j in pool]
        largest = max(gains, default=0)
        if largest == 0:
            return
        if len(chosen) + math.ceil(need_rem / largest) >= best_len:
            return
        pos = gains.index(largest)
        j = pool[pos]
        rest = pool[:pos] + pool[pos + 1:]
        recurse_partial(rest, uncovered & ~masks[j],
                        need_rem - largest, chosen + [j])
        recurse_partial(rest, uncovered, need_rem, chosen)

    recurse_partial(list(range(len(masks))), p.full, need, [])
    return sorted(best)
