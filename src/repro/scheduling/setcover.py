"""Set-covering solvers for the two scheduling steps (Sec. IV-B/C).

The paper models both optimization steps as 0-1 linear programs solved by a
commercial tool; here the exact solver is :func:`ilp_cover` on top of
``scipy.optimize.milp`` (HiGHS).  A :func:`greedy_cover` heuristic provides
the comparison baseline of [17], and :func:`branch_and_bound_cover` is a
dependency-free exact fallback used in tests to validate the ILP results.

All solvers work on a :class:`CoverProblem`: a universe of elements and a
list of subsets; they return subset indices whose union covers the required
part of the universe, minimizing the number of chosen subsets.  *Partial*
covering (``coverage < 1.0``) asks that at least ``ceil(coverage * |U|)``
elements be covered (Table III's relaxed coverage targets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

#: Default wall-clock limit per ILP, mirroring the paper's 1 h timeout but
#: scaled to interactive experiment sizes.
DEFAULT_TIME_LIMIT_S = 60.0


@dataclass
class CoverProblem:
    """A set-covering instance over hashable elements."""

    subsets: list[frozenset[Hashable]]
    universe: frozenset[Hashable] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        covered = frozenset().union(*self.subsets) if self.subsets else frozenset()
        if not self.universe:
            self.universe = covered
        else:
            missing = self.universe - covered
            if missing:
                raise ValueError(
                    f"{len(missing)} universe elements not coverable, "
                    f"e.g. {sorted(missing, key=repr)[:4]}")

    @property
    def num_subsets(self) -> int:
        return len(self.subsets)

    def required_count(self, coverage: float) -> int:
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must lie in (0, 1]")
        return math.ceil(coverage * len(self.universe) - 1e-9)

    def covered_by(self, chosen: Sequence[int]) -> frozenset[Hashable]:
        out: set[Hashable] = set()
        for j in chosen:
            out |= self.subsets[j]
        return frozenset(out)


def greedy_cover(problem: CoverProblem, *, coverage: float = 1.0) -> list[int]:
    """Classic greedy heuristic: repeatedly pick the subset covering the most
    still-uncovered elements (the [17]-style baseline)."""
    need = problem.required_count(coverage)
    uncovered = set(problem.universe)
    chosen: list[int] = []
    remaining = [(j, set(s) & uncovered) for j, s in enumerate(problem.subsets)]
    covered_count = 0
    while covered_count < need:
        j_best, gain_best = -1, 0
        for j, s in remaining:
            gain = len(s)
            if gain > gain_best:
                j_best, gain_best = j, gain
        if j_best < 0:
            raise RuntimeError("greedy cover stalled before reaching coverage")
        chosen.append(j_best)
        newly = [s for j, s in remaining if j == j_best][0]
        covered_count += len(newly)
        uncovered -= newly
        remaining = [(j, s & uncovered) for j, s in remaining
                     if j != j_best and s & uncovered]
    chosen.sort()
    return chosen


def ilp_cover(problem: CoverProblem, *, coverage: float = 1.0,
              time_limit: float = DEFAULT_TIME_LIMIT_S) -> list[int]:
    """Exact 0-1 ILP set cover via HiGHS (Sec. IV-C formulation).

    Full coverage: ``min Σ x_j  s.t.  Σ_{j ∋ e} x_j ≥ 1 ∀ e``.
    Partial coverage adds indicator variables ``y_e ≤ Σ_{j ∋ e} x_j`` with
    ``Σ y_e ≥ ⌈coverage · |U|⌉``.

    Falls back to the greedy solution when the solver hits the time limit
    without an incumbent (documented behaviour of the paper's flow, which
    aborted its commercial solver after one hour).
    """
    elements = sorted(problem.universe, key=repr)
    e_index = {e: i for i, e in enumerate(elements)}
    n_el, n_sub = len(elements), problem.num_subsets
    if n_sub == 0 or n_el == 0:
        return []

    rows, cols = [], []
    for j, s in enumerate(problem.subsets):
        for e in s:
            if e in e_index:
                rows.append(e_index[e])
                cols.append(j)
    a_cover = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_el, n_sub))

    if coverage >= 1.0 - 1e-12:
        c = np.ones(n_sub)
        constraints = [LinearConstraint(a_cover, lb=1.0, ub=np.inf)]
        bounds = Bounds(0, 1)
        integrality = np.ones(n_sub)
    else:
        # Variables: [x_1..x_S, y_1..y_E]
        need = problem.required_count(coverage)
        c = np.concatenate([np.ones(n_sub), np.zeros(n_el)])
        link = sparse.hstack([a_cover, -sparse.identity(n_el, format="csr")])
        count = sparse.hstack([
            sparse.csr_matrix((1, n_sub)),
            sparse.csr_matrix(np.ones((1, n_el)))])
        constraints = [
            LinearConstraint(link, lb=0.0, ub=np.inf),
            LinearConstraint(count, lb=float(need), ub=np.inf),
        ]
        bounds = Bounds(0, 1)
        integrality = np.ones(n_sub + n_el)

    res = milp(c=c, constraints=constraints, bounds=bounds,
               integrality=integrality,
               options={"time_limit": time_limit, "presolve": True})
    if res.x is None:
        return greedy_cover(problem, coverage=coverage)
    x = res.x[:n_sub]
    chosen = [j for j in range(n_sub) if x[j] > 0.5]
    # Defensive: HiGHS can return a feasible-but-suboptimal incumbent on
    # timeout; verify feasibility and fall back to greedy on violation.
    covered = problem.covered_by(chosen)
    if len(covered & problem.universe) < problem.required_count(coverage):
        return greedy_cover(problem, coverage=coverage)
    return chosen


def branch_and_bound_cover(problem: CoverProblem, *,
                           max_nodes: int = 200_000) -> list[int]:
    """Exact set cover by branch-and-bound (full coverage only).

    Dependency-free reference used to cross-check :func:`ilp_cover` in the
    test suite.  Branches on the least-covered element; bounds with the
    greedy incumbent and a covering lower bound.
    """
    elements = sorted(problem.universe, key=repr)
    subsets = [frozenset(s) & problem.universe for s in problem.subsets]
    covers: dict[Hashable, list[int]] = {e: [] for e in elements}
    for j, s in enumerate(subsets):
        for e in s:
            covers[e].append(j)

    best = greedy_cover(problem)
    best_len = len(best)
    nodes = 0

    def recurse(uncovered: frozenset[Hashable], chosen: list[int]) -> None:
        nonlocal best, best_len, nodes
        nodes += 1
        if nodes > max_nodes:
            return
        if not uncovered:
            if len(chosen) < best_len:
                best, best_len = list(chosen), len(chosen)
            return
        if len(chosen) + 1 >= best_len:
            return
        # Lower bound: an element needs at least one more subset each time
        # the largest remaining subset cannot cover everything.
        largest = max((len(s & uncovered) for s in subsets), default=0)
        if largest == 0:
            return
        if len(chosen) + math.ceil(len(uncovered) / largest) >= best_len:
            return
        pivot = min(uncovered, key=lambda e: len(covers[e]))
        options = sorted(covers[pivot],
                         key=lambda j: -len(subsets[j] & uncovered))
        for j in options:
            recurse(uncovered - subsets[j], chosen + [j])

    recurse(frozenset(problem.universe), [])
    return sorted(best)
