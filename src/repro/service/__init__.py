"""HDF-flow-as-a-service: job orchestration over the stage store.

The service subsystem executes declarative :mod:`repro.core.spec` job
documents:

* :mod:`repro.service.orchestrator` — the synchronous execution facade
  (:func:`~repro.service.orchestrator.run_job`, the single code path
  behind every CLI verb) plus the asyncio
  :class:`~repro.service.orchestrator.Orchestrator` that queues jobs,
  dedupes identical fingerprints and streams progress events;
* :mod:`repro.service.server` — a stdlib-only HTTP/JSON API (submit,
  status, stream, result, cancel) behind ``repro serve`` /
  ``repro submit``.
"""

from repro.service.orchestrator import (
    JobOutcome,
    JobRecord,
    Orchestrator,
    resolve_circuit,
    run_job,
)

__all__ = [
    "JobOutcome",
    "JobRecord",
    "Orchestrator",
    "resolve_circuit",
    "run_job",
]
