"""Job orchestration: one execution path for the CLI and the service.

Two layers:

* :func:`run_job` — the **synchronous facade**.  Takes any
  :class:`repro.core.spec.JobSpec`, resolves the circuit(s), runs the
  right pipeline (flow / suite / fleet / resched) against the shared
  stage store and returns a :class:`JobOutcome` carrying both the rich
  in-process value (``FlowResult``, ``ShardReport``, ...) and a
  JSON-able ``payload``.  Every CLI verb goes through this function, so
  the CLI and the HTTP service are provably the same code path.
* :class:`Orchestrator` — the **async job queue** behind the HTTP
  server.  Submissions are deduped on the spec fingerprint: an
  identical in-flight job is joined (the follower resolves when the
  primary finishes, marked ``cache="dedup"``), and a repeat submission
  after completion re-executes through the stage store, where every
  stage hits — the interactive (< 50 ms class) replay path measured in
  ``BENCH_service.json``.  Worker tasks fan CPU work out via a thread
  executor; suite jobs additionally fork over the shard
  ``ClaimBoard`` substrate.  Progress events (queued / started /
  per-stage timings from the ``StageTimer``-backed pipeline meta /
  done) stream to any number of listeners per job.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.spec import (
    FleetJob,
    FlowJob,
    JobSpec,
    ReschedJob,
    SpecError,
    SuiteJob,
)

#: Sentinel: "use the environment-default stage store" (REPRO_FLOW_CACHE
#: / REPRO_CACHE_DIR), as opposed to ``None`` = "no store".
ENV_STORE = object()

Progress = Callable[[dict], None]


def resolve_circuit(spec: str):
    """Resolve a job's circuit field: file path, embedded or suite name."""
    from repro.circuits.library import (
        PAPER_SUITE,
        embedded_circuit,
        suite_circuit,
    )
    from repro.netlist.bench import load_bench
    from repro.netlist.verilog import load_verilog

    path = Path(spec)
    if path.suffix == ".bench" and path.exists():
        return load_bench(path)
    if path.suffix in (".v", ".sv") and path.exists():
        return load_verilog(path)
    try:
        return embedded_circuit(spec)
    except KeyError:
        pass
    if spec in {e.name for e in PAPER_SUITE}:
        return suite_circuit(spec)
    raise SpecError(f"cannot resolve circuit {spec!r} "
                    f"(not a file, embedded or suite name)")


def _env_store(store):
    if store is ENV_STORE:
        from repro.experiments.artifact_cache import StageCache, cache_enabled

        return StageCache() if cache_enabled() else None
    return store


def _meta_cache_status(meta: dict, store) -> str:
    """Stage meta → outcome cache label (all-hit replay vs fresh work)."""
    if store is None:
        return "uncached"
    counts = meta.get("cache", {})
    if counts.get("misses", 0) == 0 and counts.get("hits", 0) > 0:
        return "hit"
    return "miss"


@dataclass
class JobOutcome:
    """What one facade execution produced."""

    spec: JobSpec
    fingerprint: str
    #: Rich in-process value: FlowResult, dict[str, FlowResult],
    #: ShardReport, FleetStudy or the resched replay dict.
    value: Any
    #: JSON-able result document (what the HTTP API serves).
    payload: dict
    #: Pipeline meta (per-stage seconds + cache status) when applicable.
    meta: dict
    seconds: float
    #: "hit" (served from the stage store), "miss" (computed),
    #: "uncached" (no store) or "dedup" (joined an in-flight run).
    cache: str


# ----------------------------------------------------------------------
# Per-kind executors (the one true code path per job type)
# ----------------------------------------------------------------------
def _emit_stage_events(meta: dict, progress: Progress | None) -> None:
    if progress is None:
        return
    for name, info in meta.get("stages", {}).items():
        progress({"event": "stage", "stage": name,
                  "seconds": round(info.get("seconds", 0.0), 6),
                  "cache": info.get("cache", "?")})


def _note(progress: Progress | None):
    if progress is None:
        return None
    return lambda m: progress({"event": "log", "message": str(m)})


def _execute_flow(job: FlowJob, store, recompute_from, progress,
                  timer, options) -> tuple[Any, dict, dict, str]:
    from repro.core.flow import HdfTestFlow

    circuit = resolve_circuit(job.circuit)
    result = HdfTestFlow(circuit, job.flow_config()).run(
        with_schedules=job.with_schedules,
        with_coverage_schedules=job.with_coverage_schedules,
        progress=_note(progress), timer=timer,
        cache=store, recompute_from=recompute_from)
    _emit_stage_events(result.meta, progress)
    payload = {
        "circuit": circuit.name,
        "table1": result.table1_row(),
        "stages": result.meta.get("stages", {}),
    }
    if job.with_schedules:
        payload["table2"] = result.table2_row()
    return result, payload, result.meta, _meta_cache_status(result.meta,
                                                           store)


def _suite_results_meta(results: dict) -> dict:
    """Aggregate per-circuit pipeline meta into one hit/miss tally."""
    hits = misses = 0
    for res in results.values():
        counts = getattr(res, "meta", {}).get("cache", {})
        hits += counts.get("hits", 0)
        misses += counts.get("misses", 0)
    return {"cache": {"hits": hits, "misses": misses}}


def _execute_suite(job: SuiteJob, store, recompute_from, progress,
                   timer, options) -> tuple[Any, dict, dict, str]:
    from repro.experiments.runner import run_suite_job
    from repro.experiments.shard import run_suite_sharded_job

    if job.sharded:
        report = run_suite_sharded_job(
            job, store=store if store is not None else None,
            ttl=options.get("claim_ttl"),
            progress=bool(options.get("shard_progress")), timer=timer)
        stats = report.stats
        meta = {"cache": {"hits": stats.hits, "misses": stats.computed}}
        payload = {
            "circuits": list(job.names),
            "workers": report.workers,
            "wall_s": round(report.wall_s, 4),
            "units": {"computed": stats.computed, "cached": stats.hits,
                      "reclaimed": stats.reclaimed,
                      "worker_failures": stats.worker_failures},
            "stage_seconds": {k: round(v, 4)
                              for k, v in stats.stage_seconds.items()},
        }
        value: Any = report
    else:
        results = run_suite_job(
            job, progress=bool(options.get("shard_progress")),
            timer=timer, recompute_from=recompute_from)
        meta = _suite_results_meta(results)
        payload = {
            "circuits": list(job.names),
            "results": {
                name: {"faults": res.classification.num_faults,
                       "target": len(res.classification.target),
                       "gain_percent": round(
                           res.classification.coverage_gain_percent, 2)}
                for name, res in results.items()},
        }
        value = results
    if progress is not None:
        progress({"event": "suite", **{k: v for k, v in payload.items()
                                       if k != "results"}})
    return value, payload, meta, _meta_cache_status(meta, store)


def _execute_fleet(job: FleetJob, store, recompute_from, progress,
                   timer, options) -> tuple[Any, dict, dict, str]:
    from repro.experiments.fleet import run_fleet_study

    circuit = resolve_circuit(job.circuit)
    study = run_fleet_study(circuit, spec=job.scenario,
                            devices=job.devices, engine=job.engine,
                            jobs=job.jobs, cache=store,
                            use_cache=store is not None)
    _emit_stage_events(study.meta, progress)
    payload = {
        "scenario": job.scenario.fingerprint(),
        **study.summary(),
    }
    return study, payload, study.meta, _meta_cache_status(study.meta,
                                                          store)


def _execute_resched(job: ReschedJob, store, recompute_from, progress,
                     timer, options) -> tuple[Any, dict, dict, str]:
    from repro.core.engines import ENGINES
    from repro.core.flow import HdfTestFlow
    from repro.experiments.resched import (
        ALERT_CHECKPOINTS,
        DEFAULT_SPEC,
        alert_stream_for_state,
        replay_alert_events,
    )
    from repro.scheduling.resched import prepare_state_for_result

    engine = ENGINES.resolve("resched", job.engine)
    circuit = resolve_circuit(job.circuit)
    result = HdfTestFlow(circuit, job.flow_config()).run(
        with_schedules=False, progress=_note(progress), timer=timer,
        cache=store, recompute_from=recompute_from)
    _emit_stage_events(result.meta, progress)
    state = prepare_state_for_result(result)
    if job.alerts:
        alerts = job.alert_deltas()
    else:
        alerts = alert_stream_for_state(
            circuit, state, spec=job.scenario or DEFAULT_SPEC,
            checkpoints=ALERT_CHECKPOINTS, max_gates=job.max_gates)
    base = state.schedule
    initial = {
        "circuit": circuit.name, "engine": engine.name,
        "alerts": len(alerts), "targets": len(state.targets),
        "frequencies": base.num_frequencies,
        "entries": base.num_entries, "covered": len(base.covered),
    }
    events, summary = replay_alert_events(
        state, alerts, engine,
        progress=(lambda ev: progress({"event": "alert", **ev}))
        if progress is not None else None)
    summary = {"circuit": circuit.name, "engine": engine.name, **summary}
    payload = {"initial": initial, "events": events, "summary": summary}
    value = {"state": state, "alerts": alerts, **payload}
    return value, payload, result.meta, _meta_cache_status(result.meta,
                                                           store)


_EXECUTORS: dict[type, Callable] = {
    FlowJob: _execute_flow,
    SuiteJob: _execute_suite,
    FleetJob: _execute_fleet,
    ReschedJob: _execute_resched,
}


def run_job(spec: JobSpec, *,
            store=ENV_STORE,
            recompute_from: tuple[str, ...] = (),
            progress: Progress | None = None,
            timer=None,
            **options: Any) -> JobOutcome:
    """Execute one job synchronously — the facade behind every CLI verb.

    ``store`` is the stage store (default: the ``REPRO_FLOW_CACHE``
    environment store; ``None`` disables caching).  ``recompute_from``
    forces the named pipeline stages plus downstream to recompute — it
    is an *execution option*, deliberately not part of the spec, so a
    deduped/cached submission can never silently skip a requested
    recompute.  Extra keyword ``options`` are per-kind execution knobs
    (``claim_ttl``, ``shard_progress`` for sharded suites).
    """
    executor = _EXECUTORS.get(type(spec))
    if executor is None:
        raise SpecError(f"no executor for job type {type(spec).__name__}")
    store = _env_store(store)
    t0 = time.perf_counter()
    value, payload, meta, cache = executor(
        spec, store, tuple(recompute_from), progress, timer,
        dict(options))
    seconds = time.perf_counter() - t0
    return JobOutcome(spec=spec, fingerprint=spec.fingerprint(),
                      value=value, payload=payload, meta=meta,
                      seconds=seconds, cache=cache)


# ----------------------------------------------------------------------
# Async orchestration (the service layer)
# ----------------------------------------------------------------------
_TERMINAL = frozenset({"done", "failed", "cancelled"})


@dataclass
class JobRecord:
    """One submission: bookkeeping + event log.

    Event appends and state flips happen under the orchestrator's lock
    and notify its condition, so plain HTTP handler threads can wait on
    progress without touching the asyncio loop.
    """

    id: str
    spec: JobSpec
    fingerprint: str
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    seconds: float = 0.0
    cache: str = ""
    #: Primary job id this submission was deduped onto (followers only).
    dedup_of: str | None = None
    error: str | None = None
    payload: dict | None = None
    events: list[dict] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def status(self) -> dict:
        return {
            "id": self.id, "kind": self.spec.kind,
            "fingerprint": self.fingerprint, "state": self.state,
            "cache": self.cache, "dedup_of": self.dedup_of,
            "seconds": round(self.seconds, 6), "error": self.error,
            "events": len(self.events),
        }


class Orchestrator:
    """Asyncio job queue with fingerprint dedupe over the stage store.

    Create, then ``await start()`` inside a running loop.  ``submit``
    either enqueues a new primary, attaches a follower to an identical
    in-flight primary, or (identical fingerprint already completed)
    enqueues a re-run that replays all-hit from the stage store.
    """

    def __init__(self, *, store=ENV_STORE, workers: int = 2):
        self._store = _env_store(store)
        self._workers = max(1, int(workers))
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._records: dict[str, JobRecord] = {}
        self._inflight: dict[str, str] = {}      # fingerprint -> primary id
        self._followers: dict[str, list[str]] = {}
        self._order: list[str] = []
        self._seq = 0
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-job")

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        for _ in range(self._workers):
            self._tasks.append(loop.create_task(self._worker()))

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- submission / queries -------------------------------------------
    def _push_event(self, record: JobRecord, event: dict) -> None:
        with self._cond:
            record.events.append({"seq": len(record.events),
                                  "job": record.id, **event})
            self._cond.notify_all()

    async def submit(self, spec: JobSpec) -> JobRecord:
        fingerprint = spec.fingerprint()
        with self._cond:
            self._seq += 1
            record = JobRecord(id=f"job-{self._seq:04d}", spec=spec,
                               fingerprint=fingerprint)
            self._records[record.id] = record
            self._order.append(record.id)
            primary_id = self._inflight.get(fingerprint)
            if primary_id is not None:
                record.dedup_of = primary_id
                self._followers.setdefault(primary_id, []).append(
                    record.id)
            else:
                self._inflight[fingerprint] = record.id
        self._push_event(record, {"event": "queued",
                                  "kind": spec.kind,
                                  "fingerprint": fingerprint,
                                  "dedup_of": record.dedup_of})
        if record.dedup_of is None:
            await self._queue.put(record.id)
        return record

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def jobs(self) -> list[dict]:
        with self._lock:
            return [self._records[i].status() for i in self._order]

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued job (running jobs finish; followers detach)."""
        with self._cond:
            record = self._records.get(job_id)
            if record is None or record.terminal:
                return False
            if record.state != "queued":
                return False
            record.state = "cancelled"
            record.finished_at = time.time()
            if record.dedup_of is not None:
                peers = self._followers.get(record.dedup_of, [])
                if job_id in peers:
                    peers.remove(job_id)
            elif self._inflight.get(record.fingerprint) == job_id:
                del self._inflight[record.fingerprint]
            self._cond.notify_all()
        self._push_event(record, {"event": "cancelled"})
        return True

    # -- streaming ------------------------------------------------------
    def events_since(self, job_id: str, since: int = 0
                     ) -> tuple[list[dict], bool]:
        """Events after ``since`` plus whether the job is terminal."""
        with self._lock:
            record = self._records[job_id]
            return list(record.events[since:]), record.terminal

    def wait_events(self, job_id: str, since: int,
                    timeout: float = 10.0) -> tuple[list[dict], bool]:
        """Block (handler thread) until new events arrive or timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            record = self._records[job_id]
            while len(record.events) <= since and not record.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return list(record.events[since:]), record.terminal

    # -- execution ------------------------------------------------------
    def _finish(self, record: JobRecord, *, payload: dict | None,
                cache: str, seconds: float, error: str | None) -> None:
        with self._cond:
            record.payload = payload
            record.cache = cache
            record.seconds = seconds
            record.error = error
            record.state = "failed" if error else "done"
            record.finished_at = time.time()
            if self._inflight.get(record.fingerprint) == record.id:
                del self._inflight[record.fingerprint]
            followers = self._followers.pop(record.id, [])
            follower_records = [self._records[i] for i in followers]
            for frec in follower_records:
                frec.payload = payload
                frec.cache = "dedup"
                frec.seconds = seconds
                frec.error = error
                frec.state = record.state
                frec.started_at = record.started_at
                frec.finished_at = record.finished_at
            self._cond.notify_all()
        terminal_event = ({"event": "failed", "error": error} if error
                          else {"event": "done", "cache": cache,
                                "seconds": round(seconds, 6)})
        self._push_event(record, terminal_event)
        for frec in follower_records:
            self._push_event(frec, {**terminal_event,
                                    "cache": "dedup",
                                    "dedup_of": record.id})

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            record = self.get(job_id)
            if record is None or record.terminal:
                continue
            with self._cond:
                record.state = "running"
                record.started_at = time.time()
                self._cond.notify_all()
            self._push_event(record, {"event": "started"})

            def progress(event: dict, _record=record) -> None:
                # Called from the executor thread: append directly, the
                # event log is lock-protected (no loop hop needed).
                self._push_event(_record, event)

            try:
                outcome = await loop.run_in_executor(
                    self._executor,
                    lambda r=record, p=progress: run_job(
                        r.spec, store=self._store, progress=p))
            except Exception as exc:  # noqa: BLE001 — report, don't die
                self._finish(record, payload=None, cache="",
                             seconds=0.0,
                             error=f"{type(exc).__name__}: {exc}")
            else:
                self._finish(record, payload=outcome.payload,
                             cache=outcome.cache,
                             seconds=outcome.seconds, error=None)
