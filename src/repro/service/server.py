"""Stdlib-only HTTP/JSON API over the job orchestrator.

Endpoints (all JSON):

* ``POST /jobs``              — submit a job document (``{"kind": ...}``);
  returns ``202`` with the job id, fingerprint and dedup target.
* ``GET  /jobs``              — list all submissions.
* ``GET  /jobs/<id>``         — status (state, cache, seconds, error).
* ``GET  /jobs/<id>/result``  — the result payload once terminal
  (``409`` while queued/running).
* ``GET  /jobs/<id>/stream``  — chunked event stream: one JSON object
  per line (queued, started, per-stage timings, done/failed), closing
  after the terminal event.
* ``GET  /jobs/<id>/events``  — polling alternative (``?since=N``).
* ``POST /jobs/<id>/cancel``  — cancel a queued job.
* ``GET  /healthz``           — liveness probe.

The orchestrator's asyncio loop runs in a dedicated daemon thread;
handler threads (``ThreadingHTTPServer``) submit/cancel by bridging with
``asyncio.run_coroutine_threadsafe`` and read the thread-safe record
store directly for status and streaming.  No third-party dependencies.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.core.spec import SpecError, job_from_dict
from repro.service.orchestrator import ENV_STORE, Orchestrator

DEFAULT_PORT = 8732


class HdfService:
    """The serving container: orchestrator loop thread + HTTP server."""

    def __init__(self, *, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 store=ENV_STORE, workers: int = 2):
        self.orchestrator = Orchestrator(store=store, workers=workers)
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True)
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

    # -- loop plumbing --------------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coro) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "HdfService":
        self._loop_thread.start()
        self._call(self.orchestrator.start())
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        try:
            self._call(self.orchestrator.close())
        except RuntimeError:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=5.0)

    # -- operations (shared by handler threads and tests) ---------------
    def submit(self, document: dict) -> dict:
        spec = job_from_dict(document)
        record = self._call(self.orchestrator.submit(spec))
        return {"id": record.id, "kind": spec.kind,
                "fingerprint": record.fingerprint,
                "state": record.state,
                "deduped": record.dedup_of is not None,
                "dedup_of": record.dedup_of}

    def cancel(self, job_id: str) -> bool:
        return self._call(self.orchestrator.cancel(job_id))


def _make_handler(service: HdfService):
    orch = service.orchestrator

    class ServiceHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-hdf-service"

        # -- helpers ---------------------------------------------------
        def _json(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, indent=2, sort_keys=True).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._json(status, {"error": message})

        def _record_or_404(self, job_id: str):
            record = orch.get(job_id)
            if record is None:
                self._error(404, f"unknown job id {job_id!r}")
            return record

        def log_message(self, fmt: str, *args) -> None:
            pass  # keep stdout/stderr for the serve banner only

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path, _, query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            if parts == ["healthz"]:
                self._json(200, {"ok": True, "jobs": len(orch.jobs())})
            elif parts == ["jobs"]:
                self._json(200, {"jobs": orch.jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                record = self._record_or_404(parts[1])
                if record is not None:
                    self._json(200, record.status())
            elif len(parts) == 3 and parts[0] == "jobs":
                job_id, verb = parts[1], parts[2]
                record = self._record_or_404(job_id)
                if record is None:
                    return
                if verb == "result":
                    if not record.terminal:
                        self._error(409, f"job {job_id} is "
                                         f"{record.state}; result not "
                                         f"ready")
                    elif record.state != "done":
                        self._json(200, {**record.status()})
                    else:
                        self._json(200, {**record.status(),
                                         "result": record.payload})
                elif verb == "events":
                    since = _since(query)
                    events, terminal = orch.events_since(job_id, since)
                    self._json(200, {"events": events,
                                     "terminal": terminal})
                elif verb == "stream":
                    self._stream(job_id)
                else:
                    self._error(404, f"unknown endpoint {path!r}")
            else:
                self._error(404, f"unknown endpoint {path!r}")

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            parts = [p for p in self.path.split("/") if p]
            if parts == ["jobs"]:
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length)
                try:
                    document = json.loads(raw or b"null")
                    response = service.submit(document)
                except SpecError as exc:
                    self._error(400, str(exc))
                    return
                except json.JSONDecodeError as exc:
                    self._error(400, f"request body is not valid "
                                     f"JSON: {exc}")
                    return
                self._json(202, response)
            elif (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "cancel"):
                record = self._record_or_404(parts[1])
                if record is not None:
                    cancelled = service.cancel(parts[1])
                    self._json(200, {"id": parts[1],
                                     "cancelled": cancelled,
                                     "state": orch.get(parts[1]).state})
            else:
                self._error(404, f"unknown endpoint {self.path!r}")

        def _stream(self, job_id: str) -> None:
            """Chunked JSON-lines event stream until the terminal event."""
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()

            def write_chunk(data: bytes) -> None:
                self.wfile.write(f"{len(data):X}\r\n".encode())
                self.wfile.write(data + b"\r\n")
                self.wfile.flush()

            seen = 0
            while True:
                events, terminal = orch.wait_events(job_id, seen,
                                                    timeout=10.0)
                for event in events:
                    line = json.dumps(event,
                                      separators=(", ", ": ")) + "\n"
                    write_chunk(line.encode())
                seen += len(events)
                if terminal and not events:
                    break
                if terminal and events:
                    # Drain whatever landed with the terminal flip, then
                    # re-check so the final event is always delivered.
                    continue
            write_chunk(b"")  # terminating zero-length chunk

    return ServiceHandler


def _since(query: str) -> int:
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == "since":
            try:
                return max(0, int(value))
            except ValueError:
                return 0
    return 0


def serve(*, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          store=ENV_STORE, workers: int = 2) -> HdfService:
    """Build and start a service (the ``repro serve`` entry point)."""
    return HdfService(host=host, port=port, store=store,
                      workers=workers).start()
