"""Timing-accurate simulation engines.

* :mod:`repro.simulation.logic` — boolean / ternary gate evaluation,
* :mod:`repro.simulation.waveform` — transition-list signal waveforms,
* :mod:`repro.simulation.wave_sim` — topological waveform simulator with
  pin-to-pin rise/fall delays and fanout-cone faulty resimulation (the
  CPU stand-in for the GPU simulator [20] used in the paper),
* :mod:`repro.simulation.parallel_sim` — 64-way bit-parallel two-valued
  simulator used by the ATPG for fault dropping,
* :mod:`repro.simulation.event_sim` — event-driven reference engine used to
  cross-check the topological simulator in tests,
* :mod:`repro.simulation.word_wave` — batched array-kernel timed waveform
  engine (flat event arrays, levelized merge kernels); the default
  ``engine="wordwave"`` of the detection stage, golden-checked against
  :mod:`repro.simulation.wave_sim`.
"""

from repro.simulation.waveform import Waveform
from repro.simulation.wave_sim import WaveformSimulator

__all__ = ["Waveform", "WaveformSimulator"]
