"""Switching-activity analysis from waveform simulation.

Toggle counts per net under a workload sample.  Two consumers:

* **Aging**: HCI degradation is driven by switching activity (Sec. I); the
  per-gate activity factors of an :class:`~repro.aging.degradation.
  AgingScenario` can be derived from the *actual* workload instead of
  seeded randomness (:func:`activity_factors`).
* **Power sanity**: weighted switching activity is the standard dynamic
  power proxy; the examples use it to compare workloads.

Counts come from the timing-accurate waveforms, so glitch transitions that
survive the inertial filter are included — as they are in real dynamic
stress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.wave_sim import WaveformSimulator


@dataclass(frozen=True)
class ActivityReport:
    """Per-gate toggle statistics for one workload."""

    circuit: Circuit
    toggles: tuple[int, ...]
    patterns: int

    def rate(self, gate: int) -> float:
        """Average toggles per applied pattern for one gate."""
        if self.patterns == 0:
            return 0.0
        return self.toggles[gate] / self.patterns

    @property
    def total_toggles(self) -> int:
        return sum(self.toggles)

    def busiest(self, k: int = 5) -> list[tuple[str, int]]:
        """The k most active nets as (name, toggle count)."""
        order = sorted(range(len(self.toggles)),
                       key=lambda g: (-self.toggles[g], g))
        return [(self.circuit.gates[g].name, self.toggles[g])
                for g in order[:k]]


def measure_activity(circuit: Circuit,
                     patterns: Sequence[tuple[Sequence[int], Sequence[int]]],
                     *, inertial: float | None = None) -> ActivityReport:
    """Simulate the workload and count transitions per net."""
    sim = (WaveformSimulator(circuit, inertial=inertial)
           if inertial is not None else WaveformSimulator(circuit))
    toggles = [0] * len(circuit.gates)
    for launch, capture in patterns:
        result = sim.simulate(list(launch), list(capture))
        for g in range(len(circuit.gates)):
            toggles[g] += result.waveforms[g].num_transitions
    return ActivityReport(circuit=circuit, toggles=tuple(toggles),
                          patterns=len(patterns))


def activity_factors(report: ActivityReport, *,
                     floor: float = 0.05) -> dict[int, float]:
    """Per-gate activity factors normalized to mean 1.0 (for HCI models).

    Gates that never toggle get ``floor`` (quiescent transistors still see
    some stress); the normalization keeps an
    :class:`~repro.aging.degradation.AgingScenario` comparable across
    workloads.
    """
    comb = [g for g in report.circuit.combinational_gates()]
    if not comb:
        return {}
    raw = {g: max(floor, report.rate(g)) for g in comb}
    mean = sum(raw.values()) / len(raw)
    if mean <= 0.0:
        return {g: 1.0 for g in comb}
    return {g: v / mean for g, v in raw.items()}


def workload_aging_scenario(circuit: Circuit,
                            patterns: Sequence[tuple[Sequence[int],
                                                     Sequence[int]]],
                            *, seed: int = 0):
    """An AgingScenario whose HCI activity comes from the real workload.

    BTI stress and EM current keep their seeded per-gate draw; the HCI
    activity factor is replaced by the measured, normalized toggle rate.
    """
    from repro.aging.degradation import AgingScenario

    report = measure_activity(circuit, patterns)
    factors = activity_factors(report)

    class _WorkloadScenario(AgingScenario):
        def _gate_factors(self, gate: int):
            stress, _activity, current = super()._gate_factors(gate)
            return (stress, factors.get(gate, 1.0), current)

    return _WorkloadScenario(seed=seed)
