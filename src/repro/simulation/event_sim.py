"""Event-driven timing simulator — reference engine.

Independent implementation of the same delay semantics as
:class:`repro.simulation.wave_sim.WaveformSimulator` (pin-to-pin rise/fall
delays, slowest-simultaneous-pin attribution, inertial pulse cancellation),
but organized as a global time-ordered event queue instead of a topological
waveform sweep.  The test suite cross-checks the two engines against each
other; agreement of two independently-written simulators is the strongest
correctness evidence available without a golden reference.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.logic import eval_binary
from repro.simulation.wave_sim import DEFAULT_INERTIAL_PS
from repro.simulation.waveform import Waveform
from repro.utils.intervals import EPS


class EventSimulator:
    """Event-driven two-valued timing simulation of a pattern pair."""

    def __init__(self, circuit: Circuit, *,
                 inertial: float = DEFAULT_INERTIAL_PS) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before simulation")
        self.circuit = circuit
        self.inertial = inertial

    def simulate(self, launch: Sequence[int],
                 capture: Sequence[int]) -> list[Waveform]:
        """Waveform per gate for one pattern pair (launch edge at t = 0)."""
        circuit = self.circuit
        sources = circuit.sources()
        if len(launch) != len(sources) or len(capture) != len(sources):
            raise ValueError("pattern length does not match sources")

        n = len(circuit.gates)
        value = [0] * n          # current settled value per gate
        history: list[list[tuple[float, int]]] = [[] for _ in range(n)]
        initial = [0] * n

        # Initialise: settle the launch state (values only, no waveforms).
        src_launch = dict(zip(sources, launch))
        for idx in circuit.topo_order:
            g = circuit.gates[idx]
            if GateKind.is_source(g.kind):
                if g.kind == GateKind.CONST0:
                    value[idx] = 0
                elif g.kind == GateKind.CONST1:
                    value[idx] = 1
                else:
                    value[idx] = src_launch[idx]
            else:
                value[idx] = eval_binary(
                    g.kind, [value[s] for s in g.fanin])
            initial[idx] = value[idx]

        # Event queue: (time, seq, gate, new_value).  ``pending`` holds the
        # scheduled-but-unfired output events per gate for inertial
        # cancellation.
        counter = itertools.count()
        queue: list[tuple[float, int, int, int]] = []
        pending: list[list[tuple[float, int]]] = [[] for _ in range(n)]

        def schedule(gate: int, t: float, v: int) -> None:
            # Inertial cancellation against the most recent pending event.
            while pending[gate] and t - pending[gate][-1][0] < self.inertial - EPS:
                pending[gate].pop()
                v_prev = (pending[gate][-1][1] if pending[gate]
                          else _last_value(gate))
                if v == v_prev:
                    return  # the pulse annihilated
            last_v = pending[gate][-1][1] if pending[gate] else _last_value(gate)
            if v == last_v:
                return
            pending[gate].append((t, v))
            heapq.heappush(queue, (t, next(counter), gate, v))

        def _last_value(gate: int) -> int:
            return history[gate][-1][1] if history[gate] else initial[gate]

        for idx, v2 in zip(sources, capture):
            g = circuit.gates[idx]
            if g.kind in (GateKind.CONST0, GateKind.CONST1):
                continue
            if v2 != value[idx]:
                history[idx].append((0.0, v2))
                value[idx] = v2
                self._notify(idx, 0.0, value, schedule)

        while queue:
            t, _seq, gate, v = heapq.heappop(queue)
            if not pending[gate] or abs(pending[gate][0][0] - t) > EPS \
                    or pending[gate][0][1] != v:
                continue  # cancelled by inertial filtering
            pending[gate].pop(0)
            if value[gate] == v:
                continue
            value[gate] = v
            history[gate].append((t, v))
            self._notify(gate, t, value, schedule)

        return [Waveform(initial[i], history[i]) for i in range(n)]

    def _notify(self, driver: int, t: float, value: list[int],
                schedule) -> None:
        """Re-evaluate all consumers of ``driver`` after its change at t."""
        circuit = self.circuit
        for consumer, pin in circuit.fanouts(driver):
            g = circuit.gates[consumer]
            if not GateKind.is_combinational(g.kind):
                continue
            new_out = eval_binary(g.kind, [value[s] for s in g.fanin])
            rise, fall = g.pin_delays[pin]
            delay = rise if new_out == 1 else fall
            schedule(consumer, t + delay, new_out)
