"""Gate evaluation for two- and three-valued logic.

Values are small ints: ``0``, ``1`` and (ternary only) ``X = 2``.  The
three-valued tables follow the usual pessimistic Kleene semantics (an X input
propagates unless a controlling value decides the output).
"""

from __future__ import annotations

from typing import Sequence

from repro.netlist.circuit import GateKind

#: Unknown value in ternary simulation.
X = 2


def eval_binary(kind: str, values: Sequence[int]) -> int:
    """Two-valued evaluation of a combinational gate."""
    if kind == GateKind.AND:
        return int(all(values))
    if kind == GateKind.NAND:
        return int(not all(values))
    if kind == GateKind.OR:
        return int(any(values))
    if kind == GateKind.NOR:
        return int(not any(values))
    if kind == GateKind.XOR:
        return sum(values) & 1
    if kind == GateKind.XNOR:
        return 1 - (sum(values) & 1)
    if kind == GateKind.NOT:
        return 1 - values[0]
    if kind == GateKind.BUF:
        return values[0]
    raise ValueError(f"cannot evaluate gate kind {kind!r}")


def eval_ternary(kind: str, values: Sequence[int]) -> int:
    """Three-valued (0/1/X) evaluation of a combinational gate.

    Written with explicit loops and early exits: this is the innermost
    function of the PODEM implication engine.
    """
    if kind == GateKind.AND or kind == GateKind.NAND:
        out = 1
        for v in values:
            if v == 0:
                out = 0
                break
            if v == X:
                out = X
        if kind == GateKind.NAND and out != X:
            out = 1 - out
        return out
    if kind == GateKind.OR or kind == GateKind.NOR:
        out = 0
        for v in values:
            if v == 1:
                out = 1
                break
            if v == X:
                out = X
        if kind == GateKind.NOR and out != X:
            out = 1 - out
        return out
    if kind == GateKind.XOR or kind == GateKind.XNOR:
        out = 0
        for v in values:
            if v == X:
                return X
            out ^= v
        if kind == GateKind.XNOR:
            out = 1 - out
        return out
    if kind == GateKind.NOT:
        v = values[0]
        return X if v == X else 1 - v
    if kind == GateKind.BUF:
        return values[0]
    raise ValueError(f"cannot evaluate gate kind {kind!r}")


def _maybe_invert(value: int, invert: bool) -> int:
    if not invert:
        return value
    return X if value == X else 1 - value


def controlling_value(kind: str) -> int | None:
    """The input value that alone determines the output, if any."""
    if kind in (GateKind.AND, GateKind.NAND):
        return 0
    if kind in (GateKind.OR, GateKind.NOR):
        return 1
    return None


def inversion_parity(kind: str) -> bool:
    """True when the gate inverts its (controlling/last) input."""
    return kind in (GateKind.NAND, GateKind.NOR, GateKind.NOT, GateKind.XNOR)
