"""Bit-parallel two-valued logic simulation.

Packs one test pattern per bit, so a single topological sweep evaluates
*all* patterns of a test set at once.  Used by the ATPG for random-pattern
fault grading, fault dropping and static compaction — the classic
single-fault-propagation scheme: the fault-free words are computed once,
then each fault forces its site and re-evaluates only its fanout cone.

Two engines share one :class:`BitParallelSimulator` instance:

* the **reference** engine (the seed implementation, retained verbatim for
  golden-equivalence testing and perf baselining) carries the packed
  patterns as arbitrary-width Python integers and re-evaluates one gate at
  a time (:meth:`simulate`, :meth:`stuck_at_detect_mask`);
* the **word-matrix** engine holds a ``(gates × W)`` ``uint64`` matrix
  (``W = ceil(patterns / 64)`` words, same little-endian word convention as
  :mod:`repro.utils.bitset`) and evaluates the circuit in *levelized
  per-kind batches* — one vectorized numpy reduction per (level, kind,
  arity) group instead of one Python call per gate
  (:meth:`pack_vectors_words`, :meth:`simulate_words`).  Single-fault
  propagation grades faults in *cone-sharing batches*
  (:meth:`stuck_at_detect_words`): a batch of faults is carried as extra
  matrix columns, their memoized cone schedules
  (:meth:`Circuit.cone_schedule`) are merged, and one sweep over the merged
  schedule re-evaluates every column at once.  Evaluating a gate outside a
  particular fault's cone is harmless — its fanin equal the fault-free
  words, so the result does too — which is what makes the sharing sound.

Both engines produce bit-identical detect masks (guarded by
``tests/test_parallel_sim_matrix.py`` and the ATPG golden tests).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.faults.models import StuckAtFault
from repro.netlist.circuit import Circuit, GateKind

#: Bits per packed word of the matrix engine.
WORD_BITS = 64

_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Gate kind → (numpy reduction ufunc or None for unary, invert output).
_KIND_KERNELS = {
    GateKind.AND: (np.bitwise_and, False),
    GateKind.NAND: (np.bitwise_and, True),
    GateKind.OR: (np.bitwise_or, False),
    GateKind.NOR: (np.bitwise_or, True),
    GateKind.XOR: (np.bitwise_xor, False),
    GateKind.XNOR: (np.bitwise_xor, True),
    GateKind.BUF: (None, False),
    GateKind.NOT: (None, True),
}


def _eval_word(kind: str, words: Sequence[int], mask: int) -> int:
    """Evaluate one gate over packed pattern words (reference engine)."""
    if kind == GateKind.AND or kind == GateKind.NAND:
        w = mask
        for x in words:
            w &= x
        return w if kind == GateKind.AND else (mask ^ w)
    if kind == GateKind.OR or kind == GateKind.NOR:
        w = 0
        for x in words:
            w |= x
        return w if kind == GateKind.OR else (mask ^ w)
    if kind == GateKind.XOR or kind == GateKind.XNOR:
        w = 0
        for x in words:
            w ^= x
        return w if kind == GateKind.XOR else (mask ^ w)
    if kind == GateKind.NOT:
        return mask ^ words[0]
    if kind == GateKind.BUF:
        return words[0]
    raise ValueError(f"cannot evaluate gate kind {kind!r}")


def num_words(width: int) -> int:
    """uint64 words needed for ``width`` packed patterns (at least one)."""
    return max(1, (width + WORD_BITS - 1) // WORD_BITS)


def mask_row(width: int) -> np.ndarray:
    """``(W,)`` uint64 row with the low ``width`` bits set."""
    row = np.zeros(num_words(width), dtype=np.uint64)
    full, rem = divmod(width, WORD_BITS)
    row[:full] = _FULL_WORD
    if rem:
        row[full] = np.uint64((1 << rem) - 1)
    return row


def row_to_mask(row: np.ndarray) -> int:
    """One packed ``(W,)`` row as an arbitrary-width Python int mask."""
    return int.from_bytes(np.ascontiguousarray(row).tobytes(), "little")


class BitParallelSimulator:
    """Packed-pattern logic simulation of a finalized circuit."""

    def __init__(self, circuit: Circuit) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before simulation")
        self.circuit = circuit
        self._order = [i for i in circuit.topo_order
                       if GateKind.is_combinational(circuit.gates[i].kind)]
        self._obs_gates = sorted({op.gate
                                  for op in circuit.observation_points()})
        # Matrix-engine structures, built lazily on first use.
        self._level_batches: list[tuple] | None = None
        self._gate_kernels: list[tuple | None] | None = None
        self._sources_np: np.ndarray | None = None
        self._const1_np: np.ndarray | None = None
        self._obs_np: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fault-free simulation (reference engine: Python big-int words)
    # ------------------------------------------------------------------
    def simulate(self, source_words: Mapping[int, int], width: int) -> list[int]:
        """Fault-free packed values for every gate.

        ``source_words`` maps source gate index → packed word; missing
        sources default to 0.  ``width`` is the number of packed patterns.
        """
        mask = (1 << width) - 1
        words = [0] * len(self.circuit.gates)
        for idx, w in source_words.items():
            words[idx] = w & mask
        for g in self.circuit.gates:
            if g.kind == GateKind.CONST1:
                words[g.index] = mask
        for idx in self._order:
            g = self.circuit.gates[idx]
            words[idx] = _eval_word(
                g.kind, [words[s] for s in g.fanin], mask)
        return words

    def activity_words(self, source_toggle_words: Mapping[int, int],
                       width: int) -> list[int]:
        """Transitive toggle activity per gate (one bit per pattern).

        ``source_toggle_words`` maps source gate index → packed word whose
        bit ``p`` is set when the source toggles between the launch and
        capture vector of pattern ``p``.  The word is OR-propagated through
        the combinational DAG: bit ``p`` of gate ``g`` is set iff *some*
        source in the fanin cone of ``g`` toggles under pattern ``p``.

        A clear bit is a guarantee: the waveform at ``g`` is constant under
        that pattern (no transition of either polarity, hazards included),
        which is what the activation pre-grading pass of the fault
        simulator prunes on.  A set bit only means the waveform *may*
        toggle (logic masking can still keep it constant).
        """
        mask = (1 << width) - 1
        words = [0] * len(self.circuit.gates)
        for idx, w in source_toggle_words.items():
            words[idx] = w & mask
        gates = self.circuit.gates
        for idx in self._order:
            acc = 0
            for s in gates[idx].fanin:
                acc |= words[s]
            words[idx] = acc
        return words

    def pack_vectors(self, vectors: Sequence[Sequence[int]]) -> tuple[dict[int, int], int]:
        """Pack per-pattern source vectors into words.

        Each vector assigns 0/1 to the sources in :meth:`Circuit.sources`
        order (don't-cares must be filled beforehand).  Returns
        ``(source_words, width)``.
        """
        sources = self.circuit.sources()
        width = len(vectors)
        out = {idx: 0 for idx in sources}
        for p, vec in enumerate(vectors):
            if len(vec) != len(sources):
                raise ValueError(
                    f"vector {p} has {len(vec)} values, expected {len(sources)}")
            bit = 1 << p
            for idx, v in zip(sources, vec):
                if v == 1:
                    out[idx] |= bit
                elif v != 0:
                    raise ValueError("pack_vectors needs fully-specified vectors")
        return out, width

    # ------------------------------------------------------------------
    # Stuck-at fault detection (reference engine: one cone walk per fault)
    # ------------------------------------------------------------------
    def stuck_at_detect_mask(self, good_words: Sequence[int],
                             fault: StuckAtFault, width: int) -> int:
        """Bitmask of patterns whose responses expose the stuck-at fault."""
        mask = (1 << width) - 1
        circuit = self.circuit
        site = fault.site
        forced = mask if fault.value else 0

        faulty: dict[int, int] = {}

        def word_of(idx: int) -> int:
            return faulty.get(idx, good_words[idx])

        start = site.gate
        g = circuit.gates[start]
        if site.is_output_pin:
            faulty[start] = forced
        else:
            ins = [word_of(s) for s in g.fanin]
            ins[site.pin] = forced
            faulty[start] = _eval_word(g.kind, ins, mask)
        if faulty[start] == good_words[start]:
            # The forced value never changes the site signal: no effect.
            return 0

        cone = circuit.fanout_cone(start)
        for idx in self._order:
            if idx not in cone:
                continue
            g = circuit.gates[idx]
            faulty[idx] = _eval_word(
                g.kind, [word_of(s) for s in g.fanin], mask)

        detect = 0
        for og in self._obs_gates:
            detect |= word_of(og) ^ good_words[og]
        return detect & mask

    # ------------------------------------------------------------------
    # Word-matrix engine: levelized vectorized evaluation
    # ------------------------------------------------------------------
    def _build_matrix_plan(self) -> None:
        """Group the topological order into (level, kind, arity) batches.

        Every fanin of a gate at level L sits at a level < L, so gates of
        one level are mutually independent and any batch order inside a
        level is sound.  One numpy reduction then evaluates a whole batch.
        """
        circuit = self.circuit
        groups: dict[tuple[int, str, int], list[int]] = {}
        for idx in self._order:
            g = circuit.gates[idx]
            groups.setdefault((circuit.level(idx), g.kind, g.arity),
                              []).append(idx)
        batches = []
        for (_lvl, kind, _arity), idxs in sorted(groups.items()):
            op, invert = _KIND_KERNELS[kind]
            out_idx = np.asarray(idxs, dtype=np.intp)
            fanin = np.asarray([circuit.gates[i].fanin for i in idxs],
                               dtype=np.intp)
            batches.append((op, invert, out_idx, fanin))
        kernels: list[tuple | None] = [None] * len(circuit.gates)
        for idx in self._order:
            g = circuit.gates[idx]
            op, invert = _KIND_KERNELS[g.kind]
            kernels[idx] = (op, invert, np.asarray(g.fanin, dtype=np.intp))
        self._level_batches = batches
        self._gate_kernels = kernels
        self._sources_np = np.asarray(self.circuit.sources(), dtype=np.intp)
        self._const1_np = np.asarray(
            [g.index for g in circuit.gates if g.kind == GateKind.CONST1],
            dtype=np.intp)
        self._obs_np = np.asarray(self._obs_gates, dtype=np.intp)

    def pack_vectors_words(self, vectors: Sequence[Sequence[int]]
                           ) -> tuple[np.ndarray, int]:
        """Pack per-pattern source vectors into a ``(gates, W)`` matrix.

        Bit ``p`` of word ``p >> 6`` in row ``g`` is pattern ``p``'s value
        at source ``g`` (little-endian, the :mod:`repro.utils.bitset`
        convention).  Non-source rows are zero; CONST1 rows carry the full
        pattern mask.  Returns ``(matrix, width)``.
        """
        if self._level_batches is None:
            self._build_matrix_plan()
        sources = self._sources_np
        width = len(vectors)
        w = num_words(width)
        matrix = np.zeros((len(self.circuit.gates), w), dtype=np.uint64)
        if width:
            arr = np.asarray(vectors, dtype=np.uint8)
            if arr.ndim != 2 or arr.shape[1] != len(sources):
                raise ValueError(
                    f"vectors must all have {len(sources)} values")
            if arr.max(initial=0) > 1:
                raise ValueError("pack_vectors needs fully-specified vectors")
            packed = np.packbits(arr.T, axis=1, bitorder="little")
            padded = np.zeros((len(sources), w * 8), dtype=np.uint8)
            padded[:, :packed.shape[1]] = packed
            matrix[sources] = padded.view(np.uint64)
        if self._const1_np.size:
            matrix[self._const1_np] = mask_row(width)
        return matrix, width

    def simulate_words(self, matrix: np.ndarray, width: int) -> np.ndarray:
        """Fault-free simulation of a packed ``(gates, W)`` matrix.

        ``matrix`` must carry the source rows (see
        :meth:`pack_vectors_words`); the combinational rows are filled in
        place, one vectorized kernel per (level, kind, arity) batch, and
        the same array is returned.
        """
        if self._level_batches is None:
            self._build_matrix_plan()
        mrow = mask_row(width)
        for op, invert, out_idx, fanin in self._level_batches:
            if op is None:
                vals = matrix[fanin[:, 0]]
            else:
                vals = op.reduce(matrix[fanin], axis=1)
            if invert:
                vals = vals ^ mrow
            matrix[out_idx] = vals
        return matrix

    def _forced_site_row(self, good: np.ndarray, fault: StuckAtFault,
                         mrow: np.ndarray) -> np.ndarray:
        """Faulty ``(W,)`` word at the fault's site gate output."""
        site = fault.site
        forced = mrow if fault.value else np.zeros_like(mrow)
        if site.is_output_pin:
            return forced
        g = self.circuit.gates[site.gate]
        ins = [good[s] for s in g.fanin]
        ins[site.pin] = forced
        op, invert = _KIND_KERNELS[g.kind]
        row = ins[0].copy() if op is None else op.reduce(np.stack(ins), axis=0)
        return (row ^ mrow) if invert else row

    def _grade_batch(self, good: np.ndarray,
                     faults: Sequence[StuckAtFault], width: int,
                     out: np.ndarray, out_rows: Sequence[int]) -> None:
        """Single-fault propagation of one cone-sharing batch.

        Every fault of the batch occupies one column of a ``(gates, B, W)``
        faulty matrix initialized to the fault-free words; the merged cone
        schedule is swept once, evaluating all columns per gate.  A column
        whose fault's cone does not contain the gate re-evaluates to the
        fault-free word, so over-evaluation cannot corrupt it; site gates
        are re-forced after evaluation in case they sit inside another
        batch member's cone.
        """
        circuit = self.circuit
        mrow = mask_row(width)
        site_rows = []
        active: list[int] = []
        for b, f in enumerate(faults):
            row = self._forced_site_row(good, f, mrow)
            if bool(np.any(row != good[f.site.gate])):
                active.append(b)
                site_rows.append(row)
            # else: the forced value never changes the site signal — the
            # detect row stays zero (pre-filled by the caller).
        if not active:
            return
        b_n = len(active)
        faulty = np.repeat(good[:, None, :], b_n, axis=1)
        forced_at: dict[int, list[tuple[int, np.ndarray]]] = {}
        cone_union: set[int] = set()
        for col, b in enumerate(active):
            site_gate = faults[b].site.gate
            faulty[site_gate, col] = site_rows[col]
            forced_at.setdefault(site_gate, []).append((col, site_rows[col]))
            cone_union.update(circuit.cone_schedule(site_gate))
        pos = circuit.topo_positions
        kernels = self._gate_kernels
        for idx in sorted(cone_union, key=pos.__getitem__):
            op, invert, fanin = kernels[idx]
            if op is None:
                vals = faulty[fanin[0]].copy()
            else:
                vals = op.reduce(faulty[fanin], axis=0)
            if invert:
                vals ^= mrow
            refor = forced_at.get(idx)
            if refor is not None:
                for col, row in refor:
                    vals[col] = row
            faulty[idx] = vals
        obs = self._obs_np
        if obs.size:
            diff = faulty[obs] ^ good[obs][:, None, :]
            det = np.bitwise_or.reduce(diff, axis=0)
            for col, b in enumerate(active):
                out[out_rows[b]] = det[col]

    def stuck_at_detect_words(self, good: np.ndarray,
                              faults: Sequence[StuckAtFault], width: int,
                              *, batch: int = 64) -> np.ndarray:
        """Per-fault ``(len(faults), W)`` detect words, batched grading.

        ``good`` is the fault-free matrix from :meth:`simulate_words`.
        Faults are sorted by the topological position of their site so each
        batch shares (and each merged schedule stays close to) one fanout
        region; rows of the result stay in input order and are bit-
        identical to :meth:`stuck_at_detect_mask`.
        """
        if self._level_batches is None:
            self._build_matrix_plan()
        out = np.zeros((len(faults), good.shape[1]), dtype=np.uint64)
        if not len(faults) or width == 0:
            return out
        pos = self.circuit.topo_positions
        order = sorted(range(len(faults)),
                       key=lambda i: (pos[faults[i].site.gate], i))
        for lo in range(0, len(order), batch):
            chunk = order[lo:lo + batch]
            self._grade_batch(good, [faults[i] for i in chunk], width,
                              out, chunk)
        return out
