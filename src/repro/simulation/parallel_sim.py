"""Bit-parallel two-valued logic simulation.

Packs one test pattern per bit of an arbitrary-width Python integer, so a
single topological sweep evaluates *all* patterns of a test set at once.
Used by the ATPG for random-pattern fault grading, fault dropping and static
compaction — the classic single-fault-propagation scheme: the fault-free
words are computed once, then each fault forces its site and re-evaluates
only its fanout cone.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.faults.models import StuckAtFault
from repro.netlist.circuit import Circuit, GateKind


def _eval_word(kind: str, words: Sequence[int], mask: int) -> int:
    """Evaluate one gate over packed pattern words."""
    if kind == GateKind.AND or kind == GateKind.NAND:
        w = mask
        for x in words:
            w &= x
        return w if kind == GateKind.AND else (mask ^ w)
    if kind == GateKind.OR or kind == GateKind.NOR:
        w = 0
        for x in words:
            w |= x
        return w if kind == GateKind.OR else (mask ^ w)
    if kind == GateKind.XOR or kind == GateKind.XNOR:
        w = 0
        for x in words:
            w ^= x
        return w if kind == GateKind.XOR else (mask ^ w)
    if kind == GateKind.NOT:
        return mask ^ words[0]
    if kind == GateKind.BUF:
        return words[0]
    raise ValueError(f"cannot evaluate gate kind {kind!r}")


class BitParallelSimulator:
    """Packed-pattern logic simulation of a finalized circuit."""

    def __init__(self, circuit: Circuit) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before simulation")
        self.circuit = circuit
        self._order = [i for i in circuit.topo_order
                       if GateKind.is_combinational(circuit.gates[i].kind)]
        self._obs_gates = sorted({op.gate
                                  for op in circuit.observation_points()})

    # ------------------------------------------------------------------
    # Fault-free simulation
    # ------------------------------------------------------------------
    def simulate(self, source_words: Mapping[int, int], width: int) -> list[int]:
        """Fault-free packed values for every gate.

        ``source_words`` maps source gate index → packed word; missing
        sources default to 0.  ``width`` is the number of packed patterns.
        """
        mask = (1 << width) - 1
        words = [0] * len(self.circuit.gates)
        for idx, w in source_words.items():
            words[idx] = w & mask
        for g in self.circuit.gates:
            if g.kind == GateKind.CONST1:
                words[g.index] = mask
        for idx in self._order:
            g = self.circuit.gates[idx]
            words[idx] = _eval_word(
                g.kind, [words[s] for s in g.fanin], mask)
        return words

    def activity_words(self, source_toggle_words: Mapping[int, int],
                       width: int) -> list[int]:
        """Transitive toggle activity per gate (one bit per pattern).

        ``source_toggle_words`` maps source gate index → packed word whose
        bit ``p`` is set when the source toggles between the launch and
        capture vector of pattern ``p``.  The word is OR-propagated through
        the combinational DAG: bit ``p`` of gate ``g`` is set iff *some*
        source in the fanin cone of ``g`` toggles under pattern ``p``.

        A clear bit is a guarantee: the waveform at ``g`` is constant under
        that pattern (no transition of either polarity, hazards included),
        which is what the activation pre-grading pass of the fault
        simulator prunes on.  A set bit only means the waveform *may*
        toggle (logic masking can still keep it constant).
        """
        mask = (1 << width) - 1
        words = [0] * len(self.circuit.gates)
        for idx, w in source_toggle_words.items():
            words[idx] = w & mask
        gates = self.circuit.gates
        for idx in self._order:
            acc = 0
            for s in gates[idx].fanin:
                acc |= words[s]
            words[idx] = acc
        return words

    def pack_vectors(self, vectors: Sequence[Sequence[int]]) -> tuple[dict[int, int], int]:
        """Pack per-pattern source vectors into words.

        Each vector assigns 0/1 to the sources in :meth:`Circuit.sources`
        order (don't-cares must be filled beforehand).  Returns
        ``(source_words, width)``.
        """
        sources = self.circuit.sources()
        width = len(vectors)
        out = {idx: 0 for idx in sources}
        for p, vec in enumerate(vectors):
            if len(vec) != len(sources):
                raise ValueError(
                    f"vector {p} has {len(vec)} values, expected {len(sources)}")
            bit = 1 << p
            for idx, v in zip(sources, vec):
                if v == 1:
                    out[idx] |= bit
                elif v != 0:
                    raise ValueError("pack_vectors needs fully-specified vectors")
        return out, width

    # ------------------------------------------------------------------
    # Stuck-at fault detection (single fault propagation over the cone)
    # ------------------------------------------------------------------
    def stuck_at_detect_mask(self, good_words: Sequence[int],
                             fault: StuckAtFault, width: int) -> int:
        """Bitmask of patterns whose responses expose the stuck-at fault."""
        mask = (1 << width) - 1
        circuit = self.circuit
        site = fault.site
        forced = mask if fault.value else 0

        faulty: dict[int, int] = {}

        def word_of(idx: int) -> int:
            return faulty.get(idx, good_words[idx])

        start = site.gate
        g = circuit.gates[start]
        if site.is_output_pin:
            faulty[start] = forced
        else:
            ins = [word_of(s) for s in g.fanin]
            ins[site.pin] = forced
            faulty[start] = _eval_word(g.kind, ins, mask)
        if faulty[start] == good_words[start]:
            # The forced value never changes the site signal: no effect.
            return 0

        cone = circuit.fanout_cone(start)
        for idx in self._order:
            if idx not in cone:
                continue
            g = circuit.gates[idx]
            faulty[idx] = _eval_word(
                g.kind, [word_of(s) for s in g.fanin], mask)

        detect = 0
        for og in self._obs_gates:
            detect |= word_of(og) ^ good_words[og]
        return detect & mask
