"""VCD (Value Change Dump) export of simulation results.

Dumps the waveforms of a :class:`~repro.simulation.wave_sim.SimResult` in
IEEE-1364 VCD so any standard waveform viewer (GTKWave, …) can inspect a
FAST pattern application, a fault's detection window or a monitor's guard
band.  Times are emitted in integer femtoseconds (1 ps = 1000 fs time
scale units avoids rounding sub-picosecond delay differences away).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.simulation.wave_sim import SimResult

#: Femtoseconds per picosecond (VCD timescale is 1 fs).
_FS = 1000

# VCD identifier alphabet (printable ASCII ! through ~).
_ID_FIRST, _ID_LAST = 33, 126


def _identifier(index: int) -> str:
    """Compact VCD identifier for the index-th signal."""
    span = _ID_LAST - _ID_FIRST + 1
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, span)
        out.append(chr(_ID_FIRST + rem))
    return "".join(reversed(out))


def write_vcd(result: SimResult, *, gates: Iterable[int] | None = None,
              module: str | None = None, date: str = "",
              comment: str = "repro waveform dump") -> str:
    """Render waveforms as VCD text.

    ``gates`` restricts the dump (defaults to every gate of the circuit).
    """
    circuit = result.circuit
    selected = sorted(gates) if gates is not None else list(
        range(len(circuit.gates)))
    ids = {g: _identifier(i) for i, g in enumerate(selected)}

    lines = []
    if date:
        lines += ["$date", f"  {date}", "$end"]
    lines += ["$comment", f"  {comment}", "$end",
              "$timescale 1fs $end",
              f"$scope module {module or circuit.name} $end"]
    for g in selected:
        name = circuit.gates[g].name.replace(" ", "_")
        lines.append(f"$var wire 1 {ids[g]} {name} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]

    # Initial values.
    lines.append("$dumpvars")
    for g in selected:
        lines.append(f"{result.waveforms[g].initial}{ids[g]}")
    lines.append("$end")

    # Merge all transitions into one global timeline.
    changes: list[tuple[int, int, int]] = []  # (time_fs, gate, value)
    for g in selected:
        for t, v in result.waveforms[g].events:
            changes.append((int(round(t * _FS)), g, v))
    changes.sort()
    current_time: int | None = None
    for t_fs, g, v in changes:
        if t_fs != current_time:
            lines.append(f"#{t_fs}")
            current_time = t_fs
        lines.append(f"{v}{ids[g]}")
    return "\n".join(lines) + "\n"


def save_vcd(result: SimResult, path: str | Path, **kwargs: object) -> None:
    Path(path).write_text(write_vcd(result, **kwargs))  # type: ignore[arg-type]
