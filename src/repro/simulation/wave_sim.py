"""Topological waveform simulator with pin-to-pin delays and fault injection.

This is the CPU stand-in for the GPU-accelerated timing-accurate simulator of
[20] used by the paper: for each test pattern pair it computes the complete
signal *waveform* of every net, from which fault detection ranges are obtained
by XOR-ing fault-free and faulty output waveforms.

Semantics:

* the launch transition of a pattern pair ``(v1, v2)`` happens at ``t = 0``
  on every source (primary input or scan flip-flop output),
* each combinational gate adds a pin-to-pin, polarity-dependent delay; when
  several inputs toggle simultaneously the slowest toggling pin is charged
  (pessimistic-late convention),
* pulses narrower than the inertial threshold are filtered (Sec. II-A),
* a small delay fault ``(site, polarity, δ)`` delays the selected transition
  polarity of the signal at its site; faulty simulation re-evaluates only the
  fanout cone of the site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.netlist.circuit import Circuit, GateKind

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.faults
    from repro.faults.models import SmallDelayFault
from repro.simulation.waveform import (
    Waveform,
    scheduled_waveform,
    sequential_schedule,
)

#: Default inertial pulse-filter threshold in ps (glitches below this width
#: do not propagate; also the paper's minimum detection-interval width).
DEFAULT_INERTIAL_PS = 5.0

#: Per-kind two-valued evaluators, replacing :func:`eval_binary`'s string
#: comparison chain in the innermost simulation loop (same truth tables).
_EVAL_FN = {
    GateKind.AND: lambda vals: 1 if all(vals) else 0,
    GateKind.NAND: lambda vals: 0 if all(vals) else 1,
    GateKind.OR: lambda vals: 1 if any(vals) else 0,
    GateKind.NOR: lambda vals: 0 if any(vals) else 1,
    GateKind.XOR: lambda vals: sum(vals) & 1,
    GateKind.XNOR: lambda vals: 1 - (sum(vals) & 1),
    GateKind.NOT: lambda vals: 1 - vals[0],
    GateKind.BUF: lambda vals: vals[0],
}


@dataclass
class SimResult:
    """Waveforms of all gates for one pattern pair (fault-free or faulty)."""

    circuit: Circuit
    waveforms: list[Waveform]

    def waveform_of(self, gate: int) -> Waveform:
        return self.waveforms[gate]

    def output_waveforms(self) -> dict[str, Waveform]:
        """Waveforms at every observation point keyed by point name."""
        return {op.name: self.waveforms[op.gate]
                for op in self.circuit.observation_points()}


class WaveformSimulator:
    """Timing-accurate waveform simulation of a finalized circuit."""

    def __init__(self, circuit: Circuit, *,
                 inertial: float = DEFAULT_INERTIAL_PS) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before simulation")
        self.circuit = circuit
        self.inertial = inertial
        # Evaluation order restricted to combinational gates.
        self._eval_order = [i for i in circuit.topo_order
                            if GateKind.is_combinational(circuit.gates[i].kind)]
        # Largest topo position among a gate's combinational consumers
        # (-1 when none): the incremental sweep's frontier-limit lookup.
        pos = circuit.topo_positions
        self._max_consumer_pos = [
            max((pos[v] for v, _pin in circuit.fanouts(g.index)
                 if circuit.gates[v].kind != GateKind.DFF), default=-1)
            for g in circuit.gates
        ]

    # ------------------------------------------------------------------
    # Fault-free simulation
    # ------------------------------------------------------------------
    def simulate(self, launch: Sequence[int], capture: Sequence[int]) -> SimResult:
        """Simulate one pattern pair.

        ``launch``/``capture`` assign v1/v2 to the circuit's sources in the
        order returned by :meth:`Circuit.sources`.
        """
        sources = self.circuit.sources()
        if len(launch) != len(sources) or len(capture) != len(sources):
            raise ValueError(
                f"pattern length {len(launch)}/{len(capture)} does not match "
                f"{len(sources)} sources")
        n = len(self.circuit.gates)
        waves: list[Waveform | None] = [None] * n
        for value_pair, idx in zip(zip(launch, capture), sources):
            v1, v2 = value_pair
            gate = self.circuit.gates[idx]
            if gate.kind == GateKind.CONST0:
                waves[idx] = Waveform.constant(0)
            elif gate.kind == GateKind.CONST1:
                waves[idx] = Waveform.constant(1)
            elif v1 == v2:
                waves[idx] = Waveform.constant(v2)
            else:
                waves[idx] = Waveform(v1, [(0.0, v2)])
        for idx in self._eval_order:
            gate = self.circuit.gates[idx]
            inputs = [waves[s] for s in gate.fanin]
            waves[idx] = self._eval_gate(gate.kind, inputs, gate.pin_delays)
        # DFF outputs hold their launch value; give them their source wave.
        result = [w if w is not None else Waveform.constant(0) for w in waves]
        return SimResult(self.circuit, result)

    # ------------------------------------------------------------------
    # Faulty simulation (event-driven incremental over the cone schedule)
    # ------------------------------------------------------------------
    def _faulty_site_wave(self, waves: list[Waveform],
                          fault: "SmallDelayFault") -> Waveform:
        """Waveform at the fault site with the extra delay injected."""
        site = fault.site
        d_rise = fault.delta if fault.slow_to_rise else 0.0
        d_fall = 0.0 if fault.slow_to_rise else fault.delta
        if site.is_output_pin:
            # Delay the gate's own output transitions.
            return waves[site.gate].delayed(
                d_rise, d_fall, inertial=self.inertial)
        # Delay the branch signal seen by this gate only.
        gate = self.circuit.gates[site.gate]
        inputs = [waves[s] for s in gate.fanin]
        inputs[site.pin] = inputs[site.pin].delayed(
            d_rise, d_fall, inertial=self.inertial)
        return self._eval_gate(gate.kind, inputs, gate.pin_delays)

    def simulate_fault(self, base: SimResult, fault: "SmallDelayFault") -> SimResult:
        """Faulty waveforms for ``fault`` given the fault-free result.

        Change-driven sweep over the site's precomputed cone schedule
        (:meth:`Circuit.cone_schedule`): a gate is re-evaluated only when at
        least one fanin waveform actually changed, and the sweep terminates
        as soon as no changed gate can influence the remaining schedule —
        small-delay effects frequently die at the inertial filter, so most
        cones converge after a few gates.  Unaffected gates *share* their
        waveform object with ``base``.  Results are bit-identical to
        :meth:`simulate_fault_reference`.
        """
        circuit = self.circuit
        waves = list(base.waveforms)
        site_gate = fault.site.gate
        new_site = self._faulty_site_wave(waves, fault)
        if new_site == waves[site_gate]:
            # The fault never perturbs its own site under this pattern.
            return SimResult(circuit, waves)
        waves[site_gate] = new_site

        gates = circuit.gates
        pos = circuit.topo_positions
        consumer_pos = self._max_consumer_pos
        changed = bytearray(len(waves))
        changed[site_gate] = 1
        # ``limit``: the largest topo position any changed gate can still
        # reach directly; once the schedule passes it the frontier is empty.
        limit = consumer_pos[site_gate]
        eval_gate = self._eval_gate
        for idx in circuit.cone_schedule(site_gate):
            if pos[idx] > limit:
                break  # frontier exhausted: nothing downstream can change
            g = gates[idx]
            for s in g.fanin:
                if changed[s]:
                    break
            else:
                continue  # no fanin changed — waveform identical to base
            new = eval_gate(g.kind, [waves[s] for s in g.fanin], g.pin_delays)
            if new == waves[idx]:
                continue  # change died here (inertial filter / masking)
            waves[idx] = new
            changed[idx] = 1
            cp = consumer_pos[idx]
            if cp > limit:
                limit = cp
        return SimResult(circuit, waves)

    def simulate_fault_reference(self, base: SimResult,
                                 fault: "SmallDelayFault") -> SimResult:
        """Seed (pre-incremental) faulty simulation, kept as the golden
        reference: every gate in the fanout cone is unconditionally
        re-evaluated by scanning the full topological order.  Used by the
        equivalence tests and as the before-side of the perf baseline."""
        circuit = self.circuit
        waves = list(base.waveforms)
        site = fault.site
        waves[site.gate] = self._faulty_site_wave(waves, fault)
        dirty = circuit.fanout_cone(site.gate)
        for idx in self._eval_order:
            if idx not in dirty:
                continue
            gate = circuit.gates[idx]
            inputs = [waves[s] for s in gate.fanin]
            waves[idx] = self._eval_gate(gate.kind, inputs, gate.pin_delays)
        return SimResult(circuit, waves)

    # ------------------------------------------------------------------
    # Gate evaluation
    # ------------------------------------------------------------------
    def _eval_gate(self, kind: str, inputs: list[Waveform],
                   pin_delays: tuple[tuple[float, float], ...]) -> Waveform:
        """Output waveform of one gate from its input waveforms."""
        if len(inputs) == 1 and (kind == GateKind.NOT or kind == GateKind.BUF):
            # NOT/BUF fast path: each input edge maps to exactly one
            # candidate output edge — no timeline merge needed.
            w = inputs[0]
            invert = kind == GateKind.NOT
            out_init = (1 - w.initial) if invert else w.initial
            if not w.events:
                return Waveform.constant(out_init)
            d_rise, d_fall = pin_delays[0]
            if invert:
                cand = [(t + (d_rise if v == 0 else d_fall), 1 - v)
                        for t, v in w.events]
            else:
                cand = [(t + (d_rise if v == 1 else d_fall), v)
                        for t, v in w.events]
            return scheduled_waveform(out_init, cand, self.inertial)

        fn = _EVAL_FN.get(kind)
        if fn is None:
            raise ValueError(f"cannot evaluate gate kind {kind!r}")
        init_vals = [w.initial for w in inputs]
        out_init = fn(init_vals)

        # Merged timeline of input events: (time, pin, new value).  Tuples
        # sort lexicographically — same order as the old ``key=lambda``
        # (ties on time fall back to pin index, matching the stable sort
        # over pin-ordered insertion) without per-element key calls.
        timeline: list[tuple[float, int, int]] = []
        for pin, w in enumerate(inputs):
            if w.events:
                timeline += [(t, pin, v) for t, v in w.events]
        if not timeline:
            return Waveform.constant(out_init)
        timeline.sort()

        cur_vals = init_vals
        cur_out = out_init
        out_events: list[tuple[float, int]] = []
        i = 0
        n = len(timeline)
        while i < n:
            t = timeline[i][0]
            changed: list[int] = []
            while i < n:
                ti, pin, v = timeline[i]
                if ti - t > 1e-9:
                    break
                if cur_vals[pin] != v:
                    cur_vals[pin] = v
                    changed.append(pin)
                i += 1
            if not changed:
                continue  # no pin changed value: output cannot toggle
            new_out = fn(cur_vals)
            if new_out != cur_out:
                # Charge the slowest simultaneously-toggling pin.
                if len(changed) == 1:
                    p = changed[0]
                    delay = pin_delays[p][0] if new_out == 1 else pin_delays[p][1]
                else:
                    delay = max(
                        pin_delays[p][0] if new_out == 1 else pin_delays[p][1]
                        for p in changed)
                out_events.append((t + delay, new_out))
                cur_out = new_out
        # Inertial scheduling in causal order: unequal rise/fall delays can
        # make a later edge overtake an earlier one — the pulse annihilates
        # rather than surviving as a spurious permanent value change.
        return scheduled_waveform(out_init, out_events, self.inertial)
