"""Topological waveform simulator with pin-to-pin delays and fault injection.

This is the CPU stand-in for the GPU-accelerated timing-accurate simulator of
[20] used by the paper: for each test pattern pair it computes the complete
signal *waveform* of every net, from which fault detection ranges are obtained
by XOR-ing fault-free and faulty output waveforms.

Semantics:

* the launch transition of a pattern pair ``(v1, v2)`` happens at ``t = 0``
  on every source (primary input or scan flip-flop output),
* each combinational gate adds a pin-to-pin, polarity-dependent delay; when
  several inputs toggle simultaneously the slowest toggling pin is charged
  (pessimistic-late convention),
* pulses narrower than the inertial threshold are filtered (Sec. II-A),
* a small delay fault ``(site, polarity, δ)`` delays the selected transition
  polarity of the signal at its site; faulty simulation re-evaluates only the
  fanout cone of the site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.netlist.circuit import Circuit, GateKind

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.faults
    from repro.faults.models import SmallDelayFault
from repro.simulation.logic import eval_binary
from repro.simulation.waveform import Waveform, sequential_schedule

#: Default inertial pulse-filter threshold in ps (glitches below this width
#: do not propagate; also the paper's minimum detection-interval width).
DEFAULT_INERTIAL_PS = 5.0


@dataclass
class SimResult:
    """Waveforms of all gates for one pattern pair (fault-free or faulty)."""

    circuit: Circuit
    waveforms: list[Waveform]

    def waveform_of(self, gate: int) -> Waveform:
        return self.waveforms[gate]

    def output_waveforms(self) -> dict[str, Waveform]:
        """Waveforms at every observation point keyed by point name."""
        return {op.name: self.waveforms[op.gate]
                for op in self.circuit.observation_points()}


class WaveformSimulator:
    """Timing-accurate waveform simulation of a finalized circuit."""

    def __init__(self, circuit: Circuit, *,
                 inertial: float = DEFAULT_INERTIAL_PS) -> None:
        if not circuit.is_finalized:
            raise ValueError("circuit must be finalized before simulation")
        self.circuit = circuit
        self.inertial = inertial
        # Evaluation order restricted to combinational gates.
        self._eval_order = [i for i in circuit.topo_order
                            if GateKind.is_combinational(circuit.gates[i].kind)]

    # ------------------------------------------------------------------
    # Fault-free simulation
    # ------------------------------------------------------------------
    def simulate(self, launch: Sequence[int], capture: Sequence[int]) -> SimResult:
        """Simulate one pattern pair.

        ``launch``/``capture`` assign v1/v2 to the circuit's sources in the
        order returned by :meth:`Circuit.sources`.
        """
        sources = self.circuit.sources()
        if len(launch) != len(sources) or len(capture) != len(sources):
            raise ValueError(
                f"pattern length {len(launch)}/{len(capture)} does not match "
                f"{len(sources)} sources")
        n = len(self.circuit.gates)
        waves: list[Waveform | None] = [None] * n
        for value_pair, idx in zip(zip(launch, capture), sources):
            v1, v2 = value_pair
            gate = self.circuit.gates[idx]
            if gate.kind == GateKind.CONST0:
                waves[idx] = Waveform.constant(0)
            elif gate.kind == GateKind.CONST1:
                waves[idx] = Waveform.constant(1)
            elif v1 == v2:
                waves[idx] = Waveform.constant(v2)
            else:
                waves[idx] = Waveform(v1, [(0.0, v2)])
        for idx in self._eval_order:
            gate = self.circuit.gates[idx]
            inputs = [waves[s] for s in gate.fanin]
            waves[idx] = self._eval_gate(gate.kind, inputs, gate.pin_delays)
        # DFF outputs hold their launch value; give them their source wave.
        result = [w if w is not None else Waveform.constant(0) for w in waves]
        return SimResult(self.circuit, result)

    # ------------------------------------------------------------------
    # Faulty simulation (fanout-cone incremental)
    # ------------------------------------------------------------------
    def simulate_fault(self, base: SimResult, fault: "SmallDelayFault") -> SimResult:
        """Faulty waveforms for ``fault`` given the fault-free result.

        Only the fanout cone of the fault site is re-evaluated; all other
        waveforms are shared with ``base``.
        """
        circuit = self.circuit
        waves = list(base.waveforms)
        site = fault.site
        d_rise = fault.delta if fault.slow_to_rise else 0.0
        d_fall = 0.0 if fault.slow_to_rise else fault.delta

        if site.is_output_pin:
            # Delay the gate's own output transitions, then propagate.
            waves[site.gate] = waves[site.gate].delayed(
                d_rise, d_fall, inertial=self.inertial)
            dirty = circuit.fanout_cone(site.gate)
        else:
            # Delay the branch signal seen by this gate only.
            gate = circuit.gates[site.gate]
            inputs = [waves[s] for s in gate.fanin]
            inputs[site.pin] = inputs[site.pin].delayed(
                d_rise, d_fall, inertial=self.inertial)
            waves[site.gate] = self._eval_gate(
                gate.kind, inputs, gate.pin_delays)
            dirty = circuit.fanout_cone(site.gate)

        for idx in self._eval_order:
            if idx not in dirty:
                continue
            gate = circuit.gates[idx]
            inputs = [waves[s] for s in gate.fanin]
            waves[idx] = self._eval_gate(gate.kind, inputs, gate.pin_delays)
        return SimResult(circuit, waves)

    # ------------------------------------------------------------------
    # Gate evaluation
    # ------------------------------------------------------------------
    def _eval_gate(self, kind: str, inputs: list[Waveform],
                   pin_delays: tuple[tuple[float, float], ...]) -> Waveform:
        """Output waveform of one gate from its input waveforms."""
        init_vals = [w.initial for w in inputs]
        out_init = eval_binary(kind, init_vals)

        # Merged timeline of input events: (time, pin, new value).
        timeline: list[tuple[float, int, int]] = []
        for pin, w in enumerate(inputs):
            timeline.extend((t, pin, v) for t, v in w.events)
        if not timeline:
            return Waveform.constant(out_init)
        timeline.sort(key=lambda e: e[0])

        cur_vals = init_vals
        cur_out = out_init
        out_events: list[tuple[float, int]] = []
        i = 0
        n = len(timeline)
        while i < n:
            t = timeline[i][0]
            changed: list[int] = []
            while i < n and timeline[i][0] - t <= 1e-9:
                _t, pin, v = timeline[i]
                cur_vals[pin] = v
                changed.append(pin)
                i += 1
            new_out = eval_binary(kind, cur_vals)
            if new_out != cur_out:
                # Charge the slowest simultaneously-toggling pin.
                delay = max(
                    pin_delays[p][0] if new_out == 1 else pin_delays[p][1]
                    for p in changed)
                out_events.append((t + delay, new_out))
                cur_out = new_out
        # Inertial scheduling in causal order: unequal rise/fall delays can
        # make a later edge overtake an earlier one — the pulse annihilates
        # rather than surviving as a spurious permanent value change.
        return Waveform(out_init, sequential_schedule(
            out_init, out_events, self.inertial))
