"""Transition-list waveforms for timing-accurate small-delay-fault simulation.

A :class:`Waveform` is a right-continuous, piecewise-constant binary signal:
an initial value plus a sorted list of ``(time, value)`` transitions.  The
waveform simulator computes one waveform per net and test pattern; the
detection range of a fault is extracted by XOR-ing the fault-free and faulty
output waveforms (Sec. III-B of the paper).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.utils.intervals import EPS, Interval, IntervalSet


class Waveform:
    """Immutable piecewise-constant binary waveform.

    ``events`` is a tuple of ``(time, value)`` pairs sorted by time with
    strictly alternating values (canonical form).  The signal holds
    ``initial`` before the first event and the last event's value afterwards.
    """

    __slots__ = ("initial", "events")

    def __init__(self, initial: int, events: Iterable[tuple[float, int]] = ()) -> None:
        if initial not in (0, 1):
            raise ValueError(f"waveform initial value must be 0/1, got {initial!r}")
        self.initial = initial
        self.events = _canonicalize(initial, events)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: int) -> "Waveform":
        return cls(value)

    @classmethod
    def step(cls, initial: int, at: float) -> "Waveform":
        """Single transition from ``initial`` to its complement at time ``at``."""
        return cls(initial, [(at, 1 - initial)])

    @classmethod
    def from_canonical(cls, initial: int,
                       events: tuple[tuple[float, int], ...]) -> "Waveform":
        """Construct from events already in canonical form, skipping
        :func:`_canonicalize`.

        Callers must guarantee the invariants (time-sorted with gaps
        ``> EPS``, strictly alternating values starting opposite
        ``initial``); :func:`sequential_schedule` output with a threshold
        above ``2·EPS`` satisfies them by construction.  This is the hot
        constructor of the simulation engine — re-normalizing provably
        canonical schedules dominated waveform creation otherwise.
        """
        w = object.__new__(cls)
        w.initial = initial
        w.events = events
        return w

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def value_at(self, t: float) -> int:
        """Signal value at time ``t`` (right-continuous at transitions).

        Binary search over the sorted event times: the value is the one set
        by the last event at or before ``t + EPS``.  Values are 0/1, so the
        probe ``(t + EPS, 2)`` sorts after every event at that time and
        ``bisect_right`` lands exactly where the old linear scan stopped.
        """
        idx = bisect_right(self.events, (t + EPS, 2))
        return self.events[idx - 1][1] if idx else self.initial

    @property
    def final_value(self) -> int:
        return self.events[-1][1] if self.events else self.initial

    @property
    def last_event_time(self) -> float:
        """Time after which the signal is stable (0.0 for constants)."""
        return self.events[-1][0] if self.events else 0.0

    @property
    def num_transitions(self) -> int:
        return len(self.events)

    def transition_times(self) -> list[float]:
        return [t for t, _ in self.events]

    def has_transition(self, *, rising: bool | None = None) -> bool:
        """True when the waveform toggles (optionally restricted by polarity)."""
        events = self.events
        if rising is None:
            return bool(events)
        if not events:
            return False
        # Canonical events strictly alternate, so a polarity is present
        # iff the first event has it or there are at least two events.
        return events[0][1] == (1 if rising else 0) or len(events) >= 2

    def is_stable_in(self, lo: float, hi: float) -> bool:
        """True if no transition falls strictly inside ``(lo, hi)``.

        Used to model the monitor detection window (guard band): an aging
        alert is raised exactly when the observed signal toggles inside the
        window (Sec. II-B).
        """
        return not any(lo + EPS < t < hi - EPS for t, _ in self.events)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def delayed(self, d_rise: float, d_fall: float, *,
                inertial: float = 0.0) -> "Waveform":
        """Polarity-dependent delay: rising edges move by ``d_rise``, falling
        edges by ``d_fall``; pulses narrower than ``inertial`` are filtered.

        This models both a gate's output stage and a small delay fault
        ``(g, δ)`` slowing one transition polarity at its fault site.
        Edges are rescheduled in their *causal* order with inertial
        cancellation: when unequal rise/fall delays make a later edge
        overtake an earlier one, the in-flight pulse annihilates instead of
        surviving as a spurious permanent value change.
        """
        if not self.events:
            return self
        moved = [(t + (d_rise if v == 1 else d_fall), v)
                 for t, v in self.events]
        return scheduled_waveform(self.initial, moved, inertial)

    def shifted(self, d: float) -> "Waveform":
        """Uniform translation by ``d`` (a monitor delay element)."""
        return Waveform(self.initial, [(t + d, v) for t, v in self.events])

    def inertial_filtered(self, threshold: float) -> "Waveform":
        """Remove pulses narrower than ``threshold`` (inertial delay model).

        Repeatedly cancels adjacent transition pairs closer than
        ``threshold`` until the waveform is stable, mirroring pulse filtering
        in CMOS gates (Sec. II-A).
        """
        if threshold <= 0.0 or len(self.events) < 2:
            return self
        events = list(self.events)
        changed = True
        while changed and len(events) >= 2:
            changed = False
            for i in range(len(events) - 1):
                if events[i + 1][0] - events[i][0] < threshold - EPS:
                    del events[i:i + 2]
                    changed = True
                    break
        return Waveform(self.initial, events)

    def inverted(self) -> "Waveform":
        return Waveform(1 - self.initial, [(t, 1 - v) for t, v in self.events])

    # ------------------------------------------------------------------
    # Comparison / detection
    # ------------------------------------------------------------------
    def diff_intervals(self, other: "Waveform", horizon: float) -> IntervalSet:
        """Times in ``[0, horizon]`` where the two waveforms differ.

        This is the XOR of the fault-free and faulty output waveforms from
        which the detection range of a fault is derived (Sec. III-B).
        """
        pieces: list[Interval] = []
        times = sorted({0.0, horizon,
                        *(t for t, _ in self.events if 0.0 < t < horizon),
                        *(t for t, _ in other.events if 0.0 < t < horizon)})
        start: float | None = None
        for t in times:
            differ = self.value_at(t) != other.value_at(t)
            if differ and start is None:
                start = t
            elif not differ and start is not None:
                pieces.append(Interval(start, t))
                start = None
        if start is not None and horizon - start > EPS:
            pieces.append(Interval(start, horizon))
        return IntervalSet(pieces)

    def sample(self, times: Sequence[float]) -> list[int]:
        """Values at a sorted sequence of sample times (single sweep)."""
        out: list[int] = []
        idx = 0
        value = self.initial
        for t in times:
            while idx < len(self.events) and self.events[idx][0] <= t + EPS:
                value = self.events[idx][1]
                idx += 1
            out.append(value)
        return out

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Waveform):
            return NotImplemented
        if self.initial != other.initial:
            return False
        se, oe = self.events, other.events
        # Fast path: exact tuple equality (the common case — the incremental
        # fault simulator compares recomputed waveforms against shared
        # fault-free ones, which are bit-identical when unaffected).
        if se == oe:
            return True
        if len(se) != len(oe):
            return False
        return all(
            abs(ta - tb) <= EPS and va == vb
            for (ta, va), (tb, vb) in zip(se, oe)
        )

    def __hash__(self) -> int:
        return hash((self.initial,
                     tuple((round(t, 6), v) for t, v in self.events)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = "".join(f" →{v}@{t:g}" for t, v in self.events)
        return f"Waveform({self.initial}{parts})"


def sequential_schedule(initial: int,
                        events: Iterable[tuple[float, int]],
                        inertial: float = 0.0) -> list[tuple[float, int]]:
    """Inertial-delay transition scheduling.

    ``events`` are candidate output transitions in *causal* order (the
    order their triggering input events occur), with already-delayed times
    that may be non-monotonic when rise/fall delays differ.  A new
    transition closer than ``inertial`` to — or earlier than — a pending
    one cancels it (the pulse never forms), exactly like the event-driven
    engine's scheduling rule.  The returned list is time-monotonic with all
    surviving transitions separated by at least ``inertial``.
    """
    out: list[tuple[float, int]] = []
    for t, v in events:
        while out and t - out[-1][0] < inertial - EPS:
            out.pop()
        last = out[-1][1] if out else initial
        if v != last:
            out.append((t, v))
    return out


def scheduled_waveform(initial: int,
                       events: Iterable[tuple[float, int]],
                       inertial: float = 0.0) -> Waveform:
    """:func:`sequential_schedule` + :class:`Waveform` in one step.

    When the inertial threshold exceeds ``2·EPS`` the schedule is canonical
    by construction (strictly increasing times with gaps ``> EPS``,
    alternating values), so the normalizing constructor is bypassed.
    """
    sched = sequential_schedule(initial, events, inertial)
    if inertial > 2 * EPS:
        return Waveform.from_canonical(initial, tuple(sched))
    return Waveform(initial, sched)


def _canonicalize(initial: int,
                  events: Iterable[tuple[float, int]]) -> tuple[tuple[float, int], ...]:
    """Sort events, collapse same-time duplicates (last wins) and drop no-ops."""
    items = sorted(((float(t), int(v)) for t, v in events), key=lambda e: e[0])
    collapsed: list[tuple[float, int]] = []
    for t, v in items:
        if v not in (0, 1):
            raise ValueError(f"waveform values must be 0/1, got {v!r}")
        if collapsed and abs(collapsed[-1][0] - t) <= EPS:
            collapsed[-1] = (collapsed[-1][0], v)
        else:
            collapsed.append((t, v))
    out: list[tuple[float, int]] = []
    value = initial
    for t, v in collapsed:
        if v != value:
            out.append((t, v))
            value = v
    return tuple(out)
