"""Word-parallel timed waveform simulation (``engine="wordwave"``).

The per-pattern Python engine in :mod:`repro.simulation.wave_sim` walks one
``Waveform`` object per (gate, pattern) through the topological order; at
suite scale that object churn dominates the whole ``simulation`` stage.
This module replaces it with flat NumPy storage and levelized array
kernels, batched over *all* patterns (fault-free sweep) and *all* activated
(fault, pattern) instances (faulty sweep) at once:

* **Flat event storage** (:class:`_WaveStore`): a waveform is a row of a
  ``(rows, K)`` float64 ``times`` matrix (``+inf`` padded) plus an event
  count and an initial value.  Canonical waveforms strictly alternate, so
  event *values* are implicit — event ``j`` carries ``init ^ ((j + 1) & 1)``
  — and only times are stored.  Fault-free rows are indexed ``gate * P +
  pattern`` (the word-matrix layout of
  :class:`~repro.simulation.parallel_sim.BitParallelSimulator` transposed
  onto the time axis).

* **Two-valued planes**: initial values for every (gate, pattern) come from
  one :meth:`BitParallelSimulator.simulate_words` sweep over the packed
  launch vectors; a second OR-propagation over the launch^capture toggle
  words yields the *activity* planes that select which (gate, pattern)
  instances can have events at all — everything else stays a constant row.

* **Levelized merge kernel** (:meth:`_WordWave._merge_eval`): per level one
  vectorized kernel merges the fanin event timelines of every active
  instance (stable argsort over a pin-major layout reproduces the reference
  ``(time, pin)`` tie-break), walks the merged slots in lockstep applying
  the pessimistic-late group rule of ``WaveformSimulator._eval_gate``
  (simultaneous pins within 1e-9 charge the slowest toggling pin), and
  evaluates gate functions through per-gate uint64 truth-table LUTs.

* **Vectorized inertial scheduling** (:meth:`_WordWave._schedule`): the
  pop/push stack of :func:`repro.simulation.waveform.sequential_schedule`
  run across all instances at once.

* **Global frontier faulty sweep**: all activated (fault, pattern)
  instances are injected at once (vectorized ``delayed()`` + merge kernel
  at the site) and propagated level by level through a shared changed-entry
  store keyed ``gate * NI + instance`` (binary-searched at gather time);
  an instance whose recomputed waveform is EPS-equal to the fault-free one
  drops out of the frontier exactly like the incremental engine's
  propagation cutoff.  Cone restriction emerges from the frontier itself.

* **Vectorized detection extraction**: XOR intervals are extracted from
  the event arrays by sampling signal parity at the merged event times
  (the exact sample set of :meth:`Waveform.diff_intervals`), followed by a
  vectorized glitch filter; only surviving (fault, pattern) pairs are
  materialized into :class:`IntervalSet` objects.

The engine is bit-identical to ``engine="reference"`` (guarded by the
randomized golden suite in ``tests/test_wordwave_golden.py``) whenever it
is applicable; :func:`wordwave_fallback_reason` names the cases where the
caller must fall back to the incremental engine (don't-care patterns,
degenerate inertial thresholds, exotic gate arities/kinds).
"""

from __future__ import annotations

import time as _time
import weakref
from typing import TYPE_CHECKING

import numpy as np

from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.parallel_sim import BitParallelSimulator
from repro.utils.intervals import (
    EPS,
    IntervalSet,
    _interval_set_from_sorted,
    _interval_unchecked,
)

if TYPE_CHECKING:  # avoid repro.faults <-> repro.simulation import cycle
    from repro.faults.detection import DetectionData

#: Simultaneity window of the pessimistic-late merge (must equal the
#: ``ti - t > 1e-9`` grouping constant in ``WaveformSimulator._eval_gate``).
GROUP_EPS = 1e-9

#: Largest supported gate arity: the per-gate truth table must fit one
#: uint64 word (2**6 = 64 entries).
MAX_ARITY = 6

_SUPPORTED_KINDS = frozenset({
    GateKind.AND, GateKind.NAND, GateKind.OR, GateKind.NOR,
    GateKind.XOR, GateKind.XNOR, GateKind.NOT, GateKind.BUF,
})


def wordwave_fallback_reason(circuit: Circuit, patterns,
                             inertial: float) -> str | None:
    """Why the wordwave engine cannot run this workload (None = it can).

    The caller (``compute_detection_data``) falls back to the incremental
    engine when a reason is returned; both engines are bit-identical where
    wordwave applies, so the fallback only costs speed.
    """
    if inertial <= 2 * EPS:
        return "inertial threshold too small for canonical-schedule kernels"
    for g in circuit.gates:
        if not GateKind.is_combinational(g.kind):
            continue
        if g.kind not in _SUPPORTED_KINDS:
            return f"unsupported gate kind {g.kind!r}"
        if g.arity > MAX_ARITY:
            return f"gate arity {g.arity} exceeds LUT limit {MAX_ARITY}"
    if any(p.has_dont_cares for p in patterns):
        return "patterns contain don't-cares"
    return None


def _kind_lut(kind: str, arity: int, a_max: int) -> int:
    """Truth table of one gate kind over ``2**a_max`` padded input indices.

    Bit ``i`` is the output for input index ``i``; bits of ``i`` beyond
    ``arity`` belong to phantom padding pins and are ignored (the phantom
    rows are constant 0, so either convention is consistent — ignoring
    them keeps the table independent of the padding).
    """
    sub_mask = (1 << arity) - 1
    lut = 0
    for i in range(1 << a_max):
        sub = i & sub_mask
        if kind == GateKind.AND or kind == GateKind.NAND:
            out = sub == sub_mask
        elif kind == GateKind.OR or kind == GateKind.NOR:
            out = sub != 0
        elif kind == GateKind.XOR or kind == GateKind.XNOR:
            out = bool(bin(sub).count("1") & 1)
        else:  # NOT / BUF
            out = bool(sub & 1)
        if kind in (GateKind.NAND, GateKind.NOR, GateKind.XNOR, GateKind.NOT):
            out = not out
        lut |= int(out) << i
    return lut


class _WaveStore:
    """Flat (times, count, init) storage for a block of waveforms.

    ``t`` is ``(rows, K)`` float64 with ``+inf`` beyond each row's count —
    the padding doubles as the sort sentinel of the merge kernel and as the
    slot-validity test of the parity samplers (``inf`` fails every ``<=``
    comparison).  Values are implicit by alternation from ``i``.
    """

    __slots__ = ("t", "c", "i")

    def __init__(self, rows: int, k: int) -> None:
        self.t = np.full((rows, k), np.inf)
        self.c = np.zeros(rows, dtype=np.int64)
        self.i = np.zeros(rows, dtype=np.uint8)

    @property
    def k(self) -> int:
        return self.t.shape[1]

    def grow(self, k: int) -> None:
        if k <= self.k:
            return
        t = np.full((self.t.shape[0], k), np.inf)
        t[:, :self.k] = self.t
        self.t = t


class _ChangedStore:
    """Faulty-sweep overlay: changed waveforms keyed ``gate * NI + inst``.

    Rows are appended per level and the key index re-sorted, so gather-time
    lookups are one ``np.searchsorted`` per fanin pin.  Initial values are
    not stored — a delay fault never changes a waveform's initial value, so
    the fault-free row's ``init`` applies.
    """

    __slots__ = ("t", "c", "keys", "rows", "gate", "inst", "n", "_cap")

    def __init__(self, k: int) -> None:
        self._cap = 256
        self.t = np.full((self._cap, k), np.inf)
        self.c = np.zeros(self._cap, dtype=np.int64)
        self.gate = np.zeros(self._cap, dtype=np.int64)
        self.inst = np.zeros(self._cap, dtype=np.int64)
        self.keys = np.empty(0, dtype=np.int64)   # sorted keys
        self.rows = np.empty(0, dtype=np.int64)   # store row per sorted key
        self.n = 0

    @property
    def k(self) -> int:
        return self.t.shape[1]

    def grow_k(self, k: int) -> None:
        if k <= self.k:
            return
        t = np.full((self._cap, k), np.inf)
        t[:, :self.k] = self.t
        self.t = t

    def append(self, keys: np.ndarray, gate: np.ndarray, inst: np.ndarray,
               out_t: np.ndarray, out_c: np.ndarray) -> None:
        m = keys.size
        if not m:
            return
        while self.n + m > self._cap:
            self._cap *= 2
        if self.t.shape[0] < self._cap:
            t = np.full((self._cap, self.k), np.inf)
            t[:self.n] = self.t[:self.n]
            self.t = t
            for name in ("c", "gate", "inst"):
                arr = np.zeros(self._cap, dtype=np.int64)
                old = getattr(self, name)
                arr[:self.n] = old[:self.n]
                setattr(self, name, arr)
        rows = np.arange(self.n, self.n + m)
        ko = out_t.shape[1]
        self.t[rows, :ko] = out_t
        if ko < self.k:
            self.t[rows, ko:] = np.inf
        self.c[rows] = out_c
        self.gate[rows] = gate
        self.inst[rows] = inst
        self.n += m
        all_keys = np.concatenate([self.keys, keys])
        all_rows = np.concatenate([self.rows, rows])
        order = np.argsort(all_keys, kind="stable")
        self.keys = all_keys[order]
        self.rows = all_rows[order]

#: circuit -> {inertial: plan}.  The plan (fanin/LUT/level/fanout arrays)
#: is a pure function of the frozen circuit structure, so it is shared
#: across runs exactly like the repo's cone / bit-parallel caches; per-run
#: state (the event stores) is rebuilt by every sweep.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Circuit, dict[float, _WordWave]]" = \
    weakref.WeakKeyDictionary()


def _plan_for(circuit: Circuit, inertial: float) -> "_WordWave":
    per = _PLAN_CACHE.get(circuit)
    if per is None:
        per = _PLAN_CACHE[circuit] = {}
    plan = per.get(inertial)
    if plan is None:
        plan = per[inertial] = _WordWave(circuit, inertial)
    return plan


class _WordWave:
    """One wordwave plan: static circuit arrays + per-run stores."""

    def __init__(self, circuit: Circuit, inertial: float) -> None:
        self.circuit = circuit
        self.inertial = inertial
        gates = circuit.gates
        g_n = len(gates)
        self.g_n = g_n
        comb = [i for i in circuit.topo_order
                if GateKind.is_combinational(gates[i].kind)]
        self.is_comb = np.zeros(g_n + 1, dtype=bool)
        self.is_comb[comb] = True
        self.a_max = max((gates[i].arity for i in comb), default=1)
        a_max = self.a_max

        # Padded fanin plan: phantom pins point at the virtual constant-0
        # row ``g_n`` (never toggles, init 0, delay 0), so every kernel can
        # gather a dense (n, A) block without masking.
        self.fanin_pad = np.full((g_n + 1, a_max), g_n, dtype=np.int64)
        self.pin_rise = np.zeros((g_n + 1, a_max))
        self.pin_fall = np.zeros((g_n + 1, a_max))
        self.luts = np.zeros(g_n + 1, dtype=np.uint64)
        lut_cache: dict[tuple[str, int], int] = {}
        lvl = np.zeros(g_n + 1, dtype=np.int64)
        for i in comb:
            g = gates[i]
            self.fanin_pad[i, :g.arity] = g.fanin
            for p, (dr, df) in enumerate(g.pin_delays):
                self.pin_rise[i, p] = dr
                self.pin_fall[i, p] = df
            key = (g.kind, g.arity)
            if key not in lut_cache:
                lut_cache[key] = _kind_lut(g.kind, g.arity, a_max)
            self.luts[i] = lut_cache[key]
            lvl[i] = circuit.level(i)
        self.gate_level = lvl

        # Levelized evaluation plan over combinational gates.
        by_level: dict[int, list[int]] = {}
        for i in comb:
            by_level.setdefault(int(lvl[i]), []).append(i)
        self.levels = [(L, np.asarray(idxs, dtype=np.int64))
                       for L, idxs in sorted(by_level.items())]
        self.max_level = self.levels[-1][0] if self.levels else 0

        # Fanout CSR restricted to combinational consumers (waveform
        # changes never propagate through a DFF within one pattern).
        counts = np.zeros(g_n + 1, dtype=np.int64)
        fan: list[list[int]] = [[] for _ in range(g_n)]
        for i in comb:
            for s in gates[i].fanin:
                fan[s].append(i)
        for s in range(g_n):
            counts[s] = len(fan[s])
        self.fo_ptr = np.zeros(g_n + 2, dtype=np.int64)
        np.cumsum(counts, out=self.fo_ptr[1:g_n + 2])
        self.fo_gate = np.asarray([c for lst in fan for c in lst],
                                  dtype=np.int64)

        # Observation plan: which gates are observation points, and which
        # gates reach one through combinational edges (the exact
        # ``reach[fi] non-empty`` eligibility test of ``_prepare_reach`` —
        # ``fanout_cone`` also only walks combinational edges).
        self.is_obs = np.zeros(g_n + 1, dtype=bool)
        self.is_obs[[op.gate for op in circuit.observation_points()]] = True
        can = self.is_obs.copy()
        for _lvl, idxs in reversed(self.levels):
            m = can[idxs]
            if m.any():
                can[self.fanin_pad[idxs[m]]] = True
        self.obs_can = can

        self._pow2 = np.int64(1) << np.arange(a_max, dtype=np.int64)
        self._pinbit = np.uint64(1) << np.arange(a_max, dtype=np.uint64)
        self._ar = np.arange(1024)

        self.bp = BitParallelSimulator(circuit)
        self.base: _WaveStore | None = None
        self.p_n = 0

    def _arange(self, n: int) -> np.ndarray:
        """Cached ``np.arange(n)`` prefix (row-index helper)."""
        if self._ar.size < n:
            self._ar = np.arange(max(n, 2 * self._ar.size))
        return self._ar[:n]

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _schedule(self, cand_t: np.ndarray, cand_c: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized inertial scheduling (``sequential_schedule``).

        ``cand_t`` rows hold candidate transition times in *causal* order;
        candidate values strictly alternate from each row's initial value,
        so the push test ``value != stack top`` reduces to a parity test
        ``((c + 1) ^ sp) & 1`` that never needs the values themselves.
        Returns ``(times, counts)`` with times ``+inf``-padded past count.
        """
        n = cand_t.shape[0]
        c_max = int(cand_c.max()) if n else 0
        if not c_max:
            return np.zeros((n, 0)), np.zeros(n, dtype=np.int64)
        thresh = self.inertial - EPS
        ct = cand_t[:, :c_max]
        # Fast path: when every adjacent candidate gap is >= the threshold
        # nothing ever pops, and alternation guarantees every push, so the
        # schedule is the candidate row verbatim.  (inf padding beyond the
        # count yields inf - finite = inf >= thresh, never inf - inf.)
        near = (ct[:, 1:] - ct[:, :-1]) < thresh
        slow = near.any(axis=1)
        if not slow.any():
            # Callers never mutate the schedule, so the candidate slice is
            # returned as-is (cand_t is always a fresh local upstream).
            return ct, cand_c
        out_t = ct.copy()
        sp = cand_c.copy()
        s_rows = np.nonzero(slow)[0]
        st = ct[s_rows]
        sc = cand_c[s_rows]
        s_n = s_rows.size
        c_max_s = int(sc.max())
        s_out = np.full((s_n, c_max), np.inf)
        s_sp = np.zeros(s_n, dtype=np.int64)
        rows = self._arange(s_n)
        for c in range(c_max_s):
            valid = sc > c
            t = st[:, c]
            while True:
                top = s_out[rows, np.maximum(s_sp - 1, 0)]
                pop = valid & (s_sp > 0) & (t - top < thresh)
                if not pop.any():
                    break
                s_sp[pop] -= 1
            push = valid & ((((c + 1) ^ s_sp) & 1) == 1)
            s_out[rows[push], s_sp[push]] = t[push]
            s_sp[push] += 1
        # Clear stale popped slots so padding stays a sort/parity sentinel.
        s_out[np.arange(c_max)[None, :] >= s_sp[:, None]] = np.inf
        out_t[s_rows] = s_out
        sp[s_rows] = s_sp
        return out_t, sp

    def _merge_eval(self, luts: np.ndarray, prise: np.ndarray,
                    pfall: np.ndarray, in_t: np.ndarray, in_c: np.ndarray,
                    in_i: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pessimistic-late timeline merge + LUT eval + inertial schedule.

        ``in_t``/``in_c``/``in_i`` are ``(n, A, K)`` / ``(n, A)`` fanin
        event arrays; ``luts``/``prise``/``pfall`` the per-instance gate
        truth tables and pin delay rows.  Mirrors
        ``WaveformSimulator._eval_gate`` exactly (see module docstring).
        """
        n, a_n, k = in_t.shape
        idx = in_i.astype(np.int64) @ self._pow2[:a_n]
        out_init = ((luts >> idx.astype(np.uint64)) & np.uint64(1)
                    ).astype(np.uint8)
        m_max = int(in_c.sum(axis=1).max()) if n else 0
        if not m_max:
            return np.zeros((n, 0)), np.zeros(n, dtype=np.int64), out_init

        # Pin-major flatten + stable argsort == the reference (t, pin) sort.
        flat_t = in_t.reshape(n, a_n * k)
        order = np.argsort(flat_t, axis=1, kind="stable")[:, :m_max]
        ar = self._arange(n)[:, None]
        tl_t = flat_t[ar, order]
        pin = order // k
        tl_rise = prise[ar, pin]
        tl_fall = pfall[ar, pin]
        valid_tl = np.isfinite(tl_t)

        cand_t = np.full((n, m_max), np.inf)
        cand_c = np.zeros(n, dtype=np.int64)

        # Fast path: no two merged events within GROUP_EPS — every event is
        # its own group, so the whole slot walk collapses to a cumulative
        # XOR over toggled pin bits plus one LUT lookup per slot.
        near = (tl_t[:, 1:] - tl_t[:, :-1] <= GROUP_EPS) & valid_tl[:, 1:]
        slow = near.any(axis=1)
        fast = ~slow
        slow_any = bool(slow.any())
        if not slow_any or fast.any():
            if slow_any:
                rows_f = np.nonzero(fast)[0]
                v_f = valid_tl[rows_f]
                pin_f = pin[rows_f]
                idx_f = idx[rows_f]
                luts_f = luts[rows_f]
                oi_f = out_init[rows_f]
            else:  # the common all-fast batch: no row-subset copies at all
                rows_f = self._arange(n)
                v_f = valid_tl
                pin_f = pin
                idx_f = idx
                luts_f = luts
                oi_f = out_init
            bit_m = np.where(v_f, self._pinbit[pin_f], np.uint64(0))
            cur = (idx_f.astype(np.uint64)[:, None]
                   ^ np.bitwise_xor.accumulate(bit_m, axis=1))
            outs = ((luts_f[:, None] >> cur) & np.uint64(1)).astype(np.uint8)
            chg = np.empty_like(v_f)
            chg[:, 0] = outs[:, 0] != oi_f
            np.not_equal(outs[:, 1:], outs[:, :-1], out=chg[:, 1:])
            chg &= v_f
            r_nz, s_nz = np.nonzero(chg)  # row-major: slots stay in order
            # Within-row ordinal of each change = index minus the first
            # index of its row (r_nz is sorted, so one searchsorted does).
            pos = np.arange(r_nz.size) - np.searchsorted(r_nz, r_nz)
            # Output times only materialize at changed slots: gather them
            # and apply the polarity delay there instead of across the
            # full width (gr maps back into the unsubset timeline arrays).
            gr = rows_f[r_nz]
            o_nz = outs[r_nz, s_nz]
            t_nz = (tl_t[gr, s_nz]
                    + np.where(o_nz == 1, tl_rise[gr, s_nz],
                               tl_fall[gr, s_nz]))
            cand_t[gr, pos] = t_nz
            cand_c[rows_f] = chg.sum(axis=1)
        if slow_any:
            s_rows = np.nonzero(slow)[0]
            # Finite slots form a prefix of each (sorted) row: clip the
            # lockstep walk to the widest slow row.
            m_s = int(valid_tl[s_rows].sum(axis=1).max())
            s_t, s_c = self._merge_slots_grouped(
                luts[s_rows], idx[s_rows], out_init[s_rows],
                tl_t[s_rows, :m_s], tl_rise[s_rows, :m_s],
                tl_fall[s_rows, :m_s], pin[s_rows, :m_s])
            cand_t[s_rows, :s_t.shape[1]] = s_t
            cand_c[s_rows] = s_c

        out_t, out_c = self._schedule(cand_t, cand_c)
        return out_t, out_c, out_init

    @staticmethod
    def _merge_slots_grouped(luts: np.ndarray, idx: np.ndarray,
                             out_init: np.ndarray, tl_t: np.ndarray,
                             tl_rise: np.ndarray, tl_fall: np.ndarray,
                             pin: np.ndarray
                             ) -> tuple[np.ndarray, np.ndarray]:
        """Lockstep slot walk for rows with simultaneous (grouped) events.

        The general pessimistic-late rule: merged events within GROUP_EPS of
        their group's first event form one group charged with the slowest
        toggling pin's delay of the final output polarity.
        """
        n, m_max = tl_t.shape
        rows = np.arange(n)
        tl_bit = np.int64(1) << pin.astype(np.int64)

        cur_idx = idx.astype(np.int64).copy()
        cur_out = out_init.copy()
        grp_open = np.zeros(n, dtype=bool)
        grp_t = np.zeros(n)
        grp_rise = np.zeros(n)
        grp_fall = np.zeros(n)
        cand_t = np.full((n, m_max), np.inf)
        cand_c = np.zeros(n, dtype=np.int64)

        def close(mask: np.ndarray) -> None:
            m = mask & grp_open
            if not m.any():
                return
            sub = rows[m]
            new_out = ((luts[sub] >> cur_idx[sub].astype(np.uint64))
                       & np.uint64(1)).astype(np.uint8)
            chg = new_out != cur_out[sub]
            subc = sub[chg]
            if subc.size:
                no = new_out[chg]
                delay = np.where(no == 1, grp_rise[subc], grp_fall[subc])
                cand_t[subc, cand_c[subc]] = grp_t[subc] + delay
                cand_c[subc] += 1
                cur_out[subc] = no
            grp_open[sub] = False

        for s in range(m_max):
            t_s = tl_t[:, s]
            valid = np.isfinite(t_s)
            if not valid.any():
                break
            extend = valid & grp_open & (t_s - grp_t <= GROUP_EPS)
            new_grp = valid & ~extend
            close(new_grp)
            cur_idx[valid] ^= tl_bit[valid, s]
            r_s = tl_rise[:, s]
            f_s = tl_fall[:, s]
            grp_t[new_grp] = t_s[new_grp]
            grp_rise[new_grp] = r_s[new_grp]
            grp_fall[new_grp] = f_s[new_grp]
            if extend.any():
                grp_rise[extend] = np.maximum(grp_rise[extend], r_s[extend])
                grp_fall[extend] = np.maximum(grp_fall[extend], f_s[extend])
            grp_open |= new_grp
        close(np.ones(n, dtype=bool))
        return cand_t, cand_c

    # ------------------------------------------------------------------
    # Fault-free sweep
    # ------------------------------------------------------------------
    @staticmethod
    def _unpack_bits(words: np.ndarray, width: int) -> np.ndarray:
        """``(rows, W)`` uint64 planes -> ``(rows, width)`` uint8 bits."""
        return np.unpackbits(words.view(np.uint8), axis=1,
                             bitorder="little")[:, :width]

    def base_sweep(self, patterns) -> None:
        """Compute the fault-free event store for every (gate, pattern)."""
        circuit = self.circuit
        p_n = len(patterns)
        self.p_n = p_n
        launch_m, width = self.bp.pack_vectors_words(
            [p.launch for p in patterns])
        capture_m, _ = self.bp.pack_vectors_words(
            [p.capture for p in patterns])
        const0 = np.asarray([g.index for g in circuit.gates
                             if g.kind == GateKind.CONST0], dtype=np.int64)
        if const0.size:
            # The waveform engines pin constant generators regardless of
            # the packed vector bits (pack_vectors_words only forces CONST1).
            launch_m[const0] = 0
            capture_m[const0] = 0
        sources = np.asarray(circuit.sources(), dtype=np.int64)
        toggles = launch_m[sources] ^ capture_m[sources]

        # Activity planes: OR-propagated source toggles (plus the virtual
        # constant row).  A clear bit proves the waveform is constant.
        act = np.zeros((self.g_n + 1, launch_m.shape[1]), dtype=np.uint64)
        act[sources] = toggles
        for _lvl, idxs in self.levels:
            act[idxs] = np.bitwise_or.reduce(act[self.fanin_pad[idxs]],
                                             axis=1)
        self.act_bits = self._unpack_bits(act, p_n)

        sim_m = self.bp.simulate_words(launch_m, width)
        init_bits = np.zeros((self.g_n + 1, p_n), dtype=np.uint8)
        init_bits[:self.g_n] = self._unpack_bits(sim_m, p_n)

        k0 = 4
        base = _WaveStore((self.g_n + 1) * p_n, k0)
        base.i = init_bits.reshape(-1)
        # Source events: one launch transition at t=0 where launch!=capture.
        tog_bits = self._unpack_bits(toggles, p_n)
        si, pi = np.nonzero(tog_bits)
        rows = sources[si] * p_n + pi
        base.t[rows, 0] = 0.0
        base.c[rows] = 1
        self.base = base

        for _lvl, idxs in self.levels:
            g_act = self.act_bits[idxs]
            gi, pii = np.nonzero(g_act)
            if not gi.size:
                continue
            g_arr = idxs[gi]
            out_t, out_c, _oi = self._eval_instances(g_arr, pii, None, None)
            if out_t.shape[1] > base.k:
                base.grow(out_t.shape[1])
            rows = g_arr * p_n + pii
            ko = out_t.shape[1]
            if ko:
                base.t[rows, :ko] = out_t
            base.c[rows] = out_c
            # out_init always equals the two-valued plane value: the gate
            # function of the fanin initial values.  (Checked in tests.)

    def _eval_instances(self, g_arr: np.ndarray, pat: np.ndarray,
                        inst: np.ndarray | None, ch: _ChangedStore | None
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge-evaluate gates ``g_arr`` for instances ``(g, pat[, inst])``.

        Fanin waveforms come from the fault-free store, overlaid with the
        changed store (binary search on ``src * NI + inst``) during the
        faulty sweep.
        """
        base = self.base
        p_n = self.p_n
        n = g_arr.size
        src = self.fanin_pad[g_arr]                      # (n, A)
        base_rows = src * p_n + pat[:, None]
        in_c = base.c[base_rows]
        in_i = base.i[base_rows]
        hit = None
        pos_c = None
        if ch is not None and ch.n:
            keys = src * np.int64(self.ni) + inst[:, None]
            pos = np.searchsorted(ch.keys, keys)
            pos_c = np.minimum(pos, ch.keys.size - 1)
            hit = ch.keys[pos_c] == keys
            if hit.any():
                in_c[hit] = ch.c[ch.rows[pos_c[hit]]]
            else:
                hit = None

        def run(sel) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            # Gather only as many event slots as the widest fanin of the
            # selected rows actually holds — stores grow to the global
            # maximum, but a typical level only sees a handful of events
            # per waveform, and the merge kernel's argsort cost scales
            # with the gathered width.
            c_sub = in_c[sel]
            kg = max(int(c_sub.max()), 1) if c_sub.size else 1
            br = base_rows[sel]
            t_sub = base.t[:, :kg][br]
            if hit is not None:
                h = hit[sel]
                if h.any():
                    rs = ch.rows[pos_c[sel][h]]
                    kc = min(ch.k, kg)
                    over = np.full((rs.size, kg), np.inf)
                    over[:, :kc] = ch.t[rs][:, :kc]
                    t_sub[h] = over
            g_sub = g_arr[sel]
            return self._merge_eval(self.luts[g_sub], self.pin_rise[g_sub],
                                    self.pin_fall[g_sub], t_sub, c_sub,
                                    in_i[sel])

        # Width bucketing: large batches are dominated by a few wide rows —
        # splitting off the (typical) <=2-event bulk shrinks both the
        # gather width and the merge kernel's sort width for most rows.
        if n >= 512:
            km = in_c.max(axis=1)
            kg_all = int(km.max())
            if kg_all > 3:
                small = km <= 2
                ns = int(small.sum())
                if 256 <= ns < n - 64:
                    si = np.nonzero(small)[0]
                    bi = np.nonzero(~small)[0]
                    t1, c1, i1 = run(si)
                    t2, c2, i2 = run(bi)
                    k_out = max(t1.shape[1], t2.shape[1], 1)
                    out_t = np.full((n, k_out), np.inf)
                    out_c = np.empty(n, dtype=np.int64)
                    out_i = np.empty(n, dtype=np.uint8)
                    out_t[si, :t1.shape[1]] = t1
                    out_c[si] = c1
                    out_i[si] = i1
                    out_t[bi, :t2.shape[1]] = t2
                    out_c[bi] = c2
                    out_i[bi] = i2
                    return out_t, out_c, out_i
        return run(slice(None))

    # ------------------------------------------------------------------
    # Faulty sweep
    # ------------------------------------------------------------------
    def activated_instances(self, sg_e: np.ndarray, rising_e: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-(fault, pattern) activation from the fault-free store.

        A fault is activated when the waveform at its site signal has a
        transition of the faulted polarity: with alternating canonical
        events that is ``count >= 2``, or ``count == 1`` with the single
        event's value (``1 - init``) matching the polarity — the same
        predicate as ``Waveform.has_transition(rising=...)``.
        """
        base = self.base
        p_n = self.p_n
        # Per-eligible-fault site arrays, shared with inject_sites.
        self.sg_e = sg_e
        self.rising_e = rising_e
        sg, rising = sg_e, rising_e
        cnt = base.c.reshape(-1, p_n)[sg]
        ini = base.i.reshape(-1, p_n)[sg]
        want_init = np.where(rising, 0, 1).astype(np.uint8)[:, None]
        act = (cnt >= 2) | ((cnt == 1) & (ini == want_init))
        ei, pat = np.nonzero(act)
        return ei, pat

    def inject_sites(self, gate_e: np.ndarray, pin_e: np.ndarray,
                     delta_e: np.ndarray, ei: np.ndarray, pat: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Faulty site waveforms for every activated instance.

        Vectorizes ``WaveformSimulator._faulty_site_wave``: the site
        signal's transitions of the faulted polarity move by delta, the
        moved candidates are inertial-rescheduled, and input-pin faults
        additionally re-evaluate the site gate with the delayed pin.
        Returns ``(site_gate, times, counts)`` per instance.
        """
        base = self.base
        p_n = self.p_n
        sg_e = self.sg_e
        rising_e = self.rising_e

        sig_rows = sg_e[ei] * p_n + pat
        sc = base.c[sig_rows]
        ks = max(int(sc.max()), 1) if sc.size else 1
        st = base.t[:, :ks][sig_rows]
        si = base.i[sig_rows]
        d_rise = np.where(rising_e[ei], delta_e[ei], 0.0)
        d_fall = np.where(rising_e[ei], 0.0, delta_e[ei])
        # Event j's value is init ^ ((j+1)&1): a per-column parity.
        parity = ((np.arange(ks) + 1) & 1).astype(np.uint8)[None, :]
        vals = si[:, None] ^ parity
        moved = st + np.where(vals == 1, d_rise[:, None], d_fall[:, None])
        del_t, del_c = self._schedule(moved, sc)

        n_i = ei.size
        site_g = gate_e[ei]
        ko = max(del_t.shape[1], 1)
        out_t = np.full((n_i, ko), np.inf)
        out_c = np.zeros(n_i, dtype=np.int64)
        is_out = pin_e[ei] < 0
        if is_out.any():
            out_t[is_out, :del_t.shape[1]] = del_t[is_out]
            out_c[is_out] = del_c[is_out]
        m_in = ~is_out
        if m_in.any():
            g_in = site_g[m_in]
            src = self.fanin_pad[g_in]
            base_rows = src * p_n + pat[m_in][:, None]
            in_c = base.c[base_rows]
            sub = np.arange(n_i)[m_in]
            pin_rows = pin_e[ei][m_in]
            in_c[np.arange(sub.size), pin_rows] = del_c[m_in]
            kg = max(int(in_c.max()), 1, del_t.shape[1])
            in_t = base.t[:, :kg][base_rows]
            in_i = base.i[base_rows]
            pad = np.full((sub.size, kg), np.inf)
            pad[:, :del_t.shape[1]] = del_t[m_in]
            in_t[np.arange(sub.size), pin_rows] = pad
            ev_t, ev_c, _oi = self._merge_eval(
                self.luts[g_in], self.pin_rise[g_in], self.pin_fall[g_in],
                in_t, in_c, in_i)
            ke = ev_t.shape[1]
            if ke > out_t.shape[1]:
                grown = np.full((n_i, ke), np.inf)
                grown[:, :out_t.shape[1]] = out_t
                out_t = grown
            out_t[sub, :ke] = ev_t
            out_c[sub] = ev_c
        if out_t.shape[1] > base.k:
            base.grow(out_t.shape[1])
        return site_g, out_t, out_c

    def changed_mask(self, gate: np.ndarray, pat: np.ndarray,
                     new_t: np.ndarray, new_c: np.ndarray) -> np.ndarray:
        """Instances whose waveform differs (beyond EPS) from fault-free."""
        base = self.base
        rows = gate * self.p_n + pat
        b_t = base.t[rows]
        b_c = base.c[rows]
        k = min(new_t.shape[1], base.k)
        slot = np.arange(k)[None, :] < np.minimum(new_c, b_c)[:, None]
        ev_eq = ~slot | (np.abs(new_t[:, :k] - b_t[:, :k]) <= EPS)
        return (new_c != b_c) | ~ev_eq.all(axis=1)

    def faulty_sweep(self, site_g: np.ndarray, site_t: np.ndarray,
                     site_c: np.ndarray, ei: np.ndarray, pat: np.ndarray
                     ) -> _ChangedStore:
        """Global change-driven frontier propagation of all instances.

        Seeds the changed store with the perturbed site waveforms, then
        walks the levels once: candidates are the combinational consumers
        of changed entries, evaluated with the changed overlay; an
        EPS-equal result is dropped (the incremental engine's cutoff).
        """
        self.ni = ei.size
        base = self.base
        ch = _ChangedStore(base.k)
        n_lv = self.max_level + 2
        pend_g: list[list[np.ndarray]] = [[] for _ in range(n_lv)]
        pend_i: list[list[np.ndarray]] = [[] for _ in range(n_lv)]

        def push(gs: np.ndarray, insts: np.ndarray) -> None:
            start = self.fo_ptr[gs]
            cnt = self.fo_ptr[gs + 1] - start
            tot = int(cnt.sum())
            if not tot:
                return
            ragged = np.arange(tot) - np.repeat(np.cumsum(cnt) - cnt, cnt)
            cons = self.fo_gate[np.repeat(start, cnt) + ragged]
            ci = np.repeat(insts, cnt)
            lv = self.gate_level[cons]
            for L in np.unique(lv):
                m = lv == L
                pend_g[L].append(cons[m])
                pend_i[L].append(ci[m])

        inst_ids = np.arange(ei.size)
        seed_chg = self.changed_mask(site_g, pat, site_t, site_c)
        gs = site_g[seed_chg]
        insts = inst_ids[seed_chg]
        ch.grow_k(site_t.shape[1])
        ch.append(gs * np.int64(self.ni) + insts, gs, insts,
                  site_t[seed_chg], site_c[seed_chg])
        push(gs, insts)

        for L in range(n_lv):
            if not pend_g[L]:
                continue
            g_cat = np.concatenate(pend_g[L])
            i_cat = np.concatenate(pend_i[L])
            keys = g_cat * np.int64(self.ni) + i_cat
            keys.sort()
            if keys.size > 1:
                uniq = np.empty(keys.size, dtype=bool)
                uniq[0] = True
                np.not_equal(keys[1:], keys[:-1], out=uniq[1:])
                keys = keys[uniq]
            g_arr = keys // self.ni
            i_arr = keys % self.ni
            p_arr = pat[i_arr]
            out_t, out_c, _oi = self._eval_instances(g_arr, p_arr, i_arr, ch)
            if out_t.shape[1] > base.k:
                base.grow(out_t.shape[1])
            chg = self.changed_mask(g_arr, p_arr, out_t, out_c)
            if not chg.any():
                continue
            gs = g_arr[chg]
            insts = i_arr[chg]
            ch.grow_k(max(out_t.shape[1], 1))
            ch.append(keys[chg], gs, insts, out_t[chg], out_c[chg])
            push(gs, insts)
        return ch

    # ------------------------------------------------------------------
    # Detection-range extraction
    # ------------------------------------------------------------------
    def extract_pieces(self, b_t, b_c, f_t, f_c, horizon: float,
                       glitch_threshold: float
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized ``Waveform.diff_intervals`` + glitch filter.

        Samples the XOR of base/faulty signal parity at the merged event
        times (plus 0 and ``horizon`` — the exact sample set of the
        reference), turns differ-run boundaries in the time-sorted sample
        matrix into (open, close) piece pairs, normalizes them with the
        ``IntervalSet`` constructor's drop-then-merge rule and drops pieces
        shorter than the glitch threshold.  Returns flat ``(entry_row, lo,
        hi)`` arrays sorted by (row, lo) — canonical per entry.
        """
        ne = b_t.shape[0]
        samples = np.concatenate(
            [b_t, f_t, np.zeros((ne, 1)), np.full((ne, 1), horizon)], axis=1)
        valid = (samples > 0.0) & (samples < horizon)
        valid[:, -2:] = True  # 0 and horizon are always sampled
        probe = samples[:, :, None] + EPS
        cb = (b_t[:, None, :] <= probe).sum(axis=2)
        cf = (f_t[:, None, :] <= probe).sum(axis=2)
        differ = (((cb ^ cf) & 1) != 0) & valid

        key = np.where(valid, samples, np.inf)
        order = np.argsort(key, axis=1, kind="stable")
        ar = self._arange(ne)[:, None]
        s_t = samples[ar, order]
        s_d = differ[ar, order]
        s_v = valid[ar, order]
        # Invalid slots sort to the end (key inf) and never differ; giving
        # them the horizon time makes the first one close any still-open
        # piece exactly like the reference's final-close rule.  A virtual
        # trailing non-differ sample does the same for all-valid rows.
        s_t[~s_v] = horizon
        s_t = np.concatenate([s_t, np.full((ne, 1), horizon)], axis=1)
        s_d = np.concatenate([s_d, np.zeros((ne, 1), dtype=bool)], axis=1)

        # Differ-run boundaries: equal-time duplicate samples have equal
        # differ flags, so runs open/close at the first slot of each
        # boundary — the same times the reference's de-duplicated sweep
        # sees.  Opens and closes strictly alternate per row starting with
        # an open, so the k-th nonzero of each (in row-major order) pair up.
        d_prev = np.concatenate([np.zeros((ne, 1), dtype=bool), s_d[:, :-1]],
                                axis=1)
        ro, co = np.nonzero(s_d & ~d_prev)
        rc, cc = np.nonzero(~s_d & d_prev)
        row = ro
        lo = s_t[ro, co]
        hi = s_t[rc, cc]
        keep = hi - lo > EPS  # the constructor drops degenerate pieces
        if not keep.all():
            row = row[keep]
            lo = lo[keep]
            hi = hi[keep]
        row, lo, hi = _merge_pieces(row, lo, hi)
        if glitch_threshold > 0.0:
            keep = (hi - lo) + EPS >= glitch_threshold
            if not keep.all():
                row = row[keep]
                lo = lo[keep]
                hi = hi[keep]
        return row, lo, hi


def _merge_pieces(seg: np.ndarray, lo: np.ndarray, hi: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge pieces with gaps ``<= EPS`` within each segment (vectorized).

    ``seg`` must be non-decreasing with ``lo`` ascending inside each
    segment and every piece longer than EPS.  Reproduces the
    ``IntervalSet`` constructor's merge: a piece joins the current group
    when its ``lo`` is within EPS of the group's running-max ``hi`` (with
    sorted los the running max over the whole segment equals the current
    group's max — a new group's first piece always raises it).
    """
    n = seg.size
    if n <= 1:
        return seg, lo, hi
    seg_change = seg[1:] != seg[:-1]
    # Longest segment bounds the doubling passes of the prefix max.
    bnd = np.nonzero(seg_change)[0]
    if bnd.size:
        ends = np.concatenate([bnd, [n - 1]])
        starts = np.concatenate([[-1], bnd])
        max_len = int((ends - starts).max())
    else:
        max_len = n
    pm = hi.copy()
    step = 1
    while step < max_len:
        same = seg[step:] == seg[:-step]
        np.maximum(pm[step:], np.where(same, pm[:-step], -np.inf),
                   out=pm[step:])
        step *= 2
    new_start = np.empty(n, dtype=bool)
    new_start[0] = True
    new_start[1:] = seg_change | (lo[1:] > pm[:-1] + EPS)
    if new_start.all():
        return seg, lo, hi
    g_starts = np.nonzero(new_start)[0]
    return seg[g_starts], lo[g_starts], np.maximum.reduceat(hi, g_starts)


def _union_sets(inst: np.ndarray, lo: np.ndarray, hi: np.ndarray
                ) -> tuple[list[int], list[IntervalSet]]:
    """Per-instance :class:`IntervalSet` union of flat (inst, lo, hi) pieces.

    ``inst`` selects the owner of each canonical per-gate piece; pieces
    are lexsorted by (inst, lo) and merged with the constructor rule, so
    the result equals ``IntervalSet(all pieces of the instance)``.
    Returns (sorted unique instance ids, their interval sets).
    """
    if not inst.size:
        return [], []
    order = np.lexsort((lo, inst))
    u_inst, u_lo, u_hi = _merge_pieces(inst[order], lo[order], hi[order])
    first = np.empty(u_inst.size, dtype=bool)
    first[0] = True
    np.not_equal(u_inst[1:], u_inst[:-1], out=first[1:])
    starts = np.nonzero(first)[0].tolist()
    starts.append(u_inst.size)
    lo_l = u_lo.tolist()
    hi_l = u_hi.tolist()
    ids = u_inst[first].tolist()
    sets = [
        _interval_set_from_sorted(tuple(
            _interval_unchecked(lo_l[s], hi_l[s])
            for s in range(starts[j], starts[j + 1])))
        for j in range(len(ids))
    ]
    return ids, sets


def run_wordwave(data: "DetectionData", *, inertial: float,
                 glitch_threshold: float, timer=None) -> bool:
    """Fill ``data.ranges`` with the word-parallel engine.

    The caller has validated applicability via
    :func:`wordwave_fallback_reason` and created an empty
    :class:`~repro.faults.detection.DetectionData`.  Fault eligibility
    (site reaches an observation point) is decided on the cached plan's
    reachability bitmap — no per-fault cone sets are materialized.
    Results are bit-identical to ``engine="reference"``.

    Returns False (without touching ``data``) when a fault site sits on a
    non-combinational gate — the default universe never produces one, but
    custom site lists can; the caller then falls back to the incremental
    engine.
    """
    circuit = data.circuit
    faults = data.faults
    patterns = data.patterns
    if not faults or not len(patterns):
        return True

    t0 = _time.perf_counter()
    ww = _plan_for(circuit, inertial)
    sites = [f.site for f in faults]
    site_gate = np.asarray([s.gate for s in sites], dtype=np.int64)
    site_pin = np.asarray([s.pin for s in sites], dtype=np.int64)
    if not ww.is_comb[site_gate].all():
        return False
    delta = np.asarray([f.delta for f in faults])
    rising = np.asarray([f.slow_to_rise for f in faults], dtype=bool)
    # signal_gate(): the faulted pin's driver for input-pin faults, the
    # gate itself for output-pin faults — resolved on the padded fanin plan.
    signal = np.where(site_pin < 0, site_gate,
                      ww.fanin_pad[site_gate, np.maximum(site_pin, 0)])
    elig = np.nonzero(ww.obs_can[site_gate])[0]
    if not elig.size:
        return True

    old_err = np.seterr(invalid="ignore")  # inf-padding arithmetic
    try:
        _run_wordwave_body(data, ww, signal, site_gate, site_pin, delta,
                           rising, elig, glitch_threshold, timer, t0)
    finally:
        np.seterr(**old_err)
    return True


def _run_wordwave_body(data, ww, signal, site_gate, site_pin, delta, rising,
                       elig, glitch_threshold, timer, t0):
    from repro.faults.detection import FaultPatternRange

    patterns = data.patterns
    ww.base_sweep(patterns)
    if timer is not None:
        t1 = _time.perf_counter()
        timer.add("base_sim", t1 - t0)
        t0 = t1

    ei, pat = ww.activated_instances(signal[elig], rising[elig])
    if not ei.size:
        return
    site_g, site_t, site_c = ww.inject_sites(
        site_gate[elig], site_pin[elig], delta[elig], ei, pat)
    if timer is not None:
        t1 = _time.perf_counter()
        timer.add("site_inject", t1 - t0)
        t0 = t1

    ch = ww.faulty_sweep(site_g, site_t, site_c, ei, pat)
    if timer is not None:
        t1 = _time.perf_counter()
        timer.add("faulty_sim", t1 - t0)
        t0 = t1

    # Changed entries at observation gates carry every potential detection.
    e_gate = ch.gate[:ch.n]
    e_inst = ch.inst[:ch.n]
    sel = ww.is_obs[e_gate]
    e_gate = e_gate[sel]
    e_inst = e_inst[sel]
    e_rows = np.nonzero(sel)[0]
    if e_gate.size:
        base_rows = e_gate * ww.p_n + pat[e_inst]
        b_c = ww.base.c[base_rows]
        f_c = ch.c[e_rows]
        kb = max(int(b_c.max()), 1)
        kf = max(int(f_c.max()), 1)
        b_t = ww.base.t[:, :kb][base_rows]
        f_t = ch.t[:, :kf][e_rows]
        row, p_lo, p_hi = ww.extract_pieces(
            b_t, b_c, f_t, f_c, data.horizon, glitch_threshold)

        pc_inst = e_inst[row]
        ids_all, sets_all = _union_sets(pc_inst, p_lo, p_hi)
        monitored = data.monitored_gates
        is_mon = np.zeros(ww.g_n + 1, dtype=bool)
        if monitored:
            is_mon[np.fromiter(monitored, dtype=np.int64,
                               count=len(monitored))] = True
        mm = is_mon[e_gate[row]]
        ids_mon, sets_mon = _union_sets(pc_inst[mm], p_lo[mm], p_hi[mm])

        fi_l = elig[ei[np.asarray(ids_all, dtype=np.int64)]].tolist() \
            if ids_all else []
        pi_l = pat[np.asarray(ids_all, dtype=np.int64)].tolist() \
            if ids_all else []
        empty = IntervalSet.empty()
        ranges = data.ranges  # data is fresh: fill directly, no cache churn
        mp = 0
        n_mon = len(ids_mon)
        for j, inst_id in enumerate(ids_all):
            if mp < n_mon and ids_mon[mp] == inst_id:
                i_mon = sets_mon[mp]
                mp += 1
            else:
                i_mon = empty
            d = ranges.get(fi_l[j])
            if d is None:
                d = ranges[fi_l[j]] = {}
            d[pi_l[j]] = FaultPatternRange(sets_all[j], i_mon)
    if timer is not None:
        timer.add("intervals", _time.perf_counter() - t0)
