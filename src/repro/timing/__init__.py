"""Static timing analysis, clocking helpers and process-variation models."""

from repro.timing.sta import StaResult, run_sta
from repro.timing.clock import ClockSpec
from repro.timing.paths import (
    TimingPath,
    endpoint_arrival_histogram,
    k_longest_paths,
    k_shortest_paths,
    short_path_fraction,
)

__all__ = [
    "StaResult",
    "run_sta",
    "ClockSpec",
    "TimingPath",
    "endpoint_arrival_histogram",
    "k_longest_paths",
    "k_shortest_paths",
    "short_path_fraction",
]
