"""Clocking helpers for FAST.

Groups the frequency-domain quantities the paper works with: the nominal
period ``t_nom = 1/f_nom``, the maximum FAST frequency ``f_max`` (typically
bounded by ``3 * f_nom`` [9-11]) and therefore the observable window
``(t_min, t_nom)`` with ``t_min = t_nom / fast_ratio``, plus the PLL-relock
cost model used by the test-time accounting (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default bound f_max = 3 * f_nom (Sec. III).
DEFAULT_FAST_RATIO = 3.0

#: PLL re-lock penalty expressed in equivalent pattern applications.  The
#: paper cites tens to hundreds of microseconds per frequency switch,
#: i.e. thousands of lost cycles [21, 22]; we use a conservative default.
DEFAULT_PLL_RELOCK_PATTERNS = 2000.0


@dataclass(frozen=True)
class ClockSpec:
    """Nominal clock and FAST window of one circuit (times in ps)."""

    t_nom: float
    fast_ratio: float = DEFAULT_FAST_RATIO

    def __post_init__(self) -> None:
        if self.t_nom <= 0:
            raise ValueError("t_nom must be positive")
        if self.fast_ratio < 1.0:
            raise ValueError("fast_ratio must be >= 1")

    @property
    def t_min(self) -> float:
        """Fastest usable capture time ``t_nom / fast_ratio``."""
        return self.t_nom / self.fast_ratio

    @property
    def f_nom(self) -> float:
        """Nominal frequency in 1/ps."""
        return 1.0 / self.t_nom

    @property
    def f_max(self) -> float:
        return self.fast_ratio / self.t_nom

    def frequency_of(self, period: float) -> float:
        return 1.0 / period

    def in_window(self, period: float) -> bool:
        """True when ``period`` lies in the observable FAST window."""
        return self.t_min <= period <= self.t_nom

    def with_ratio(self, fast_ratio: float) -> "ClockSpec":
        return ClockSpec(self.t_nom, fast_ratio)


def application_time(num_frequencies: int, num_pattern_configs: int, *,
                          relock_cost: float = DEFAULT_PLL_RELOCK_PATTERNS
                          ) -> float:
    """Total test time in pattern-application units.

    Every selected frequency requires one PLL re-lock (`relock_cost` pattern
    equivalents); every scheduled (pattern, configuration) pair costs one
    application.  This is the quantity the schedule optimization minimizes,
    dominated by the frequency count (Sec. IV-B).
    """
    if num_frequencies < 0 or num_pattern_configs < 0:
        raise ValueError("counts must be non-negative")
    return num_frequencies * relock_cost + num_pattern_configs
