"""Path statistics and critical-path extraction.

The coverage gain of monitor reuse is driven entirely by the *path-length
population* at the observation points: endpoints terminating short paths
produce sub-``t_min`` fault effects conventional FAST cannot see
(Sec. III).  This module provides the analyses that make that population
visible:

* :func:`endpoint_arrival_histogram` — normalized arrival-time histogram
  over the pseudo-primary outputs,
* :func:`k_longest_paths` / :func:`k_shortest_paths` — explicit gate-level
  paths to an endpoint, by exhaustive best-first enumeration,
* :func:`short_path_fraction` — share of endpoints whose worst arrival is
  below a threshold (e.g. ``t_min``), the single number that predicts
  whether monitors will pay off on a design.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from repro.netlist.circuit import Circuit, GateKind
from repro.timing.sta import StaResult


@dataclass(frozen=True)
class TimingPath:
    """One structural path: source … endpoint with its worst-case length."""

    gates: tuple[int, ...]
    length: float

    def describe(self, circuit: Circuit) -> str:
        names = " -> ".join(circuit.gates[g].name for g in self.gates)
        return f"{names}  ({self.length:.1f} ps)"


def endpoint_arrival_histogram(circuit: Circuit, sta: StaResult,
                               *, bins: int = 10,
                               pseudo_only: bool = True
                               ) -> list[tuple[float, float, int]]:
    """Histogram of endpoint worst arrivals as (lo, hi, count) bins.

    Bin edges span [0, critical path]; counts are over observation points
    (PPOs only by default, matching the monitor insertion population).
    """
    if bins < 1:
        raise ValueError("need at least one bin")
    arrivals = [sta.arrival_max[op.gate]
                for op in circuit.observation_points()
                if op.is_pseudo or not pseudo_only]
    top = max(sta.critical_path, 1e-9)
    width = top / bins
    counts = [0] * bins
    for a in arrivals:
        idx = min(bins - 1, int(a / width))
        counts[idx] += 1
    return [(i * width, (i + 1) * width, counts[i]) for i in range(bins)]


def short_path_fraction(circuit: Circuit, sta: StaResult,
                        threshold: float) -> float:
    """Fraction of PPOs whose worst arrival is below ``threshold``.

    With ``threshold = t_min = t_nom/3`` this is the population whose
    faults are *entirely* invisible to conventional FAST — the paper's
    monitor-recoverable class.
    """
    ppos = [op for op in circuit.observation_points() if op.is_pseudo]
    if not ppos:
        return 0.0
    short = sum(1 for op in ppos if sta.arrival_max[op.gate] < threshold)
    return short / len(ppos)


def _path_iter(circuit: Circuit, endpoint: int, *,
               longest: bool) -> Iterator[TimingPath]:
    """Best-first enumeration of structural paths ending at ``endpoint``.

    Expands partial paths backwards from the endpoint; the priority is the
    accumulated suffix delay plus (for the longest mode) the best possible
    remaining arrival, which makes the enumeration ordered and admissible.
    """
    sign = -1.0 if longest else 1.0

    # Precompute arrival bounds once (admissible enumeration guides).
    arr_max: dict[int, float] = {}
    arr_min: dict[int, float] = {}
    for idx in circuit.topo_order:
        g = circuit.gates[idx]
        if GateKind.is_source(g.kind):
            arr_max[idx] = arr_min[idx] = 0.0
            continue
        maxes, mins = [], []
        for pin, src in enumerate(g.fanin):
            rise, fall = g.pin_delays[pin]
            maxes.append(arr_max[src] + max(rise, fall))
            mins.append(arr_min[src] + min(rise, fall))
        arr_max[idx] = max(maxes)
        arr_min[idx] = min(mins)

    guide = arr_max if longest else arr_min
    counter = 0
    heap: list[tuple[float, int, float, tuple[int, ...]]] = []
    heapq.heappush(heap, (sign * guide[endpoint], counter, 0.0, (endpoint,)))
    while heap:
        _prio, _c, suffix, path = heapq.heappop(heap)
        head = path[0]
        g = circuit.gates[head]
        if GateKind.is_source(g.kind):
            yield TimingPath(gates=path, length=suffix)
            continue
        for pin, src in enumerate(g.fanin):
            rise, fall = g.pin_delays[pin]
            step = max(rise, fall) if longest else min(rise, fall)
            new_suffix = suffix + step
            counter += 1
            heapq.heappush(heap, (
                sign * (new_suffix + guide[src]), counter,
                new_suffix, (src,) + path))


def k_longest_paths(circuit: Circuit, endpoint: int, k: int,
                    *, max_expansions: int = 100_000) -> list[TimingPath]:
    """The ``k`` longest structural paths ending at ``endpoint``."""
    return _take(_path_iter(circuit, endpoint, longest=True), k,
                 max_expansions)


def k_shortest_paths(circuit: Circuit, endpoint: int, k: int,
                     *, max_expansions: int = 100_000) -> list[TimingPath]:
    """The ``k`` shortest structural paths ending at ``endpoint``."""
    return _take(_path_iter(circuit, endpoint, longest=False), k,
                 max_expansions)


def _take(it: Iterator[TimingPath], k: int, budget: int) -> list[TimingPath]:
    out: list[TimingPath] = []
    for _ in range(budget):
        try:
            out.append(next(it))
        except StopIteration:
            break
        if len(out) >= k:
            break
    return out
