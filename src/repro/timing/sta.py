"""Static timing analysis over the combinational core.

Computes per-gate earliest/latest arrival times (min over the fast pin/edge,
max over the slow pin/edge), the critical path length, and per-gate slack
with respect to a clock period.  The nominal clock of a circuit is defined as
``clk = 1.05 * cpl`` (critical path length plus 5 % margin, Sec. V).

The analysis is structural (topological, no false-path analysis), which is
the standard pessimistic model for FAST planning: a fault is *potentially*
at-speed detectable when its minimum structural slack is below the fault
size; explicit waveform simulation then confirms actual detection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.circuit import Circuit, GateKind

#: Clock margin on top of the critical path (Sec. V: clk = 1.05 * cpl).
CLOCK_MARGIN = 1.05


@dataclass
class StaResult:
    """Arrival/required/slack data for one circuit."""

    circuit: Circuit
    arrival_max: list[float]
    arrival_min: list[float]
    required: list[float]
    critical_path: float
    clock_period: float

    def slack_max_path(self, gate: int) -> float:
        """Slack of the longest path through ``gate`` w.r.t. the clock."""
        return self.clock_period - (self.arrival_max[gate]
                                    + self._downstream_max[gate])

    def min_slack(self, gate: int) -> float:
        """Smallest slack of any structural path through ``gate``.

        This bounds at-speed detectability: a delay fault of size δ at the
        gate can cause a nominal-period failure only if δ > min_slack.
        """
        return self.slack_max_path(gate)

    def max_slack(self, gate: int) -> float:
        """Largest slack of any path through ``gate`` (shortest path)."""
        return self.clock_period - (self.arrival_min[gate]
                                    + self._downstream_min[gate])

    # populated by run_sta
    _downstream_max: list[float] = None  # type: ignore[assignment]
    _downstream_min: list[float] = None  # type: ignore[assignment]


def run_sta(circuit: Circuit, *, clock_period: float | None = None) -> StaResult:
    """Run STA; if ``clock_period`` is None, derive it from the critical path."""
    if not circuit.is_finalized:
        raise ValueError("circuit must be finalized before STA")
    n = len(circuit.gates)
    a_max = [0.0] * n
    a_min = [0.0] * n
    for idx in circuit.topo_order:
        g = circuit.gates[idx]
        if not GateKind.is_combinational(g.kind):
            continue
        maxes = []
        mins = []
        for pin, src in enumerate(g.fanin):
            rise, fall = g.pin_delays[pin]
            maxes.append(a_max[src] + max(rise, fall))
            mins.append(a_min[src] + min(rise, fall))
        a_max[idx] = max(maxes)
        a_min[idx] = min(mins)

    observed = {op.gate for op in circuit.observation_points()}
    cpl = max((a_max[g] for g in observed), default=0.0)
    period = clock_period if clock_period is not None else CLOCK_MARGIN * cpl

    # Downstream (gate output -> any observation point) longest/shortest path.
    down_max = [float("-inf")] * n
    down_min = [float("inf")] * n
    for g in observed:
        down_max[g] = max(down_max[g], 0.0)
        down_min[g] = min(down_min[g], 0.0)
    for idx in reversed(circuit.topo_order):
        for consumer, pin in circuit.fanouts(idx):
            cg = circuit.gates[consumer]
            if not GateKind.is_combinational(cg.kind):
                continue
            if down_max[consumer] == float("-inf"):
                continue
            rise, fall = cg.pin_delays[pin]
            down_max[idx] = max(down_max[idx],
                                down_max[consumer] + max(rise, fall))
            down_min[idx] = min(down_min[idx],
                                down_min[consumer] + min(rise, fall))

    # Gates with no path to any observation point: give them full-period slack.
    for i in range(n):
        if down_max[i] == float("-inf"):
            down_max[i] = -a_max[i]
        if down_min[i] == float("inf"):
            down_min[i] = period - a_min[i]

    required = [period - down_max[i] for i in range(n)]
    result = StaResult(
        circuit=circuit,
        arrival_max=a_max,
        arrival_min=a_min,
        required=required,
        critical_path=cpl,
        clock_period=period,
    )
    result._downstream_max = down_max
    result._downstream_min = down_min
    return result
