"""Process-variation and delay-perturbation models.

The paper sizes its small delay faults as ``δ = 6σ`` where σ is the standard
deviation of process variation, valued at 20 % of the nominal gate delay
(Sec. III).  This module provides:

* :func:`fault_size_for_gate` — the per-gate 6σ fault size,
* :func:`apply_process_variation` — deterministic, seeded Gaussian scaling of
  every pin delay, used to create distinct process corners of the same
  netlist for robustness experiments.
"""

from __future__ import annotations

import random

from repro.netlist.circuit import Circuit, GateKind

#: σ as a fraction of the nominal gate delay (Sec. III: 20 %).
SIGMA_FRACTION = 0.2

#: Fault size multiplier (Sec. III: δ = 6σ).
N_SIGMA = 6.0


def nominal_gate_delay(circuit: Circuit, gate: int) -> float:
    """Nominal delay of a gate: mean of its pin-to-pin rise/fall delays."""
    g = circuit.gates[gate]
    if not g.pin_delays:
        return 0.0
    total = sum(r + f for r, f in g.pin_delays)
    return total / (2 * len(g.pin_delays))


def fault_size_for_gate(circuit: Circuit, gate: int, *,
                        sigma_fraction: float = SIGMA_FRACTION,
                        n_sigma: float = N_SIGMA) -> float:
    """δ = n_sigma * σ with σ = sigma_fraction * nominal gate delay."""
    return n_sigma * sigma_fraction * nominal_gate_delay(circuit, gate)


def apply_process_variation(circuit: Circuit, *, seed: int,
                            sigma_fraction: float = SIGMA_FRACTION,
                            clamp: float = 3.0) -> None:
    """Perturb every pin delay with seeded Gaussian noise (in place).

    Each rise/fall delay is multiplied by ``max(ε, 1 + N(0, σ))`` with the
    relative σ given by ``sigma_fraction``; deviations are clamped to
    ``±clamp`` σ so pathological corners cannot produce negative delays.
    """
    rng = random.Random(seed)
    for g in circuit.gates:
        if not GateKind.is_combinational(g.kind) or not g.pin_delays:
            continue
        new_delays = []
        for rise, fall in g.pin_delays:
            dr = max(-clamp, min(clamp, rng.gauss(0.0, 1.0)))
            df = max(-clamp, min(clamp, rng.gauss(0.0, 1.0)))
            new_delays.append((
                max(0.1, rise * (1.0 + sigma_fraction * dr)),
                max(0.1, fall * (1.0 + sigma_fraction * df)),
            ))
        g.pin_delays = tuple(new_delays)
