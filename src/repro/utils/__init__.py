"""Shared utilities: interval algebra, deterministic RNG helpers, formatting."""

from repro.utils.intervals import Interval, IntervalSet

__all__ = ["Interval", "IntervalSet"]
