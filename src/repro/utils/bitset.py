"""Packed bitset kernels for the scheduling pipeline (Sec. IV).

The schedule optimizer reasons about *sets of target faults* — which faults
a candidate period detects, which a (pattern, configuration) pair covers.
The seed implementation carried those sets as Python ``frozenset``s, making
every union/subset test an O(|set|) hash walk.  This module packs each set
into ``ceil(n/64)`` numpy ``uint64`` words (one bit per element) so that

* subset tests become word-wise ``a & ~b == 0`` reductions,
* cardinalities become hardware popcounts,
* dominance pruning over *m* candidate rows is a vectorized
  ``(row & ~matrix) == 0`` sweep instead of m² frozenset comparisons.

Two representations interoperate:

* a **bit matrix** (``np.ndarray`` of shape ``(rows, words)``, dtype
  ``uint64``) for the vectorized bulk operations, and
* **Python int masks** (arbitrary-precision, bit *i* = element *i*) for the
  sequential solver loops (greedy, branch-and-bound, presolve) where
  ``int.bit_count()`` and ``&``/``|``/``~`` on native ints beat array ops
  on tiny operands.

``matrix_to_masks`` / ``masks_to_matrix`` convert between the two; both
orderings use the same convention: element *i* lives in word ``i >> 6``,
bit ``i & 63``, i.e. ints are the little-endian concatenation of the words.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Bits per word of the packed representation.
WORD_BITS = 64

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def num_words(n_bits: int) -> int:
    """Words needed to hold ``n_bits`` bits (at least one)."""
    return max(1, (n_bits + WORD_BITS - 1) // WORD_BITS)


def zeros(n_rows: int, n_bits: int) -> np.ndarray:
    """Empty bit matrix for ``n_rows`` sets over ``n_bits`` elements."""
    return np.zeros((n_rows, num_words(n_bits)), dtype=np.uint64)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a bit matrix (shape ``(rows,)``)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    # SWAR fallback for numpy < 2.0 (no vectorized popcount).
    v = words.copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h = np.uint64(0x0101010101010101)
    v = v - ((v >> np.uint64(1)) & m1)
    v = (v & m2) + ((v >> np.uint64(2)) & m2)
    v = (v + (v >> np.uint64(4))) & m4
    v = (v * h) >> np.uint64(56)
    return v.sum(axis=-1, dtype=np.int64)


def pack_sets(sets: Iterable[Iterable[int]], n_bits: int) -> np.ndarray:
    """Pack an iterable of bit-position collections into a bit matrix."""
    rows = [np.fromiter(s, dtype=np.int64) for s in sets]
    out = zeros(len(rows), n_bits)
    for r, pos in enumerate(rows):
        if pos.size:
            np.bitwise_or.at(out[r], pos >> 6,
                             np.uint64(1) << (pos.astype(np.uint64)
                                              & np.uint64(63)))
    return out


def row_bits(row: np.ndarray) -> np.ndarray:
    """Set bit positions of one packed row, ascending."""
    bits = np.unpackbits(row.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits)


def matrix_bits(matrix: np.ndarray) -> list[np.ndarray]:
    """Set bit positions of every row (one unpack for the whole matrix)."""
    if matrix.size == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(matrix.shape[0])]
    bits = np.unpackbits(matrix.view(np.uint8), bitorder="little", axis=1)
    return [np.flatnonzero(bits[r]) for r in range(matrix.shape[0])]


def is_subset(row: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Boolean vector: ``row ⊆ matrix[r]`` for every row ``r``."""
    return ~np.any(row & ~matrix, axis=1)


def dominated_rows(matrix: np.ndarray, order: Sequence[int]) -> list[int]:
    """Indices (into ``matrix``) of rows *not* dominated, scanning ``order``.

    A row is dominated when its bits are a subset of an earlier-kept row's
    bits (ties included: a duplicate of a kept row is dropped).  ``order``
    fixes the priority — earlier entries win — and the returned kept list
    preserves that scan order.
    """
    kept: list[int] = []
    if matrix.shape[0] == 0:
        return kept
    stack = np.empty((len(order), matrix.shape[1]), dtype=np.uint64)
    k = 0
    for idx in order:
        row = matrix[idx]
        if k and bool(np.any(~np.any(row & ~stack[:k], axis=1))):
            continue
        stack[k] = row
        k += 1
        kept.append(idx)
    return kept


def matrix_to_masks(matrix: np.ndarray) -> list[int]:
    """Convert each packed row into a Python int bitmask."""
    if matrix.shape[0] == 0:
        return []
    # little-endian byte view → int.from_bytes per row, no per-bit loop.
    as_bytes = np.ascontiguousarray(matrix).view(np.uint8)
    return [int.from_bytes(as_bytes[r].tobytes(), "little")
            for r in range(matrix.shape[0])]


def masks_to_matrix(masks: Sequence[int], n_bits: int) -> np.ndarray:
    """Inverse of :func:`matrix_to_masks`."""
    nw = num_words(n_bits)
    out = zeros(len(masks), n_bits)
    for r, mask in enumerate(masks):
        out[r] = np.frombuffer(
            mask.to_bytes(nw * 8, "little"), dtype=np.uint64)
    return out


def mask_bits(mask: int) -> list[int]:
    """Set bit positions of a Python int mask, ascending."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out
