"""Packed bitset kernels for the scheduling pipeline (Sec. IV).

The schedule optimizer reasons about *sets of target faults* — which faults
a candidate period detects, which a (pattern, configuration) pair covers.
The seed implementation carried those sets as Python ``frozenset``s, making
every union/subset test an O(|set|) hash walk.  This module packs each set
into ``ceil(n/64)`` numpy ``uint64`` words (one bit per element) so that

* subset tests become word-wise ``a & ~b == 0`` reductions,
* cardinalities become hardware popcounts,
* dominance pruning over *m* candidate rows is a vectorized
  ``(row & ~matrix) == 0`` sweep instead of m² frozenset comparisons.

Two representations interoperate:

* a **bit matrix** (``np.ndarray`` of shape ``(rows, words)``, dtype
  ``uint64``) for the vectorized bulk operations, and
* **Python int masks** (arbitrary-precision, bit *i* = element *i*) for the
  sequential solver loops (greedy, branch-and-bound, presolve) where
  ``int.bit_count()`` and ``&``/``|``/``~`` on native ints beat array ops
  on tiny operands.

``matrix_to_masks`` / ``masks_to_matrix`` convert between the two; both
orderings use the same convention: element *i* lives in word ``i >> 6``,
bit ``i & 63``, i.e. ints are the little-endian concatenation of the words.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Bits per word of the packed representation.
WORD_BITS = 64

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def num_words(n_bits: int) -> int:
    """Words needed to hold ``n_bits`` bits (at least one)."""
    return max(1, (n_bits + WORD_BITS - 1) // WORD_BITS)


def zeros(n_rows: int, n_bits: int) -> np.ndarray:
    """Empty bit matrix for ``n_rows`` sets over ``n_bits`` elements."""
    return np.zeros((n_rows, num_words(n_bits)), dtype=np.uint64)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a bit matrix (shape ``(rows,)``)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    # SWAR fallback for numpy < 2.0 (no vectorized popcount).
    v = words.copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h = np.uint64(0x0101010101010101)
    v = v - ((v >> np.uint64(1)) & m1)
    v = (v & m2) + ((v >> np.uint64(2)) & m2)
    v = (v + (v >> np.uint64(4))) & m4
    v = (v * h) >> np.uint64(56)
    return v.sum(axis=-1, dtype=np.int64)


def pack_sets(sets: Iterable[Iterable[int]], n_bits: int) -> np.ndarray:
    """Pack an iterable of bit-position collections into a bit matrix."""
    rows = [np.fromiter(s, dtype=np.int64) for s in sets]
    out = zeros(len(rows), n_bits)
    for r, pos in enumerate(rows):
        if pos.size:
            np.bitwise_or.at(out[r], pos >> 6,
                             np.uint64(1) << (pos.astype(np.uint64)
                                              & np.uint64(63)))
    return out


def row_bits(row: np.ndarray) -> np.ndarray:
    """Set bit positions of one packed row, ascending."""
    bits = np.unpackbits(row.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits)


def matrix_bits(matrix: np.ndarray) -> list[np.ndarray]:
    """Set bit positions of every row (one unpack for the whole matrix)."""
    if matrix.size == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(matrix.shape[0])]
    bits = np.unpackbits(matrix.view(np.uint8), bitorder="little", axis=1)
    return [np.flatnonzero(bits[r]) for r in range(matrix.shape[0])]


def is_subset(row: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Boolean vector: ``row ⊆ matrix[r]`` for every row ``r``."""
    return ~np.any(row & ~matrix, axis=1)


#: Soft cap (bytes) of the temporary in one dominated_rows chunk test.
_DOM_CHUNK_BYTES = 8 << 20


def dominated_rows(matrix: np.ndarray, order: Sequence[int]) -> list[int]:
    """Indices (into ``matrix``) of rows *not* dominated, scanning ``order``.

    A row is dominated when its bits are a subset of an earlier-kept row's
    bits (ties included: a duplicate of a kept row is dropped).  ``order``
    fixes the priority — earlier entries win — and the returned kept list
    preserves that scan order.

    Implementation: rows are screened in chunks against the kept stack
    with one vectorized subset test per chunk (equivalent to the per-row
    scan: a row that is a subset of any *earlier* row is a subset of an
    earlier *kept* row by transitivity of ⊆, so stack survivors only need
    comparing against survivors added within their own chunk).
    """
    kept: list[int] = []
    n = len(order)
    if matrix.shape[0] == 0 or n == 0:
        return kept
    w = matrix.shape[1]
    order = np.asarray(order, dtype=np.int64)
    rows_all = matrix[order]
    # One-word signature (OR-fold of the words): row_i ⊆ row_j holds per
    # word, so sig_i ⊆ sig_j is necessary — a cheap screen that discards
    # almost every pair before the full-width test.  When the fold
    # saturates (rows with bits spread over many words) the screen stops
    # discriminating, so fall back to the dense broadcast test outright.
    if w > 1:
        sigs_all = np.bitwise_or.reduce(rows_all, axis=1)
        use_sigs = float(popcount(sigs_all[:, None]).mean()) <= 48.0
    else:
        sigs_all = rows_all[:, 0]
        use_sigs = False
    stack = np.empty((n, w), dtype=np.uint64)
    stack_sigs = np.empty(n, dtype=np.uint64)
    k = 0
    if use_sigs:
        chunk = int(min(1024, max(32, _DOM_CHUNK_BYTES // max(1, n * 8))))
    else:
        chunk = int(min(512, max(1, _DOM_CHUNK_BYTES
                                 // max(1, n * w * 8))))
    for a in range(0, n, chunk):
        rows = rows_all[a:a + chunk]
        sigs = sigs_all[a:a + chunk]
        local = np.arange(rows.shape[0])
        if k:
            dominated = np.zeros(rows.shape[0], dtype=bool)
            if use_sigs:
                # Candidate pairs by signature, then full-width
                # verification of only those pairs.
                ci, cj = np.nonzero(
                    ~(sigs[:, None] & ~stack_sigs[None, :k]).astype(bool))
                if ci.size:
                    sub = ~np.any(rows[ci] & ~stack[cj], axis=1)
                    dominated[ci[sub]] = True
            else:
                dominated = np.any(
                    ~np.any(rows[:, None, :] & ~stack[None, :k, :],
                            axis=2), axis=1)
            rows = rows[~dominated]
            sigs = sigs[~dominated]
            local = local[~dominated]
        if rows.shape[0] > 1:
            # Within-chunk: subset of any strictly-earlier survivor (the
            # same transitivity argument collapses kept-only to earlier).
            dominated = np.zeros(rows.shape[0], dtype=bool)
            if use_sigs:
                ci, cj = np.nonzero(
                    ~(sigs[:, None] & ~sigs[None, :]).astype(bool))
                earlier = cj < ci
                ci, cj = ci[earlier], cj[earlier]
                if ci.size:
                    sub = ~np.any(rows[ci] & ~rows[cj], axis=1)
                    dominated[ci[sub]] = True
            else:
                sub = ~np.any(rows[:, None, :] & ~rows[None, :, :], axis=2)
                dominated = np.tril(sub, k=-1).any(axis=1)
            rows = rows[~dominated]
            local = local[~dominated]
        m = rows.shape[0]
        if m:
            stack[k:k + m] = rows
            stack_sigs[k:k + m] = sigs_all[a + local]
            k += m
            kept.extend((order[a + local]).tolist())
    return kept


def matrix_to_masks(matrix: np.ndarray) -> list[int]:
    """Convert each packed row into a Python int bitmask."""
    if matrix.shape[0] == 0:
        return []
    # little-endian byte view → int.from_bytes per row, no per-bit loop.
    as_bytes = np.ascontiguousarray(matrix).view(np.uint8)
    return [int.from_bytes(as_bytes[r].tobytes(), "little")
            for r in range(matrix.shape[0])]


def masks_to_matrix(masks: Sequence[int], n_bits: int) -> np.ndarray:
    """Inverse of :func:`matrix_to_masks`."""
    nw = num_words(n_bits)
    out = zeros(len(masks), n_bits)
    for r, mask in enumerate(masks):
        out[r] = np.frombuffer(
            mask.to_bytes(nw * 8, "little"), dtype=np.uint64)
    return out


def mask_bits(mask: int) -> list[int]:
    """Set bit positions of a Python int mask, ascending."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out
