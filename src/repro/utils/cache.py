"""Small bounded LRU mapping with hit/miss accounting.

The scheduling layer memoizes expensive derived artifacts (observable
ranges + discretized candidate sets on :class:`DetectionData`, solved
step-2 covers in the rescheduling engine) keyed by potentially unbounded
tuples — every distinct ``(targets, configs, window)`` query used to grow
the dict forever.  :class:`LruCache` bounds those memos to the most
recently used entries and counts hits/misses/evictions so ``repro bench``
can show how well the memoization works on a given workload.

Deliberately minimal: not thread-safe (all users are per-process,
per-object memos), no TTL, plain ``OrderedDict`` recency bookkeeping.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator


class LruCache:
    """Bounded mapping evicting the least-recently-used entry.

    Supports the subset of the ``dict`` protocol the memo call sites use
    (``get`` / ``[]=`` / ``in`` / ``len`` / ``clear``), so a plain dict
    field can be swapped for a bounded one without touching callers.
    ``get`` and ``[]`` refresh recency; ``stats()`` reports counters
    accumulated since construction (``clear`` empties the entries but
    keeps the counters — a workload replay wants the totals).
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def __getitem__(self, key: Hashable) -> Any:
        if key not in self._data:
            self.misses += 1
            raise KeyError(key)
        self._data.move_to_end(key)
        self.hits += 1
        return self._data[key]

    def __setitem__(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def clear(self) -> None:
        """Drop all entries; counters survive (see class docstring)."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._data),
                "maxsize": self.maxsize}
